//! Evaluating the paper's scaling recommendation.
//!
//! The paper concludes that "for configurations up to 64 disks, a dual
//! fibre channel arbitrated loop interconnect is sufficient even for the
//! most communication-intensive decision support tasks. To scale to
//! larger configurations, a more aggressive interconnect (e.g., multiple
//! fibre channel loops connected by a FibreSwitch) would be needed."
//!
//! This example evaluates that recommendation, which the paper itself
//! does not: sort and join (the loop-saturating tasks) on Active Disk
//! farms from 32 to 512 disks, dual loop vs switched fabric.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example beyond_64_disks
//! ```

use activedisks::arch::Architecture;
use activedisks::howsim::Simulation;
use activedisks::tasks::TaskKind;

fn main() {
    println!("Active Disk scaling: dual FC-AL vs FibreSwitch fabric\n");
    for task in [TaskKind::Sort, TaskKind::Join] {
        println!("{}:", task.name());
        println!(
            "{:>7}  {:>12} {:>13} {:>9}",
            "disks", "dual loop(s)", "FibreSwitch(s)", "speedup"
        );
        let mut prev_dual = f64::NAN;
        let mut prev_switch = f64::NAN;
        for disks in [32usize, 64, 128, 256, 512] {
            let dual = Simulation::new(Architecture::active_disks(disks))
                .run(task)
                .elapsed()
                .as_secs_f64();
            let switched = Simulation::new(Architecture::active_disks(disks).with_fibre_switch())
                .run(task)
                .elapsed()
                .as_secs_f64();
            let note = if prev_dual.is_finite() {
                format!(
                    "  (2x disks: loop {:.2}x, switch {:.2}x)",
                    prev_dual / dual,
                    prev_switch / switched
                )
            } else {
                String::new()
            };
            println!(
                "{disks:>7}  {dual:>12.1} {switched:>13.1} {:>8.2}x{note}",
                dual / switched
            );
            prev_dual = dual;
            prev_switch = switched;
        }
        println!();
    }
    println!(
        "The dual loop pins repartitioning tasks past ~64 disks; the switched\n\
         fabric restores near-linear scaling — the paper's recommendation holds."
    );
}
