//! Failure injection: one sick drive in a healthy farm.
//!
//! Drives grow defects over their life; a remapped sector costs a detour
//! to the spare region. In a barrier-synchronized dataflow (every phase
//! ends with a global barrier) the sickest drive sets the pace for the
//! whole farm. This example quantifies that straggler effect and shows
//! how it surfaces in the disk service-time distribution — analysis the
//! simulator supports beyond the paper's healthy-hardware evaluation.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example degraded_farm
//! ```

use activedisks::arch::Architecture;
use activedisks::howsim::Simulation;
use activedisks::tasks::TaskKind;

fn main() {
    let disks = 32;
    let task = TaskKind::Select;

    println!("select on {disks} Active Disks, one drive degraded:\n");
    println!(
        "{:>16}  {:>9} {:>10} {:>14} {:>14}",
        "grown defects", "time (s)", "slowdown", "p50 service", "max service"
    );
    let healthy = Simulation::new(Architecture::active_disks(disks)).run(task);
    let base = healthy.elapsed().as_secs_f64();
    for grown in [0u64, 100, 400, 1_000] {
        let report = Simulation::new(Architecture::active_disks(disks))
            .with_degraded_disk(0, grown)
            .run(task);
        let secs = report.elapsed().as_secs_f64();
        println!(
            "{grown:>16}  {secs:>9.2} {:>9.2}x {:>14} {:>14}",
            secs / base,
            format!("{}", report.disk_service.quantile(0.5)),
            format!("{}", report.disk_service.max()),
        );
    }

    println!(
        "\nThe farm runs at the pace of its sickest member: the mean barely\n\
         moves, but the phase ends when the degraded drive finishes — the\n\
         tail of the service distribution is the whole story."
    );
}
