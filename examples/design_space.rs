//! Design-space exploration for an Active Disk farm: the paper's
//! Sections 4.2–4.4 as one sweep.
//!
//! Varies, one at a time: I/O interconnect bandwidth, per-disk memory, and
//! the communication architecture (direct disk-to-disk vs through the
//! front-end), for a task of your choice.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example design_space [task]
//! ```
//!
//! where `task` is one of `select`, `aggregate`, `groupby`, `dcube`,
//! `sort`, `join`, `dmine`, `mview` (default `sort` — the most
//! communication-hungry task).

use activedisks::arch::Architecture;
use activedisks::tasks::TaskKind;

fn parse_task(name: &str) -> Option<TaskKind> {
    TaskKind::ALL.into_iter().find(|t| t.name() == name)
}

// Routed through the result cache: the panels share their baselines
// (e.g. the stock configuration appears in panels 1 and 3), so each
// distinct configuration simulates once.
fn seconds(arch: Architecture, task: TaskKind) -> f64 {
    activedisks::howsim::cache::run(&arch, task)
        .elapsed()
        .as_secs_f64()
}

fn main() {
    let task = std::env::args()
        .nth(1)
        .and_then(|a| parse_task(&a))
        .unwrap_or(TaskKind::Sort);
    let sizes = [16usize, 32, 64, 128];

    println!("Design space for `{}`:\n", task.name());

    // Each panel is a parallel sweep over sizes; rows come back in size
    // order, so the output matches the serial loop exactly.
    println!("I/O interconnect bandwidth (dual FC loop, aggregate MB/s):");
    println!(
        "{:>7}  {:>9} {:>9} {:>9}",
        "disks", "200 MB/s", "400 MB/s", "speedup"
    );
    let rows = activedisks::howsim::sweep::map(&sizes, |&disks| {
        let base = seconds(Architecture::active_disks(disks), task);
        let fast = seconds(
            Architecture::active_disks(disks).with_interconnect_mb(400.0),
            task,
        );
        (disks, base, fast)
    });
    for (disks, base, fast) in rows {
        println!("{disks:>7}  {base:>9.1} {fast:>9.1} {:>8.2}x", base / fast);
    }

    println!("\nPer-disk memory:");
    println!(
        "{:>7}  {:>9} {:>9} {:>9} {:>11}",
        "disks", "32 MB", "64 MB", "128 MB", "64 MB gain"
    );
    let rows = activedisks::howsim::sweep::map(&sizes, |&disks| {
        let mem = |mb: u64| {
            seconds(
                Architecture::active_disks(disks).with_disk_memory(mb << 20),
                task,
            )
        };
        (disks, mem(32), mem(64), mem(128))
    });
    for (disks, m32, m64, m128) in rows {
        println!(
            "{disks:>7}  {m32:>9.1} {m64:>9.1} {m128:>9.1} {:>10.1}%",
            (1.0 - m64 / m32) * 100.0
        );
    }

    println!("\nCommunication architecture:");
    println!(
        "{:>7}  {:>10} {:>12} {:>9}",
        "disks", "direct d2d", "via frontend", "slowdown"
    );
    let rows = activedisks::howsim::sweep::map(&sizes, |&disks| {
        let direct = seconds(Architecture::active_disks(disks), task);
        let restricted = seconds(
            Architecture::active_disks(disks).with_direct_disk_to_disk(false),
            task,
        );
        (disks, direct, restricted)
    });
    for (disks, direct, restricted) in rows {
        println!(
            "{disks:>7}  {direct:>10.1} {restricted:>12.1} {:>8.2}x",
            restricted / direct
        );
    }
}
