//! Building a custom workload on the public phase-plan API.
//!
//! The eight built-in tasks cover the paper's suite, but the simulator
//! executes any coarse-grain dataflow expressed as a `TaskPlan`. This
//! example models a workload the paper's introduction motivates but does
//! not evaluate: an overnight "mine everything" pipeline that scans the
//! warehouse, extracts features at the disks, repartitions a sample by
//! customer, and clusters it — then asks the paper's core question: which
//! architecture should you buy for it?
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example custom_workload
//! ```

use activedisks::arch::Architecture;
use activedisks::howsim::Simulation;
use activedisks::simcore::Duration;
use activedisks::tasks::plan::{CpuWork, PhasePlan, TaskPlan};
use datagen::GB;

/// A three-phase feature-extraction + clustering pipeline over a 24 GB
/// clickstream (128-byte events).
fn overnight_mining_plan() -> TaskPlan {
    let warehouse = 24 * GB;
    let event_bytes = 128;

    // Phase 1: scan everything, extract features at the data (cheap
    // per-event parse + feature hash), keep a 5% sample routed by
    // customer id to its owning node.
    let mut extract = PhasePlan::new("extract", warehouse);
    extract.read_cpu = vec![
        CpuWork::per_tuple("parse", 900.0, event_bytes),
        CpuWork::per_tuple("featurize", 1_400.0, event_bytes),
    ];
    extract.shuffle_factor = 0.05;
    extract.recv_cpu = vec![CpuWork::per_tuple("stage", 300.0, event_bytes)];
    extract.write_received = true;

    // Phase 2: cluster the per-customer sample locally (CPU-heavy k-means
    // style passes over the staged 5%).
    let sample = warehouse / 20;
    let mut cluster = PhasePlan::new("cluster", sample);
    cluster.reads_intermediate = true;
    cluster.read_cpu = vec![CpuWork::per_tuple("kmeans", 6_500.0, event_bytes)];
    cluster.local_write_factor = 0.10;

    // Phase 3: ship per-node model summaries to the front-end (combinable
    // partial centroids).
    let mut summarize = PhasePlan::new("summarize", sample / 10);
    summarize.reads_intermediate = true;
    summarize.read_cpu = vec![CpuWork::per_tuple("fold", 500.0, event_bytes)];
    summarize.frontend_bytes_per_node = 2 << 20;
    summarize.frontend_combinable = true;
    summarize.frontend_cpu_ns_per_byte = 5.5;
    summarize.extra_disk_busy_per_node = Duration::from_millis(50);

    TaskPlan {
        task: "overnight-mining",
        phases: vec![extract, cluster, summarize],
    }
}

fn main() {
    let plan = overnight_mining_plan();
    plan.validate().expect("plan is well-formed");
    println!(
        "workload: {} ({} phases, {:.0} GB scanned, {:.1} GB shuffled)\n",
        plan.task,
        plan.phases.len(),
        plan.total_read_bytes() as f64 / GB as f64,
        plan.total_shuffle_bytes() as f64 / GB as f64,
    );

    for disks in [32, 128] {
        println!("{disks} disks / processors:");
        for arch in [
            Architecture::active_disks(disks),
            Architecture::cluster(disks),
            Architecture::smp(disks),
        ] {
            let report = Simulation::new(arch.clone()).run_plan(&plan);
            let phases: Vec<String> = report
                .phases
                .iter()
                .map(|p| format!("{} {:.1}s", p.name, p.elapsed.as_secs_f64()))
                .collect();
            println!(
                "  {:>8}: {:>7.1} s   [{}]",
                arch.short_name(),
                report.elapsed().as_secs_f64(),
                phases.join(", ")
            );
        }
    }
}
