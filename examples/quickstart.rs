//! Quickstart: simulate one decision-support task on an Active Disk farm.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use activedisks::arch::Architecture;
use activedisks::howsim::Simulation;
use activedisks::tasks::TaskKind;

fn main() {
    // A 32-disk Active Disk farm with the paper's baseline components:
    // Seagate Cheetah 9LP drives, a Cyrix 6x86 200 MHz and 32 MB SDRAM in
    // every unit, a dual 200 MB/s Fibre Channel loop, direct disk-to-disk
    // communication, and a 450 MHz Pentium II front-end.
    let farm = Architecture::active_disks(32);
    let sim = Simulation::new(farm);

    // Run the SQL select task: a 1%-selectivity scan over 268 million
    // 64-byte tuples (Table 2 of the paper).
    let report = sim.run(TaskKind::Select);

    println!("{report}");
    for phase in &report.phases {
        println!(
            "  phase {:<12} {:>8.2} s   CPU idle {:>4.1}%   {} MB to front-end",
            phase.name,
            phase.elapsed.as_secs_f64(),
            phase.idle_fraction() * 100.0,
            phase.frontend_bytes / 1_000_000,
        );
    }

    // The same task on the two conventional architectures the paper
    // compares against, with identical disks and processor counts.
    for arch in [Architecture::cluster(32), Architecture::smp(32)] {
        let r = Simulation::new(arch).run(TaskKind::Select);
        println!("{r}");
    }
}
