//! Architecture shoot-out: the paper's core experiment (Figure 1) in
//! miniature, plus price/performance (Table 1).
//!
//! Runs every decision-support task on Active Disks, a commodity cluster,
//! and an SMP with identical disks and processor counts, then folds in the
//! cost model to report price/performance.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example compare_architectures [disks]
//! ```

use activedisks::arch::{Architecture, PriceDate, PriceTable};
use activedisks::howsim::Simulation;
use activedisks::tasks::TaskKind;

fn main() {
    let disks: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(64);

    let archs = [
        Architecture::active_disks(disks),
        Architecture::cluster(disks),
        Architecture::smp(disks),
    ];

    println!("Execution time (s), {disks} disks / processors:");
    println!(
        "{:>10}  {:>10} {:>10} {:>10}",
        "task", "Active", "Cluster", "SMP"
    );
    let mut totals = [0.0f64; 3];
    for task in TaskKind::ALL {
        let mut row = Vec::new();
        for (i, arch) in archs.iter().enumerate() {
            let secs = Simulation::new(arch.clone())
                .run(task)
                .elapsed()
                .as_secs_f64();
            totals[i] += secs;
            row.push(secs);
        }
        println!(
            "{:>10}  {:>10.1} {:>10.1} {:>10.1}",
            task.name(),
            row[0],
            row[1],
            row[2]
        );
    }
    println!(
        "{:>10}  {:>10.1} {:>10.1} {:>10.1}",
        "suite", totals[0], totals[1], totals[2]
    );

    // Price/performance: suite throughput per dollar, normalized to the
    // Active Disk configuration (prices from Table 1, August 1998).
    let prices = PriceTable::at(PriceDate::Aug98);
    let cost = [
        prices.active_disk_total(disks) as f64,
        prices.cluster_total(disks) as f64,
        prices.smp_total(disks) as f64,
    ];
    println!("\nPrice and price/performance (8/98 prices):");
    let base = 1.0 / (totals[0] * cost[0]);
    for (i, name) in ["Active Disks", "Cluster", "SMP"].iter().enumerate() {
        let perf_per_dollar = 1.0 / (totals[i] * cost[i]);
        println!(
            "{:>13}: ${:>9.0}   relative price/performance {:.2}",
            name,
            cost[i],
            perf_per_dollar / base
        );
    }
}
