//! Offline stand-in for the [proptest](https://crates.io/crates/proptest)
//! crate, implementing the subset of its API this workspace uses.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate provides the `proptest!` macro family backed by a deterministic
//! SplitMix64 generator. Semantics are a simplification of real proptest:
//!
//! * Inputs are sampled uniformly from the given strategies, with a bias
//!   toward range endpoints (where off-by-one bugs live).
//! * There is no shrinking: a failing case panics with the sampled inputs
//!   available via the assertion message.
//! * `prop_assume!` skips the case rather than resampling.
//!
//! The generator is seeded from the test's module path and name, so every
//! run of a given test exercises the same inputs — failures reproduce.

/// Everything a test module needs: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Test-case configuration and the deterministic input generator.
pub mod test_runner {
    /// Runner configuration. Only `cases` is honoured.
    #[derive(Debug, Clone, Copy)]
    pub struct Config {
        /// Number of input cases sampled per property.
        pub cases: u32,
    }

    impl Config {
        /// A configuration running `cases` inputs per property.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            // Real proptest defaults to 256; 64 keeps the simulation-heavy
            // properties in this workspace inside a sane test budget.
            Config { cases: 64 }
        }
    }

    /// Marker returned by `prop_assume!` when a case is rejected.
    #[derive(Debug, Clone, Copy)]
    pub struct Rejected;

    /// Deterministic SplitMix64 generator seeded from the test name.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the generator from an arbitrary string (the test path).
        pub fn from_name(name: &str) -> Self {
            // FNV-1a over the name gives a stable, well-mixed seed.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: h }
        }

        /// Next 64 uniformly distributed bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw below `n` (n > 0).
        pub fn below(&mut self, n: u64) -> u64 {
            self.next_u64() % n
        }
    }
}

/// Input strategies: how to sample a value of some type.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A source of test inputs.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;
        /// Samples one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    /// One-in-eight bias toward each endpoint of a range; uniform otherwise.
    fn edge_case(rng: &mut TestRng) -> Option<bool> {
        match rng.below(8) {
            0 => Some(false), // low endpoint
            1 => Some(true),  // high endpoint
            _ => None,
        }
    }

    macro_rules! int_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    match edge_case(rng) {
                        Some(false) => self.start,
                        Some(true) => (self.end as i128 - 1) as $t,
                        None => (self.start as i128 + rng.below(span) as i128) as $t,
                    }
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty strategy range");
                    let span = (hi as i128 - lo as i128 + 1) as u64;
                    match edge_case(rng) {
                        Some(false) => lo,
                        Some(true) => hi,
                        None => (lo as i128 + rng.below(span) as i128) as $t,
                    }
                }
            }
        )*};
    }
    int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty strategy range");
            match edge_case(rng) {
                Some(false) => self.start,
                // f64 ranges are half-open in spirit; stay just inside.
                Some(true) => self.start + (self.end - self.start) * 0.999_999,
                None => {
                    let unit = rng.next_u64() as f64 / (u64::MAX as f64 + 1.0);
                    self.start + (self.end - self.start) * unit
                }
            }
        }
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident / $ix:tt),+)),*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$ix.sample(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy!(
        (A / 0, B / 1),
        (A / 0, B / 1, C / 2),
        (A / 0, B / 1, C / 2, D / 3)
    );
}

/// Collection strategies (`proptest::collection::vec` and friends).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::BTreeSet;
    use std::ops::{Range, RangeInclusive};

    /// A collection size: a fixed count or a range of counts.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }
    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }
    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_exclusive: *r.end() + 1,
            }
        }
    }

    impl SizeRange {
        fn sample(&self, rng: &mut TestRng) -> usize {
            assert!(self.lo < self.hi_exclusive, "empty size range");
            self.lo + rng.below((self.hi_exclusive - self.lo) as u64) as usize
        }
    }

    /// Strategy producing a `Vec` of values from an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec`s of `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.sample(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Strategy producing a `BTreeSet` of values from an element strategy.
    #[derive(Debug, Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `BTreeSet`s of *up to* `size` elements drawn from `element`
    /// (duplicate draws collapse, as in real proptest's rejection model).
    pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S> {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.sample(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Boolean strategies (`proptest::bool::ANY`).
pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy over both boolean values.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Samples `true` or `false` with equal probability.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Defines property tests. Mirrors proptest's surface syntax:
///
/// ```text
/// use proptest::prelude::*;
/// proptest! {
///     #[test]
///     fn addition_commutes(a in 0u64..1000, b in 0u64..1000) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::Config::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block)*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::Config = $cfg;
            let mut __rng = $crate::test_runner::TestRng::from_name(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for __case in 0..__config.cases {
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)+
                // The closure gives `$body` a `?`-capable scope, as in
                // real proptest; clippy sees only the immediate call.
                #[allow(clippy::redundant_closure_call)]
                let __outcome: ::core::result::Result<(), $crate::test_runner::Rejected> =
                    (move || {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                // A rejected case (prop_assume!) is skipped, not failed.
                let _ = __outcome;
            }
        }
    )*};
}

/// Asserts a condition inside a property (panics with the message on failure).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Skips the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::Rejected);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(a in 3u64..10, b in 5usize..=9, f in 1.5f64..2.5) {
            prop_assert!((3..10).contains(&a));
            prop_assert!((5..=9).contains(&b));
            prop_assert!((1.5..2.5).contains(&f));
        }

        #[test]
        fn collections_respect_sizes(
            v in crate::collection::vec(0u32..100, 2..6),
            s in crate::collection::btree_set(0u64..50, 0..10),
            pair in (0u64..4, 10u64..14),
            flag in crate::bool::ANY,
        ) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(s.len() < 10);
            prop_assert!(pair.0 < 4 && pair.1 >= 10);
            prop_assume!(flag); // exercise the rejection path
            prop_assert!(flag);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]
        #[test]
        fn config_is_accepted(x in 0u8..=255) {
            let _ = x;
        }
    }

    #[test]
    fn determinism_across_runners() {
        let mut a = crate::test_runner::TestRng::from_name("same");
        let mut b = crate::test_runner::TestRng::from_name("same");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
