//! Offline stand-in for the [criterion](https://crates.io/crates/criterion)
//! benchmark harness, implementing the subset of its API this workspace
//! uses (`Criterion`, `bench_function`, benchmark groups, and the
//! `criterion_group!`/`criterion_main!` macros).
//!
//! The build environment has no access to crates.io, so this vendored
//! crate provides a simple calibrated wall-clock harness: each benchmark
//! is warmed up, the iteration count is chosen so one sample takes a
//! measurable slice of time, and the median/mean/min of the samples are
//! printed in criterion's familiar one-line format. Statistical analysis,
//! HTML reports, and baseline comparison are out of scope.

use std::time::{Duration, Instant};

/// Re-export so `criterion::black_box` callers keep working.
pub use std::hint::black_box;

/// Target time per sample once calibrated.
const TARGET_SAMPLE: Duration = Duration::from_millis(25);

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench -- <substring>` filters benchmarks by name, like
        // real criterion. Harness flags (e.g. `--bench`) are ignored.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with("--"));
        Criterion {
            sample_size: 20,
            filter,
        }
    }
}

impl Criterion {
    /// Sets the number of samples collected per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(name, self.sample_size, self.filter.as_deref(), f);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.to_string(),
            sample_size: None,
        }
    }
}

/// A group of related benchmarks sharing a name prefix and configuration.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = Some(n);
        self
    }

    /// Runs one benchmark within the group (`group/name`).
    pub fn bench_function<F>(&mut self, name: impl AsRef<str>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name.as_ref());
        let samples = self.sample_size.unwrap_or(self.parent.sample_size);
        run_benchmark(&full, samples, self.parent.filter.as_deref(), f);
        self
    }

    /// Finishes the group (accepted for API parity; nothing to flush).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; call [`Bencher::iter`] with the
/// routine to measure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` invocations of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark<F>(name: &str, samples: usize, filter: Option<&str>, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    if let Some(pat) = filter {
        if !name.contains(pat) {
            return;
        }
    }
    // Calibrate: grow the iteration count until one sample is long enough
    // to time reliably.
    let mut iters = 1u64;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed >= TARGET_SAMPLE || iters >= 1 << 20 {
            break;
        }
        // At least double; jump straight to the projected count when the
        // routine is fast enough to make a good estimate.
        let projected = if b.elapsed.is_zero() {
            iters * 8
        } else {
            (TARGET_SAMPLE.as_nanos() as u64 / b.elapsed.as_nanos().max(1) as u64)
                .saturating_mul(iters)
                .saturating_add(1)
        };
        iters = projected.max(iters * 2).min(1 << 20);
    }

    let mut per_iter: Vec<f64> = (0..samples)
        .map(|_| {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            b.elapsed.as_secs_f64() / iters as f64
        })
        .collect();
    per_iter.sort_by(|a, b| a.total_cmp(b));
    let median = per_iter[per_iter.len() / 2];
    let min = per_iter[0];
    let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
    println!(
        "{name:<50} time: [min {} median {} mean {}]  ({} samples × {} iters)",
        fmt_time(min),
        fmt_time(median),
        fmt_time(mean),
        samples,
        iters,
    );
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Bundles benchmark functions into a runner, as in real criterion.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Generates `main` invoking each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unfiltered() -> Criterion {
        // Bypass Default: under `cargo test` the harness's own CLI args
        // must not act as benchmark filters.
        Criterion {
            sample_size: 20,
            filter: None,
        }
    }

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = unfiltered();
        c.sample_size(2);
        let mut runs = 0u64;
        c.bench_function("trivial", |b| b.iter(|| runs = runs.wrapping_add(1)));
        assert!(runs > 0, "benchmark routine must have executed");
    }

    #[test]
    fn groups_prefix_names() {
        let mut c = unfiltered();
        let mut g = c.benchmark_group("grp");
        g.sample_size(2);
        let mut ran = false;
        g.bench_function("x", |b| b.iter(|| ran = true));
        g.finish();
        assert!(ran);
    }

    #[test]
    fn time_formatting_covers_scales() {
        assert!(fmt_time(2.0).ends_with(" s"));
        assert!(fmt_time(2e-3).ends_with("ms"));
        assert!(fmt_time(2e-6).ends_with("µs"));
        assert!(fmt_time(2e-9).ends_with("ns"));
    }
}
