//! Executes the real algorithms (crate `kernels`) end-to-end over
//! reduced-scale synthetic versions of the Table 2 datasets — the
//! reproduction's stand-in for the paper's trace-acquisition runs.

use activedisks::datagen::{gen, DatasetSpec, TaskParams};
use activedisks::kernels::{aggregate, apriori, cube, groupby, join, mview, select, sort};

/// Scale factor: Table 2 datasets divided by ~2^14 so the suite runs in
/// seconds while keeping each dataset's statistical shape.
const SCALE: u64 = 16_384;

#[test]
fn select_task_at_scale() {
    let spec = DatasetSpec::select().scaled_down(SCALE);
    let TaskParams::Select { selectivity } = spec.params else {
        panic!()
    };
    let distinct = 10_000;
    let data = gen::tuples(spec.tuples as usize, distinct, 42);
    let threshold = (distinct as f64 * selectivity) as u64;
    let hits = select::filter(&data, threshold);
    let observed = hits.len() as f64 / data.len() as f64;
    assert!(
        (observed - selectivity).abs() < selectivity * 0.3,
        "observed selectivity {observed}"
    );
}

#[test]
fn aggregate_task_distributed_equals_central() {
    let spec = DatasetSpec::aggregate().scaled_down(SCALE);
    let data = gen::tuples(spec.tuples as usize, 1_000, 7);
    // Partition over 16 "disks", reduce partials — the Active Disk plan.
    let partials: Vec<i64> = data
        .chunks(data.len() / 16 + 1)
        .map(aggregate::sum)
        .collect();
    assert_eq!(aggregate::combine(&partials), aggregate::sum(&data));
}

#[test]
fn groupby_task_merges_to_expected_cardinality() {
    let spec = DatasetSpec::groupby().scaled_down(SCALE);
    let TaskParams::GroupBy {
        distinct_groups, ..
    } = spec.params
    else {
        panic!()
    };
    let scaled_groups = (distinct_groups / SCALE).max(1);
    let data = gen::tuples(spec.tuples as usize, scaled_groups, 11);
    let partials: Vec<_> = data
        .chunks(data.len() / 8 + 1)
        .map(groupby::hash_groupby)
        .collect();
    let merged = groupby::merge_groups(partials);
    // With ~20 tuples per group, nearly all groups are hit.
    assert!(
        merged.len() as u64 > scaled_groups * 9 / 10,
        "saw {} of {scaled_groups} groups",
        merged.len()
    );
}

#[test]
fn sort_task_two_phase_distributed() {
    let spec = DatasetSpec::sort().scaled_down(SCALE);
    let records = gen::sort_records(spec.tuples as usize, 3);
    let nodes = 16;
    // Phase 1: range-partition to owners (the shuffle), form runs.
    let mut per_node: Vec<Vec<_>> = vec![Vec::new(); nodes];
    for r in &records {
        per_node[sort::partition_of(r, nodes)].push(*r);
    }
    // Phase 2: each node externally sorts its partition; global order is
    // partition-major.
    let mut global = Vec::new();
    for part in per_node {
        let sorted = sort::external_sort(part, 250);
        global.extend(sorted);
    }
    assert_eq!(global.len(), records.len());
    assert!(
        global.windows(2).all(|w| w[0].key <= w[1].key),
        "distributed sort must produce a globally sorted sequence"
    );
}

#[test]
fn join_task_projected_partitioned() {
    let spec = DatasetSpec::join().scaled_down(SCALE * 4);
    let n = spec.tuples as usize / 2;
    let r = gen::join_tuples(n, 50_000, 17);
    let s = gen::join_tuples(n, 50_000, 18);
    let fast = join::partitioned_join(&r, &s, 16);
    let slow = join::nested_loop_join(&r, &s);
    let canon = |mut v: Vec<(u64, i64, i64)>| {
        v.sort_unstable();
        v
    };
    assert_eq!(canon(fast), canon(slow));
}

#[test]
fn dmine_task_finds_frequent_itemsets() {
    let spec = DatasetSpec::dmine().scaled_down(SCALE * 8);
    let TaskParams::DataMine {
        items,
        avg_items_per_txn,
        ..
    } = spec.params
    else {
        panic!()
    };
    let scaled_items = (items / SCALE).max(100);
    let txns = gen::transactions(spec.tuples as usize, scaled_items, avg_items_per_txn, 23);
    // The paper's 0.1% support is too selective at this scale; 2% keeps
    // the pass structure identical.
    let frequent = apriori::frequent_itemsets(&txns, 0.02, 4);
    assert!(!frequent.is_empty(), "hot items must surface");
    assert!(
        apriori::pass_count(&frequent) >= 2,
        "multi-item sets exist, forcing multiple passes"
    );
    // Cross-check against brute force on a subsample.
    let sample = &txns[..txns.len().min(300)];
    let mut fast = apriori::frequent_itemsets(sample, 0.05, 3);
    fast.sort();
    assert_eq!(fast, apriori::brute_force(sample, 0.05, 3));
}

#[test]
fn dcube_task_lattice_and_planning() {
    let spec = DatasetSpec::dcube().scaled_down(SCALE * 16);
    let TaskParams::DataCube {
        dim_distinct_fractions,
        ..
    } = spec.params
    else {
        panic!()
    };
    let n = spec.tuples;
    let cards: Vec<u64> = dim_distinct_fractions
        .iter()
        .map(|f| ((n as f64 * f) as u64).max(2))
        .collect();
    let facts = gen::cube_facts(n as usize, [cards[0], cards[1], cards[2], cards[3]], 31);
    let masks = cube::lattice(4);
    let computed = cube::compute_cube(&facts, &masks);
    assert_eq!(computed.len(), 15);
    // Invariant: every group-by's grand total equals the raw measure sum.
    let grand: i64 = facts.iter().map(|f| f.measure).sum();
    for (mask, table) in &computed {
        let total: i64 = table.values().sum();
        assert_eq!(total, grand, "mask {mask:#06b} loses measure");
    }
    // The occupancy estimator tracks the observed cardinalities.
    for (mask, table) in &computed {
        let space: f64 = (0..4)
            .filter(|d| mask & (1 << d) != 0)
            .map(|d| cards[d] as f64)
            .product();
        let est = cube::expected_distinct(n, space.max(1.0));
        let got = table.len() as f64;
        assert!(
            got <= est * 1.3 + 8.0 && got >= est * 0.7 - 8.0,
            "mask {mask:#06b}: estimated {est:.0}, observed {got}"
        );
    }
}

#[test]
fn mview_task_incremental_maintenance() {
    let spec = DatasetSpec::mview().scaled_down(SCALE * 4);
    let base = gen::tuples(spec.tuples as usize, 5_000, 41);
    let TaskParams::MaterializedView { delta_bytes, .. } = spec.params else {
        panic!()
    };
    let n_deltas = (delta_bytes / spec.tuple_bytes) as usize;
    let deltas = gen::deltas(n_deltas, 5_000, 43);

    // Distributed: views partitioned over 8 nodes by key owner.
    let nodes = 8;
    let mut views: Vec<mview::View> = vec![mview::View::new(); nodes];
    for part in base.chunks(base.len() / nodes + 1) {
        for owned in mview::route_deltas(part, nodes).into_iter().enumerate() {
            let (node, tuples) = owned;
            mview::apply_deltas(&mut views[node], &tuples);
        }
    }
    for (node, part) in mview::route_deltas(&deltas, nodes).into_iter().enumerate() {
        mview::apply_deltas(&mut views[node], &part);
    }

    // Centralized recomputation over base ∪ deltas.
    let mut all = base.clone();
    all.extend_from_slice(&deltas);
    let central = mview::materialize(&all);

    let mut union = mview::View::new();
    for v in views {
        for (k, agg) in v {
            assert!(
                union.insert(k, agg).is_none(),
                "owner partitioning is disjoint"
            );
        }
    }
    assert_eq!(union, central);
}
