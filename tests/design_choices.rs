//! End-to-end tests of the paper's design-choice experiments
//! (Sections 4.2–4.4): interconnect bandwidth, disk memory, and the
//! communication architecture.

use activedisks::arch::Architecture;
use activedisks::diskmodel::DiskSpec;
use activedisks::howsim::Simulation;
use activedisks::tasks::TaskKind;

fn secs(arch: Architecture, task: TaskKind) -> f64 {
    Simulation::new(arch).run(task).elapsed().as_secs_f64()
}

/// Conclusion 1: "for configurations up to 64 disks, a dual fibre channel
/// arbitrated loop interconnect is sufficient even for the most
/// communication-intensive decision support tasks" — i.e. doubling the
/// loop helps little at 16–32 disks, a lot at 128.
#[test]
fn dual_loop_sufficient_to_64_disks() {
    let gain = |disks: usize| {
        let base = secs(Architecture::active_disks(disks), TaskKind::Sort);
        let fast = secs(
            Architecture::active_disks(disks).with_interconnect_mb(400.0),
            TaskKind::Sort,
        );
        1.0 - fast / base
    };
    assert!(gain(16) < 0.05, "16 disks: Fast I/O gain {:.2}", gain(16));
    assert!(
        gain(128) > 0.25,
        "128 disks: Fast I/O gain {:.2}",
        gain(128)
    );
    assert!(
        gain(128) > 3.0 * gain(32),
        "the loop saturates only at scale"
    );
}

/// Figure 3's hardware ablation: at 16 disks the disks are the
/// bottleneck (Fast Disk helps, Fast I/O does not); at 128 the loop is
/// (Fast I/O helps, Fast Disk does not).
#[test]
fn bottleneck_migrates_from_disks_to_loop() {
    let sort = TaskKind::Sort;
    let base16 = secs(Architecture::active_disks(16), sort);
    let fdisk16 = secs(
        Architecture::active_disks(16).with_disk_spec(DiskSpec::hitachi_dk3e1t_91()),
        sort,
    );
    let fio16 = secs(
        Architecture::active_disks(16).with_interconnect_mb(400.0),
        sort,
    );
    assert!(base16 - fdisk16 > base16 - fio16, "disks matter more at 16");

    let base128 = secs(Architecture::active_disks(128), sort);
    let fdisk128 = secs(
        Architecture::active_disks(128).with_disk_spec(DiskSpec::hitachi_dk3e1t_91()),
        sort,
    );
    let fio128 = secs(
        Architecture::active_disks(128).with_interconnect_mb(400.0),
        sort,
    );
    assert!(
        base128 - fio128 > base128 - fdisk128,
        "loop matters more at 128"
    );
}

/// Conclusion 2: "most decision support tasks do not require a large
/// amount of memory" — only dcube gains significantly, and only on small
/// configurations.
#[test]
fn memory_insensitivity() {
    for task in TaskKind::ALL {
        let base = secs(
            Architecture::active_disks(64).with_disk_memory(32 << 20),
            task,
        );
        let big = secs(
            Architecture::active_disks(64).with_disk_memory(64 << 20),
            task,
        );
        let gain = 1.0 - big / base;
        if task == TaskKind::DataCube {
            assert!(gain > 0.0, "dcube should gain from memory at 64 disks");
        } else {
            assert!(
                gain.abs() < 0.05,
                "{}: memory gain {gain:.3} should be negligible",
                task.name()
            );
        }
    }
}

/// Even for dcube, "the largest performance improvement is only about 35%
/// which occurs for 16-disk configurations".
#[test]
fn dcube_memory_spike_is_at_16_disks() {
    let gain = |disks: usize| {
        let base = secs(
            Architecture::active_disks(disks).with_disk_memory(32 << 20),
            TaskKind::DataCube,
        );
        let big = secs(
            Architecture::active_disks(disks).with_disk_memory(64 << 20),
            TaskKind::DataCube,
        );
        1.0 - big / base
    };
    let g16 = gain(16);
    assert!(
        (0.2..0.5).contains(&g16),
        "dcube gain at 16 disks: {g16:.2}"
    );
    for disks in [32, 64, 128] {
        assert!(
            gain(disks) < g16,
            "dcube gain at {disks} disks should be below the 16-disk spike"
        );
    }
}

/// "There is no performance improvement beyond 64 MB" for dcube at 16
/// disks (all group-bys then fit).
#[test]
fn dcube_memory_saturates_at_64mb() {
    let m64 = secs(
        Architecture::active_disks(16).with_disk_memory(64 << 20),
        TaskKind::DataCube,
    );
    let m128 = secs(
        Architecture::active_disks(16).with_disk_memory(128 << 20),
        TaskKind::DataCube,
    );
    let further = 1.0 - m128 / m64;
    assert!(
        further < 0.10,
        "gain beyond 64 MB should be small, got {further:.2}"
    );
}

/// Conclusion 3: "direct disk-to-disk communication is necessary for
/// achieving good performance on tasks that repartition all (or a large
/// fraction of) their dataset" — and harmless to skip for the rest.
#[test]
fn direct_disk_to_disk_necessity() {
    for task in TaskKind::ALL {
        let direct = secs(Architecture::active_disks(128), task);
        let restricted = secs(
            Architecture::active_disks(128).with_direct_disk_to_disk(false),
            task,
        );
        let slowdown = restricted / direct;
        if task.repartitions() {
            assert!(
                slowdown > 2.0,
                "{}: restricted slowdown {slowdown:.2} should be large",
                task.name()
            );
            assert!(
                slowdown < 7.0,
                "{}: restricted slowdown {slowdown:.2} should stay near the paper's five-fold",
                task.name()
            );
        } else {
            assert!(
                slowdown < 1.5,
                "{}: restricted slowdown {slowdown:.2} should be small",
                task.name()
            );
        }
    }
}

/// The front-end ablation the paper mentions: a 1 GHz front-end changes
/// little, because the front-end is rarely the bottleneck in the direct
/// architecture.
#[test]
fn faster_front_end_changes_little() {
    for task in [TaskKind::Select, TaskKind::GroupBy, TaskKind::Sort] {
        let base = secs(Architecture::active_disks(64), task);
        let fast = secs(
            Architecture::active_disks(64)
                .with_front_end(activedisks::arch::ProcessorSpec::front_end_1ghz()),
            task,
        );
        let gain = 1.0 - fast / base;
        assert!(
            gain.abs() < 0.15,
            "{}: 1 GHz front-end gain {gain:.2}",
            task.name()
        );
    }
}
