//! End-to-end tests of the paper's headline claims — the "shape" the
//! reproduction must preserve (Sections 4.1 and 6 of the paper).

use activedisks::arch::{Architecture, PriceDate, PriceTable};
use activedisks::howsim::Simulation;
use activedisks::tasks::TaskKind;

fn secs(arch: Architecture, task: TaskKind) -> f64 {
    Simulation::new(arch).run(task).elapsed().as_secs_f64()
}

/// "For the 16-disk configurations, the performance of all three
/// architectures is comparable."
#[test]
fn sixteen_disks_are_comparable() {
    for task in TaskKind::ALL {
        let active = secs(Architecture::active_disks(16), task);
        let cluster = secs(Architecture::cluster(16), task);
        let smp = secs(Architecture::smp(16), task);
        for (name, t) in [("cluster", cluster), ("SMP", smp)] {
            let ratio = t / active;
            assert!(
                (0.4..2.2).contains(&ratio),
                "{} on {name} at 16 disks: {ratio:.2}× Active",
                task.name()
            );
        }
    }
}

/// "For larger configurations, Active Disks perform significantly better
/// than corresponding SMP configurations; the difference in their
/// performance grows with the size of the configuration."
#[test]
fn smp_gap_grows_with_configuration_size() {
    for task in [TaskKind::Select, TaskKind::Sort, TaskKind::DataMine] {
        let mut last_ratio = 0.0;
        for disks in [16, 32, 64, 128] {
            let ratio = secs(Architecture::smp(disks), task)
                / secs(Architecture::active_disks(disks), task);
            assert!(
                ratio > last_ratio * 0.95,
                "{} at {disks} disks: SMP ratio {ratio:.2} should grow (was {last_ratio:.2})",
                task.name()
            );
            last_ratio = ratio;
        }
        assert!(
            last_ratio >= 3.0,
            "{}: SMP at 128 disks should be >= 3x slower, got {last_ratio:.2}",
            task.name()
        );
    }
}

/// "The largest performance differences (8.5–9.5 fold on 128-disk
/// configurations) occur for tasks that allow large data reductions on
/// Active Disks (e.g., aggregate/select)."
#[test]
fn reduction_tasks_show_the_largest_smp_gap() {
    let select = secs(Architecture::smp(128), TaskKind::Select)
        / secs(Architecture::active_disks(128), TaskKind::Select);
    let sort = secs(Architecture::smp(128), TaskKind::Sort)
        / secs(Architecture::active_disks(128), TaskKind::Sort);
    assert!(
        select > sort,
        "select gap ({select:.1}) should exceed sort gap ({sort:.1})"
    );
    assert!(select > 8.0, "select gap at 128 disks: {select:.1}");
    // "even tasks that repartition ... are significantly faster (4-6 fold
    // on 128-disk configurations)" — our sort lands at the low edge.
    assert!(
        (3.0..7.0).contains(&sort),
        "sort gap at 128 disks: {sort:.1}"
    );
}

/// "The performance of group-by on cluster configurations is limited by
/// end-point congestion at the frontend" — group-by is the cluster's
/// worst task, and the gap grows with configuration size.
#[test]
fn groupby_is_the_cluster_pathology() {
    let ratio_at = |disks: usize, task: TaskKind| {
        secs(Architecture::cluster(disks), task) / secs(Architecture::active_disks(disks), task)
    };
    let g64 = ratio_at(64, TaskKind::GroupBy);
    let g128 = ratio_at(128, TaskKind::GroupBy);
    assert!(g64 > 1.4, "groupby cluster ratio at 64 disks: {g64:.2}");
    assert!(
        g128 > g64,
        "groupby cluster gap grows: {g64:.2} -> {g128:.2}"
    );
    // Every other task stays far below groupby's gap at 128 disks.
    for task in TaskKind::ALL {
        if task != TaskKind::GroupBy {
            let r = ratio_at(128, task);
            assert!(
                r < g128,
                "{} cluster ratio {r:.2} should be below groupby's {g128:.2}",
                task.name()
            );
        }
    }
}

/// Active Disks scale near-linearly for scan-dominated tasks: 8× the disks
/// buys at least 5× the throughput.
#[test]
fn active_disks_scale_with_disk_count() {
    for task in [TaskKind::Select, TaskKind::GroupBy, TaskKind::DataMine] {
        let t16 = secs(Architecture::active_disks(16), task);
        let t128 = secs(Architecture::active_disks(128), task);
        let speedup = t16 / t128;
        assert!(
            speedup > 5.0,
            "{}: 16→128 disks speedup {speedup:.1}",
            task.name()
        );
    }
}

/// SMPs do *not* scale for these workloads: the shared I/O interconnect
/// pins scan performance regardless of processor count.
#[test]
fn smp_scan_performance_is_interconnect_pinned() {
    let t16 = secs(Architecture::smp(16), TaskKind::Select);
    let t128 = secs(Architecture::smp(128), TaskKind::Select);
    let speedup = t16 / t128;
    assert!(
        speedup < 1.3,
        "SMP select should barely speed up 16→128 disks, got {speedup:.2}"
    );
}

/// "Active Disks provide better price/performance than both SMP-based disk
/// farms and commodity clusters" (price side: Table 1; performance side:
/// the suite totals).
#[test]
fn price_performance_headline() {
    let prices = PriceTable::at(PriceDate::Aug98);
    let mut suite = [0.0f64; 3];
    for task in TaskKind::ALL {
        suite[0] += secs(Architecture::active_disks(64), task);
        suite[1] += secs(Architecture::cluster(64), task);
        suite[2] += secs(Architecture::smp(64), task);
    }
    let cost = [
        prices.active_disk_total(64) as f64,
        prices.cluster_total(64) as f64,
        prices.smp_total(64) as f64,
    ];
    let perf_per_dollar: Vec<f64> = suite
        .iter()
        .zip(&cost)
        .map(|(t, c)| 1.0 / (t * c))
        .collect();
    assert!(
        perf_per_dollar[0] > 1.5 * perf_per_dollar[1],
        "Active Disks should beat the cluster on price/performance"
    );
    assert!(
        perf_per_dollar[0] > 10.0 * perf_per_dollar[2],
        "Active Disks should beat the SMP on price/performance by an order of magnitude"
    );
}
