//! Cross-crate invariants of the simulator itself: determinism,
//! conservation of bytes, and physical lower bounds.

use activedisks::arch::Architecture;
use activedisks::howsim::{Report, Simulation};
use activedisks::simcore::Bandwidth;
use activedisks::tasks::{plan_task, TaskKind};

fn run(arch: Architecture, task: TaskKind) -> Report {
    Simulation::new(arch).run(task)
}

/// The simulator is fully deterministic: identical configurations produce
/// bit-identical reports.
#[test]
fn determinism_across_runs() {
    for task in [TaskKind::Sort, TaskKind::GroupBy] {
        for arch in [
            Architecture::active_disks(16),
            Architecture::cluster(16),
            Architecture::smp(16),
        ] {
            let a = run(arch.clone(), task);
            let b = run(arch, task);
            assert_eq!(a, b, "{} must be deterministic", task.name());
        }
    }
}

/// Interconnect byte conservation: the peer fabric carries exactly the
/// planned shuffle volume on Active Disks (local shares excluded, which
/// makes the carried volume slightly below the plan's total).
#[test]
fn shuffle_volume_matches_plan() {
    let arch = Architecture::active_disks(32);
    let plan = plan_task(TaskKind::Sort, &arch);
    let planned = plan.total_shuffle_bytes();
    let report = run(arch, TaskKind::Sort);
    let carried = report.interconnect_bytes();
    assert!(carried <= planned, "carried {carried} <= planned {planned}");
    // 1/32 of the shuffle is node-local; everything else crosses the loop.
    assert!(
        carried as f64 > planned as f64 * 0.9,
        "carried {carried} should be within 10% of planned {planned}"
    );
}

/// The front-end receives exactly the group-by result volume.
#[test]
fn groupby_frontend_volume() {
    let report = run(Architecture::active_disks(64), TaskKind::GroupBy);
    let expected = 13_500_000u64 * activedisks::tasks::costs::GROUPBY_RESULT_BYTES;
    let got = report.frontend_bytes();
    let err = (got as f64 - expected as f64).abs() / expected as f64;
    assert!(err < 0.01, "front-end got {got}, expected ~{expected}");
}

/// Physical floor: a task can never finish faster than its planned scan
/// volume can be pulled off the media at the outermost-zone rate.
#[test]
fn media_rate_lower_bound() {
    for task in TaskKind::ALL {
        for arch in [Architecture::active_disks(64), Architecture::cluster(64)] {
            let plan = plan_task(task, &arch);
            let per_disk = plan.total_read_bytes() / 64;
            let floor = Bandwidth::from_mb_per_sec(21.3)
                .transfer_time(per_disk)
                .as_secs_f64();
            let elapsed = run(arch.clone(), task).elapsed().as_secs_f64();
            assert!(
                elapsed >= floor * 0.99,
                "{} on {}: {elapsed:.1}s beats the media floor {floor:.1}s",
                task.name(),
                arch.short_name()
            );
        }
    }
}

/// SMP floor: every byte of every pass crosses the 200 MB/s loop.
#[test]
fn smp_loop_lower_bound() {
    let report = run(Architecture::smp(128), TaskKind::DataMine);
    // Three passes over ~16 GB at a nominal 200 MB/s.
    let floor = 3.0 * 16e9 / 200e6;
    assert!(
        report.elapsed().as_secs_f64() >= floor,
        "dmine on SMP: {} < loop floor {floor}",
        report.elapsed().as_secs_f64()
    );
}

/// Reports are structurally sound for every task × architecture pair:
/// phases in plan order, positive elapsed, busy ≤ capacity.
#[test]
fn reports_are_well_formed_everywhere() {
    for task in TaskKind::ALL {
        for arch in [
            Architecture::active_disks(16),
            Architecture::cluster(16),
            Architecture::smp(16),
        ] {
            let plan = plan_task(task, &arch);
            let report = run(arch, task);
            assert_eq!(report.phases.len(), plan.phases.len());
            for (pr, pp) in report.phases.iter().zip(&plan.phases) {
                assert_eq!(pr.name, pp.name);
                assert!(pr.elapsed.as_nanos() > 0, "{}: empty phase", pr.name);
                let capacity = pr.elapsed * pr.nodes as u64;
                assert!(
                    pr.cpu_busy_total <= capacity,
                    "{} {}: busy {} > capacity {}",
                    task.name(),
                    pr.name,
                    pr.cpu_busy_total,
                    capacity
                );
            }
        }
    }
}

/// More disks never make a task slower on Active Disks (monotone scaling).
#[test]
fn scaling_is_monotone_on_active_disks() {
    for task in TaskKind::ALL {
        let mut last = f64::INFINITY;
        for disks in [16, 32, 64, 128] {
            let t = run(Architecture::active_disks(disks), task)
                .elapsed()
                .as_secs_f64();
            assert!(
                t <= last * 1.02,
                "{} at {disks} disks: {t:.1}s regressed from {last:.1}s",
                task.name()
            );
            last = t;
        }
    }
}

/// Custom plans run through the public API (the `run_plan` path).
#[test]
fn custom_plan_roundtrip() {
    use activedisks::tasks::plan::{CpuWork, PhasePlan, TaskPlan};
    let mut phase = PhasePlan::new("scan", 1 << 30);
    phase.read_cpu = vec![CpuWork::per_tuple("work", 500.0, 128)];
    phase.shuffle_factor = 0.25;
    phase.recv_cpu = vec![CpuWork::per_tuple("recv", 100.0, 128)];
    let plan = TaskPlan {
        task: "custom",
        phases: vec![phase],
    };
    let report = Simulation::new(Architecture::active_disks(8)).run_plan(&plan);
    assert_eq!(report.task, "custom");
    assert!(report.elapsed().as_secs_f64() > 0.0);
    assert!(report.interconnect_bytes() > 0);
}
