//! End-to-end tests of the repository's extensions beyond the paper:
//! the FibreSwitch fabric, skewed repartitioning, data growth, the
//! embedded-processor evolution knob, and event tracing.

use activedisks::arch::{Architecture, ProcessorSpec};
use activedisks::datagen::zipf::Zipf;
use activedisks::howsim::{Simulation, TraceKind};
use activedisks::tasks::planner::apply_shuffle_skew;
use activedisks::tasks::{plan_task, plan_task_on, TaskKind};

fn secs(arch: Architecture, task: TaskKind) -> f64 {
    Simulation::new(arch).run(task).elapsed().as_secs_f64()
}

/// The paper's scaling recommendation, implemented and verified: a
/// FibreSwitch fabric un-pins the dual loop's repartition ceiling.
#[test]
fn fibre_switch_unpins_repartitioning() {
    let dual_128 = secs(Architecture::active_disks(128), TaskKind::Sort);
    let switch_128 = secs(
        Architecture::active_disks(128).with_fibre_switch(),
        TaskKind::Sort,
    );
    assert!(
        switch_128 < dual_128 / 2.0,
        "switched {switch_128:.1}s vs dual loop {dual_128:.1}s"
    );
    // And it keeps scaling: 256 disks halve the switched time again.
    let switch_256 = secs(
        Architecture::active_disks(256).with_fibre_switch(),
        TaskKind::Sort,
    );
    assert!(switch_256 < switch_128 / 1.5);
}

/// The switch changes nothing for tasks that barely communicate.
#[test]
fn fibre_switch_is_irrelevant_for_scans() {
    let dual = secs(Architecture::active_disks(64), TaskKind::Select);
    let switched = secs(
        Architecture::active_disks(64).with_fibre_switch(),
        TaskKind::Select,
    );
    let delta = (switched - dual).abs() / dual;
    assert!(
        delta < 0.05,
        "select should not care about the fabric: {delta:.3}"
    );
}

/// Zipf skew degrades repartitioning through the hot receiver.
#[test]
fn zipf_skew_creates_stragglers() {
    let arch = Architecture::active_disks(32);
    let uniform = secs(arch.clone(), TaskKind::Join);
    let mut plan = plan_task(TaskKind::Join, &arch);
    apply_shuffle_skew(&mut plan, Zipf::new(100_000, 1.0).partition_weights(32));
    let skewed = Simulation::new(arch)
        .run_plan(&plan)
        .elapsed()
        .as_secs_f64();
    assert!(
        skewed > uniform * 1.2,
        "uniform {uniform:.1}s, Zipf-skewed {skewed:.1}s"
    );
}

/// Growth: doubling the dataset doubles the time; the Active Disk farm's
/// advantage over the SMP is preserved at every scale.
#[test]
fn growth_preserves_the_architecture_ranking() {
    let base = TaskKind::Select.dataset();
    for scale in [1u64, 4] {
        let dataset = base.scaled_up(scale);
        let active = {
            let arch = Architecture::active_disks(64);
            let plan = plan_task_on(TaskKind::Select, &arch, &dataset);
            Simulation::new(arch)
                .run_plan(&plan)
                .elapsed()
                .as_secs_f64()
        };
        let smp = {
            let arch = Architecture::smp(64);
            let plan = plan_task_on(TaskKind::Select, &arch, &dataset);
            Simulation::new(arch)
                .run_plan(&plan)
                .elapsed()
                .as_secs_f64()
        };
        assert!(
            smp > 3.0 * active,
            "scale x{scale}: SMP {smp:.1}s vs Active {active:.1}s"
        );
    }
}

/// The evolution argument: a next-generation embedded processor helps the
/// CPU-bound tasks (dmine, sort) and leaves media-bound scans alone.
#[test]
fn embedded_cpu_evolution_helps_where_it_should() {
    let base = Architecture::active_disks(64);
    let evolved = base
        .clone()
        .with_embedded_cpu(ProcessorSpec::embedded_next_gen());
    let dmine_gain =
        1.0 - secs(evolved.clone(), TaskKind::DataMine) / secs(base.clone(), TaskKind::DataMine);
    let select_gain = 1.0 - secs(evolved, TaskKind::Select) / secs(base, TaskKind::Select);
    assert!(dmine_gain > 0.2, "dmine is CPU-bound: gain {dmine_gain:.2}");
    assert!(
        select_gain < 0.05,
        "select is media-bound: gain {select_gain:.2}"
    );
}

/// Event traces account for every byte the report claims.
#[test]
fn traces_reconcile_with_reports() {
    let sim = Simulation::new(Architecture::active_disks(16));
    let (report, trace) = sim.run_traced(TaskKind::GroupBy);
    // Front-end deliveries in the trace match the report's byte count.
    let fe_bytes: u64 = trace
        .events()
        .iter()
        .filter(|e| e.kind == TraceKind::FeArrive)
        .map(|e| e.bytes)
        .sum();
    assert_eq!(fe_bytes, report.frontend_bytes());
    // Reads cover the dataset.
    let read_bytes: u64 = trace
        .events()
        .iter()
        .filter(|e| e.kind == TraceKind::ReadDone)
        .map(|e| e.bytes)
        .sum();
    let expected = TaskKind::GroupBy.dataset().total_bytes;
    let err = (read_bytes as f64 - expected as f64).abs() / expected as f64;
    assert!(err < 0.01, "trace reads {read_bytes} vs dataset {expected}");
}
