//! # activedisks — Active Disks for Decision Support, reproduced in Rust
//!
//! This umbrella crate re-exports the full API of the reproduction of
//! *"Evaluation of Active Disks for Decision Support Databases"*
//! (Uysal, Acharya, Saltz — HPCA 2000):
//!
//! * [`howsim`] — the simulator: run a workload task on an architecture.
//! * [`arch`] — architecture configurations (Active Disks, cluster, SMP)
//!   and the pricing model.
//! * [`tasks`] — the eight decision-support workload tasks.
//! * [`datagen`] — dataset definitions (Table 2) and synthetic generators.
//! * [`kernels`] — real implementations of the underlying algorithms.
//! * Substrate models: [`simcore`], [`diskmodel`], [`netmodel`],
//!   [`hostos`], [`diskos`].

/// # Example
///
/// ```
/// use activedisks::arch::Architecture;
/// use activedisks::howsim::Simulation;
/// use activedisks::tasks::TaskKind;
///
/// let report = Simulation::new(Architecture::active_disks(4)).run(TaskKind::Aggregate);
/// assert!(report.elapsed().as_secs_f64() > 0.0);
/// assert_eq!(report.architecture, "Active");
/// ```
pub mod readme_doctest {}

pub use arch;
pub use datagen;
pub use diskmodel;
pub use diskos;
pub use hostos;
pub use howsim;
pub use kernels;
pub use netmodel;
pub use simcore;
pub use tasks;
