//! Association-rule generation from frequent itemsets.
//!
//! Mining "association rules from retail transaction data" (the paper's
//! dmine task, after Agrawal et al.) has two stages: finding frequent
//! itemsets (module [`crate::apriori`]) and deriving rules `X ⇒ Y` whose
//! *confidence* `support(X ∪ Y) / support(X)` clears a threshold. This
//! module implements the second stage.

use std::collections::HashMap;

use crate::apriori::Frequent;

/// An association rule `antecedent ⇒ consequent` with its measures.
#[derive(Debug, Clone, PartialEq)]
pub struct Rule {
    /// Left-hand side (sorted, non-empty).
    pub antecedent: Vec<u32>,
    /// Right-hand side (sorted, non-empty, disjoint from the antecedent).
    pub consequent: Vec<u32>,
    /// Absolute support of antecedent ∪ consequent.
    pub support: u64,
    /// `support(X ∪ Y) / support(X)` in (0, 1].
    pub confidence: f64,
}

/// Generates all rules from `frequent` itemsets meeting `min_confidence`.
///
/// # Example
///
/// ```
/// use kernels::apriori::frequent_itemsets;
/// use kernels::rules::generate_rules;
///
/// let txns = vec![vec![1, 2], vec![1, 2], vec![1, 3], vec![1]];
/// let frequent = frequent_itemsets(&txns, 0.25, 2);
/// let rules = generate_rules(&frequent, 0.5);
/// // {2} => {1} holds with confidence 1.0 (2 always appears with 1).
/// assert!(rules
///     .iter()
///     .any(|r| r.antecedent == vec![2] && r.consequent == vec![1] && r.confidence == 1.0));
/// ```
///
/// Every frequent itemset of size ≥ 2 is split into every non-empty
/// antecedent/consequent pair; the antecedent's support is looked up in
/// `frequent` (guaranteed present by downward closure).
///
/// # Panics
///
/// Panics if `min_confidence` is not in `(0, 1]`, or if `frequent`
/// violates downward closure (a subset of a frequent itemset is missing).
pub fn generate_rules(frequent: &[Frequent], min_confidence: f64) -> Vec<Rule> {
    assert!(
        min_confidence > 0.0 && min_confidence <= 1.0,
        "min_confidence must be in (0, 1]"
    );
    let support: HashMap<&[u32], u64> = frequent
        .iter()
        .map(|(set, count)| (set.as_slice(), *count))
        .collect();
    let mut rules = Vec::new();
    for (set, &whole) in frequent
        .iter()
        .map(|(s, c)| (s, c))
        .filter(|(s, _)| s.len() >= 2)
    {
        // Enumerate non-trivial subsets as antecedents.
        let n = set.len();
        for mask in 1..((1u32 << n) - 1) {
            let antecedent: Vec<u32> = (0..n)
                .filter(|i| mask & (1 << i) != 0)
                .map(|i| set[i])
                .collect();
            let consequent: Vec<u32> = (0..n)
                .filter(|i| mask & (1 << i) == 0)
                .map(|i| set[i])
                .collect();
            let ante_support = *support
                .get(antecedent.as_slice())
                .unwrap_or_else(|| panic!("downward closure violated for {antecedent:?}"));
            let confidence = whole as f64 / ante_support as f64;
            if confidence >= min_confidence {
                rules.push(Rule {
                    antecedent,
                    consequent,
                    support: whole,
                    confidence,
                });
            }
        }
    }
    rules.sort_by(|a, b| {
        b.confidence
            .partial_cmp(&a.confidence)
            .expect("confidence is finite")
            .then_with(|| b.support.cmp(&a.support))
            .then_with(|| a.antecedent.cmp(&b.antecedent))
    });
    rules
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apriori::{brute_force, frequent_itemsets, is_subset};
    use datagen::gen::transactions;

    fn mine(txns: &[Vec<u32>]) -> Vec<Frequent> {
        frequent_itemsets(txns, 0.05, 3)
    }

    #[test]
    fn rules_have_valid_confidence() {
        let txns = transactions(500, 50, 4.0, 3);
        let rules = generate_rules(&mine(&txns), 0.3);
        for r in &rules {
            assert!((0.3..=1.0).contains(&r.confidence));
            assert!(!r.antecedent.is_empty() && !r.consequent.is_empty());
            assert!(r.antecedent.iter().all(|i| !r.consequent.contains(i)));
        }
    }

    #[test]
    fn confidence_matches_direct_count() {
        let txns = transactions(400, 30, 4.0, 5);
        let rules = generate_rules(&mine(&txns), 0.2);
        for r in rules.iter().take(20) {
            let mut whole: Vec<u32> = r.antecedent.iter().chain(&r.consequent).copied().collect();
            whole.sort_unstable();
            let count_whole = txns.iter().filter(|t| is_subset(&whole, t)).count() as f64;
            let count_ante = txns.iter().filter(|t| is_subset(&r.antecedent, t)).count() as f64;
            let direct = count_whole / count_ante;
            assert!(
                (direct - r.confidence).abs() < 1e-9,
                "rule {:?}=>{:?}: {} vs {}",
                r.antecedent,
                r.consequent,
                direct,
                r.confidence
            );
        }
    }

    #[test]
    fn higher_threshold_yields_fewer_rules() {
        let txns = transactions(600, 40, 4.0, 7);
        let frequent = mine(&txns);
        let low = generate_rules(&frequent, 0.2);
        let high = generate_rules(&frequent, 0.8);
        assert!(high.len() <= low.len());
        // The high-confidence rules are a subset of the low-confidence set.
        for r in &high {
            assert!(low
                .iter()
                .any(|l| l.antecedent == r.antecedent && l.consequent == r.consequent));
        }
    }

    #[test]
    fn rules_sorted_by_confidence() {
        let txns = transactions(500, 30, 4.0, 9);
        let rules = generate_rules(&mine(&txns), 0.1);
        assert!(rules.windows(2).all(|w| w[0].confidence >= w[1].confidence));
    }

    #[test]
    fn works_on_brute_force_itemsets_too() {
        let txns = transactions(150, 20, 3.0, 11);
        let frequent = brute_force(&txns, 0.08, 3);
        let rules = generate_rules(&frequent, 0.5);
        for r in &rules {
            assert!(r.confidence >= 0.5);
        }
    }

    #[test]
    fn no_frequent_pairs_no_rules() {
        // Singleton-only itemsets cannot form rules.
        let frequent: Vec<Frequent> = vec![(vec![1], 10), (vec![2], 8)];
        assert!(generate_rules(&frequent, 0.1).is_empty());
    }

    #[test]
    #[should_panic(expected = "min_confidence")]
    fn rejects_zero_confidence() {
        generate_rules(&[], 0.0);
    }
}
