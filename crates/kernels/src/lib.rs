//! Real, executable implementations of the eight decision-support
//! algorithms of the paper's workload suite.
//!
//! The paper acquired CPU/I/O traces by running each algorithm on a DEC
//! Alpha workstation. This reproduction replaces machine-timed traces with
//! *executed algorithms over reduced-scale synthetic data* (correctness
//! and structural validation) plus a deterministic cost model in the
//! `tasks` crate (timing). Each module here is the algorithm the paper's
//! task is built on:
//!
//! * [`select`] — predicate scan (SQL select).
//! * [`aggregate`] — zero-dimensional SUM.
//! * [`groupby`] — hash group-by.
//! * [`sort`] — external sort: run formation + multiway merge
//!   (the Active Disk variant of NOW-sort's two-phase structure).
//! * [`cube`] — the datacube: lattice enumeration, hash-table size
//!   estimation and PipeHash-style pass planning (Agarwal et al.).
//! * [`join`] — partitioned (Grace-style) projected hash join.
//! * [`apriori`] — frequent-itemset mining (Agrawal et al.), with
//!   [`rules`] deriving the association rules themselves.
//! * [`bucketsort`] — NOW-sort's O(n) partial-key bucket sort, the
//!   run-formation kernel the sort cost model assumes.
//! * [`mview`] — materialized-view maintenance by delta merging.

#![warn(missing_docs)]

pub mod aggregate;
pub mod apriori;
pub mod bucketsort;
pub mod cube;
pub mod groupby;
pub mod join;
pub mod mview;
pub mod rules;
pub mod select;
pub mod sort;
