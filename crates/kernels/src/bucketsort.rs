//! Partial-key bucket sort: NOW-sort's O(n) run-formation kernel.
//!
//! NOW-sort (Arpaci-Dusseau et al., cited by the paper as the template for
//! its sort implementations) forms runs with a *partial-key* bucket sort:
//! records are scattered into buckets by their leading key bytes, then
//! each small bucket is finished with a comparison sort. Because bucket
//! scatter is O(n) and the per-bucket cleanup touches O(n/k · log(n/k))
//! with k ≈ n, the total is linear in practice — which is why the paper
//! measured *less* CPU with longer runs (the merge gets cheaper and run
//! formation does not get more expensive; see `tasks::costs`).

use datagen::gen::SortRecord;

/// Sorts records by key using a partial-key bucket sort over the leading
/// two key bytes (65,536 buckets), finishing each bucket with a
/// comparison sort on the full key.
///
/// # Example
///
/// ```
/// use datagen::gen::sort_records;
/// use kernels::bucketsort::bucket_sort;
/// let sorted = bucket_sort(sort_records(10_000, 1));
/// assert!(sorted.windows(2).all(|w| w[0].key <= w[1].key));
/// ```
pub fn bucket_sort(records: Vec<SortRecord>) -> Vec<SortRecord> {
    if records.len() < 2 {
        return records;
    }
    // Scatter by the first two key bytes.
    const BUCKETS: usize = 1 << 16;
    let mut counts = vec![0u32; BUCKETS + 1];
    for r in &records {
        counts[bucket_of(r) + 1] += 1;
    }
    for i in 1..=BUCKETS {
        counts[i] += counts[i - 1];
    }
    let mut out = vec![
        SortRecord {
            key: [0; 10],
            origin: 0
        };
        records.len()
    ];
    let mut cursors = counts.clone();
    for r in records {
        let b = bucket_of(&r);
        out[cursors[b] as usize] = r;
        cursors[b] += 1;
    }
    // Finish each bucket on the full key.
    for b in 0..BUCKETS {
        let (lo, hi) = (counts[b] as usize, counts[b + 1] as usize);
        if hi - lo > 1 {
            out[lo..hi].sort_unstable_by(|a, b| a.key.cmp(&b.key).then(a.origin.cmp(&b.origin)));
        }
    }
    out
}

fn bucket_of(r: &SortRecord) -> usize {
    ((r.key[0] as usize) << 8) | r.key[1] as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::gen::sort_records;
    use proptest::prelude::*;

    #[test]
    fn sorts_uniform_keys() {
        let sorted = bucket_sort(sort_records(50_000, 7));
        assert!(sorted.windows(2).all(|w| w[0].key <= w[1].key));
        assert_eq!(sorted.len(), 50_000);
    }

    #[test]
    fn handles_empty_and_singleton() {
        assert!(bucket_sort(Vec::new()).is_empty());
        let one = sort_records(1, 3);
        assert_eq!(bucket_sort(one.clone()), one);
    }

    #[test]
    fn handles_skewed_keys() {
        // All records in one bucket: degenerates to a comparison sort.
        let mut records = sort_records(1_000, 5);
        for r in &mut records {
            r.key[0] = 0;
            r.key[1] = 0;
        }
        let sorted = bucket_sort(records);
        assert!(sorted.windows(2).all(|w| w[0].key <= w[1].key));
    }

    proptest! {
        /// Agrees with the comparison sort used elsewhere in the suite.
        #[test]
        fn prop_matches_std_sort(n in 0usize..3_000, seed in 0u64..200) {
            let records = sort_records(n, seed);
            let ours = bucket_sort(records.clone());
            let mut expect = records;
            expect.sort_by(|a, b| a.key.cmp(&b.key).then(a.origin.cmp(&b.origin)));
            prop_assert_eq!(ours, expect);
        }
    }
}
