//! Project-join: Grace-style partitioned hash join with early projection.
//!
//! The paper's join projects 64-byte tuples down to 32 bytes before the
//! shuffle (halving communication), range/hash-partitions both relations
//! across nodes, and hash-joins each partition locally.

use std::collections::HashMap;

use datagen::gen::Tuple;

/// Projects a tuple (drops payload columns, keeps the join key and one
/// carried column). Models the paper's 64 B → 32 B projection.
pub fn project(t: &Tuple) -> Tuple {
    Tuple {
        key: t.key,
        value: t.value,
    }
}

/// Hash-partitions tuples into `parts` buckets by join key.
///
/// # Panics
///
/// Panics if `parts` is zero.
pub fn partition(input: &[Tuple], parts: usize) -> Vec<Vec<Tuple>> {
    assert!(parts > 0, "need at least one partition");
    let mut out = vec![Vec::new(); parts];
    for t in input {
        // Multiplicative hash on the key.
        let h = (t.key.wrapping_mul(0x9E37_79B9_7F4A_7C15)) as u128;
        out[((h * parts as u128) >> 64) as usize].push(project(t));
    }
    out
}

/// Hash join of one co-partition: build on `r`, probe with `s`; returns
/// `(key, r_value, s_value)` rows.
pub fn hash_join(r: &[Tuple], s: &[Tuple]) -> Vec<(u64, i64, i64)> {
    let mut table: HashMap<u64, Vec<i64>> = HashMap::new();
    for t in r {
        table.entry(t.key).or_default().push(t.value);
    }
    let mut out = Vec::new();
    for t in s {
        if let Some(vals) = table.get(&t.key) {
            for &v in vals {
                out.push((t.key, v, t.value));
            }
        }
    }
    out
}

/// Full partitioned join: partition both sides, join co-partitions.
pub fn partitioned_join(r: &[Tuple], s: &[Tuple], parts: usize) -> Vec<(u64, i64, i64)> {
    let rp = partition(r, parts);
    let sp = partition(s, parts);
    let mut out = Vec::new();
    for (rpart, spart) in rp.iter().zip(&sp) {
        out.extend(hash_join(rpart, spart));
    }
    out
}

/// Reference nested-loop join for validation.
pub fn nested_loop_join(r: &[Tuple], s: &[Tuple]) -> Vec<(u64, i64, i64)> {
    let mut out = Vec::new();
    for a in r {
        for b in s {
            if a.key == b.key {
                out.push((a.key, a.value, b.value));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::gen::join_tuples;
    use proptest::prelude::*;

    fn canon(mut v: Vec<(u64, i64, i64)>) -> Vec<(u64, i64, i64)> {
        v.sort_unstable();
        v
    }

    #[test]
    fn partitioned_equals_nested_loop() {
        let r = join_tuples(300, 100, 1);
        let s = join_tuples(300, 100, 2);
        assert_eq!(
            canon(partitioned_join(&r, &s, 8)),
            canon(nested_loop_join(&r, &s))
        );
    }

    #[test]
    fn partition_count_is_irrelevant_to_result() {
        let r = join_tuples(200, 50, 3);
        let s = join_tuples(200, 50, 4);
        let base = canon(partitioned_join(&r, &s, 1));
        for parts in [2, 3, 7, 16] {
            assert_eq!(canon(partitioned_join(&r, &s, parts)), base);
        }
    }

    #[test]
    fn disjoint_keys_join_empty() {
        let r = vec![Tuple { key: 1, value: 1 }];
        let s = vec![Tuple { key: 2, value: 2 }];
        assert!(partitioned_join(&r, &s, 4).is_empty());
    }

    #[test]
    fn duplicate_keys_produce_cross_products() {
        let r = vec![Tuple { key: 5, value: 1 }, Tuple { key: 5, value: 2 }];
        let s = vec![Tuple { key: 5, value: 3 }, Tuple { key: 5, value: 4 }];
        assert_eq!(hash_join(&r, &s).len(), 4);
    }

    #[test]
    fn partitions_are_key_disjoint() {
        let r = join_tuples(5_000, 200, 5);
        let parts = partition(&r, 8);
        for (i, p1) in parts.iter().enumerate() {
            for p2 in parts.iter().skip(i + 1) {
                for a in p1 {
                    assert!(p2.iter().all(|b| b.key != a.key));
                }
            }
        }
    }

    #[test]
    fn partitions_are_balanced() {
        let r = join_tuples(40_000, 100_000, 6);
        let parts = partition(&r, 16);
        let expect = r.len() / 16;
        for p in &parts {
            let dev = (p.len() as f64 - expect as f64).abs() / expect as f64;
            assert!(dev < 0.25, "partition size {} vs {expect}", p.len());
        }
    }

    proptest! {
        /// Conservation: every input tuple lands in exactly one partition.
        #[test]
        fn prop_partition_conserves(n in 0usize..2_000, parts in 1usize..32) {
            let r = join_tuples(n, 97, 7);
            let ps = partition(&r, parts);
            let total: usize = ps.iter().map(Vec::len).sum();
            prop_assert_eq!(total, n);
        }

        /// Join output size equals the sum over keys of |R_k| × |S_k|.
        #[test]
        fn prop_join_cardinality(n in 0usize..400, distinct in 1u64..60) {
            let r = join_tuples(n, distinct, 8);
            let s = join_tuples(n, distinct, 9);
            let mut rc = std::collections::HashMap::new();
            let mut sc = std::collections::HashMap::new();
            for t in &r { *rc.entry(t.key).or_insert(0u64) += 1; }
            for t in &s { *sc.entry(t.key).or_insert(0u64) += 1; }
            let expect: u64 = rc.iter().map(|(k, c)| c * sc.get(k).copied().unwrap_or(0)).sum();
            prop_assert_eq!(partitioned_join(&r, &s, 4).len() as u64, expect);
        }
    }
}
