//! SQL select: a predicate scan.

use datagen::gen::Tuple;

/// Filters tuples whose key falls below `threshold` (a range predicate —
/// the canonical selection shape; with keys uniform in `[0, distinct)`,
/// `threshold = distinct / 100` yields the paper's 1% selectivity).
///
/// # Example
///
/// ```
/// use datagen::gen::tuples;
/// use kernels::select::filter;
///
/// let input = tuples(10_000, 1_000, 42);
/// let hits = filter(&input, 10); // ~1% selectivity
/// assert!(hits.len() < 300);
/// ```
pub fn filter(input: &[Tuple], threshold: u64) -> Vec<Tuple> {
    input
        .iter()
        .copied()
        .filter(|t| t.key < threshold)
        .collect()
}

/// Counts tuples matching the predicate without materializing them (the
/// disklet variant forwards matches straight into its output stream).
pub fn count_matches(input: &[Tuple], threshold: u64) -> u64 {
    input.iter().filter(|t| t.key < threshold).count() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::gen::tuples;
    use proptest::prelude::*;

    #[test]
    fn selectivity_close_to_nominal() {
        let input = tuples(100_000, 10_000, 1);
        let hits = filter(&input, 100); // 1%
        let sel = hits.len() as f64 / input.len() as f64;
        assert!((0.008..0.012).contains(&sel), "selectivity {sel}");
    }

    #[test]
    fn filter_and_count_agree() {
        let input = tuples(10_000, 500, 2);
        assert_eq!(filter(&input, 50).len() as u64, count_matches(&input, 50));
    }

    #[test]
    fn all_and_none() {
        let input = tuples(1_000, 100, 3);
        assert_eq!(filter(&input, 100).len(), 1_000);
        assert!(filter(&input, 0).is_empty());
    }

    #[test]
    fn output_preserves_order_and_content() {
        let input = tuples(5_000, 100, 4);
        let out = filter(&input, 30);
        assert!(out.iter().all(|t| t.key < 30));
        // Order preservation: output is a subsequence of input.
        let mut it = input.iter();
        for o in &out {
            assert!(it.any(|t| t == o), "output must be a subsequence");
        }
    }

    proptest! {
        /// Filtering twice is idempotent and thresholds are monotone.
        #[test]
        fn prop_monotone_threshold(n in 1usize..2_000, lo in 0u64..50, hi in 50u64..100) {
            let input = tuples(n, 100, 7);
            let a = filter(&input, lo);
            let b = filter(&input, hi);
            prop_assert!(a.len() <= b.len());
            let twice = filter(&a, lo);
            prop_assert_eq!(twice, a);
        }
    }
}
