//! Materialized-view maintenance: applying a delta stream to derived
//! relations.
//!
//! The paper's `mview` task reads a 1 GB delta stream against 4 GB of
//! derived relations (aggregate views over a 15 GB base dataset),
//! repartitioning deltas to the node holding each affected view fragment
//! and merging them in. The kernel is the merge: an upsert of delta
//! aggregates into the view table.

use std::collections::HashMap;

use datagen::gen::Tuple;

/// A view fragment: an aggregate keyed by group.
pub type View = HashMap<u64, i64>;

/// Builds a view from base tuples (initial materialization).
pub fn materialize(base: &[Tuple]) -> View {
    let mut view = View::new();
    for t in base {
        *view.entry(t.key).or_insert(0) += t.value;
    }
    view
}

/// Applies a batch of deltas to the view in place; returns how many view
/// rows were touched (created or updated).
pub fn apply_deltas(view: &mut View, deltas: &[Tuple]) -> u64 {
    let mut touched = 0;
    for d in deltas {
        *view.entry(d.key).or_insert(0) += d.value;
        touched += 1;
    }
    touched
}

/// Partitions deltas by view-fragment owner (hash of key over `nodes`).
///
/// # Panics
///
/// Panics if `nodes` is zero.
pub fn route_deltas(deltas: &[Tuple], nodes: usize) -> Vec<Vec<Tuple>> {
    assert!(nodes > 0, "need at least one node");
    let mut out = vec![Vec::new(); nodes];
    for d in deltas {
        let h = (d.key.wrapping_mul(0x9E37_79B9_7F4A_7C15)) as u128;
        out[((h * nodes as u128) >> 64) as usize].push(*d);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::gen::{deltas, tuples};
    use proptest::prelude::*;

    #[test]
    fn incremental_equals_recomputation() {
        let base = tuples(5_000, 200, 1);
        let delta = deltas(1_000, 200, 2);
        // Incremental: materialize base, then apply deltas.
        let mut incremental = materialize(&base);
        apply_deltas(&mut incremental, &delta);
        // Recomputation: materialize base ∪ deltas.
        let mut all = base.clone();
        all.extend_from_slice(&delta);
        assert_eq!(incremental, materialize(&all));
    }

    #[test]
    fn deltas_create_missing_groups() {
        let mut view = View::new();
        let touched = apply_deltas(&mut view, &[Tuple { key: 9, value: 4 }]);
        assert_eq!(touched, 1);
        assert_eq!(view[&9], 4);
    }

    #[test]
    fn routed_deltas_partition_by_owner() {
        let delta = deltas(10_000, 1_000, 3);
        let routed = route_deltas(&delta, 8);
        let total: usize = routed.iter().map(Vec::len).sum();
        assert_eq!(total, delta.len());
        // Same key always routes to the same node.
        for (node, part) in routed.iter().enumerate() {
            for d in part {
                let again = route_deltas(&[*d], 8);
                assert_eq!(again[node].len(), 1);
            }
        }
    }

    #[test]
    fn routing_is_reasonably_balanced() {
        let delta = deltas(40_000, 100_000, 4);
        let routed = route_deltas(&delta, 16);
        let expect = delta.len() / 16;
        for part in &routed {
            let dev = (part.len() as f64 - expect as f64).abs() / expect as f64;
            assert!(dev < 0.25, "partition {} vs {}", part.len(), expect);
        }
    }

    proptest! {
        /// Distributed maintenance (route, apply per node, union) equals
        /// centralized maintenance.
        #[test]
        fn prop_distributed_equals_central(n in 1usize..2_000, nodes in 1usize..12) {
            let delta = deltas(n, 100, 5);
            let mut central = View::new();
            apply_deltas(&mut central, &delta);

            let mut union = View::new();
            for part in route_deltas(&delta, nodes) {
                let mut local = View::new();
                apply_deltas(&mut local, &part);
                for (k, v) in local {
                    // Keys are owner-partitioned, so no node overlap.
                    prop_assert!(union.insert(k, v).is_none());
                }
            }
            prop_assert_eq!(union, central);
        }
    }
}
