//! External sort: run formation plus multiway merge.
//!
//! The Active Disk sort in the paper is a two-phase distributed sort in the
//! NOW-sort family: phase 1 range-partitions tuples to their destination
//! node, which sorts memory-sized runs and writes them; phase 2 merges the
//! runs. The kernel here implements the node-local pieces: run formation
//! bounded by available memory, and an r-way heap merge. The number of
//! runs — 40 runs of 25 MB at 32 MB of disk memory versus 20 runs of 50 MB
//! at 64 MB, in the paper's Section 4.3 — is exactly what the `run_count`
//! helper computes.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use datagen::gen::SortRecord;

/// Splits `input` into sorted runs of at most `run_len` records.
///
/// # Panics
///
/// Panics if `run_len` is zero.
///
/// # Example
///
/// ```
/// use datagen::gen::sort_records;
/// use kernels::sort::form_runs;
/// let runs = form_runs(sort_records(1_000, 1), 100);
/// assert_eq!(runs.len(), 10);
/// assert!(runs.iter().all(|r| r.windows(2).all(|w| w[0].key <= w[1].key)));
/// ```
pub fn form_runs(input: Vec<SortRecord>, run_len: usize) -> Vec<Vec<SortRecord>> {
    assert!(run_len > 0, "run length must be positive");
    let mut runs = Vec::new();
    let mut input = input;
    while !input.is_empty() {
        let rest = input.split_off(input.len().min(run_len));
        let mut run = input;
        run.sort_unstable_by(|a, b| a.key.cmp(&b.key).then(a.origin.cmp(&b.origin)));
        runs.push(run);
        input = rest;
    }
    runs
}

/// Merges sorted runs into one sorted output using an r-way heap.
///
/// # Panics
///
/// Panics if any run is not sorted (debug builds check a sample).
pub fn merge_runs(runs: Vec<Vec<SortRecord>>) -> Vec<SortRecord> {
    let total: usize = runs.iter().map(Vec::len).sum();
    let mut out = Vec::with_capacity(total);
    // Heap of (key, origin, run index, position).
    let mut heap = BinaryHeap::new();
    for (ri, run) in runs.iter().enumerate() {
        debug_assert!(
            run.windows(2).all(|w| w[0].key <= w[1].key),
            "run {ri} must be sorted"
        );
        if let Some(first) = run.first() {
            heap.push(Reverse((first.key, first.origin, ri, 0usize)));
        }
    }
    while let Some(Reverse((_, _, ri, pos))) = heap.pop() {
        out.push(runs[ri][pos]);
        if pos + 1 < runs[ri].len() {
            let next = runs[ri][pos + 1];
            heap.push(Reverse((next.key, next.origin, ri, pos + 1)));
        }
    }
    out
}

/// Full external sort: run formation then merge.
pub fn external_sort(input: Vec<SortRecord>, run_len: usize) -> Vec<SortRecord> {
    merge_runs(form_runs(input, run_len))
}

/// Range partition: assigns a record to one of `parts` buckets by the key's
/// leading bytes (keys are uniform, so equal-width ranges balance).
///
/// # Panics
///
/// Panics if `parts` is zero.
pub fn partition_of(record: &SortRecord, parts: usize) -> usize {
    assert!(parts > 0, "need at least one partition");
    let prefix = u64::from_be_bytes([
        record.key[0],
        record.key[1],
        record.key[2],
        record.key[3],
        record.key[4],
        record.key[5],
        record.key[6],
        record.key[7],
    ]);
    ((prefix as u128 * parts as u128) >> 64) as usize
}

/// Number of runs each node forms: per-node data divided by the sort
/// buffer that fits in disk memory.
///
/// Paper anchor: 256 MB per disk with a 25 MB buffer (32 MB DRAM after
/// DiskOS and stream buffers) gives ~10 runs per merge set; the paper's
/// global figure is "40 runs of 25 MB each (used for 32 MB Active Disks)"
/// versus "20 runs of 50 MB each (used for 64 MB Active Disks)".
///
/// # Panics
///
/// Panics if `buffer_bytes` is zero.
pub fn run_count(node_bytes: u64, buffer_bytes: u64) -> u64 {
    assert!(buffer_bytes > 0, "buffer must be positive");
    node_bytes.div_ceil(buffer_bytes).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::gen::sort_records;
    use proptest::prelude::*;

    fn is_sorted(v: &[SortRecord]) -> bool {
        v.windows(2).all(|w| w[0].key <= w[1].key)
    }

    #[test]
    fn external_sort_sorts() {
        let input = sort_records(10_000, 42);
        let out = external_sort(input.clone(), 1_000);
        assert!(is_sorted(&out));
        assert_eq!(out.len(), input.len());
    }

    #[test]
    fn output_is_a_permutation() {
        let input = sort_records(5_000, 1);
        let out = external_sort(input.clone(), 700);
        let mut origins: Vec<u64> = out.iter().map(|r| r.origin).collect();
        origins.sort_unstable();
        let expected: Vec<u64> = (0..5_000).collect();
        assert_eq!(origins, expected);
    }

    #[test]
    fn run_boundaries_respected() {
        let runs = form_runs(sort_records(1_050, 2), 100);
        assert_eq!(runs.len(), 11);
        assert_eq!(runs[10].len(), 50);
        assert!(runs.iter().all(|r| is_sorted(r)));
    }

    #[test]
    fn merge_of_single_run_is_identity() {
        let mut run = sort_records(100, 3);
        run.sort_unstable_by(|a, b| a.key.cmp(&b.key).then(a.origin.cmp(&b.origin)));
        assert_eq!(merge_runs(vec![run.clone()]), run);
    }

    #[test]
    fn merge_of_empty_is_empty() {
        assert!(merge_runs(vec![]).is_empty());
        assert!(merge_runs(vec![vec![], vec![]]).is_empty());
    }

    #[test]
    fn paper_run_counts() {
        // 32 MB disks: 25 MB sort buffer → 1 GB/node at 16 disks = 40 runs.
        assert_eq!(run_count(1_000 << 20, 25 << 20), 40);
        // 64 MB disks: 50 MB buffer → 20 runs.
        assert_eq!(run_count(1_000 << 20, 50 << 20), 20);
    }

    #[test]
    fn partitions_are_balanced() {
        let records = sort_records(40_000, 9);
        let parts = 16;
        let mut counts = vec![0usize; parts];
        for r in &records {
            counts[partition_of(r, parts)] += 1;
        }
        let expect = records.len() / parts;
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                (c as f64 - expect as f64).abs() < expect as f64 * 0.2,
                "partition {i} has {c}, expected ~{expect}"
            );
        }
    }

    #[test]
    fn partition_respects_key_order() {
        // A record in a lower partition has a smaller (or equal) key
        // prefix than one in a higher partition.
        let records = sort_records(2_000, 10);
        let parts = 8;
        for a in &records[..200] {
            for b in &records[..200] {
                let (pa, pb) = (partition_of(a, parts), partition_of(b, parts));
                if pa < pb {
                    assert!(a.key <= b.key, "range partitioning is ordered");
                }
            }
        }
    }

    proptest! {
        /// external_sort equals a direct comparison sort for any run length.
        #[test]
        fn prop_matches_std_sort(n in 0usize..2_000, run_len in 1usize..500, seed in 0u64..1_000) {
            let input = sort_records(n, seed);
            let ours = external_sort(input.clone(), run_len);
            let mut std_sorted = input;
            std_sorted.sort_by(|a, b| a.key.cmp(&b.key).then(a.origin.cmp(&b.origin)));
            prop_assert_eq!(ours, std_sorted);
        }

        /// Every record lands in a valid partition.
        #[test]
        fn prop_partition_in_range(n in 1usize..500, parts in 1usize..64, seed in 0u64..100) {
            for r in sort_records(n, seed) {
                prop_assert!(partition_of(&r, parts) < parts);
            }
        }
    }
}
