//! SQL group-by: hash aggregation.

use std::collections::HashMap;

use datagen::gen::Tuple;

/// Hash group-by: sums `value` per `key`.
///
/// # Example
///
/// ```
/// use datagen::gen::Tuple;
/// use kernels::groupby::hash_groupby;
/// let data = vec![
///     Tuple { key: 1, value: 2 },
///     Tuple { key: 1, value: 3 },
///     Tuple { key: 2, value: 9 },
/// ];
/// let groups = hash_groupby(&data);
/// assert_eq!(groups[&1], 5);
/// assert_eq!(groups.len(), 2);
/// ```
pub fn hash_groupby(input: &[Tuple]) -> HashMap<u64, i64> {
    let mut groups = HashMap::new();
    for t in input {
        *groups.entry(t.key).or_insert(0) += t.value;
    }
    groups
}

/// Merges per-partition group tables (the combine step at the front-end or
/// between peers).
pub fn merge_groups(tables: Vec<HashMap<u64, i64>>) -> HashMap<u64, i64> {
    let mut out = HashMap::new();
    for table in tables {
        for (k, v) in table {
            *out.entry(k).or_insert(0) += v;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::gen::tuples;
    use proptest::prelude::*;

    #[test]
    fn groups_cover_all_keys() {
        let data = tuples(10_000, 37, 5);
        let g = hash_groupby(&data);
        assert_eq!(g.len(), 37, "all 37 keys appear in 10 k tuples");
    }

    #[test]
    fn group_sums_match_total() {
        let data = tuples(5_000, 100, 6);
        let g = hash_groupby(&data);
        let total: i64 = g.values().sum();
        let direct: i64 = data.iter().map(|t| t.value).sum();
        assert_eq!(total, direct);
    }

    #[test]
    fn merge_is_equivalent_to_global() {
        let data = tuples(8_000, 64, 7);
        let global = hash_groupby(&data);
        let partials: Vec<_> = data.chunks(1_000).map(hash_groupby).collect();
        assert_eq!(merge_groups(partials), global);
    }

    #[test]
    fn empty_input_empty_output() {
        assert!(hash_groupby(&[]).is_empty());
        assert!(merge_groups(vec![]).is_empty());
    }

    proptest! {
        /// Partition-then-merge always equals the single-pass result.
        #[test]
        fn prop_merge_invariance(n in 1usize..2_000, parts in 1usize..16) {
            let data = tuples(n, 50, 13);
            let chunk = n.div_ceil(parts);
            let partials: Vec<_> = data.chunks(chunk).map(hash_groupby).collect();
            prop_assert_eq!(merge_groups(partials), hash_groupby(&data));
        }
    }
}
