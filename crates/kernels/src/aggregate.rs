//! SQL aggregate: a zero-dimensional SUM.
//!
//! On every architecture this is a local reduction followed by a tiny
//! global combine — the paper's most reduction-friendly task (8.5–9.5×
//! faster on Active Disks than SMPs at 128 disks, Figure 1d).

use datagen::gen::Tuple;

/// Sums the measure column.
///
/// # Example
///
/// ```
/// use datagen::gen::Tuple;
/// use kernels::aggregate::sum;
/// let data = vec![Tuple { key: 0, value: 2 }, Tuple { key: 1, value: 3 }];
/// assert_eq!(sum(&data), 5);
/// ```
pub fn sum(input: &[Tuple]) -> i64 {
    input.iter().map(|t| t.value).sum()
}

/// Combines per-partition partial sums (the front-end / reduction-tree
/// step).
pub fn combine(partials: &[i64]) -> i64 {
    partials.iter().sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::gen::tuples;
    use proptest::prelude::*;

    #[test]
    fn empty_sum_is_zero() {
        assert_eq!(sum(&[]), 0);
        assert_eq!(combine(&[]), 0);
    }

    #[test]
    fn partitioned_sum_equals_global() {
        let data = tuples(10_000, 1_000, 5);
        let global = sum(&data);
        let partials: Vec<i64> = data.chunks(997).map(sum).collect();
        assert_eq!(combine(&partials), global);
    }

    proptest! {
        /// Any partitioning of the input combines to the same total.
        #[test]
        fn prop_partition_invariance(n in 1usize..3_000, chunk in 1usize..500) {
            let data = tuples(n, 100, 11);
            let partials: Vec<i64> = data.chunks(chunk).map(sum).collect();
            prop_assert_eq!(combine(&partials), sum(&data));
        }
    }
}
