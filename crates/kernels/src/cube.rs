//! The datacube operator: lattice enumeration, hash-table sizing, and
//! PipeHash-style pass planning (Agarwal et al., "On the computation of
//! multidimensional aggregates").
//!
//! PipeHash "tries to minimize the number of passes by scheduling several
//! group-bys as a pipeline"; how many group-bys share one scan is limited
//! by the memory available for their hash tables. That memory dependence
//! is exactly what the paper's Figure 4 probes: at 16 disks the largest
//! group-by's 695 MB hash table does not fit in 512 MB of aggregate disk
//! memory (so partial tables are forwarded to the front-end), and at 64
//! disks doubling memory merges 14 group-bys into a single scan (2.3 GB
//! needed), cutting the pass count from three to two.

use std::collections::HashMap;

use datagen::gen::CubeFact;

/// A group-by in a `d`-dimensional cube: a bitmask over dimensions.
pub type GroupMask = u16;

/// All group-bys of a `dims`-dimensional cube **except** the raw
/// all-dimensions one: `2^dims − 1` masks (15 for the paper's 4-d cube),
/// from the total (empty mask) up.
///
/// # Panics
///
/// Panics if `dims` is 0 or exceeds 16.
pub fn lattice(dims: usize) -> Vec<GroupMask> {
    assert!((1..=16).contains(&dims), "dims must be in 1..=16");
    let full = (1u16 << dims) - 1;
    (0..full).collect()
}

/// Computes one group-by of the cube over concrete facts: aggregates the
/// measure by the dimensions selected in `mask`.
pub fn compute_groupby(facts: &[CubeFact], mask: GroupMask) -> HashMap<Vec<u32>, i64> {
    let mut table: HashMap<Vec<u32>, i64> = HashMap::new();
    for f in facts {
        let key: Vec<u32> = (0..4)
            .filter(|d| mask & (1 << d) != 0)
            .map(|d| f.dims[d])
            .collect();
        *table.entry(key).or_insert(0) += f.measure;
    }
    table
}

/// Computes every group-by in `masks`.
pub fn compute_cube(
    facts: &[CubeFact],
    masks: &[GroupMask],
) -> HashMap<GroupMask, HashMap<Vec<u32>, i64>> {
    masks
        .iter()
        .map(|&m| (m, compute_groupby(facts, m)))
        .collect()
}

/// Expected number of distinct dimension-value combinations when `n`
/// uniform tuples are drawn over a combination space of size `space`
/// (the standard occupancy estimate `P·(1 − (1 − 1/P)^n)`).
pub fn expected_distinct(n: u64, space: f64) -> f64 {
    if space <= 1.0 {
        return 1.0;
    }
    // 1 − (1 − 1/P)^n ≈ 1 − e^(−n/P), numerically stable for huge P.
    space * -(-(n as f64) / space).exp_m1()
}

/// The result of planning cube passes under a memory budget.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CubePlan {
    /// Scans over the input; each inner vec lists the group-by indices
    /// whose hash tables are co-resident during that scan.
    pub passes: Vec<Vec<usize>>,
    /// Group-bys whose hash table alone exceeds the memory budget: their
    /// partial tables must be forwarded to the front-end during the scan.
    pub spilled: Vec<usize>,
}

impl CubePlan {
    /// Total number of input scans (each pass and each spilled group-by
    /// costs one scan).
    pub fn scan_count(&self) -> usize {
        self.passes.len() + self.spilled.len()
    }
}

/// Packs group-bys (given their hash-table sizes in bytes) into the fewest
/// scans such that each scan's tables fit in `memory_bytes`, using
/// first-fit-decreasing. Two PipeHash structural rules apply:
///
/// * The **largest** group-by is the root of the pipeline fed directly by
///   the raw-relation scan, so it always gets a dedicated scan (this is
///   why the paper counts "14 group-bys \[that\] can be merged into a single
///   scan" out of 15).
/// * Group-bys that individually exceed the budget are reported as
///   *spilled*: they still cost one scan, but partial hash tables must be
///   forwarded to the front-end during it (the 695 MB table at 16 disks).
///
/// # Panics
///
/// Panics if `memory_bytes` is zero.
pub fn plan_passes(table_bytes: &[u64], memory_bytes: u64) -> CubePlan {
    assert!(memory_bytes > 0, "memory budget must be positive");
    let mut order: Vec<usize> = (0..table_bytes.len()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(table_bytes[i]));
    let mut passes: Vec<(u64, Vec<usize>)> = Vec::new();
    let mut spilled = Vec::new();
    for (rank, i) in order.into_iter().enumerate() {
        let size = table_bytes[i];
        if size > memory_bytes {
            spilled.push(i);
            continue;
        }
        if rank == 0 && table_bytes.len() > 1 {
            // Pipeline root: dedicated scan.
            passes.push((memory_bytes, vec![i]));
            continue;
        }
        match passes
            .iter_mut()
            .find(|(used, _)| used + size <= memory_bytes)
        {
            Some((used, members)) => {
                *used += size;
                members.push(i);
            }
            None => passes.push((size, vec![i])),
        }
    }
    spilled.sort_unstable();
    CubePlan {
        passes: passes.into_iter().map(|(_, m)| m).collect(),
        spilled,
    }
}

/// Estimated hash-table entry counts for every group-by of a cube over
/// `n` tuples whose dimension `d` has `cardinalities[d]` distinct values,
/// indexed by mask. The full-mask entry is the raw-relation granularity.
pub fn estimate_sizes(n: u64, cardinalities: &[u64]) -> Vec<f64> {
    let dims = cardinalities.len();
    let full = 1usize << dims;
    (0..full)
        .map(|mask| {
            let space: f64 = (0..dims)
                .filter(|d| mask & (1 << d) != 0)
                .map(|d| cardinalities[d] as f64)
                .product();
            expected_distinct(n, space)
        })
        .collect()
}

/// PipeHash's parent-selection heuristic (Agarwal et al.): each group-by
/// is computed from the **smallest** strict superset group-by, since
/// aggregating a small parent is cheaper than rescanning a large one.
/// Returns `(child_mask, parent_mask)` pairs for every group-by except
/// the full one (which is computed from the raw relation).
///
/// # Panics
///
/// Panics if `cardinalities` is empty or longer than 16.
pub fn pipehash_tree(n: u64, cardinalities: &[u64]) -> Vec<(GroupMask, GroupMask)> {
    assert!(
        (1..=16).contains(&cardinalities.len()),
        "dims must be in 1..=16"
    );
    let sizes = estimate_sizes(n, cardinalities);
    let dims = cardinalities.len();
    let full = (1usize << dims) - 1;
    let mut tree = Vec::with_capacity(full);
    for child in 0..full {
        // Candidate parents: supersets with exactly one extra dimension
        // (larger supersets are never smaller than one of these, since
        // adding a dimension cannot reduce the distinct count).
        let parent = (0..dims)
            .filter(|d| child & (1 << d) == 0)
            .map(|d| child | (1 << d))
            .min_by(|&a, &b| {
                sizes[a]
                    .partial_cmp(&sizes[b])
                    .expect("sizes are finite")
                    .then(a.cmp(&b))
            })
            .expect("every non-full mask has a superset");
        tree.push((child as GroupMask, parent as GroupMask));
    }
    tree
}

/// Plain first-fit-decreasing packing (no pipeline-root rule): partitions
/// the group-bys into the fewest memory-feasible batches. Oversized items
/// each get their own batch.
///
/// # Panics
///
/// Panics if `memory_bytes` is zero.
pub fn pack_first_fit(table_bytes: &[u64], memory_bytes: u64) -> Vec<Vec<usize>> {
    assert!(memory_bytes > 0, "memory budget must be positive");
    let mut order: Vec<usize> = (0..table_bytes.len()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(table_bytes[i]));
    let mut bins: Vec<(u64, Vec<usize>)> = Vec::new();
    for i in order {
        let size = table_bytes[i];
        match bins
            .iter_mut()
            .find(|(used, _)| size <= memory_bytes && used + size <= memory_bytes)
        {
            Some((used, members)) => {
                *used += size;
                members.push(i);
            }
            None => bins.push((size.min(memory_bytes), vec![i])),
        }
    }
    bins.into_iter().map(|(_, m)| m).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::gen::cube_facts;
    use proptest::prelude::*;

    const MB: u64 = 1 << 20;

    #[test]
    fn lattice_has_fifteen_groupbys_for_four_dims() {
        let l = lattice(4);
        assert_eq!(l.len(), 15);
        assert!(!l.contains(&0b1111), "raw relation excluded");
        assert!(l.contains(&0), "the total (empty group-by) included");
    }

    #[test]
    fn child_groupby_derivable_from_parent() {
        let facts = cube_facts(5_000, [20, 10, 5, 3], 1);
        // Group-by {A} computed from raw equals re-aggregating {A,B}.
        let a_direct = compute_groupby(&facts, 0b0001);
        let ab = compute_groupby(&facts, 0b0011);
        let mut a_from_ab: HashMap<Vec<u32>, i64> = HashMap::new();
        for (key, v) in ab {
            *a_from_ab.entry(vec![key[0]]).or_insert(0) += v;
        }
        assert_eq!(a_direct, a_from_ab);
    }

    #[test]
    fn total_groupby_is_grand_sum() {
        let facts = cube_facts(2_000, [4, 4, 4, 4], 2);
        let total = compute_groupby(&facts, 0);
        let grand: i64 = facts.iter().map(|f| f.measure).sum();
        assert_eq!(total[&Vec::<u32>::new()], grand);
        assert_eq!(total.len(), 1);
    }

    #[test]
    fn compute_cube_covers_all_masks() {
        let facts = cube_facts(500, [3, 3, 3, 3], 3);
        let cube = compute_cube(&facts, &lattice(4));
        assert_eq!(cube.len(), 15);
    }

    #[test]
    fn expected_distinct_limits() {
        // Tiny space: saturates at the space size.
        assert!((expected_distinct(1_000_000, 10.0) - 10.0).abs() < 1e-6);
        // Huge space: approaches n.
        let e = expected_distinct(1_000, 1e18);
        assert!((e - 1_000.0).abs() < 1.0, "{e}");
    }

    #[test]
    fn paper_scenario_16_disks() {
        // The paper's sizes: the largest group-by's table is 695 MB; the
        // other 14 sum to 2.3 GB.
        let mut sizes = vec![695 * MB];
        sizes.extend(std::iter::repeat_n(2_300 * MB / 14, 14));
        // 16 disks × 32 MB = 512 MB: the big table spills to the front-end.
        let plan32 = plan_passes(&sizes, 512 * MB);
        assert_eq!(plan32.spilled, vec![0]);
        // 16 disks × 64 MB = 1 GB: everything fits in some pass.
        let plan64 = plan_passes(&sizes, 1_024 * MB);
        assert!(plan64.spilled.is_empty());
        assert!(
            plan64.scan_count() < plan32.scan_count(),
            "64 MB plan ({}) beats 32 MB plan ({})",
            plan64.scan_count(),
            plan32.scan_count()
        );
    }

    #[test]
    fn paper_scenario_64_disks() {
        let mut sizes = vec![695 * MB];
        sizes.extend(std::iter::repeat_n(2_300 * MB / 14, 14));
        // 64 × 32 MB = 2 GB: 2.3 GB of small tables cannot share one scan.
        let plan32 = plan_passes(&sizes, 2_048 * MB);
        assert_eq!(plan32.scan_count(), 3, "three passes at 32 MB/disk");
        // 64 × 64 MB = 4 GB: 14-in-one plus the big one → two passes.
        let plan64 = plan_passes(&sizes, 4_096 * MB);
        assert_eq!(plan64.scan_count(), 2, "two passes at 64 MB/disk");
    }

    #[test]
    fn estimate_sizes_cover_the_lattice() {
        let sizes = estimate_sizes(10_000, &[50, 5, 2, 100]);
        assert_eq!(sizes.len(), 16);
        assert!((sizes[0] - 1.0).abs() < 1e-9, "empty group-by has one row");
        // Adding a dimension never shrinks the estimate.
        for mask in 0..15usize {
            for d in 0..4 {
                if mask & (1 << d) == 0 {
                    assert!(sizes[mask | (1 << d)] >= sizes[mask] - 1e-9);
                }
            }
        }
    }

    #[test]
    fn pipehash_tree_picks_smallest_parents() {
        let cards = [1_000, 100, 10, 2];
        let n = 1_000_000;
        let sizes = estimate_sizes(n, &cards);
        let tree = pipehash_tree(n, &cards);
        assert_eq!(tree.len(), 15);
        for &(child, parent) in &tree {
            // Parent is a strict superset with one extra dimension.
            assert_eq!(parent & child, child);
            assert_eq!((parent ^ child).count_ones(), 1);
            // No other one-extra-dimension superset is smaller.
            for d in 0..4u16 {
                if child & (1 << d) == 0 {
                    let other = child | (1 << d);
                    assert!(
                        sizes[parent as usize] <= sizes[other as usize] + 1e-9,
                        "child {child:#06b}: parent {parent:#06b} vs smaller {other:#06b}"
                    );
                }
            }
        }
        // The dimension with cardinality 2 should be the favourite add-on.
        let (_, parent_of_empty) = tree.iter().find(|&&(c, _)| c == 0).unwrap();
        assert_eq!(
            *parent_of_empty, 0b1000,
            "cheapest single dim is D (card 2)"
        );
    }

    #[test]
    fn pipehash_tree_aggregation_is_correct() {
        // Computing a child from its chosen parent equals computing it
        // from the raw facts.
        let cards = [20u64, 10, 5, 2];
        let facts = cube_facts(5_000, cards, 77);
        let tree = pipehash_tree(5_000, &cards);
        for &(child, parent) in tree.iter().filter(|&&(_, p)| p != 0b1111) {
            let direct = compute_groupby(&facts, child);
            let parent_table = compute_groupby(&facts, parent);
            // Re-aggregate the parent onto the child's dimensions.
            let parent_dims: Vec<usize> = (0..4).filter(|d| parent & (1 << d) != 0).collect();
            let mut from_parent: HashMap<Vec<u32>, i64> = HashMap::new();
            for (key, v) in parent_table {
                let child_key: Vec<u32> = parent_dims
                    .iter()
                    .enumerate()
                    .filter(|(_, &d)| child & (1 << d) != 0)
                    .map(|(i, _)| key[i])
                    .collect();
                *from_parent.entry(child_key).or_insert(0) += v;
            }
            assert_eq!(direct, from_parent, "child {child:#06b} from {parent:#06b}");
        }
    }

    #[test]
    fn oversized_everything_spills() {
        let plan = plan_passes(&[10 * MB, 20 * MB], 5 * MB);
        assert_eq!(plan.spilled, vec![0, 1]);
        assert!(plan.passes.is_empty());
        assert_eq!(plan.scan_count(), 2);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_memory_rejected() {
        plan_passes(&[1], 0);
    }

    proptest! {
        /// Every group-by is in exactly one pass or spilled; no pass
        /// overflows the budget.
        #[test]
        fn prop_plan_is_a_partition(sizes in proptest::collection::vec(1u64..100, 1..40), mem in 1u64..200) {
            let plan = plan_passes(&sizes, mem);
            let mut seen = vec![0u8; sizes.len()];
            for pass in &plan.passes {
                let total: u64 = pass.iter().map(|&i| sizes[i]).sum();
                prop_assert!(total <= mem);
                for &i in pass {
                    seen[i] += 1;
                }
            }
            for &i in &plan.spilled {
                prop_assert!(sizes[i] > mem);
                seen[i] += 1;
            }
            prop_assert!(seen.iter().all(|&c| c == 1));
        }

        /// More memory (essentially) never increases the scan count.
        /// First-fit-decreasing has rare capacity anomalies, so allow one
        /// scan of slack.
        #[test]
        fn prop_memory_monotone(sizes in proptest::collection::vec(1u64..100, 1..30), mem in 1u64..150) {
            let small = plan_passes(&sizes, mem);
            let big = plan_passes(&sizes, mem * 2);
            prop_assert!(big.scan_count() <= small.scan_count() + 1);
        }
    }
}
