//! Apriori frequent-itemset mining (Agrawal et al.), the algorithm behind
//! the paper's `dmine` task.
//!
//! Each pass `k` scans every transaction once, counting candidate k-itemset
//! occurrences; candidates for pass `k+1` are joined from the frequent
//! k-itemsets and pruned by the downward-closure property. The per-disk
//! counter footprint (5.4 MB for the paper's dataset) is the memory the
//! `dmine` task needs — which is why the paper finds it insensitive to
//! disk-memory size.

use std::collections::{HashMap, HashSet};

/// A frequent itemset with its absolute support count.
pub type Frequent = (Vec<u32>, u64);

/// Mines frequent itemsets with relative support >= `min_support`, up to
/// `max_k` items per set. Transactions must be sorted and deduplicated
/// (as `datagen::gen::transactions` produces).
///
/// # Panics
///
/// Panics if `min_support` is not in `(0, 1]` or `max_k` is zero.
///
/// # Example
///
/// ```
/// use kernels::apriori::frequent_itemsets;
/// let txns = vec![vec![1, 2, 3], vec![1, 2], vec![1, 3], vec![1, 2, 3]];
/// let freq = frequent_itemsets(&txns, 0.5, 3);
/// // {1} appears in all four transactions.
/// assert!(freq.iter().any(|(set, n)| set == &vec![1] && *n == 4));
/// // {1,2} appears in three of four.
/// assert!(freq.iter().any(|(set, n)| set == &vec![1, 2] && *n == 3));
/// ```
pub fn frequent_itemsets(txns: &[Vec<u32>], min_support: f64, max_k: usize) -> Vec<Frequent> {
    assert!(
        min_support > 0.0 && min_support <= 1.0,
        "min_support must be in (0, 1]"
    );
    assert!(max_k > 0, "max_k must be positive");
    let threshold = (min_support * txns.len() as f64).ceil() as u64;
    let mut result = Vec::new();

    // Pass 1: item counts.
    let mut counts: HashMap<Vec<u32>, u64> = HashMap::new();
    for txn in txns {
        for &item in txn {
            *counts.entry(vec![item]).or_insert(0) += 1;
        }
    }
    let mut frequent: Vec<Vec<u32>> = counts
        .iter()
        .filter(|&(_, &c)| c >= threshold)
        .map(|(s, _)| s.clone())
        .collect();
    frequent.sort();
    result.extend(frequent.iter().map(|s| (s.clone(), counts[s])));

    // Passes 2..=max_k.
    for _k in 2..=max_k {
        let candidates = generate_candidates(&frequent);
        if candidates.is_empty() {
            break;
        }
        let cand_set: HashSet<&Vec<u32>> = candidates.iter().collect();
        let mut counts: HashMap<Vec<u32>, u64> = HashMap::new();
        for txn in txns {
            for cand in &candidates {
                if is_subset(cand, txn) {
                    *counts.entry(cand.clone()).or_insert(0) += 1;
                }
            }
        }
        debug_assert!(counts.keys().all(|c| cand_set.contains(c)));
        frequent = counts
            .iter()
            .filter(|&(_, &c)| c >= threshold)
            .map(|(s, _)| s.clone())
            .collect();
        frequent.sort();
        if frequent.is_empty() {
            break;
        }
        result.extend(frequent.iter().map(|s| (s.clone(), counts[s])));
    }
    result
}

/// Apriori candidate generation: joins frequent (k-1)-itemsets sharing a
/// (k-2)-prefix, pruning candidates with an infrequent subset.
pub fn generate_candidates(frequent: &[Vec<u32>]) -> Vec<Vec<u32>> {
    let freq_set: HashSet<&Vec<u32>> = frequent.iter().collect();
    let mut out = Vec::new();
    for (i, a) in frequent.iter().enumerate() {
        for b in &frequent[i + 1..] {
            let k = a.len();
            if a[..k - 1] != b[..k - 1] {
                continue;
            }
            let mut cand = a.clone();
            cand.push(b[k - 1]);
            cand.sort_unstable();
            // Downward closure: every (k)-subset must be frequent.
            let all_frequent = (0..cand.len()).all(|skip| {
                let mut sub = cand.clone();
                sub.remove(skip);
                freq_set.contains(&sub)
            });
            if all_frequent {
                out.push(cand);
            }
        }
    }
    out.sort();
    out.dedup();
    out
}

/// True if sorted `needle` is a subset of sorted `haystack`.
pub fn is_subset(needle: &[u32], haystack: &[u32]) -> bool {
    let mut it = haystack.iter();
    needle.iter().all(|n| it.any(|h| h == n))
}

/// Number of scan passes Apriori makes for the returned itemsets (the
/// longest frequent itemset's length — each length is one pass).
pub fn pass_count(frequent: &[Frequent]) -> usize {
    frequent.iter().map(|(s, _)| s.len()).max().unwrap_or(1)
}

/// Brute-force miner for validation (exponential; tiny inputs only).
pub fn brute_force(txns: &[Vec<u32>], min_support: f64, max_k: usize) -> Vec<Frequent> {
    let threshold = (min_support * txns.len() as f64).ceil() as u64;
    let items: Vec<u32> = {
        let mut v: Vec<u32> = txns.iter().flatten().copied().collect();
        v.sort_unstable();
        v.dedup();
        v
    };
    let mut out = Vec::new();
    let mut stack: Vec<(Vec<u32>, usize)> = vec![(Vec::new(), 0)];
    while let Some((set, from)) = stack.pop() {
        for (ix, &item) in items.iter().enumerate().skip(from) {
            let mut next = set.clone();
            next.push(item);
            if next.len() > max_k {
                continue;
            }
            let support = txns.iter().filter(|t| is_subset(&next, t)).count() as u64;
            if support >= threshold {
                out.push((next.clone(), support));
                stack.push((next, ix + 1));
            }
        }
    }
    out.sort();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::gen::transactions;
    use proptest::prelude::*;

    #[test]
    fn matches_brute_force_on_small_data() {
        let txns = transactions(200, 30, 4.0, 3);
        let mut fast = frequent_itemsets(&txns, 0.05, 4);
        fast.sort();
        let slow = brute_force(&txns, 0.05, 4);
        assert_eq!(fast, slow);
    }

    #[test]
    fn subset_predicate() {
        assert!(is_subset(&[2, 5], &[1, 2, 3, 5]));
        assert!(!is_subset(&[2, 6], &[1, 2, 3, 5]));
        assert!(is_subset(&[], &[1]));
        assert!(!is_subset(&[1], &[]));
    }

    #[test]
    fn support_threshold_is_respected() {
        let txns = transactions(1_000, 100, 4.0, 5);
        let freq = frequent_itemsets(&txns, 0.02, 3);
        let floor = (0.02 * txns.len() as f64).ceil() as u64;
        assert!(freq.iter().all(|&(_, c)| c >= floor));
        assert!(!freq.is_empty(), "hot items exist at 2% support");
    }

    #[test]
    fn downward_closure_holds() {
        let txns = transactions(500, 50, 4.0, 7);
        let freq = frequent_itemsets(&txns, 0.03, 4);
        let sets: std::collections::HashSet<Vec<u32>> =
            freq.iter().map(|(s, _)| s.clone()).collect();
        for (set, _) in &freq {
            if set.len() > 1 {
                for skip in 0..set.len() {
                    let mut sub = set.clone();
                    sub.remove(skip);
                    assert!(sets.contains(&sub), "subset {sub:?} of {set:?} missing");
                }
            }
        }
    }

    #[test]
    fn candidate_generation_joins_prefixes() {
        let frequent = vec![vec![1, 2], vec![1, 3], vec![2, 3]];
        let cands = generate_candidates(&frequent);
        assert_eq!(cands, vec![vec![1, 2, 3]]);
    }

    #[test]
    fn candidate_pruning_removes_unsupported() {
        // {1,2} and {1,3} join to {1,2,3}, but {2,3} is not frequent.
        let frequent = vec![vec![1, 2], vec![1, 3]];
        assert!(generate_candidates(&frequent).is_empty());
    }

    #[test]
    fn pass_count_tracks_longest_itemset() {
        let txns = vec![vec![1, 2, 3]; 10];
        let freq = frequent_itemsets(&txns, 0.5, 5);
        assert_eq!(pass_count(&freq), 3);
    }

    #[test]
    #[should_panic(expected = "min_support")]
    fn rejects_zero_support() {
        frequent_itemsets(&[], 0.0, 2);
    }

    proptest! {
        /// Monotonicity: raising min support never adds itemsets.
        #[test]
        fn prop_support_monotone(seed in 0u64..50) {
            let txns = transactions(150, 40, 3.0, seed);
            let low = frequent_itemsets(&txns, 0.05, 3);
            let high = frequent_itemsets(&txns, 0.15, 3);
            let low_sets: std::collections::HashSet<_> =
                low.iter().map(|(s, _)| s.clone()).collect();
            for (s, _) in &high {
                prop_assert!(low_sets.contains(s));
            }
        }
    }
}
