//! Fibre Channel Arbitrated Loop model.
//!
//! The Active Disk configurations attach every disk (and the front-end) to
//! a **dual-loop** FC-AL: two independent 100 MB/s arbitrated loops, 200
//! MB/s aggregate. An arbitrated loop is a *shared medium*: one
//! transmission at a time per loop, so the effective bisection bandwidth is
//! fixed at the aggregate loop rate no matter how many devices attach —
//! this is why the paper finds the dual loop sufficient up to 64 disks but
//! saturating at 128 for repartitioning tasks (Figure 3), and why it
//! recommends a FibreSwitch beyond that.
//!
//! Each tenancy pays an arbitration overhead before transferring; frames
//! carry protocol overhead captured by an efficiency factor.

use simcore::state::{StateError, StateReader, StateWriter};
use simcore::{Bandwidth, Duration, FifoServer, SimTime};

/// Default arbitration time to win a loop tenancy.
pub const DEFAULT_ARBITRATION: Duration = Duration::from_micros(8);

/// Default payload efficiency of FC framing (2,048-byte payloads plus
/// headers/CRC/primitives).
pub const DEFAULT_EFFICIENCY: f64 = 0.95;

/// A dual (or n-way) Fibre Channel Arbitrated Loop.
///
/// # Example
///
/// ```
/// use netmodel::FcLoop;
/// use simcore::{Bandwidth, SimTime};
///
/// // The paper's baseline: dual loop, 200 MB/s aggregate.
/// let mut fc = FcLoop::dual(Bandwidth::from_mb_per_sec(200.0));
/// let arrival = fc.transfer(SimTime::ZERO, 0, 2_000_000, "results");
/// assert!(arrival.as_secs_f64() > 0.02, "2 MB at ~95 MB/s per loop");
/// ```
#[derive(Debug, Clone)]
pub struct FcLoop {
    loops: Vec<FifoServer>,
    /// Indices of loops still carrying traffic; a dropped loop keeps its
    /// server (so busy accounting survives) but receives no new tenancies.
    active: Vec<usize>,
    per_loop: Bandwidth,
    arbitration: Duration,
    efficiency: f64,
    bytes: u64,
    /// Memoized `(bytes, wire_time(bytes))` of the last transfer.
    cached: Option<(u64, Duration)>,
}

impl FcLoop {
    /// A dual loop with the given aggregate bandwidth (each loop carries
    /// half), default arbitration and framing efficiency.
    pub fn dual(aggregate: Bandwidth) -> Self {
        Self::with_loops(2, aggregate, DEFAULT_ARBITRATION, DEFAULT_EFFICIENCY)
    }

    /// A loop set with `n` loops sharing `aggregate` bandwidth equally.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `efficiency` is not in `(0, 1]`.
    pub fn with_loops(
        n: usize,
        aggregate: Bandwidth,
        arbitration: Duration,
        efficiency: f64,
    ) -> Self {
        assert!(n > 0, "need at least one loop");
        assert!(
            efficiency > 0.0 && efficiency <= 1.0,
            "efficiency must be in (0, 1], got {efficiency}"
        );
        FcLoop {
            loops: vec![FifoServer::new(); n],
            active: (0..n).collect(),
            per_loop: Bandwidth::from_bytes_per_sec(aggregate.bytes_per_sec() / n as f64),
            arbitration,
            efficiency,
            bytes: 0,
            cached: None,
        }
    }

    /// Drops loop `ix` from service: devices formerly assigned to it fail
    /// over to the surviving loops, which now carry all traffic.
    ///
    /// Dropping an already-dropped loop is a no-op; the last active loop
    /// refuses to drop (a totally dead interconnect would deadlock the
    /// simulation rather than model anything).
    pub fn fail_loop(&mut self, ix: usize) {
        if self.active.len() <= 1 {
            return;
        }
        self.active.retain(|&a| a != ix % self.loops.len());
    }

    /// Transfers `bytes` from device `src` at `now`; returns delivery time.
    ///
    /// The source's loop is chosen statically by device parity, the usual
    /// dual-loop assignment for drives with two ports.
    pub fn transfer(&mut self, now: SimTime, src: usize, bytes: u64, tag: &'static str) -> SimTime {
        let loop_ix = self.active[src % self.active.len()];
        // Memoized for the dominant fixed-size batch traffic: identical
        // expression, identical result, so reports stay bit-identical.
        let wire_time = match self.cached {
            Some((b, d)) if b == bytes => d,
            _ => {
                let d = self.per_loop.scale(self.efficiency).transfer_time(bytes);
                self.cached = Some((bytes, d));
                d
            }
        };
        let grant = self.loops[loop_ix].offer(now, self.arbitration + wire_time, tag);
        self.bytes += bytes;
        grant.end
    }

    /// Arbitration overhead per tenancy: the conservative lookahead
    /// bound for partitioned event scheduling on this interconnect.
    pub fn arbitration(&self) -> Duration {
        self.arbitration
    }

    /// Aggregate nominal bandwidth across loops.
    pub fn aggregate_bandwidth(&self) -> Bandwidth {
        Bandwidth::from_bytes_per_sec(self.per_loop.bytes_per_sec() * self.loops.len() as f64)
    }

    /// Number of loops.
    pub fn loop_count(&self) -> usize {
        self.loops.len()
    }

    /// Total bytes carried across all loops.
    pub fn bytes_carried(&self) -> u64 {
        self.bytes
    }

    /// Earliest time any loop is free.
    pub fn free_at(&self) -> SimTime {
        self.loops
            .iter()
            .map(FifoServer::free_at)
            .min()
            .expect("at least one loop")
    }

    /// Cumulative busy (tenancy) time summed across all loops.
    pub fn busy_total(&self) -> Duration {
        self.loops.iter().map(FifoServer::busy_total).sum()
    }

    /// Cumulative queueing time summed across all loops
    /// (request→arbitration-grant).
    pub fn wait_total(&self) -> Duration {
        self.loops.iter().map(FifoServer::wait_total).sum()
    }

    /// Serializes the loop set's mutable state for checkpointing: the
    /// active-loop set (mutated by [`FcLoop::fail_loop`]), byte counter,
    /// and every loop's server. Rates and arbitration are configuration.
    pub fn save_state(&self, w: &mut StateWriter) {
        w.field("bytes", self.bytes);
        w.list("active", self.active.iter().copied());
        w.field("loops", self.loops.len());
        for l in &self.loops {
            l.save_state(w);
        }
    }

    /// Restores state saved by [`FcLoop::save_state`] into a loop set
    /// built with the same configuration. The wire-time memo is dropped;
    /// it repopulates with identical values.
    ///
    /// # Errors
    ///
    /// Returns [`StateError`] on malformed input, a loop-count mismatch,
    /// or an invalid active set.
    pub fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), StateError> {
        let bytes = r.num("bytes")?;
        let active: Vec<usize> = r.nums("active")?;
        let n: usize = r.num("loops")?;
        if n != self.loops.len() {
            return Err(StateError::new("loop count mismatch"));
        }
        if active.is_empty() || active.iter().any(|&a| a >= n) {
            return Err(StateError::new("invalid active loop set"));
        }
        let mut loops = Vec::with_capacity(n);
        for _ in 0..n {
            loops.push(FifoServer::load_state(r)?);
        }
        self.loops = loops;
        self.active = active;
        self.bytes = bytes;
        self.cached = None;
        Ok(())
    }

    /// Aggregate utilization over `elapsed`.
    pub fn utilization(&self, elapsed: Duration) -> f64 {
        if elapsed.is_zero() {
            return 0.0;
        }
        let busy = self.busy_total();
        (busy.as_secs_f64() / (elapsed.as_secs_f64() * self.loops.len() as f64)).min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn dual200() -> FcLoop {
        FcLoop::dual(Bandwidth::from_mb_per_sec(200.0))
    }

    #[test]
    fn loops_split_aggregate_bandwidth() {
        let fc = dual200();
        assert_eq!(fc.loop_count(), 2);
        assert!((fc.aggregate_bandwidth().mb_per_sec() - 200.0).abs() < 1e-9);
    }

    #[test]
    fn same_parity_sources_contend() {
        let mut fc = dual200();
        let a = fc.transfer(SimTime::ZERO, 0, 1_000_000, "x");
        let b = fc.transfer(SimTime::ZERO, 2, 1_000_000, "x");
        // Both on loop 0: serialized.
        assert!(b > a);
        assert!(b.as_secs_f64() >= 2.0 * 1_000_000.0 / (100e6 * DEFAULT_EFFICIENCY));
    }

    #[test]
    fn opposite_parity_sources_run_in_parallel() {
        let mut fc = dual200();
        let a = fc.transfer(SimTime::ZERO, 0, 1_000_000, "x");
        let b = fc.transfer(SimTime::ZERO, 1, 1_000_000, "x");
        assert_eq!(a, b, "different loops do not contend");
    }

    #[test]
    fn bisection_does_not_grow_with_devices() {
        // 16 or 128 senders: total time for the same aggregate volume is
        // identical — the defining FC-AL property.
        let volume_each = 1_000_000u64;
        let run = |senders: usize| {
            let mut fc = dual200();
            let mut last = SimTime::ZERO;
            for s in 0..senders {
                let t = fc.transfer(SimTime::ZERO, s, volume_each * 16 / senders as u64, "x");
                last = last.max(t);
            }
            last
        };
        let t16 = run(16);
        let t128 = run(128);
        let ratio = t16.as_secs_f64() / t128.as_secs_f64();
        assert!(
            (0.9..1.1).contains(&ratio),
            "same volume, same time regardless of fan-in: {ratio}"
        );
    }

    #[test]
    fn doubling_bandwidth_halves_transfer_time() {
        let mut fc200 = dual200();
        let mut fc400 = FcLoop::dual(Bandwidth::from_mb_per_sec(400.0));
        let t200 = fc200.transfer(SimTime::ZERO, 0, 50_000_000, "x");
        let t400 = fc400.transfer(SimTime::ZERO, 0, 50_000_000, "x");
        let ratio = t200.as_secs_f64() / t400.as_secs_f64();
        assert!((1.9..2.1).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn dropped_loop_forces_survivor_contention() {
        let mut fc = dual200();
        fc.fail_loop(1);
        // Both parities now land on loop 0 and serialize.
        let a = fc.transfer(SimTime::ZERO, 0, 1_000_000, "x");
        let b = fc.transfer(SimTime::ZERO, 1, 1_000_000, "x");
        assert!(b > a, "survivor loop serializes all traffic");
    }

    #[test]
    fn last_active_loop_refuses_to_drop() {
        let mut fc = dual200();
        fc.fail_loop(0);
        fc.fail_loop(1);
        fc.fail_loop(1);
        // Still functional: one loop survives.
        let t = fc.transfer(SimTime::ZERO, 3, 1_000, "x");
        assert!(t > SimTime::ZERO);
    }

    #[test]
    fn state_round_trips_after_loop_failure() {
        let mut live = dual200();
        live.transfer(SimTime::ZERO, 0, 1_000_000, "x");
        live.transfer(SimTime::ZERO, 1, 500_000, "y");
        live.fail_loop(1);

        let mut w = StateWriter::new();
        live.save_state(&mut w);
        let text = w.finish();

        let mut restored = dual200();
        restored
            .load_state(&mut StateReader::new(&text))
            .expect("restore");

        // Post-failure routing (all parities on loop 0) must carry over.
        let now = SimTime::ZERO + Duration::from_millis(50);
        for src in [0usize, 1, 2, 3] {
            assert_eq!(
                live.transfer(now, src, 123_456, "z"),
                restored.transfer(now, src, 123_456, "z"),
                "continuation diverged for src {src}"
            );
        }
        assert_eq!(live.bytes_carried(), restored.bytes_carried());
        assert_eq!(live.busy_total(), restored.busy_total());
        assert_eq!(live.wait_total(), restored.wait_total());
    }

    #[test]
    fn load_state_rejects_mismatched_loop_count() {
        let live = dual200();
        let mut w = StateWriter::new();
        live.save_state(&mut w);
        let text = w.finish();
        let mut four = FcLoop::with_loops(
            4,
            Bandwidth::from_mb_per_sec(200.0),
            DEFAULT_ARBITRATION,
            DEFAULT_EFFICIENCY,
        );
        assert!(four.load_state(&mut StateReader::new(&text)).is_err());
    }

    #[test]
    #[should_panic(expected = "at least one loop")]
    fn zero_loops_rejected() {
        FcLoop::with_loops(0, Bandwidth::from_mb_per_sec(100.0), Duration::ZERO, 1.0);
    }

    #[test]
    #[should_panic(expected = "efficiency")]
    fn bad_efficiency_rejected() {
        FcLoop::with_loops(2, Bandwidth::from_mb_per_sec(100.0), Duration::ZERO, 1.5);
    }

    proptest! {
        /// Delivery time is never earlier than the wire time of the
        /// message itself.
        #[test]
        fn prop_wire_time_lower_bound(src in 0usize..64, bytes in 1u64..10_000_000) {
            let mut fc = dual200();
            let t = fc.transfer(SimTime::ZERO, src, bytes, "x");
            let wire = bytes as f64 / (100e6 * DEFAULT_EFFICIENCY);
            prop_assert!(t.as_secs_f64() >= wire);
        }
    }
}
