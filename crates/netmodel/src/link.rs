//! A point-to-point, queue-based link.
//!
//! This is the paper's I/O-interconnect model verbatim: "a simple
//! queue-based model that has parameters for startup latency, transfer
//! speed and the capacity of the interconnect".

use simcore::state::{StateError, StateReader, StateWriter};
use simcore::{Bandwidth, Duration, FifoServer, SimTime};

/// A unidirectional link. A full-duplex channel is a pair of `Link`s.
///
/// # Example
///
/// ```
/// use netmodel::Link;
/// use simcore::{Bandwidth, Duration, SimTime};
///
/// let mut nic = Link::new(Bandwidth::from_mbit_per_sec(100.0), Duration::from_micros(50));
/// let arrival = nic.send(SimTime::ZERO, 1_250_000, "shuffle");
/// // 1.25 MB at 12.5 MB/s = 100 ms, plus 50 µs latency.
/// assert_eq!(arrival.as_micros(), 100_050);
/// ```
#[derive(Debug, Clone)]
pub struct Link {
    bandwidth: Bandwidth,
    latency: Duration,
    server: FifoServer,
    bytes: u64,
    /// Memoized `(bytes, transfer_time(bytes))` of the last send. Phase
    /// traffic is overwhelmingly fixed-size batches, so this hit skips
    /// the float division + round on the event-loop hot path. Same
    /// expression, same result: reports stay bit-identical.
    cached: Option<(u64, Duration)>,
}

impl Link {
    /// Creates an idle link with the given transfer rate and startup latency.
    pub fn new(bandwidth: Bandwidth, latency: Duration) -> Self {
        Link {
            bandwidth,
            latency,
            server: FifoServer::new(),
            bytes: 0,
            cached: None,
        }
    }

    /// Enqueues a message of `bytes` at `now`; returns its arrival time at
    /// the far end (serialization occupies the link; latency does not).
    pub fn send(&mut self, now: SimTime, bytes: u64, tag: &'static str) -> SimTime {
        self.transmit(now, bytes, tag).end + self.latency
    }

    /// Enqueues a message and returns the raw serialization window
    /// (start/end of link occupancy), for callers composing pipelined
    /// multi-hop paths.
    pub fn transmit(
        &mut self,
        now: SimTime,
        bytes: u64,
        tag: &'static str,
    ) -> simcore::server::Grant {
        let service = match self.cached {
            Some((b, d)) if b == bytes => d,
            _ => {
                let d = self.bandwidth.transfer_time(bytes);
                self.cached = Some((bytes, d));
                d
            }
        };
        let grant = self.server.offer(now, service, tag);
        self.bytes += bytes;
        grant
    }

    /// Degrades the link to `factor` of its current bandwidth (a flapping
    /// or renegotiated-down connection). Messages already queued keep the
    /// service time they were booked with; only later sends slow down.
    ///
    /// # Panics
    ///
    /// Panics unless `factor` is in `(0, 1]`.
    pub fn degrade(&mut self, factor: f64) {
        assert!(
            factor > 0.0 && factor <= 1.0,
            "link degrade factor must be in (0, 1], got {factor}"
        );
        self.bandwidth = self.bandwidth.scale(factor);
        // The memo was computed at the old rate.
        self.cached = None;
    }

    /// When the link next becomes free.
    pub fn free_at(&self) -> SimTime {
        self.server.free_at()
    }

    /// Total bytes carried.
    pub fn bytes_carried(&self) -> u64 {
        self.bytes
    }

    /// Total serialization (busy) time.
    pub fn busy_total(&self) -> Duration {
        self.server.busy_total()
    }

    /// Cumulative time transfers spent queued behind the wire before
    /// transmission began.
    pub fn wait_total(&self) -> Duration {
        self.server.wait_total()
    }

    /// Link rate.
    pub fn bandwidth(&self) -> Bandwidth {
        self.bandwidth
    }

    /// Startup latency.
    pub fn latency(&self) -> Duration {
        self.latency
    }

    /// Fraction of `elapsed` the link was serializing data.
    pub fn utilization(&self, elapsed: Duration) -> f64 {
        self.server.utilization(elapsed)
    }

    /// Serializes the link's mutable state for checkpointing. Bandwidth
    /// is captured bit-exactly because [`Link::degrade`] mutates it;
    /// startup latency is pure configuration and is not written.
    pub fn save_state(&self, w: &mut StateWriter) {
        w.f64_field("bandwidth", self.bandwidth.bytes_per_sec());
        w.field("bytes", self.bytes);
        self.server.save_state(w);
    }

    /// Restores state saved by [`Link::save_state`] into a link built
    /// with the same configuration ([`Link::new`]). The transfer-time
    /// memo is dropped; it repopulates with identical values.
    ///
    /// # Errors
    ///
    /// Returns [`StateError`] on malformed input.
    pub fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), StateError> {
        self.bandwidth = Bandwidth::from_bytes_per_sec(r.f64_field("bandwidth")?);
        self.bytes = r.num("bytes")?;
        self.server = FifoServer::load_state(r)?;
        self.cached = None;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn fast_ethernet() -> Link {
        Link::new(
            Bandwidth::from_mbit_per_sec(100.0),
            Duration::from_micros(50),
        )
    }

    #[test]
    fn serialization_time_dominates_large_messages() {
        let mut l = fast_ethernet();
        let arrival = l.send(SimTime::ZERO, 12_500_000, "x");
        // 12.5 MB at 12.5 MB/s = 1 s + 50 µs.
        assert_eq!(arrival.as_micros(), 1_000_050);
    }

    #[test]
    fn back_to_back_messages_queue() {
        let mut l = fast_ethernet();
        let a = l.send(SimTime::ZERO, 1_250_000, "x");
        let b = l.send(SimTime::ZERO, 1_250_000, "x");
        assert_eq!(b.since(a), Duration::from_micros(100_000));
    }

    #[test]
    fn latency_is_not_occupancy() {
        let mut l = Link::new(Bandwidth::from_mb_per_sec(100.0), Duration::from_millis(10));
        let a = l.send(SimTime::ZERO, 1_000, "x");
        // Link frees long before the in-flight message lands.
        assert!(l.free_at() < a);
    }

    #[test]
    fn accounting() {
        let mut l = fast_ethernet();
        l.send(SimTime::ZERO, 1_000, "x");
        l.send(SimTime::ZERO, 2_000, "x");
        assert_eq!(l.bytes_carried(), 3_000);
        assert!(l.busy_total() > Duration::ZERO);
        assert!(l.utilization(Duration::from_secs(1)) > 0.0);
    }

    #[test]
    fn degrade_slows_later_sends_only() {
        let mut l = Link::new(Bandwidth::from_mb_per_sec(100.0), Duration::ZERO);
        let healthy = l.send(SimTime::ZERO, 1_000_000, "x");
        assert_eq!(healthy.as_micros(), 10_000);
        l.degrade(0.5);
        let slowed = l.send(healthy, 1_000_000, "x");
        assert_eq!(slowed.since(healthy), Duration::from_micros(20_000));
    }

    #[test]
    #[should_panic(expected = "degrade factor")]
    fn degrade_rejects_out_of_range() {
        fast_ethernet().degrade(0.0);
    }

    #[test]
    fn state_round_trips_and_continues_identically() {
        let mut live = fast_ethernet();
        live.send(SimTime::ZERO, 1_250_000, "x");
        live.degrade(0.5);
        live.send(SimTime::ZERO, 1_250_000, "y");

        let mut w = StateWriter::new();
        live.save_state(&mut w);
        let text = w.finish();

        let mut restored = fast_ethernet();
        restored
            .load_state(&mut StateReader::new(&text))
            .expect("restore");

        let now = live.free_at();
        assert_eq!(
            live.send(now, 777_777, "x"),
            restored.send(now, 777_777, "x"),
            "continuation diverged"
        );
        assert_eq!(live.bytes_carried(), restored.bytes_carried());
        assert_eq!(live.busy_total(), restored.busy_total());
        assert_eq!(live.wait_total(), restored.wait_total());
        assert_eq!(
            live.bandwidth().bytes_per_sec().to_bits(),
            restored.bandwidth().bytes_per_sec().to_bits(),
            "degraded bandwidth must restore bit-exactly"
        );
    }

    proptest! {
        /// Total occupancy equals bytes/bandwidth regardless of message mix.
        #[test]
        fn prop_occupancy_conserved(sizes in proptest::collection::vec(1u64..1_000_000, 1..30)) {
            let mut l = fast_ethernet();
            for s in &sizes {
                l.send(SimTime::ZERO, *s, "x");
            }
            let expect: Duration = sizes.iter().map(|&s| l.bandwidth().transfer_time(s)).sum();
            prop_assert_eq!(l.busy_total(), expect);
        }
    }
}
