//! The commodity-cluster network fabric.
//!
//! Models the paper's cluster network (Section 2.1): every host has a
//! full-duplex 100BaseT NIC into a 24-port Fast Ethernet edge switch (3Com
//! SuperStack II 3900); each edge switch has two Gigabit Ethernet uplinks
//! into a Gigabit core switch (SuperStack II 9300). The 16-host
//! configuration fits one switch; larger configurations span an array of
//! switches. "The network structure has been provisioned to avoid
//! contention in the network and to scale the bisection bandwidth with
//! size of the cluster" — so bisection grows with host count, but each
//! host's injection/delivery rate is capped at 100 Mb/s, which is what
//! makes the front-end the group-by bottleneck in Figure 1.
//!
//! The front-end host occupies the last index (`hosts()`), attached to the
//! first edge switch like any other host.

use simcore::state::{StateError, StateReader, StateWriter};
use simcore::{Bandwidth, Duration, SimTime};

use crate::link::Link;

/// Hosts per edge switch: 24 ports minus ports used for uplinks leave >16
/// usable host ports; the paper packs 16 hosts + front-end on one switch at
/// the smallest size, so we use 20 host ports per switch.
pub const HOSTS_PER_SWITCH: usize = 20;

/// Ethernet payload efficiency (IP/TCP headers, inter-frame gaps).
pub const ETHERNET_EFFICIENCY: f64 = 0.9;

/// A two-level switched Ethernet fabric.
///
/// # Example
///
/// ```
/// use netmodel::ClusterFabric;
/// use simcore::SimTime;
///
/// let mut net = ClusterFabric::new(32);
/// // Host 0 sends 1 MB to host 31 (different edge switches).
/// let arrival = net.send(SimTime::ZERO, 0, 31, 1_000_000, "shuffle");
/// assert!(arrival.as_secs_f64() > 0.08, "NIC-limited to ~11.25 MB/s");
/// ```
#[derive(Debug, Clone)]
pub struct ClusterFabric {
    hosts: usize,
    nic_tx: Vec<Link>,
    nic_rx: Vec<Link>,
    uplink_tx: Vec<Link>,
    uplink_rx: Vec<Link>,
}

impl ClusterFabric {
    /// Builds the fabric for `hosts` worker hosts plus one front-end.
    ///
    /// # Panics
    ///
    /// Panics if `hosts == 0`.
    pub fn new(hosts: usize) -> Self {
        assert!(hosts > 0, "cluster needs at least one host");
        let total = hosts + 1; // + front-end
        let switches = total.div_ceil(HOSTS_PER_SWITCH);
        let nic_bw = Bandwidth::from_mbit_per_sec(100.0).scale(ETHERNET_EFFICIENCY);
        let nic_lat = Duration::from_micros(50);
        // Two GigE uplinks per edge switch, each direction.
        let up_bw = Bandwidth::from_mbit_per_sec(2_000.0).scale(ETHERNET_EFFICIENCY);
        let up_lat = Duration::from_micros(10);
        ClusterFabric {
            hosts,
            nic_tx: (0..total).map(|_| Link::new(nic_bw, nic_lat)).collect(),
            nic_rx: (0..total).map(|_| Link::new(nic_bw, nic_lat)).collect(),
            uplink_tx: (0..switches).map(|_| Link::new(up_bw, up_lat)).collect(),
            uplink_rx: (0..switches).map(|_| Link::new(up_bw, up_lat)).collect(),
        }
    }

    /// Number of worker hosts (the front-end is additional).
    pub fn hosts(&self) -> usize {
        self.hosts
    }

    /// The index of the front-end host.
    pub fn front_end(&self) -> usize {
        self.hosts
    }

    /// Number of edge switches.
    pub fn switches(&self) -> usize {
        self.uplink_tx.len()
    }

    fn switch_of(&self, host: usize) -> usize {
        host / HOSTS_PER_SWITCH
    }

    /// The minimum startup latency of any link in the fabric: a
    /// conservative lookahead bound for partitioned event scheduling (no
    /// cross-host event can land sooner than this after its send).
    pub fn min_link_latency(&self) -> Duration {
        self.nic_tx
            .iter()
            .chain(self.nic_rx.iter())
            .chain(self.uplink_tx.iter())
            .chain(self.uplink_rx.iter())
            .map(Link::latency)
            .fold(None, |acc: Option<Duration>, l| {
                Some(acc.map_or(l, |a| a.min(l)))
            })
            .unwrap_or(Duration::ZERO)
    }

    /// Sends `bytes` from `src` to `dst`; returns delivery time.
    ///
    /// Same-switch traffic crosses only the two NICs (the edge switch
    /// back-plane is non-blocking); cross-switch traffic additionally
    /// crosses both switches' uplink pairs through the (non-blocking)
    /// Gigabit core. Hops are *pipelined* (switches forward frame by
    /// frame), so each hop begins as its upstream hop starts serializing;
    /// delivery completes when the slowest hop finishes.
    ///
    /// # Panics
    ///
    /// Panics if `src == dst` or either index exceeds the front-end index.
    pub fn send(
        &mut self,
        now: SimTime,
        src: usize,
        dst: usize,
        bytes: u64,
        tag: &'static str,
    ) -> SimTime {
        assert!(src != dst, "loopback send");
        assert!(src <= self.hosts && dst <= self.hosts, "host out of range");
        let g1 = self.nic_tx[src].transmit(now, bytes, tag);
        let (ssw, dsw) = (self.switch_of(src), self.switch_of(dst));
        let mut done = g1.end;
        let mut upstream_start = g1.start;
        if ssw != dsw {
            let lat = self.uplink_tx[ssw].latency();
            let g2 = self.uplink_tx[ssw].transmit(upstream_start + lat, bytes, tag);
            let g3 = self.uplink_rx[dsw].transmit(g2.start + lat, bytes, tag);
            done = done.max(g2.end).max(g3.end);
            upstream_start = g3.start;
        }
        let lat = self.nic_rx[dst].latency();
        let g4 = self.nic_rx[dst].transmit(upstream_start + lat, bytes, tag);
        done.max(g4.end) + lat
    }

    /// Degrades `host`'s NIC pair to `factor` of current bandwidth (a
    /// flapping or renegotiated-down edge port).
    ///
    /// # Panics
    ///
    /// Panics if `host` exceeds the front-end index or `factor` is not in
    /// `(0, 1]`.
    pub fn degrade_host_link(&mut self, host: usize, factor: f64) {
        assert!(host <= self.hosts, "host out of range");
        self.nic_tx[host].degrade(factor);
        self.nic_rx[host].degrade(factor);
    }

    /// Total bytes delivered to `host` (its NIC-rx counter).
    pub fn bytes_delivered_to(&self, host: usize) -> u64 {
        self.nic_rx[host].bytes_carried()
    }

    /// Total bytes sent by `host`.
    pub fn bytes_sent_by(&self, host: usize) -> u64 {
        self.nic_tx[host].bytes_carried()
    }

    /// When `host`'s receive NIC frees up (end-point congestion indicator).
    pub fn rx_free_at(&self, host: usize) -> SimTime {
        self.nic_rx[host].free_at()
    }

    /// Cumulative serialization time across all *worker* NICs (tx + rx
    /// lanes; the front-end's NIC is excluded — it is reported separately
    /// as the front-end link).
    pub fn worker_nic_busy_total(&self) -> Duration {
        (0..self.hosts)
            .map(|h| self.nic_tx[h].busy_total() + self.nic_rx[h].busy_total())
            .sum()
    }

    /// Worker NIC lane count (one tx + one rx per worker host), for
    /// normalizing [`ClusterFabric::worker_nic_busy_total`].
    pub fn worker_nic_lanes(&self) -> usize {
        2 * self.hosts
    }

    /// Cumulative queueing time across all *worker* NICs (same lane set
    /// as [`ClusterFabric::worker_nic_busy_total`]).
    pub fn worker_nic_wait_total(&self) -> Duration {
        (0..self.hosts)
            .map(|h| self.nic_tx[h].wait_total() + self.nic_rx[h].wait_total())
            .sum()
    }

    /// Cumulative serialization time on the front-end host's NIC pair.
    pub fn front_end_link_busy_total(&self) -> Duration {
        self.nic_tx[self.hosts].busy_total() + self.nic_rx[self.hosts].busy_total()
    }

    /// Cumulative queueing time on the front-end host's NIC pair.
    pub fn front_end_link_wait_total(&self) -> Duration {
        self.nic_tx[self.hosts].wait_total() + self.nic_rx[self.hosts].wait_total()
    }

    /// Serializes every link's mutable state for checkpointing (NIC
    /// pairs then uplink pairs; counts are fixed by the host count).
    pub fn save_state(&self, w: &mut StateWriter) {
        for l in self
            .nic_tx
            .iter()
            .chain(&self.nic_rx)
            .chain(&self.uplink_tx)
            .chain(&self.uplink_rx)
        {
            l.save_state(w);
        }
    }

    /// Restores state saved by [`ClusterFabric::save_state`] into a
    /// fabric built for the same host count.
    ///
    /// # Errors
    ///
    /// Returns [`StateError`] on malformed input.
    pub fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), StateError> {
        for l in self
            .nic_tx
            .iter_mut()
            .chain(&mut self.nic_rx)
            .chain(&mut self.uplink_tx)
            .chain(&mut self.uplink_rx)
        {
            l.load_state(r)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn sixteen_hosts_fit_one_switch() {
        let net = ClusterFabric::new(16);
        assert_eq!(net.switches(), 1);
        // 128 hosts + front-end span several switches.
        assert_eq!(ClusterFabric::new(128).switches(), 129_usize.div_ceil(20));
    }

    #[test]
    fn nic_limits_point_to_point_rate() {
        let mut net = ClusterFabric::new(16);
        let arrival = net.send(SimTime::ZERO, 0, 1, 11_250_000, "x");
        // 11.25 MB at 11.25 MB/s effective = ~1 s (plus small latencies).
        let secs = arrival.as_secs_f64();
        assert!((1.0..1.1).contains(&secs), "took {secs}");
    }

    #[test]
    fn fan_in_congests_receiver() {
        let mut net = ClusterFabric::new(16);
        let mut last = SimTime::ZERO;
        // 8 hosts send 1 MB each to host 0: delivery serialized at its NIC.
        for src in 1..9 {
            last = last.max(net.send(SimTime::ZERO, src, 0, 1_000_000, "x"));
        }
        let floor = 8_000_000.0 / (12.5e6 * ETHERNET_EFFICIENCY);
        assert!(last.as_secs_f64() >= floor, "fan-in serialized at rx NIC");
        assert_eq!(net.bytes_delivered_to(0), 8_000_000);
    }

    #[test]
    fn bisection_grows_with_cluster_size() {
        // All-to-all of the same total volume: a larger cluster finishes
        // earlier because per-host volume shrinks and uplinks multiply.
        let run = |hosts: usize, total_bytes: u64| {
            let mut net = ClusterFabric::new(hosts);
            let per_pair = total_bytes / (hosts * (hosts - 1)) as u64;
            let mut last = SimTime::ZERO;
            for s in 0..hosts {
                for d in 0..hosts {
                    if s != d {
                        last = last.max(net.send(SimTime::ZERO, s, d, per_pair, "x"));
                    }
                }
            }
            last
        };
        let t16 = run(16, 320_000_000);
        let t64 = run(64, 320_000_000);
        assert!(
            t64.as_secs_f64() < t16.as_secs_f64() / 2.0,
            "64-host all-to-all ({}) much faster than 16-host ({})",
            t64.as_secs_f64(),
            t16.as_secs_f64()
        );
    }

    #[test]
    fn cross_switch_adds_uplink_hops() {
        let mut net = ClusterFabric::new(64);
        let same = net.send(SimTime::ZERO, 0, 1, 1_000_000, "x");
        let mut net2 = ClusterFabric::new(64);
        let cross = net2.send(SimTime::ZERO, 0, 63, 1_000_000, "x");
        assert!(cross > same, "uplink hops add serialization/latency");
    }

    #[test]
    fn front_end_is_reachable() {
        let mut net = ClusterFabric::new(16);
        let fe = net.front_end();
        let t = net.send(SimTime::ZERO, 3, fe, 1_000, "collect");
        assert!(t > SimTime::ZERO);
        assert_eq!(net.bytes_delivered_to(fe), 1_000);
    }

    #[test]
    fn degraded_host_link_slows_its_traffic_only() {
        let mut net = ClusterFabric::new(16);
        let healthy = net.send(SimTime::ZERO, 0, 1, 1_000_000, "x");
        net.degrade_host_link(2, 0.5);
        let mut net2 = ClusterFabric::new(16);
        net2.degrade_host_link(2, 0.5);
        let slowed = net2.send(SimTime::ZERO, 2, 3, 1_000_000, "x");
        let unaffected = net2.send(SimTime::ZERO, 0, 1, 1_000_000, "x");
        assert!(slowed > healthy, "degraded sender pays the slower NIC");
        assert_eq!(unaffected, healthy, "other hosts keep full rate");
    }

    #[test]
    fn state_round_trips_and_continues_identically() {
        // 24 hosts + front-end span two edge switches, so the uplink
        // pairs carry state too.
        let mut live = ClusterFabric::new(24);
        live.send(SimTime::ZERO, 0, 21, 1_000_000, "x");
        live.send(SimTime::ZERO, 5, 0, 250_000, "y");
        live.degrade_host_link(3, 0.5);

        let mut w = StateWriter::new();
        live.save_state(&mut w);
        let text = w.finish();

        let mut restored = ClusterFabric::new(24);
        restored
            .load_state(&mut StateReader::new(&text))
            .expect("restore");

        let now = SimTime::ZERO + Duration::from_millis(500);
        for (s, d) in [(3usize, 7usize), (0, 23), (22, 1)] {
            assert_eq!(
                live.send(now, s, d, 321_000, "z"),
                restored.send(now, s, d, 321_000, "z"),
                "continuation diverged for {s}->{d}"
            );
        }
        assert_eq!(
            live.worker_nic_busy_total(),
            restored.worker_nic_busy_total()
        );
        assert_eq!(
            live.worker_nic_wait_total(),
            restored.worker_nic_wait_total()
        );
        assert_eq!(
            live.front_end_link_busy_total(),
            restored.front_end_link_busy_total()
        );
        assert_eq!(live.bytes_delivered_to(21), restored.bytes_delivered_to(21));
    }

    #[test]
    #[should_panic(expected = "loopback")]
    fn rejects_loopback() {
        ClusterFabric::new(4).send(SimTime::ZERO, 2, 2, 1, "x");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_host() {
        ClusterFabric::new(4).send(SimTime::ZERO, 0, 9, 1, "x");
    }

    proptest! {
        /// Delivery time is bounded below by NIC serialization.
        #[test]
        fn prop_nic_floor(bytes in 1u64..5_000_000, dst in 1usize..16) {
            let mut net = ClusterFabric::new(16);
            let t = net.send(SimTime::ZERO, 0, dst, bytes, "x");
            let floor = bytes as f64 / (12.5e6 * ETHERNET_EFFICIENCY);
            prop_assert!(t.as_secs_f64() >= floor);
        }
    }
}
