//! Host CPU costs of the message-passing library.
//!
//! The paper assumes "an efficient user-space messaging and synchronization
//! library similar to BSPlib that pins send/receive buffers on every host"
//! with an MPI-like asynchronous interface. Sending is not free: the host
//! CPU pays a per-message overhead (descriptor handling, doorbell) and a
//! per-byte cost (one pinned-buffer copy). These costs are charged to the
//! sending/receiving *CPU*, separately from the wire occupancy modelled by
//! the fabric types.

use simcore::Duration;

/// Per-message and per-byte host costs of a messaging layer.
///
/// # Example
///
/// ```
/// use netmodel::MsgCosts;
/// let costs = MsgCosts::user_space_ethernet();
/// let t = costs.send_cost(256 * 1024);
/// assert!(t.as_micros() > costs.per_message.as_micros());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MsgCosts {
    /// Fixed CPU cost per message (send or receive side).
    pub per_message: Duration,
    /// CPU cost per byte copied (pinned-buffer staging), in ns per KiB.
    pub copy_ns_per_kib: u64,
}

impl MsgCosts {
    /// A tuned user-space library over Ethernet (BSPlib-like): ~15 µs per
    /// message, one copy at memory-subsystem speed (~180 MB/s effective on
    /// a 100 MHz-bus Pentium II).
    pub fn user_space_ethernet() -> Self {
        MsgCosts {
            per_message: Duration::from_micros(15),
            copy_ns_per_kib: 5_600, // ≈ 180 MB/s
        }
    }

    /// SCSI-like peer transfers between Active Disks: the DiskOS stream
    /// layer hands buffers to the port without a staging copy; only a
    /// small per-message cost remains.
    pub fn disk_stream() -> Self {
        MsgCosts {
            per_message: Duration::from_micros(10),
            copy_ns_per_kib: 0,
        }
    }

    /// SMP one-way block transfers (shmemput / remote queues): descriptor
    /// cost only; the block-transfer engine moves the data.
    pub fn smp_block_transfer() -> Self {
        MsgCosts {
            per_message: Duration::from_micros(5),
            copy_ns_per_kib: 0,
        }
    }

    /// CPU time to send `bytes` as one message.
    pub fn send_cost(&self, bytes: u64) -> Duration {
        self.per_message + Duration::from_nanos(self.copy_ns_per_kib * bytes / 1024)
    }

    /// CPU time to receive `bytes` as one message (same cost structure).
    pub fn recv_cost(&self, bytes: u64) -> Duration {
        self.send_cost(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ethernet_costs_include_copy() {
        let c = MsgCosts::user_space_ethernet();
        let small = c.send_cost(1024);
        let big = c.send_cost(1024 * 1024);
        assert!(big > small);
        // 1 MiB copy at ~180 MB/s ≈ 5.7 ms.
        assert!(
            (4_000..8_000).contains(&big.as_micros()),
            "{}",
            big.as_micros()
        );
    }

    #[test]
    fn disk_streams_have_no_copy_cost() {
        let c = MsgCosts::disk_stream();
        assert_eq!(c.send_cost(1024 * 1024), c.per_message);
    }

    #[test]
    fn smp_descriptor_cost_is_small() {
        let c = MsgCosts::smp_block_transfer();
        assert!(c.send_cost(1 << 20) < Duration::from_micros(10));
    }

    #[test]
    fn recv_equals_send() {
        let c = MsgCosts::user_space_ethernet();
        assert_eq!(c.send_cost(4096), c.recv_cost(4096));
    }
}
