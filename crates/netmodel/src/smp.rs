//! SMP interconnect and I/O subsystem models (SGI Origin 2000-like).
//!
//! The paper's SMP configuration (Section 2.1): two-processor boards
//! sharing 128 MB, joined by a 1 µs / 780 MB/s interconnect with a 521 MB/s
//! sustained block-transfer engine; a high-bandwidth XIO-like I/O subsystem
//! (two I/O nodes, 1.4 GB/s total); and a dual-loop Fibre Channel I/O
//! interconnect (200 MB/s) for **all** disks. Every byte moved between a
//! disk and memory crosses the FC loop — this is the structural bottleneck
//! the paper identifies for SMP decision support at scale.

use simcore::state::{StateError, StateReader, StateWriter};
use simcore::{Bandwidth, Duration, FifoServer, MultiServer, SimTime};

use crate::fcloop::FcLoop;

/// Inter-board memory fabric: per-board block-transfer engines over
/// low-latency links.
///
/// # Example
///
/// ```
/// use netmodel::SmpFabric;
/// use simcore::SimTime;
///
/// let mut fabric = SmpFabric::new(32); // 64 processors = 32 boards
/// let t = fabric.block_transfer(SimTime::ZERO, 0, 5, 1_000_000, "shuffle");
/// assert!(t.as_secs_f64() > 1.0e6 / 521e6 / 1e3, "at most 521 MB/s per board");
/// ```
#[derive(Debug, Clone)]
pub struct SmpFabric {
    boards: usize,
    bte: Vec<FifoServer>,
    bte_rate: Bandwidth,
    link_latency: Duration,
    bytes: u64,
}

impl SmpFabric {
    /// Creates a fabric for `boards` two-processor boards.
    ///
    /// # Panics
    ///
    /// Panics if `boards == 0`.
    pub fn new(boards: usize) -> Self {
        assert!(boards > 0, "need at least one board");
        SmpFabric {
            boards,
            bte: vec![FifoServer::new(); boards],
            bte_rate: Bandwidth::from_mb_per_sec(521.0),
            link_latency: Duration::from_micros(1),
            bytes: 0,
        }
    }

    /// Number of boards.
    pub fn boards(&self) -> usize {
        self.boards
    }

    /// Cross-board link latency: the conservative lookahead bound for
    /// partitioned event scheduling on this fabric.
    pub fn link_latency(&self) -> Duration {
        self.link_latency
    }

    /// One-way block transfer (shmemput-style) of `bytes` from `src_board`
    /// to `dst_board`. Same-board transfers are plain memory copies at the
    /// block-engine rate without the link latency.
    ///
    /// # Panics
    ///
    /// Panics if a board index is out of range.
    pub fn block_transfer(
        &mut self,
        now: SimTime,
        src_board: usize,
        dst_board: usize,
        bytes: u64,
        tag: &'static str,
    ) -> SimTime {
        assert!(
            src_board < self.boards && dst_board < self.boards,
            "board out of range"
        );
        let grant = self.bte[src_board].offer(now, self.bte_rate.transfer_time(bytes), tag);
        self.bytes += bytes;
        if src_board == dst_board {
            grant.end
        } else {
            grant.end + self.link_latency
        }
    }

    /// Total bytes moved.
    pub fn bytes_moved(&self) -> u64 {
        self.bytes
    }

    /// Cumulative block-transfer-engine busy time summed across boards.
    pub fn busy_total(&self) -> Duration {
        self.bte.iter().map(FifoServer::busy_total).sum()
    }

    /// Cumulative queueing time at the block-transfer engines.
    pub fn wait_total(&self) -> Duration {
        self.bte.iter().map(FifoServer::wait_total).sum()
    }

    /// Serializes the fabric's mutable state for checkpointing (byte
    /// counter, then every board's block-transfer engine).
    pub fn save_state(&self, w: &mut StateWriter) {
        w.field("bytes", self.bytes);
        for s in &self.bte {
            s.save_state(w);
        }
    }

    /// Restores state saved by [`SmpFabric::save_state`] into a fabric
    /// built for the same board count.
    ///
    /// # Errors
    ///
    /// Returns [`StateError`] on malformed input.
    pub fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), StateError> {
        self.bytes = r.num("bytes")?;
        for s in &mut self.bte {
            *s = FifoServer::load_state(r)?;
        }
        Ok(())
    }
}

/// The I/O complex: a (dual) FC loop in front of an XIO-like pair of I/O
/// nodes. All disk traffic, reads and writes, crosses both.
///
/// # Example
///
/// ```
/// use netmodel::SmpIoSubsystem;
/// use simcore::{Bandwidth, SimTime};
///
/// let mut io = SmpIoSubsystem::new(Bandwidth::from_mb_per_sec(200.0));
/// let t = io.disk_transfer(SimTime::ZERO, 0, 256 * 1024, "read");
/// assert!(t > SimTime::ZERO);
/// ```
#[derive(Debug, Clone)]
pub struct SmpIoSubsystem {
    fc: FcLoop,
    xio: MultiServer,
    xio_rate: Bandwidth,
}

impl SmpIoSubsystem {
    /// Creates the I/O complex with the given aggregate FC loop bandwidth
    /// (200 MB/s baseline; 400 MB/s in the Figure 2 variation).
    pub fn new(fc_aggregate: Bandwidth) -> Self {
        SmpIoSubsystem {
            fc: FcLoop::dual(fc_aggregate),
            // Two I/O nodes, 1.4 GB/s total.
            xio: MultiServer::new(2),
            xio_rate: Bandwidth::from_mb_per_sec(700.0),
        }
    }

    /// Moves `bytes` between a disk attached at loop position `disk` and
    /// host memory; returns completion time.
    pub fn disk_transfer(
        &mut self,
        now: SimTime,
        disk: usize,
        bytes: u64,
        tag: &'static str,
    ) -> SimTime {
        let over_loop = self.fc.transfer(now, disk, bytes, tag);
        self.xio
            .offer(over_loop, self.xio_rate.transfer_time(bytes), tag)
            .end
    }

    /// Drops one FC loop: surviving loops carry all disk traffic (see
    /// [`FcLoop::fail_loop`]; the last loop refuses to drop).
    pub fn fail_loop(&mut self, ix: usize) {
        self.fc.fail_loop(ix);
    }

    /// Total bytes that crossed the loop.
    pub fn bytes_carried(&self) -> u64 {
        self.fc.bytes_carried()
    }

    /// The loop's aggregate utilization over `elapsed`.
    pub fn loop_utilization(&self, elapsed: Duration) -> f64 {
        self.fc.utilization(elapsed)
    }

    /// Cumulative loop tenancy time summed across the FC loops.
    pub fn loop_busy_total(&self) -> Duration {
        self.fc.busy_total()
    }

    /// Cumulative loop queueing time (same lane set as
    /// [`SmpIoSubsystem::loop_busy_total`]; the XIO stage is excluded).
    pub fn loop_wait_total(&self) -> Duration {
        self.fc.wait_total()
    }

    /// Number of FC loops in front of the I/O nodes.
    pub fn loop_count(&self) -> usize {
        self.fc.loop_count()
    }

    /// Serializes the I/O complex's mutable state for checkpointing
    /// (the FC loop set, then the XIO bank).
    pub fn save_state(&self, w: &mut StateWriter) {
        self.fc.save_state(w);
        self.xio.save_state(w);
    }

    /// Restores state saved by [`SmpIoSubsystem::save_state`] into an
    /// I/O complex built with the same configuration.
    ///
    /// # Errors
    ///
    /// Returns [`StateError`] on malformed input.
    pub fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), StateError> {
        self.fc.load_state(r)?;
        self.xio = MultiServer::load_state(r)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_board_transfer_skips_link_latency() {
        let mut f = SmpFabric::new(4);
        let local = f.block_transfer(SimTime::ZERO, 0, 0, 1_000, "x");
        let mut f2 = SmpFabric::new(4);
        let remote = f2.block_transfer(SimTime::ZERO, 0, 1, 1_000, "x");
        assert_eq!(remote.since(local), Duration::from_micros(1));
    }

    #[test]
    fn bte_rate_caps_board_output() {
        let mut f = SmpFabric::new(2);
        let t = f.block_transfer(SimTime::ZERO, 0, 1, 521_000_000, "x");
        assert!((t.as_secs_f64() - 1.0).abs() < 0.01, "521 MB in ~1 s");
    }

    #[test]
    fn boards_transfer_in_parallel() {
        let mut f = SmpFabric::new(8);
        let mut last = SimTime::ZERO;
        for b in 0..8 {
            last = last.max(f.block_transfer(SimTime::ZERO, b, (b + 1) % 8, 52_100_000, "x"));
        }
        // Each board pushes 52.1 MB at 521 MB/s = 0.1 s, all concurrently.
        assert!(last.as_secs_f64() < 0.11, "parallel boards: {last}");
        assert_eq!(f.bytes_moved(), 8 * 52_100_000);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_board() {
        SmpFabric::new(2).block_transfer(SimTime::ZERO, 0, 5, 1, "x");
    }

    #[test]
    fn fabric_state_round_trips_and_continues_identically() {
        let mut live = SmpFabric::new(8);
        live.block_transfer(SimTime::ZERO, 0, 1, 1_000_000, "x");
        live.block_transfer(SimTime::ZERO, 0, 0, 500_000, "y");

        let mut w = StateWriter::new();
        live.save_state(&mut w);
        let text = w.finish();

        let mut restored = SmpFabric::new(8);
        restored
            .load_state(&mut StateReader::new(&text))
            .expect("restore");

        let now = SimTime::ZERO + Duration::from_millis(10);
        assert_eq!(
            live.block_transfer(now, 0, 3, 42_000, "z"),
            restored.block_transfer(now, 0, 3, 42_000, "z"),
            "continuation diverged"
        );
        assert_eq!(live.bytes_moved(), restored.bytes_moved());
        assert_eq!(live.busy_total(), restored.busy_total());
        assert_eq!(live.wait_total(), restored.wait_total());
    }

    #[test]
    fn io_state_round_trips_after_loop_failure() {
        let mut live = SmpIoSubsystem::new(Bandwidth::from_mb_per_sec(200.0));
        for d in 0..4 {
            live.disk_transfer(SimTime::ZERO, d, 1_000_000, "x");
        }
        live.fail_loop(0);

        let mut w = StateWriter::new();
        live.save_state(&mut w);
        let text = w.finish();

        let mut restored = SmpIoSubsystem::new(Bandwidth::from_mb_per_sec(200.0));
        restored
            .load_state(&mut StateReader::new(&text))
            .expect("restore");

        let now = SimTime::ZERO + Duration::from_millis(50);
        for d in [0usize, 1, 5] {
            assert_eq!(
                live.disk_transfer(now, d, 64_000, "z"),
                restored.disk_transfer(now, d, 64_000, "z"),
                "continuation diverged for disk {d}"
            );
        }
        assert_eq!(live.bytes_carried(), restored.bytes_carried());
        assert_eq!(live.loop_busy_total(), restored.loop_busy_total());
        assert_eq!(live.loop_wait_total(), restored.loop_wait_total());
    }

    #[test]
    fn io_loop_is_the_bottleneck() {
        // 100 MB through the I/O complex: the 200 MB/s loop dominates the
        // 1.4 GB/s XIO.
        let mut io = SmpIoSubsystem::new(Bandwidth::from_mb_per_sec(200.0));
        let mut last = SimTime::ZERO;
        for d in 0..16 {
            last = last.max(io.disk_transfer(SimTime::ZERO, d, 6_250_000, "x"));
        }
        let secs = last.as_secs_f64();
        // 100 MB at ~190 MB/s effective ≈ 0.52 s.
        assert!((0.4..0.7).contains(&secs), "loop-bound: {secs}");
        assert_eq!(io.bytes_carried(), 100_000_000);
    }

    #[test]
    fn doubling_loop_bandwidth_helps() {
        let run = |mb: f64| {
            let mut io = SmpIoSubsystem::new(Bandwidth::from_mb_per_sec(mb));
            let mut last = SimTime::ZERO;
            for d in 0..32 {
                last = last.max(io.disk_transfer(SimTime::ZERO, d, 10_000_000, "x"));
            }
            last.as_secs_f64()
        };
        let t200 = run(200.0);
        let t400 = run(400.0);
        let ratio = t200 / t400;
        assert!((1.8..2.2).contains(&ratio), "ratio {ratio}");
    }
}
