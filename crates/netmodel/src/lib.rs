//! Interconnect and network models for the Howsim simulator.
//!
//! This crate is the reproduction's analog of **Netsim** (Uysal et al.),
//! which the paper's Howsim used "for modeling the behavior of networks,
//! message-passing libraries and global synchronization operations",
//! together with Howsim's own "simple queue-based model" for I/O
//! interconnects. It provides:
//!
//! * [`Link`] — a point-to-point, queue-based link: startup latency +
//!   size/bandwidth occupancy (the paper's interconnect model).
//! * [`FcLoop`] — a dual Fibre Channel Arbitrated Loop: two shared 100 MB/s
//!   media whose aggregate bisection bandwidth does **not** grow with the
//!   number of attached devices — the defining property the paper's
//!   interconnect experiments probe.
//! * [`ClusterFabric`] — the commodity-cluster network: full-duplex
//!   100BaseT NICs into 24-port edge switches with dual Gigabit Ethernet
//!   uplinks into a Gigabit core (modelled on the 3Com SuperStack II
//!   3900/9300 two-level structure), whose bisection bandwidth grows with
//!   cluster size but whose per-host injection rate is NIC-limited.
//! * [`SmpFabric`] — the SMP's memory-side interconnect: per-board
//!   block-transfer engines (521 MB/s sustained) over low-latency links,
//!   plus [`SmpIoSubsystem`] — the XIO-like I/O complex behind a dual FC
//!   loop that every byte of disk traffic must cross.
//! * [`MsgCosts`] — the per-message/per-byte host CPU costs of the
//!   user-space messaging library (BSPlib-like, as assumed in Section 3).
//! * [`FcSwitchFabric`] — the paper's recommended scaling path beyond 64
//!   disks: multiple FC loops joined by a FibreSwitch, giving a bisection
//!   bandwidth that grows with the number of loop segments.

#![warn(missing_docs)]

pub mod cluster;
pub mod fcloop;
pub mod fcswitch;
pub mod link;
pub mod msg;
pub mod smp;
pub mod sync;

pub use cluster::ClusterFabric;
pub use fcloop::FcLoop;
pub use fcswitch::FcSwitchFabric;
pub use link::Link;
pub use msg::MsgCosts;
pub use smp::{SmpFabric, SmpIoSubsystem};
pub use sync::{BarrierCosts, RemoteQueueCosts, SpinlockCosts};
