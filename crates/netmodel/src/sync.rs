//! Global synchronization: barriers and reduction latency.
//!
//! Netsim modelled "an efficient user-space message-passing and global
//! synchronization library with an MPI-like interface"; the SMP side has
//! spinlocks, remote queues and "global barriers". Every phase boundary in
//! a multi-phase task is a global barrier: no node may start merging until
//! every node has finished partitioning. This module prices that
//! synchronization: a dissemination barrier takes ⌈log₂ n⌉ rounds, each
//! costing one small-message latency plus software overhead.

use simcore::Duration;

/// Per-round software overhead of the barrier implementation (enqueue +
/// wakeup on each participant).
///
/// # Example
///
/// ```
/// use netmodel::BarrierCosts;
///
/// // 128 cluster nodes synchronize in ceil(log2 128) = 7 rounds.
/// let t = BarrierCosts::ethernet().barrier(128);
/// assert!(t.as_micros() < 1_000, "barriers are cheap: {t}");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BarrierCosts {
    /// One small-message network latency (round trip not required in a
    /// dissemination barrier).
    pub hop_latency: Duration,
    /// Per-round CPU/software overhead.
    pub round_overhead: Duration,
}

impl BarrierCosts {
    /// Ethernet-class barrier (the cluster): ~50 µs hops through the
    /// switch plus messaging-library overhead.
    pub fn ethernet() -> Self {
        BarrierCosts {
            hop_latency: Duration::from_micros(60),
            round_overhead: Duration::from_micros(20),
        }
    }

    /// Fibre-Channel-class barrier (Active Disks): loop arbitration
    /// dominates the small-message hop.
    pub fn fibre_channel() -> Self {
        BarrierCosts {
            hop_latency: Duration::from_micros(20),
            round_overhead: Duration::from_micros(10),
        }
    }

    /// SMP barrier: 1 µs interconnect hops and hardware-assisted fetch-op
    /// synchronization (Origin-class).
    pub fn smp() -> Self {
        BarrierCosts {
            hop_latency: Duration::from_micros(1),
            round_overhead: Duration::from_micros(2),
        }
    }

    /// Time for all `n` participants to pass a dissemination barrier.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn barrier(&self, n: usize) -> Duration {
        assert!(n > 0, "a barrier needs participants");
        let rounds = usize::BITS - (n - 1).leading_zeros(); // ceil(log2 n), 0 for n=1
        (self.hop_latency + self.round_overhead) * u64::from(rounds)
    }
}

/// Remote-queue costs (Brewer et al., the paper's SMP message mechanism):
/// a sender enqueues a descriptor into a receiver-polled queue with a
/// single one-way transfer; the receiver pays a dequeue on its next poll.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RemoteQueueCosts {
    /// One-way enqueue (descriptor write across the interconnect).
    pub enqueue: Duration,
    /// Receiver-side dequeue handling.
    pub dequeue: Duration,
}

impl RemoteQueueCosts {
    /// Origin-class remote queues: a cache-line write across a 1 µs
    /// interconnect plus a local dequeue.
    pub fn origin() -> Self {
        RemoteQueueCosts {
            enqueue: Duration::from_micros(2),
            dequeue: Duration::from_micros(1),
        }
    }

    /// End-to-end cost of passing `n` descriptors through the queue.
    pub fn pass(&self, n: u64) -> Duration {
        (self.enqueue + self.dequeue) * n
    }
}

/// Spinlock costs for the shared block queues the paper's SMP sort uses
/// ("we maintained two shared queues (read/write) of fixed-size blocks...
/// When idle, each processor locks the queue and grabs the next block").
///
/// Under contention the lock serializes grabs: total time to hand out
/// `blocks` blocks is `blocks × critical_section`, independent of the
/// number of contending processors (they just wait).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpinlockCosts {
    /// Uncontended acquire + release + queue update.
    pub critical_section: Duration,
}

impl SpinlockCosts {
    /// Origin-class LL/SC spinlock protecting a queue head.
    pub fn origin() -> Self {
        SpinlockCosts {
            critical_section: Duration::from_micros(2),
        }
    }

    /// Total serialized queue-head time to distribute `blocks` blocks.
    pub fn distribute(&self, blocks: u64) -> Duration {
        self.critical_section * blocks
    }

    /// Whether lock serialization is negligible next to a phase of
    /// `phase_time` distributing `blocks` blocks (< 1%).
    pub fn negligible_for(&self, blocks: u64, phase_time: Duration) -> bool {
        self.distribute(blocks).as_nanos() * 100 < phase_time.as_nanos()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn single_node_barrier_is_free() {
        assert_eq!(BarrierCosts::ethernet().barrier(1), Duration::ZERO);
    }

    #[test]
    fn rounds_grow_logarithmically() {
        let b = BarrierCosts::ethernet();
        let per_round = b.hop_latency + b.round_overhead;
        assert_eq!(b.barrier(2), per_round);
        assert_eq!(b.barrier(16), per_round * 4);
        assert_eq!(b.barrier(17), per_round * 5);
        assert_eq!(b.barrier(128), per_round * 7);
    }

    #[test]
    fn smp_barriers_are_cheapest() {
        let n = 64;
        let smp = BarrierCosts::smp().barrier(n);
        let fc = BarrierCosts::fibre_channel().barrier(n);
        let eth = BarrierCosts::ethernet().barrier(n);
        assert!(smp < fc && fc < eth);
    }

    #[test]
    fn barriers_are_microseconds_not_seconds() {
        // Sanity: phase-boundary cost is negligible next to phase times.
        assert!(BarrierCosts::ethernet().barrier(128) < Duration::from_millis(1));
    }

    #[test]
    fn remote_queue_pass_is_linear() {
        let rq = RemoteQueueCosts::origin();
        assert_eq!(rq.pass(0), Duration::ZERO);
        assert_eq!(rq.pass(10), (rq.enqueue + rq.dequeue) * 10);
    }

    #[test]
    fn shared_queue_locking_is_negligible_for_the_paper_workloads() {
        // The SMP sort distributes 16 GB / 256 KB = 65,536 blocks; lock
        // serialization is ~0.13 s against a phase of minutes — which is
        // why the executor does not model it explicitly.
        let lock = SpinlockCosts::origin();
        let blocks = 16_000_000_000u64 / (256 * 1024);
        assert!(lock.distribute(blocks) < Duration::from_millis(200));
        assert!(lock.negligible_for(blocks, Duration::from_secs(60)));
        assert!(!lock.negligible_for(blocks, Duration::from_millis(500)));
    }

    proptest! {
        /// Barrier time is monotone in participant count.
        #[test]
        fn prop_monotone(a in 1usize..1_000, b in 1usize..1_000) {
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            let c = BarrierCosts::fibre_channel();
            prop_assert!(c.barrier(lo) <= c.barrier(hi));
        }
    }
}
