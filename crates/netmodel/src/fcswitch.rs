//! A switched Fibre Channel fabric: the paper's recommended interconnect
//! for configurations beyond 64 disks.
//!
//! "To scale to configurations larger than the ones examined in this
//! paper, we recommend a more aggressive interconnect (e.g., multiple
//! Fibre Channel loops connected by a FibreSwitch)." This module
//! implements that recommendation: devices are grouped onto loop
//! *segments* of eight dual-ported drives; each segment's loop pair is
//! dedicated one loop to outbound and one to inbound tenancies (a real
//! dual-loop discipline that avoids tx/rx arbitration interference), and
//! segments attach to a non-blocking switch through full-rate ports.
//! Intra-segment traffic crosses only its own segment's loops;
//! inter-segment traffic additionally crosses both switch ports — so the
//! fabric's bisection bandwidth grows with the number of segments, unlike
//! the baseline shared dual loop.

use simcore::state::{StateError, StateReader, StateWriter};
use simcore::{Bandwidth, Duration, FifoServer, SimTime};

use crate::fcloop::{DEFAULT_ARBITRATION, DEFAULT_EFFICIENCY};

/// Drives per loop segment (a 200 MB/s dual loop pair serves eight
/// dual-ported drives).
pub const DEVICES_PER_SEGMENT: usize = 8;

/// Multiple FC-AL segments joined by a non-blocking FibreSwitch.
///
/// # Example
///
/// ```
/// use netmodel::FcSwitchFabric;
/// use simcore::{Bandwidth, SimTime};
///
/// // 128 disks on 16 segments: bisection grows with the segment count.
/// let mut fabric = FcSwitchFabric::for_devices(128);
/// let t = fabric.transfer(SimTime::ZERO, 0, 127, 1_000_000, "shuffle");
/// assert!(t > SimTime::ZERO);
/// ```
#[derive(Debug, Clone)]
pub struct FcSwitchFabric {
    tx: Vec<FifoServer>,
    rx: Vec<FifoServer>,
    ports_in: Vec<FifoServer>,
    ports_out: Vec<FifoServer>,
    devices_per_segment: usize,
    /// Per-direction segment rate (one loop's worth, framing included).
    lane_rate: Bandwidth,
    /// Switch port rate (the full segment pair rate).
    port_rate: Bandwidth,
    arbitration: Duration,
    switch_latency: Duration,
    bytes: u64,
}

impl FcSwitchFabric {
    /// Builds a fabric of `segments` loop pairs, each serving
    /// `devices_per_segment` devices at `per_segment` aggregate bandwidth
    /// (half per direction).
    ///
    /// # Panics
    ///
    /// Panics if `segments` or `devices_per_segment` is zero.
    pub fn new(segments: usize, devices_per_segment: usize, per_segment: Bandwidth) -> Self {
        assert!(segments > 0, "need at least one segment");
        assert!(devices_per_segment > 0, "need devices on each segment");
        FcSwitchFabric {
            tx: vec![FifoServer::new(); segments],
            rx: vec![FifoServer::new(); segments],
            ports_in: vec![FifoServer::new(); segments],
            ports_out: vec![FifoServer::new(); segments],
            devices_per_segment,
            lane_rate: Bandwidth::from_bytes_per_sec(per_segment.bytes_per_sec() / 2.0)
                .scale(DEFAULT_EFFICIENCY),
            port_rate: per_segment,
            arbitration: DEFAULT_ARBITRATION,
            switch_latency: Duration::from_micros(2),
            bytes: 0,
        }
    }

    /// A fabric sized for `devices` devices at the paper's 200 MB/s dual
    /// loop rate per segment of [`DEVICES_PER_SEGMENT`] drives.
    pub fn for_devices(devices: usize) -> Self {
        let segments = devices.div_ceil(DEVICES_PER_SEGMENT).max(1);
        Self::new(
            segments,
            DEVICES_PER_SEGMENT,
            Bandwidth::from_mb_per_sec(200.0),
        )
    }

    /// Number of loop segments.
    pub fn segments(&self) -> usize {
        self.tx.len()
    }

    /// Core switch forwarding latency: the conservative lookahead bound
    /// for partitioned event scheduling across segments.
    pub fn switch_latency(&self) -> Duration {
        self.switch_latency
    }

    /// Total devices the fabric addresses.
    pub fn devices(&self) -> usize {
        self.segments() * self.devices_per_segment
    }

    /// Aggregate bisection bandwidth (all segment ports concurrently).
    pub fn bisection_bandwidth(&self) -> Bandwidth {
        Bandwidth::from_bytes_per_sec(self.port_rate.bytes_per_sec() * self.segments() as f64)
    }

    fn segment_of(&self, device: usize) -> usize {
        device / self.devices_per_segment
    }

    /// Transfers `bytes` from device `src` to device `dst`; returns
    /// delivery time.
    ///
    /// # Panics
    ///
    /// Panics if either device index is out of range.
    pub fn transfer(
        &mut self,
        now: SimTime,
        src: usize,
        dst: usize,
        bytes: u64,
        tag: &'static str,
    ) -> SimTime {
        assert!(
            src < self.devices() && dst < self.devices(),
            "device out of range"
        );
        self.bytes += bytes;
        let (sseg, dseg) = (self.segment_of(src), self.segment_of(dst));
        let wire = self.lane_rate.transfer_time(bytes);
        let out = self.tx[sseg].offer(now, self.arbitration + wire, tag).end;
        let at_dst_segment = if sseg == dseg {
            out
        } else {
            let up = self.ports_in[sseg]
                .offer(out, self.port_rate.transfer_time(bytes), tag)
                .end;
            self.ports_out[dseg]
                .offer(
                    up + self.switch_latency,
                    self.port_rate.transfer_time(bytes),
                    tag,
                )
                .end
        };
        self.rx[dseg]
            .offer(at_dst_segment, self.arbitration + wire, tag)
            .end
    }

    /// Transfers to the front-end host, which owns a dedicated switch
    /// port at the full port rate.
    ///
    /// # Panics
    ///
    /// Panics if `src` is out of range.
    pub fn transfer_to_front_end(
        &mut self,
        now: SimTime,
        src: usize,
        bytes: u64,
        tag: &'static str,
    ) -> SimTime {
        assert!(src < self.devices(), "device out of range");
        self.bytes += bytes;
        let sseg = self.segment_of(src);
        let wire = self.lane_rate.transfer_time(bytes);
        let out = self.tx[sseg].offer(now, self.arbitration + wire, tag).end;
        self.ports_in[sseg]
            .offer(out, self.port_rate.transfer_time(bytes), tag)
            .end
            + self.switch_latency
    }

    /// Total bytes carried.
    pub fn bytes_carried(&self) -> u64 {
        self.bytes
    }

    /// Cumulative busy time summed across all segment loops (tx + rx
    /// lanes). Switch-port occupancy is excluded: the ports run at the
    /// full pair rate and never saturate before the loops do.
    pub fn busy_total(&self) -> Duration {
        self.tx
            .iter()
            .chain(self.rx.iter())
            .map(FifoServer::busy_total)
            .sum()
    }

    /// Cumulative queueing time summed across the same tx + rx lanes as
    /// [`FcSwitchFabric::busy_total`] (switch ports likewise excluded, so
    /// wait and busy describe the same lane set).
    pub fn wait_total(&self) -> Duration {
        self.tx
            .iter()
            .chain(self.rx.iter())
            .map(FifoServer::wait_total)
            .sum()
    }

    /// Number of loop lanes carrying traffic (one tx + one rx per
    /// segment), for normalizing [`FcSwitchFabric::busy_total`] into a
    /// utilization.
    pub fn lane_count(&self) -> usize {
        self.tx.len() + self.rx.len()
    }

    /// Serializes the fabric's mutable state for checkpointing (byte
    /// counter, then every loop lane and switch port; counts are fixed
    /// by the segment count).
    pub fn save_state(&self, w: &mut StateWriter) {
        w.field("bytes", self.bytes);
        for s in self
            .tx
            .iter()
            .chain(&self.rx)
            .chain(&self.ports_in)
            .chain(&self.ports_out)
        {
            s.save_state(w);
        }
    }

    /// Restores state saved by [`FcSwitchFabric::save_state`] into a
    /// fabric built with the same configuration.
    ///
    /// # Errors
    ///
    /// Returns [`StateError`] on malformed input.
    pub fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), StateError> {
        self.bytes = r.num("bytes")?;
        for s in self
            .tx
            .iter_mut()
            .chain(&mut self.rx)
            .chain(&mut self.ports_in)
            .chain(&mut self.ports_out)
        {
            *s = FifoServer::load_state(r)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn bisection_grows_with_segments() {
        let small = FcSwitchFabric::for_devices(32);
        let large = FcSwitchFabric::for_devices(128);
        assert!(large.segments() > small.segments());
        assert!(
            large.bisection_bandwidth().bytes_per_sec()
                > 3.0 * small.bisection_bandwidth().bytes_per_sec()
        );
    }

    #[test]
    fn intra_segment_skips_the_switch_ports() {
        let mut f = FcSwitchFabric::for_devices(16);
        let intra = f.transfer(SimTime::ZERO, 0, 1, 1_000_000, "x");
        let mut f2 = FcSwitchFabric::for_devices(16);
        let cross = f2.transfer(SimTime::ZERO, 0, 9, 1_000_000, "x");
        assert!(cross > intra, "switch ports add serialization");
    }

    #[test]
    fn all_to_all_beats_a_shared_loop_at_scale() {
        use crate::fcloop::FcLoop;
        let volume = 1_000_000u64;
        let mut switch = FcSwitchFabric::for_devices(128);
        let mut single = FcLoop::dual(Bandwidth::from_mb_per_sec(200.0));
        let mut t_switch = SimTime::ZERO;
        let mut t_single = SimTime::ZERO;
        for src in 0..128usize {
            let dst = (src + 64) % 128;
            t_switch = t_switch.max(switch.transfer(SimTime::ZERO, src, dst, volume, "x"));
            t_single = t_single.max(single.transfer(SimTime::ZERO, src, volume, "x"));
        }
        assert!(
            t_switch.as_secs_f64() < t_single.as_secs_f64() / 3.0,
            "switched {t_switch} vs single loop {t_single}"
        );
    }

    #[test]
    fn front_end_path_is_reachable_from_every_segment() {
        let mut f = FcSwitchFabric::for_devices(32);
        for src in [0usize, 9, 17, 31] {
            let t = f.transfer_to_front_end(SimTime::ZERO, src, 4_096, "results");
            assert!(t > SimTime::ZERO);
        }
        assert_eq!(f.bytes_carried(), 4 * 4_096);
    }

    #[test]
    fn state_round_trips_and_continues_identically() {
        let mut live = FcSwitchFabric::for_devices(32);
        live.transfer(SimTime::ZERO, 0, 9, 1_000_000, "x");
        live.transfer_to_front_end(SimTime::ZERO, 17, 250_000, "y");

        let mut w = StateWriter::new();
        live.save_state(&mut w);
        let text = w.finish();

        let mut restored = FcSwitchFabric::for_devices(32);
        restored
            .load_state(&mut StateReader::new(&text))
            .expect("restore");

        let now = SimTime::ZERO + Duration::from_millis(3);
        assert_eq!(
            live.transfer(now, 1, 25, 77_000, "z"),
            restored.transfer(now, 1, 25, 77_000, "z"),
            "cross-segment continuation diverged"
        );
        assert_eq!(
            live.transfer_to_front_end(now, 9, 8_192, "r"),
            restored.transfer_to_front_end(now, 9, 8_192, "r"),
            "front-end continuation diverged"
        );
        assert_eq!(live.bytes_carried(), restored.bytes_carried());
        assert_eq!(live.busy_total(), restored.busy_total());
        assert_eq!(live.wait_total(), restored.wait_total());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_unknown_device() {
        let mut f = FcSwitchFabric::new(2, 4, Bandwidth::from_mb_per_sec(200.0));
        f.transfer(SimTime::ZERO, 0, 9, 1, "x");
    }

    proptest! {
        /// Delivery is never faster than one lane's wire time.
        #[test]
        fn prop_wire_floor(src in 0usize..64, dst in 0usize..64, bytes in 1u64..5_000_000) {
            prop_assume!(src != dst);
            let mut f = FcSwitchFabric::for_devices(64);
            let t = f.transfer(SimTime::ZERO, src, dst, bytes, "x");
            let wire = bytes as f64 / (100e6 * DEFAULT_EFFICIENCY);
            prop_assert!(t.as_secs_f64() >= wire);
        }
    }
}
