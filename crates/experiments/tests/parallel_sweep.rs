//! Regression test for the parallel sweep engine: sweeping with one
//! worker and with many workers must produce byte-identical experiment
//! outputs (data, rendered tables, and CSV files).

use howsim::sweep;

/// Runs `f` at 1 worker and at 8 workers and asserts identical results.
///
/// One test drives every comparison sequentially: the worker count is a
/// process-wide setting, so concurrent tests flipping it would race.
fn assert_jobs_invariant<R: PartialEq + std::fmt::Debug>(name: &str, f: impl Fn() -> R) {
    sweep::set_default_jobs(1);
    let serial = f();
    sweep::set_default_jobs(8);
    let parallel = f();
    sweep::set_default_jobs(0);
    assert_eq!(
        serial, parallel,
        "{name}: parallel sweep diverged from serial"
    );
}

#[test]
fn sweeps_are_identical_for_any_worker_count() {
    assert_jobs_invariant("fig1", || {
        let cells = experiments::fig1::run_sizes(&[16]);
        (
            experiments::fig1::render(&cells),
            experiments::csv::fig1(&cells),
        )
    });
    assert_jobs_invariant("fig3", || {
        let rows = experiments::fig3::run_sizes(&[16]);
        (
            experiments::fig3::render(&rows),
            experiments::csv::fig3(&rows),
        )
    });
    assert_jobs_invariant("fig5", || {
        let cells = experiments::fig5::run_sizes(&[16]);
        (
            experiments::fig5::render(&cells),
            experiments::csv::fig5(&cells),
        )
    });
    assert_jobs_invariant("skew", || {
        experiments::skew::run_thetas(16, &[0.0, 1.0])
            .iter()
            .map(|r| (r.task, r.seconds.to_bits(), r.slowdown.to_bits()))
            .collect::<Vec<_>>()
    });
    assert_jobs_invariant("growth", || {
        experiments::growth::run_scales(16, &[1, 2])
            .iter()
            .map(|r| (r.arch, r.scale, r.hours.to_bits()))
            .collect::<Vec<_>>()
    });
}
