//! Regression test for the sweep engine and result cache: sweeping with
//! one worker, with many workers, with a cold cache, and with a warm
//! cache must all produce byte-identical experiment outputs (data,
//! rendered tables, and CSV files).

use howsim::{cache, sweep};

/// Runs `f` under four regimes — cache off at 1 and 8 workers, then
/// cache on cold and warm — and asserts all four results are identical.
///
/// One test drives every comparison sequentially: the worker count and
/// the cache are process-wide settings, so concurrent tests flipping
/// them would race.
fn assert_invariant<R: PartialEq + std::fmt::Debug>(name: &str, f: impl Fn() -> R) {
    cache::set_enabled(false);
    sweep::set_default_jobs(1);
    let baseline = f();
    sweep::set_default_jobs(8);
    assert_eq!(baseline, f(), "{name}: parallel sweep diverged from serial");
    cache::set_enabled(true);
    cache::clear();
    cache::reset_stats();
    assert_eq!(baseline, f(), "{name}: cold cache diverged from no cache");
    assert!(
        cache::stats().misses > 0,
        "{name}: cold run populated cache"
    );
    sweep::set_default_jobs(1);
    assert_eq!(baseline, f(), "{name}: warm cache diverged from no cache");
    assert!(cache::stats().hits > 0, "{name}: warm run was served hits");
    sweep::set_default_jobs(0);
}

#[test]
fn sweeps_are_identical_for_any_worker_count_and_cache_state() {
    assert_invariant("fig1", || {
        let cells = experiments::fig1::run_sizes(&[16]);
        (
            experiments::fig1::render(&cells),
            experiments::csv::fig1(&cells),
        )
    });
    assert_invariant("fig3", || {
        let rows = experiments::fig3::run_sizes(&[16]);
        (
            experiments::fig3::render(&rows),
            experiments::csv::fig3(&rows),
        )
    });
    assert_invariant("fig5", || {
        let cells = experiments::fig5::run_sizes(&[16]);
        (
            experiments::fig5::render(&cells),
            experiments::csv::fig5(&cells),
        )
    });
    assert_invariant("skew", || {
        experiments::skew::run_thetas(16, &[0.0, 1.0])
            .iter()
            .map(|r| (r.task, r.seconds.to_bits(), r.slowdown.to_bits()))
            .collect::<Vec<_>>()
    });
    assert_invariant("growth", || {
        experiments::growth::run_scales(16, &[1, 2])
            .iter()
            .map(|r| (r.arch, r.scale, r.hours.to_bits()))
            .collect::<Vec<_>>()
    });
    assert_invariant("availability", || {
        // Fault-injected runs draw defect placement from the seeded RNG
        // and schedule recovery through the event queue; the rendered
        // table and CSV must still be byte-identical at any worker count
        // and from a warm cache.
        let rows = experiments::availability::run_configs(
            8,
            &[tasks::TaskKind::Select, tasks::TaskKind::Sort],
        );
        (
            experiments::availability::render(&rows),
            experiments::csv::availability(&rows),
        )
    });
    assert_invariant("manifests", || {
        // Manifest JSON includes the git revision but no wall-clock data,
        // so it is cache- and worker-count-invariant.
        experiments::manifests::to_json(&experiments::manifests::run_grid(
            &[tasks::TaskKind::Select],
            &[16],
        ))
    });
}
