//! Figure 3: performance breakdown of sort on Active Disk configurations,
//! including the "Fast Disk" (Hitachi DK3E1T-91) and "Fast I/O"
//! (400 MB/s interconnect) variants.

use arch::Architecture;
use diskmodel::DiskSpec;
use howsim::Report;
use tasks::TaskKind;

use crate::render_table;

/// The three hardware variants of Figure 3's x-axis.
pub const VARIANTS: [&str; 3] = ["Base", "FastDisk", "FastI/O"];

/// The breakdown of one sort run (fractions of total elapsed time, as in
/// Figure 3(a); the per-phase idle split follows 3(b)).
#[derive(Debug, Clone, PartialEq)]
pub struct Breakdown {
    /// Configuration size (disks).
    pub disks: usize,
    /// Hardware variant ("Base", "FastDisk", "FastI/O").
    pub variant: &'static str,
    /// Total simulated seconds.
    pub total_seconds: f64,
    /// Fraction of phase-1 node time in the partitioner disklet.
    pub p1_partitioner: f64,
    /// Fraction of phase-1 node time appending received tuples.
    pub p1_append: f64,
    /// Fraction of phase-1 node time sorting runs.
    pub p1_sort: f64,
    /// Fraction of phase-1 node time idle (waiting on media/network).
    pub p1_idle: f64,
    /// Fraction of phase-2 node time merging.
    pub p2_merge: f64,
    /// Fraction of phase-2 node time idle.
    pub p2_idle: f64,
    /// Phase 1's share of total elapsed time.
    pub p1_share: f64,
}

fn breakdown(disks: usize, variant: &'static str, report: &Report) -> Breakdown {
    let p1 = report.phase("sort").expect("sort phase");
    let p2 = report.phase("merge").expect("merge phase");
    let total = report.elapsed().as_secs_f64();
    Breakdown {
        disks,
        variant,
        total_seconds: total,
        p1_partitioner: p1.cpu_fraction("partitioner"),
        p1_append: p1.cpu_fraction("append"),
        p1_sort: p1.cpu_fraction("sort"),
        p1_idle: p1.idle_fraction(),
        p2_merge: p2.cpu_fraction("merge"),
        p2_idle: p2.idle_fraction(),
        p1_share: p1.elapsed.as_secs_f64() / total,
    }
}

/// Runs Figure 3: sort on 16/32/64/128 Active Disks, each in the base,
/// Fast Disk, and Fast I/O variants.
pub fn run() -> Vec<Breakdown> {
    run_sizes(&arch::PAPER_SIZES)
}

/// Runs Figure 3 for arbitrary sizes.
///
/// Swept in parallel over (size, variant) points; see [`howsim::sweep`].
pub fn run_sizes(sizes: &[usize]) -> Vec<Breakdown> {
    let points: Vec<(usize, &'static str)> = sizes
        .iter()
        .flat_map(|&disks| VARIANTS.into_iter().map(move |v| (disks, v)))
        .collect();
    howsim::sweep::map(&points, |&(disks, variant)| {
        let arch = match variant {
            "Base" => Architecture::active_disks(disks),
            "FastDisk" => {
                Architecture::active_disks(disks).with_disk_spec(DiskSpec::hitachi_dk3e1t_91())
            }
            _ => Architecture::active_disks(disks).with_interconnect_mb(400.0),
        };
        let report = howsim::cache::run(&arch, TaskKind::Sort);
        breakdown(disks, variant, &report)
    })
}

/// Renders Figure 3 as a text table.
pub fn render(rows: &[Breakdown]) -> String {
    let header: Vec<String> = [
        "disks",
        "variant",
        "total(s)",
        "P1share",
        "P1:Part",
        "P1:Append",
        "P1:Sort",
        "P1:Idle",
        "P2:Merge",
        "P2:Idle",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|b| {
            vec![
                b.disks.to_string(),
                b.variant.to_string(),
                format!("{:.1}", b.total_seconds),
                format!("{:.0}%", b.p1_share * 100.0),
                format!("{:.0}%", b.p1_partitioner * 100.0),
                format!("{:.0}%", b.p1_append * 100.0),
                format!("{:.0}%", b.p1_sort * 100.0),
                format!("{:.0}%", b.p1_idle * 100.0),
                format!("{:.0}%", b.p2_merge * 100.0),
                format!("{:.0}%", b.p2_idle * 100.0),
            ]
        })
        .collect();
    render_table(
        "Figure 3: sort execution breakdown on Active Disks \
         (P1 = sort phase, P2 = merge phase; CPU fractions of node time)",
        &header,
        &body,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sort_phase_dominates_execution() {
        // Paper Figure 3(a): "the sort phase (which repartitions the
        // dataset) dominates the execution time for all configurations."
        for b in run_sizes(&[16, 128]) {
            assert!(
                b.p1_share > 0.5,
                "{} disks {}: phase 1 share {:.2}",
                b.disks,
                b.variant,
                b.p1_share
            );
        }
    }

    #[test]
    fn idle_dominates_at_128_disks_and_fast_io_fixes_it() {
        let rows = run_sizes(&[128]);
        let base = rows.iter().find(|b| b.variant == "Base").unwrap();
        let fast_io = rows.iter().find(|b| b.variant == "FastI/O").unwrap();
        let fast_disk = rows.iter().find(|b| b.variant == "FastDisk").unwrap();
        // Paper: "for the 128-disk configuration, idle time dominates".
        assert!(base.p1_idle > 0.5, "P1 idle at 128 disks: {}", base.p1_idle);
        // "upgrading the disks makes little difference whereas upgrading
        // the I/O interconnect has a major impact".
        let io_gain = 1.0 - fast_io.total_seconds / base.total_seconds;
        let disk_gain = 1.0 - fast_disk.total_seconds / base.total_seconds;
        assert!(io_gain > 0.2, "Fast I/O gain at 128 disks: {io_gain}");
        assert!(
            io_gain > 2.0 * disk_gain.max(0.0),
            "I/O ({io_gain}) >> disk ({disk_gain})"
        );
    }

    #[test]
    fn disks_matter_more_than_interconnect_at_16() {
        // Paper: "up to 64-disk configurations, neither the I/O
        // interconnect, nor the disk media is a bottleneck. Accordingly,
        // upgrading either ... makes only a small difference" — and what
        // difference exists comes from the disks, not the loop.
        let rows = run_sizes(&[16]);
        let base = rows.iter().find(|b| b.variant == "Base").unwrap();
        let fast_io = rows.iter().find(|b| b.variant == "FastI/O").unwrap();
        let fast_disk = rows.iter().find(|b| b.variant == "FastDisk").unwrap();
        let io_gain = 1.0 - fast_io.total_seconds / base.total_seconds;
        let disk_gain = 1.0 - fast_disk.total_seconds / base.total_seconds;
        assert!(io_gain < 0.10, "Fast I/O gain at 16 disks: {io_gain}");
        assert!(
            disk_gain > io_gain,
            "disks ({disk_gain}) > loop ({io_gain}) at 16"
        );
    }
}
