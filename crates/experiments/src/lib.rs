//! Experiment drivers that regenerate every table and figure of the
//! paper's evaluation section.
//!
//! | Module | Paper artifact |
//! |---|---|
//! | [`table1`] | Table 1 — cost evolution of 64-node configurations |
//! | [`table2`] | Table 2 — dataset characteristics |
//! | [`fig1`] | Figure 1 — 8 tasks × 3 architectures × 4 sizes |
//! | [`fig2`] | Figure 2 — 200 vs 400 MB/s I/O interconnect |
//! | [`fig3`] | Figure 3 — sort execution breakdown |
//! | [`fig4`] | Figure 4 — impact of disk memory |
//! | [`fig5`] | Figure 5 — restricted communication architecture |
//! | [`beyond64`] | Extension — the paper's FibreSwitch recommendation, evaluated |
//! | [`skew`] | Extension — repartitioning under Zipf key skew |
//! | [`growth`] | Extension — the overnight-mining window under data growth |
//! | [`sensitivity`] | Extension — robustness to the CPU calibration |
//! | [`availability`] | Extension — degraded-mode availability under injected faults |
//! | [`loadsweep`] | Extension — overload robustness under multi-query load |
//!
//! Each module exposes `run()` returning plain data and `render()`
//! producing the aligned text table printed by the `experiments` binary.
//! Absolute times are this simulator's, not the authors' testbed's; the
//! *shape* (who wins, by what factor, where crossovers fall) is the
//! reproduction target, recorded in `EXPERIMENTS.md`.

#![warn(missing_docs)]

pub mod availability;
pub mod beyond64;
pub mod csv;
pub mod fig1;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod growth;
pub mod loadsweep;
pub mod manifests;
pub mod sensitivity;
pub mod skew;
pub mod table1;
pub mod table2;

/// The configuration sizes shared by the figure experiments.
pub use arch::PAPER_SIZES;

/// Formats a ratio for table cells.
pub fn cell(x: f64) -> String {
    format!("{x:.2}")
}

/// Renders one aligned text table: a header row plus body rows.
pub fn render_table(title: &str, header: &[String], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = header.iter().map(String::len).collect();
    for row in rows {
        for (i, c) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(c.len());
            }
        }
    }
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    let fmt_row = |cells: &[String]| -> String {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>width$}", c, width = widths.get(i).copied().unwrap_or(8)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    out.push_str(&fmt_row(header));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row));
        out.push('\n');
    }
    out
}

/// Serializes tests that toggle the global result cache (disabling it for
/// a from-scratch differential pass) so they cannot race each other's
/// cache-hit assertions.
#[cfg(test)]
pub(crate) static CACHE_TOGGLE_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let t = render_table(
            "T",
            &["a".into(), "bb".into()],
            &[
                vec!["1".into(), "2".into()],
                vec!["10".into(), "200".into()],
            ],
        );
        assert!(t.contains("T\n"));
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 5);
        assert_eq!(lines[3].len(), lines[4].len(), "rows align");
    }

    #[test]
    fn cell_formats_two_decimals() {
        assert_eq!(cell(1.0), "1.00");
        assert_eq!(cell(0.456), "0.46");
    }
}
