//! Table 1: cost evolution for 64-node Active Disk and commodity cluster
//! configurations over a one-year period, plus the SMP estimate.

use arch::{PriceDate, PriceTable};

use crate::render_table;

/// One snapshot column of Table 1, with computed totals.
#[derive(Debug, Clone, PartialEq)]
pub struct Column {
    /// Snapshot label ("8/98", "11/98", "7/99").
    pub date: &'static str,
    /// The component prices.
    pub prices: PriceTable,
    /// Computed 64-node Active Disk total.
    pub active_total: u64,
    /// Computed 64-node cluster total.
    pub cluster_total: u64,
    /// Estimated 64-processor SMP price.
    pub smp_total: u64,
}

/// Computes Table 1 for 64-node configurations.
pub fn run() -> Vec<Column> {
    PriceDate::ALL
        .iter()
        .map(|&d| {
            let prices = PriceTable::at(d);
            Column {
                date: d.label(),
                active_total: prices.active_disk_total(64),
                cluster_total: prices.cluster_total(64),
                smp_total: prices.smp_total(64),
                prices,
            }
        })
        .collect()
}

/// Renders Table 1 as text.
pub fn render(cols: &[Column]) -> String {
    let mut header = vec!["Component".to_string()];
    header.extend(cols.iter().map(|c| c.date.to_string()));
    let dollar = |x: u64| format!("${x}");
    let mut rows: Vec<Vec<String>> = Vec::new();
    let push_row = |rows: &mut Vec<Vec<String>>, label: &str, f: &dyn Fn(&Column) -> u64| {
        let mut row = vec![label.to_string()];
        row.extend(cols.iter().map(|c| dollar(f(c))));
        rows.push(row);
    };
    push_row(&mut rows, "Seagate 39102", &|c| c.prices.disk);
    push_row(&mut rows, "Cyrix 6x86 200MHz", &|c| c.prices.embedded_cpu);
    push_row(&mut rows, "32 MB SDRAM", &|c| c.prices.sdram_32mb);
    push_row(&mut rows, "Interconnect (per port)", &|c| {
        c.prices.interconnect_port
    });
    push_row(&mut rows, "Premium", &|c| c.prices.premium);
    push_row(&mut rows, "FC host adaptor", &|c| c.prices.fc_adaptor);
    push_row(&mut rows, "Front-end", &|c| c.prices.front_end);
    push_row(&mut rows, "Active Disk total (computed)", &|c| {
        c.active_total
    });
    push_row(&mut rows, "Active Disk total (published)", &|c| {
        c.prices.published_active_total_64
    });
    push_row(&mut rows, "Cluster node", &|c| c.prices.cluster_node);
    push_row(&mut rows, "Network (per port)", &|c| {
        c.prices.cluster_net_port
    });
    push_row(&mut rows, "Cluster total (computed)", &|c| c.cluster_total);
    push_row(&mut rows, "Cluster total (published)", &|c| {
        c.prices.published_cluster_total_64
    });
    push_row(&mut rows, "SMP estimate", &|c| c.smp_total);
    render_table(
        "Table 1: cost evolution for 64-node configurations",
        &header,
        &rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn three_columns_in_order() {
        let cols = run();
        let dates: Vec<_> = cols.iter().map(|c| c.date).collect();
        assert_eq!(dates, vec!["8/98", "11/98", "7/99"]);
    }

    #[test]
    fn headline_price_claims_hold() {
        for c in run() {
            // "the price of Active Disk configurations is consistently
            // about half that of commodity cluster configurations".
            let ratio = c.cluster_total as f64 / c.active_total as f64;
            assert!((1.8..3.0).contains(&ratio), "{}: {ratio}", c.date);
            // SMP "more than an order of magnitude" above Active Disks.
            assert!(c.smp_total > 10 * c.active_total);
        }
    }

    #[test]
    fn render_contains_all_rows() {
        let text = render(&run());
        for label in [
            "Seagate 39102",
            "Cyrix",
            "Premium",
            "Cluster total",
            "SMP estimate",
        ] {
            assert!(text.contains(label), "missing {label}");
        }
    }
}
