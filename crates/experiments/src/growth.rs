//! Extension experiment: the overnight-mining window under data growth.
//!
//! The paper's opening motivation quotes Greg Papadopolous: "customers are
//! doubling data storage every nine-to-twelve months and would like to
//! 'mine' this data overnight to shape their business practices." This
//! experiment plays that scenario forward: the dmine task (association-rule
//! mining, the paper's "mine") on a fixed 64-disk installation of each
//! architecture as the dataset doubles — ×1 (16 GB) through ×8 (128 GB).
//! The question is which architectures keep the job inside a fixed
//! overnight window, and for how many doublings. Active Disks hold the
//! advantage at every scale: their scan bandwidth is the media's, while
//! the SMP's is its I/O interconnect's.

use arch::Architecture;
use tasks::{plan_task_on, TaskKind};

use crate::render_table;

/// One row: a dataset scale on one architecture.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Architecture short name.
    pub arch: &'static str,
    /// Dataset scale factor (1 = Table 2's 16 GB).
    pub scale: u64,
    /// Dataset size in GB.
    pub dataset_gb: f64,
    /// Simulated hours for the mining run.
    pub hours: f64,
}

/// Runs the growth sweep on `disks`-node installations.
///
/// Swept in parallel over (architecture, scale) points; see
/// [`howsim::sweep`].
pub fn run_scales(disks: usize, scales: &[u64]) -> Vec<Row> {
    let base = TaskKind::DataMine.dataset();
    let points: Vec<(Architecture, u64)> = [
        Architecture::active_disks(disks),
        Architecture::cluster(disks),
        Architecture::smp(disks),
    ]
    .into_iter()
    .flat_map(|arch| scales.iter().map(move |&scale| (arch.clone(), scale)))
    .collect();
    howsim::sweep::map(&points, |(arch, scale)| {
        let dataset = base.scaled_up(*scale);
        let plan = plan_task_on(TaskKind::DataMine, arch, &dataset);
        let secs = howsim::cache::run_plan(arch, &plan).elapsed().as_secs_f64();
        Row {
            arch: arch.short_name(),
            scale: *scale,
            dataset_gb: dataset.total_bytes as f64 / 1e9,
            hours: secs / 3_600.0,
        }
    })
}

/// Runs the default sweep: 64 disks, ×1 to ×8.
pub fn run() -> Vec<Row> {
    run_scales(64, &[1, 2, 4, 8])
}

/// Renders the growth experiment.
pub fn render(rows: &[Row]) -> String {
    let header: Vec<String> = ["arch", "scale", "dataset (GB)", "mining run (h)"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.arch.to_string(),
                format!("x{}", r.scale),
                format!("{:.0}", r.dataset_gb),
                format!("{:.3}", r.hours),
            ]
        })
        .collect();
    render_table(
        "Extension: the overnight-mining window under data growth \
         (dmine on fixed 64-node installations)",
        &header,
        &body,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mining_time_scales_linearly_with_data() {
        let rows = run_scales(16, &[1, 4]);
        for arch in ["Active", "Cluster", "SMP"] {
            let series: Vec<&Row> = rows.iter().filter(|r| r.arch == arch).collect();
            let ratio = series[1].hours / series[0].hours;
            assert!(
                (3.5..4.5).contains(&ratio),
                "{arch}: 4x the data should take ~4x the time, got {ratio:.2}"
            );
        }
    }

    #[test]
    fn active_disks_hold_the_window_longest() {
        // At 64 disks the SMP's loop is the mining bottleneck; its window
        // blows out while the Active Disk farm's scales with the media.
        let rows = run_scales(64, &[8]);
        let get = |arch: &str| rows.iter().find(|r| r.arch == arch).unwrap().hours;
        let active = get("Active");
        let smp = get("SMP");
        assert!(
            smp > 2.0 * active,
            "at 8 doublings the SMP ({smp:.2} h) is far outside Active Disks' window ({active:.2} h)"
        );
    }
}
