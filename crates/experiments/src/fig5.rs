//! Figure 5: impact of a restricted communication architecture — Active
//! Disks allowed to talk only to the front-end host (all peer traffic
//! staged through its memory), normalized to the baseline direct
//! disk-to-disk configuration of the same size.

use arch::Architecture;
use tasks::TaskKind;

use crate::{cell, render_table};

/// One bar of Figure 5.
#[derive(Debug, Clone, PartialEq)]
pub struct Cell {
    /// Task name.
    pub task: &'static str,
    /// Configuration size (disks).
    pub disks: usize,
    /// Seconds with direct disk-to-disk communication (baseline).
    pub secs_direct: f64,
    /// Seconds with all communication routed through the front-end.
    pub secs_restricted: f64,
    /// Restricted time normalized to direct.
    pub normalized: f64,
}

/// Runs Figure 5 for the paper's sizes (32, 64, 128 disks).
pub fn run() -> Vec<Cell> {
    run_sizes(&[32, 64, 128])
}

/// Runs Figure 5 for arbitrary sizes.
///
/// Swept in parallel over (size, task) points; see [`howsim::sweep`].
pub fn run_sizes(sizes: &[usize]) -> Vec<Cell> {
    let points: Vec<(usize, TaskKind)> = sizes
        .iter()
        .flat_map(|&disks| TaskKind::ALL.into_iter().map(move |task| (disks, task)))
        .collect();
    howsim::sweep::map(&points, |&(disks, task)| {
        let direct = howsim::cache::run(&Architecture::active_disks(disks), task)
            .elapsed()
            .as_secs_f64();
        let restricted = howsim::cache::run(
            &Architecture::active_disks(disks).with_direct_disk_to_disk(false),
            task,
        )
        .elapsed()
        .as_secs_f64();
        Cell {
            task: task.name(),
            disks,
            secs_direct: direct,
            secs_restricted: restricted,
            normalized: restricted / direct,
        }
    })
}

/// Renders Figure 5 as a text table.
pub fn render(cells: &[Cell]) -> String {
    let sizes: Vec<usize> = {
        let mut s: Vec<usize> = cells.iter().map(|c| c.disks).collect();
        s.sort_unstable();
        s.dedup();
        s
    };
    let mut header = vec!["task".to_string()];
    header.extend(sizes.iter().map(|d| format!("{d} disks")));
    let rows: Vec<Vec<String>> = TaskKind::ALL
        .iter()
        .map(|t| {
            let mut row = vec![t.name().to_string()];
            for &d in &sizes {
                let c = cells
                    .iter()
                    .find(|c| c.task == t.name() && c.disks == d)
                    .expect("cell present");
                row.push(cell(c.normalized));
            }
            row
        })
        .collect();
    render_table(
        "Figure 5: restricted communication (via front-end only), normalized \
         to direct disk-to-disk",
        &header,
        &rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repartitioning_tasks_suffer_badly() {
        // Paper: "this restriction has a large impact (up to a five-fold
        // slowdown) for the three communication-intensive tasks".
        let cells = run_sizes(&[64]);
        for t in TaskKind::ALL {
            let c = cells
                .iter()
                .find(|c| c.task == t.name() && c.disks == 64)
                .unwrap();
            if t.repartitions() {
                assert!(
                    c.normalized > 1.5,
                    "{}: restricted/direct {:.2} should be a big slowdown",
                    t.name(),
                    c.normalized
                );
            }
        }
    }

    #[test]
    fn other_tasks_are_unaffected() {
        // Paper: "virtually no impact on the remaining five tasks."
        let cells = run_sizes(&[64]);
        for t in TaskKind::ALL {
            if !t.repartitions() {
                let c = cells
                    .iter()
                    .find(|c| c.task == t.name() && c.disks == 64)
                    .unwrap();
                assert!(
                    c.normalized < 1.25,
                    "{}: restricted/direct {:.2} should be near 1",
                    t.name(),
                    c.normalized
                );
            }
        }
    }
}
