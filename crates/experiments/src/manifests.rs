//! Sweep-level manifest aggregation: runs a grid of configurations and
//! collects one [`RunManifest`] per run into a single deterministic
//! `howsim-sweep/v1` JSON document.
//!
//! The grid fans out through [`howsim::cache::run_tasks`], so runs are
//! deduplicated against the result cache (the grid overlaps Figure 1
//! point-for-point), execute in parallel, and aggregate in configuration
//! order — the output is byte-identical for any worker count.

use arch::Architecture;
use howsim::manifest::{git_revision, RunManifest};
use tasks::TaskKind;

/// Sweep manifest schema identifier.
pub const SCHEMA: &str = "howsim-sweep/v1";

/// The architecture constructors swept by the grid, in output order.
fn architectures(disks: usize) -> [Architecture; 3] {
    [
        Architecture::active_disks(disks),
        Architecture::cluster(disks),
        Architecture::smp(disks),
    ]
}

/// Runs `tasks` × all three architectures × `sizes`, returning one
/// manifest per run in deterministic grid order (task-major, then
/// architecture, then size).
pub fn run_grid(tasks: &[TaskKind], sizes: &[usize]) -> Vec<RunManifest> {
    let mut configs: Vec<(Architecture, TaskKind)> = Vec::new();
    for &task in tasks {
        for &disks in sizes {
            for arch in architectures(disks) {
                configs.push((arch, task));
            }
        }
    }
    let reports = howsim::cache::run_tasks(&configs);
    configs
        .iter()
        .zip(&reports)
        .map(|((arch, _), report)| RunManifest::new(arch, report))
        .collect()
}

/// Serializes a sweep of manifests as one `howsim-sweep/v1` document:
/// a compact per-run summary table followed by the full manifests.
pub fn to_json(manifests: &[RunManifest]) -> String {
    let mut out = String::with_capacity(manifests.len() * 4096);
    out.push_str("{\n");
    out.push_str(&format!("  \"schema\": \"{SCHEMA}\",\n"));
    out.push_str(&format!("  \"git_rev\": \"{}\",\n", git_revision()));
    out.push_str(&format!("  \"runs\": {},\n", manifests.len()));
    out.push_str("  \"summary\": [\n");
    for (ix, m) in manifests.iter().enumerate() {
        let (bottleneck, peak) = m
            .attribution
            .bottleneck()
            .map_or(("none", 0.0), |b| (b.resource.key(), b.peak_utilization));
        out.push_str(&format!(
            "    {{\"task\": \"{}\", \"architecture\": \"{}\", \"disks\": {}, \
             \"elapsed_s\": {:.9}, \"events\": {}, \"bottleneck\": \"{}\", \
             \"peak_utilization\": {:.6}}}{}\n",
            m.task,
            m.architecture,
            m.disks,
            m.elapsed.as_secs_f64(),
            m.events,
            bottleneck,
            peak,
            if ix + 1 < manifests.len() { "," } else { "" },
        ));
    }
    out.push_str("  ],\n  \"manifests\": [\n");
    for (ix, m) in manifests.iter().enumerate() {
        out.push_str(m.to_json().trim_end());
        out.push_str(if ix + 1 < manifests.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_order_is_deterministic_and_complete() {
        let ms = run_grid(&[TaskKind::Select], &[2, 4]);
        // 1 task × 2 sizes × 3 architectures.
        assert_eq!(ms.len(), 6);
        assert_eq!(ms[0].architecture, "Active");
        assert_eq!(ms[1].architecture, "Cluster");
        assert_eq!(ms[2].architecture, "SMP");
        assert_eq!(ms[0].disks, 2);
        assert_eq!(ms[3].disks, 4);
    }

    #[test]
    fn sweep_json_is_worker_count_invariant() {
        let a = {
            howsim::sweep::set_default_jobs(1);
            to_json(&run_grid(&[TaskKind::Select], &[2]))
        };
        let b = {
            howsim::sweep::set_default_jobs(4);
            to_json(&run_grid(&[TaskKind::Select], &[2]))
        };
        assert_eq!(a, b);
        assert!(a.contains("\"schema\": \"howsim-sweep/v1\""));
        assert!(a.contains("\"runs\": 3,"));
        assert!(a.contains("\"bottleneck\": \""));
    }
}
