//! Graceful-degradation load sweep.
//!
//! The paper evaluates one decision-support query at a time, but a shared
//! machine serves a stream of them. This experiment drives each
//! architecture with an open-loop Poisson arrival process at multiples of
//! its estimated single-query capacity (plus one closed-loop point), under
//! admission control and per-query deadlines with one retry, and reports
//! how goodput and tail latency degrade as offered load passes saturation.
//!
//! Capacity is estimated from the healthy single-query elapsed times of
//! the mix (weighted mean `L`): one query saturates the machine, so the
//! sustainable rate is about `1/L` queries/s. Offered rates, deadlines,
//! and backoffs are all derived from `L`, so the whole schedule is
//! deterministic: same seed, same table, at any `--jobs` count and with
//! any event-queue backend.
//!
//! Every offered-load point of one (architecture, mix) pair begins with
//! the identical closed-loop warmup ramp, so the sweep runs through the
//! checkpoint fork API: the warmup is simulated once per pair via
//! [`howsim::Simulation::start_workload`], forked per point, and each
//! fork is extended with its measured arrivals
//! ([`howsim::WarmStart::extend`]) — the continuation's report is
//! field-identical to re-simulating warmup + measurement from scratch
//! (enforced by test). Only the measured slice of each report feeds the
//! table.

use arch::Architecture;
use howsim::{AdmissionPolicy, DeadlinePolicy, LoadReport, QueryStatus, Simulation, WorkloadSpec};
use simcore::Duration;
use tasks::{plan_task, TaskKind, TaskPlan};

use crate::render_table;

/// The seed every loaded run uses (arrivals and backoff jitter draw on it).
pub const SEED: u64 = 42;

/// Queries in the closed-loop warmup ramp every point of one
/// (architecture, mix) pair shares.
pub const WARMUP_QUERIES: u32 = 4;

/// Concurrent clients driving the warmup ramp.
const WARMUP_CLIENTS: u32 = 2;

/// Offered-load multiples of the estimated capacity swept by default.
pub const RATES: [f64; 4] = [0.5, 1.0, 1.5, 2.0];

/// The task mixes swept by default: a scan-heavy pair and a
/// shuffle-heavy pair.
pub const MIXES: [(&str, &str); 2] = [
    ("scan", "select:1,aggregate:1"),
    ("shuffle", "sort:1,join:1"),
];

/// Clients in the closed-loop point appended to each configuration.
const CLOSED_CLIENTS: u32 = 4;

/// Admission control every loaded run uses.
const ADMISSION: AdmissionPolicy = AdmissionPolicy {
    max_concurrent: 2,
    queue_limit: 8,
};

/// Fraction of arrivals that must complete (not shed, not timed out) for
/// an offered rate to count as sustained. Goodput-vs-offered would be the
/// steady-state criterion, but short sweeps have edge effects (the
/// makespan extends past the last arrival by the last query's latency),
/// so the completion fraction is the robust deterministic proxy: under
/// admission control and deadlines, overload shows up as shed and
/// timed-out queries.
const SUSTAINED_FRACTION: f64 = 0.9;

/// One row of the load-sweep table: one (architecture, mix, offered-load)
/// point.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Architecture label.
    pub arch: &'static str,
    /// Mix label.
    pub mix: &'static str,
    /// Load label: `0.5x`..`2.0x` for Poisson points, `closed:4` for the
    /// closed-loop point.
    pub load: String,
    /// Offered arrival rate in queries/s (0 for the closed-loop point).
    pub offered_qps: f64,
    /// Queries that finished every phase.
    pub completed: usize,
    /// Queries rejected at admission (queue full).
    pub shed: usize,
    /// Queries that exhausted their deadline and retries.
    pub timed_out: usize,
    /// Queries aborted (fail-stop recovery).
    pub aborted: usize,
    /// Total retry attempts across all queries.
    pub retries: u64,
    /// Completed-query latency percentiles in seconds (None when nothing
    /// completed).
    pub p50_s: Option<f64>,
    /// 95th percentile latency in seconds.
    pub p95_s: Option<f64>,
    /// 99th percentile latency in seconds.
    pub p99_s: Option<f64>,
    /// Completed queries per simulated second.
    pub goodput_qps: f64,
}

/// Per-(architecture, mix) saturation verdict.
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    /// Architecture label.
    pub arch: &'static str,
    /// Mix label.
    pub mix: &'static str,
    /// Highest offered rate (queries/s) at which at least
    /// [`SUSTAINED_FRACTION`] of arrivals completed; 0 when even the
    /// lowest rate collapsed.
    pub max_sustainable_qps: f64,
    /// The load multiple that rate corresponds to.
    pub max_sustainable_x: f64,
}

/// The architectures the load sweep compares.
fn architectures(disks: usize) -> [(&'static str, Architecture); 3] {
    [
        ("Active", Architecture::active_disks(disks)),
        ("Cluster", Architecture::cluster(disks)),
        ("SMP", Architecture::smp(disks)),
    ]
}

/// Runs the load sweep over `mixes` and offered-load multiples `rates`
/// for `disks`-node configurations of every architecture, `queries`
/// arrivals per point, forking each (architecture, mix) pair's shared
/// warmup once.
pub fn run_configs(
    disks: usize,
    queries: u32,
    mixes: &[(&'static str, &'static str)],
    rates: &[f64],
) -> (Vec<Row>, Vec<Summary>) {
    run_configs_inner(disks, queries, mixes, rates, true)
}

/// The pre-fork reference: every point re-simulates its warmup ramp.
/// Kept as the differential baseline (fork-path rows must be
/// field-identical) and as the benchmark's scratch side.
pub fn run_configs_scratch(
    disks: usize,
    queries: u32,
    mixes: &[(&'static str, &'static str)],
    rates: &[f64],
) -> (Vec<Row>, Vec<Summary>) {
    run_configs_inner(disks, queries, mixes, rates, false)
}

/// Shared driver: healthy single-query baselines first (their elapsed
/// times set each mix's capacity estimate, deadline, and backoff), then
/// every loaded point — warmup forked per (arch, mix) pair when `fork`,
/// re-simulated per point otherwise. Both paths read and fill the same
/// composite cache entries, so outputs are byte-identical either way.
fn run_configs_inner(
    disks: usize,
    queries: u32,
    mixes: &[(&'static str, &'static str)],
    rates: &[f64],
    fork: bool,
) -> (Vec<Row>, Vec<Summary>) {
    let archs = architectures(disks);
    // Pass 1: healthy solo latencies for every task that appears in a mix.
    let parsed: Vec<Vec<(TaskKind, u32)>> = mixes
        .iter()
        .map(|(_, spec)| WorkloadSpec::parse_mix(spec).expect("mix spec"))
        .collect();
    let solo_points: Vec<(&'static str, &Architecture, TaskKind)> = archs
        .iter()
        .flat_map(|(name, arch)| {
            let mut tasks: Vec<TaskKind> = Vec::new();
            for &(t, _) in parsed.iter().flatten() {
                if !tasks.contains(&t) {
                    tasks.push(t);
                }
            }
            tasks.into_iter().map(move |t| (*name, arch, t))
        })
        .collect();
    let solo_sims: Vec<(Simulation, TaskPlan)> = solo_points
        .iter()
        .map(|(_, arch, task)| {
            (
                Simulation::new((*arch).clone()).with_seed(SEED),
                plan_task(*task, arch),
            )
        })
        .collect();
    let solo = howsim::cache::run_sims(&solo_sims);
    let solo_secs = |arch: &str, task: TaskKind| -> f64 {
        solo_points
            .iter()
            .zip(&solo)
            .find(|((name, _, t), _)| *name == arch && *t == task)
            .map(|(_, r)| r.elapsed().as_secs_f64())
            .expect("solo baseline present")
    };

    // Pass 2: every loaded point, grouped by (arch, mix) so each group
    // can share one warmup prefix.
    struct Point {
        arch: &'static str,
        mix: &'static str,
        load: String,
        offered_qps: f64,
        spec: WorkloadSpec,
    }
    struct Group {
        sim: Simulation,
        warmup: WorkloadSpec,
        deadline: DeadlinePolicy,
        points: Vec<Point>,
    }
    let mut groups = Vec::new();
    for (name, arch) in &archs {
        for ((mix_name, _), mix) in mixes.iter().zip(&parsed) {
            let weight: u32 = mix.iter().map(|&(_, w)| w).sum();
            let mean_secs: f64 = mix
                .iter()
                .map(|&(t, w)| solo_secs(name, t) * f64::from(w))
                .sum::<f64>()
                / f64::from(weight);
            let deadline = DeadlinePolicy {
                deadline: Some(Duration::from_secs_f64(mean_secs * 4.0)),
                max_retries: 1,
                backoff: Duration::from_secs_f64(mean_secs * 0.25),
            };
            let capacity_qps = 1.0 / mean_secs;
            let mut points = Vec::with_capacity(rates.len() + 1);
            for &x in rates {
                let qps = capacity_qps * x;
                points.push(Point {
                    arch: name,
                    mix: mix_name,
                    load: format!("{x:.1}x"),
                    offered_qps: qps,
                    spec: WorkloadSpec::poisson(qps, queries)
                        .with_mix(mix.clone())
                        .with_seed(SEED),
                });
            }
            points.push(Point {
                arch: name,
                mix: mix_name,
                load: format!("closed:{CLOSED_CLIENTS}"),
                offered_qps: 0.0,
                spec: WorkloadSpec::closed(CLOSED_CLIENTS, queries)
                    .with_mix(mix.clone())
                    .with_seed(SEED),
            });
            groups.push(Group {
                sim: Simulation::new(arch.clone()).with_seed(SEED),
                warmup: WorkloadSpec::closed(WARMUP_CLIENTS, WARMUP_QUERIES)
                    .with_mix(mix.clone())
                    .with_seed(SEED),
                deadline,
                points,
            });
        }
    }
    let group_ix: Vec<usize> = (0..groups.len()).collect();
    let per_group: Vec<Vec<LoadReport>> = howsim::sweep::map(&group_ix, |&gi| {
        let g = &groups[gi];
        let mut reports: Vec<Option<LoadReport>> = g
            .points
            .iter()
            .map(|p| {
                howsim::cache::probe_warm_workload(
                    &g.sim, &g.warmup, &p.spec, ADMISSION, g.deadline,
                )
            })
            .collect();
        if fork && reports.iter().any(Option::is_none) {
            // Simulate the shared warmup ramp once, then fork it per
            // uncached point.
            let mut prefix = g.sim.start_workload(&g.warmup, ADMISSION, g.deadline);
            prefix.run_to_idle();
            for (i, p) in g.points.iter().enumerate() {
                if reports[i].is_some() {
                    continue;
                }
                let mut cont = prefix.fork();
                cont.extend(&p.spec);
                let r = cont.finish();
                howsim::cache::insert_warm_workload(
                    &g.sim, &g.warmup, &p.spec, ADMISSION, g.deadline, &r,
                );
                reports[i] = Some(r);
            }
        } else if !fork {
            for (i, p) in g.points.iter().enumerate() {
                if reports[i].is_some() {
                    continue;
                }
                let mut run = g.sim.start_workload(&g.warmup, ADMISSION, g.deadline);
                run.run_to_idle();
                run.extend(&p.spec);
                let r = run.finish();
                howsim::cache::insert_warm_workload(
                    &g.sim, &g.warmup, &p.spec, ADMISSION, g.deadline, &r,
                );
                reports[i] = Some(r);
            }
        }
        reports
            .into_iter()
            .map(|r| r.expect("every point resolved"))
            .collect()
    });

    let rows: Vec<Row> = groups
        .iter()
        .zip(&per_group)
        .flat_map(|(g, reports)| {
            g.points
                .iter()
                .zip(reports)
                .map(|(p, r)| measured_row(p.arch, p.mix, p.load.clone(), p.offered_qps, r))
        })
        .collect();
    let meta: Vec<(&'static str, &'static str, f64, String)> = groups
        .iter()
        .flat_map(|g| {
            g.points
                .iter()
                .map(|p| (p.arch, p.mix, p.offered_qps, p.load.clone()))
        })
        .collect();

    let mut summaries = Vec::new();
    for (name, _) in &archs {
        for (mix_name, _) in mixes {
            let mut best = (0.0, 0.0);
            for ((arch, mix, offered_qps, load), row) in meta.iter().zip(&rows) {
                if arch != name || mix != mix_name || *offered_qps <= 0.0 {
                    continue;
                }
                let x: f64 = load.trim_end_matches('x').parse().unwrap_or(0.0);
                let total = row.completed + row.shed + row.timed_out + row.aborted;
                let done = row.completed as f64 / total.max(1) as f64;
                if done >= SUSTAINED_FRACTION && *offered_qps > best.0 {
                    best = (*offered_qps, x);
                }
            }
            summaries.push(Summary {
                arch: name,
                mix: mix_name,
                max_sustainable_qps: best.0,
                max_sustainable_x: best.1,
            });
        }
    }
    (rows, summaries)
}

/// Builds one table row from the measured slice of a composite report
/// (the warmup queries — the first [`WARMUP_QUERIES`] outcomes — are
/// shared ramp-up, not measurement).
fn measured_row(
    arch: &'static str,
    mix: &'static str,
    load: String,
    offered_qps: f64,
    report: &LoadReport,
) -> Row {
    let measured = &report.outcomes[WARMUP_QUERIES as usize..];
    let count = |s: QueryStatus| measured.iter().filter(|o| o.status == s).count();
    let mut lats: Vec<Duration> = measured
        .iter()
        .filter(|o| o.status == QueryStatus::Completed)
        .map(|o| o.latency())
        .collect();
    lats.sort();
    // Nearest-rank percentile over the measured completions, mirroring
    // `LoadReport::latency_percentile`.
    let pct = |p: f64| -> Option<f64> {
        if lats.is_empty() {
            return None;
        }
        let rank = ((p / 100.0) * lats.len() as f64).ceil() as usize;
        Some(lats[rank.clamp(1, lats.len()) - 1].as_secs_f64())
    };
    let completed = count(QueryStatus::Completed);
    // Goodput over the measured window: first measured arrival to last
    // measured finish.
    let start = measured.iter().map(|o| o.arrival).min();
    let end = measured.iter().map(|o| o.finished).max();
    let goodput_qps = match (start, end) {
        (Some(s), Some(e)) if e > s && completed > 0 => completed as f64 / e.since(s).as_secs_f64(),
        _ => 0.0,
    };
    Row {
        arch,
        mix,
        load,
        offered_qps,
        completed,
        shed: count(QueryStatus::Shed),
        timed_out: count(QueryStatus::TimedOut),
        aborted: count(QueryStatus::Aborted),
        retries: measured.iter().map(|o| u64::from(o.retries)).sum(),
        p50_s: pct(50.0),
        p95_s: pct(95.0),
        p99_s: pct(99.0),
        goodput_qps,
    }
}

/// Runs the default load sweep (16 disks, 12 queries per point, the
/// standard mixes and rates).
pub fn run() -> (Vec<Row>, Vec<Summary>) {
    run_configs(16, 12, &MIXES, &RATES)
}

/// Renders the load-sweep table plus the per-configuration saturation
/// verdicts.
pub fn render(rows: &[Row], summaries: &[Summary]) -> String {
    let header: Vec<String> = [
        "arch", "mix", "load", "offered", "done", "shed", "t/o", "abrt", "retry", "p50", "p95",
        "p99", "goodput",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let sec = |v: Option<f64>| match v {
        Some(s) => format!("{s:.1}s"),
        None => "-".to_string(),
    };
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.arch.to_string(),
                r.mix.to_string(),
                r.load.clone(),
                if r.offered_qps > 0.0 {
                    format!("{:.4}/s", r.offered_qps)
                } else {
                    "-".to_string()
                },
                r.completed.to_string(),
                r.shed.to_string(),
                r.timed_out.to_string(),
                r.aborted.to_string(),
                r.retries.to_string(),
                sec(r.p50_s),
                sec(r.p95_s),
                sec(r.p99_s),
                format!("{:.4}/s", r.goodput_qps),
            ]
        })
        .collect();
    let mut out = render_table(
        "Extension: overload robustness (Poisson arrivals at multiples of \
         single-query capacity; admission 2:8, deadline 4x mean, 1 retry)",
        &header,
        &body,
    );
    for s in summaries {
        out.push_str(&format!(
            "  max sustainable ({}, {}): {}\n",
            s.arch,
            s.mix,
            if s.max_sustainable_qps > 0.0 {
                format!(
                    "{:.4} queries/s ({:.1}x capacity, >= {:.0}% of arrivals completed)",
                    s.max_sustainable_qps,
                    s.max_sustainable_x,
                    SUSTAINED_FRACTION * 100.0
                )
            } else {
                "none (every rate collapsed)".to_string()
            }
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_emits_rows_and_saturation_verdicts() {
        let mixes = [("scan", "select:1")];
        let (rows, summaries) = run_configs(8, 4, &mixes, &[0.5, 2.0]);
        // 3 architectures x (2 Poisson points + 1 closed point).
        assert_eq!(rows.len(), 3 * 3);
        assert_eq!(summaries.len(), 3);
        for r in &rows {
            assert_eq!(
                r.completed + r.shed + r.timed_out + r.aborted,
                4,
                "{}/{}: every arrival is accounted for",
                r.arch,
                r.load
            );
        }
        // The closed-loop point always completes everything: each client
        // waits for its query, so nothing is shed or times out.
        for r in rows.iter().filter(|r| r.load.starts_with("closed")) {
            assert_eq!(r.completed, 4, "{}: closed loop self-paces", r.arch);
            assert!(r.goodput_qps > 0.0);
        }
        // At half capacity the system keeps up.
        for r in rows.iter().filter(|r| r.load == "0.5x") {
            assert!(
                r.completed >= 3,
                "{}: 0.5x should mostly complete, got {}",
                r.arch,
                r.completed
            );
        }
    }

    #[test]
    fn sweep_is_deterministic_across_repeats() {
        let mixes = [("scan", "aggregate:1")];
        let a = run_configs(4, 3, &mixes, &[1.0]);
        let b = run_configs(4, 3, &mixes, &[1.0]);
        assert_eq!(a, b);
    }

    #[test]
    fn forked_points_match_scratch_runs() {
        let _guard = crate::CACHE_TOGGLE_LOCK.lock().unwrap();
        // Unique config (2 disks, mixed weights) so this test's cache
        // keys are cold regardless of the other tests.
        let mixes = [("scan", "select:2,aggregate:1")];
        let forked = run_configs(2, 3, &mixes, &[1.0, 2.0]);
        // The scratch pass re-simulates warmup + measurement from t=0
        // per point, with the cache disabled so nothing is served from
        // the entries the fork path just inserted.
        howsim::cache::set_enabled(false);
        let scratch = run_configs_scratch(2, 3, &mixes, &[1.0, 2.0]);
        howsim::cache::set_enabled(true);
        assert_eq!(forked, scratch);
    }
}
