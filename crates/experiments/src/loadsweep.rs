//! Graceful-degradation load sweep.
//!
//! The paper evaluates one decision-support query at a time, but a shared
//! machine serves a stream of them. This experiment drives each
//! architecture with an open-loop Poisson arrival process at multiples of
//! its estimated single-query capacity (plus one closed-loop point), under
//! admission control and per-query deadlines with one retry, and reports
//! how goodput and tail latency degrade as offered load passes saturation.
//!
//! Capacity is estimated from the healthy single-query elapsed times of
//! the mix (weighted mean `L`): one query saturates the machine, so the
//! sustainable rate is about `1/L` queries/s. Offered rates, deadlines,
//! and backoffs are all derived from `L`, so the whole schedule is
//! deterministic: same seed, same table, at any `--jobs` count and with
//! any event-queue backend.

use arch::Architecture;
use howsim::{AdmissionPolicy, DeadlinePolicy, Simulation, WorkloadSpec};
use simcore::Duration;
use tasks::{plan_task, TaskKind, TaskPlan};

use crate::render_table;

/// The seed every loaded run uses (arrivals and backoff jitter draw on it).
pub const SEED: u64 = 42;

/// Offered-load multiples of the estimated capacity swept by default.
pub const RATES: [f64; 4] = [0.5, 1.0, 1.5, 2.0];

/// The task mixes swept by default: a scan-heavy pair and a
/// shuffle-heavy pair.
pub const MIXES: [(&str, &str); 2] = [
    ("scan", "select:1,aggregate:1"),
    ("shuffle", "sort:1,join:1"),
];

/// Clients in the closed-loop point appended to each configuration.
const CLOSED_CLIENTS: u32 = 4;

/// Admission control every loaded run uses.
const ADMISSION: AdmissionPolicy = AdmissionPolicy {
    max_concurrent: 2,
    queue_limit: 8,
};

/// Fraction of arrivals that must complete (not shed, not timed out) for
/// an offered rate to count as sustained. Goodput-vs-offered would be the
/// steady-state criterion, but short sweeps have edge effects (the
/// makespan extends past the last arrival by the last query's latency),
/// so the completion fraction is the robust deterministic proxy: under
/// admission control and deadlines, overload shows up as shed and
/// timed-out queries.
const SUSTAINED_FRACTION: f64 = 0.9;

/// One row of the load-sweep table: one (architecture, mix, offered-load)
/// point.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Architecture label.
    pub arch: &'static str,
    /// Mix label.
    pub mix: &'static str,
    /// Load label: `0.5x`..`2.0x` for Poisson points, `closed:4` for the
    /// closed-loop point.
    pub load: String,
    /// Offered arrival rate in queries/s (0 for the closed-loop point).
    pub offered_qps: f64,
    /// Queries that finished every phase.
    pub completed: usize,
    /// Queries rejected at admission (queue full).
    pub shed: usize,
    /// Queries that exhausted their deadline and retries.
    pub timed_out: usize,
    /// Queries aborted (fail-stop recovery).
    pub aborted: usize,
    /// Total retry attempts across all queries.
    pub retries: u64,
    /// Completed-query latency percentiles in seconds (None when nothing
    /// completed).
    pub p50_s: Option<f64>,
    /// 95th percentile latency in seconds.
    pub p95_s: Option<f64>,
    /// 99th percentile latency in seconds.
    pub p99_s: Option<f64>,
    /// Completed queries per simulated second.
    pub goodput_qps: f64,
}

/// Per-(architecture, mix) saturation verdict.
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    /// Architecture label.
    pub arch: &'static str,
    /// Mix label.
    pub mix: &'static str,
    /// Highest offered rate (queries/s) at which at least
    /// [`SUSTAINED_FRACTION`] of arrivals completed; 0 when even the
    /// lowest rate collapsed.
    pub max_sustainable_qps: f64,
    /// The load multiple that rate corresponds to.
    pub max_sustainable_x: f64,
}

/// The architectures the load sweep compares.
fn architectures(disks: usize) -> [(&'static str, Architecture); 3] {
    [
        ("Active", Architecture::active_disks(disks)),
        ("Cluster", Architecture::cluster(disks)),
        ("SMP", Architecture::smp(disks)),
    ]
}

/// Runs the load sweep over `mixes` and offered-load multiples `rates`
/// for `disks`-node configurations of every architecture, `queries`
/// arrivals per point.
///
/// Two batched passes through the result cache: healthy single-query
/// baselines first (their elapsed times set each mix's capacity estimate,
/// deadline, and backoff), then every loaded point in one deterministic
/// parallel sweep.
pub fn run_configs(
    disks: usize,
    queries: u32,
    mixes: &[(&'static str, &'static str)],
    rates: &[f64],
) -> (Vec<Row>, Vec<Summary>) {
    let archs = architectures(disks);
    // Pass 1: healthy solo latencies for every task that appears in a mix.
    let parsed: Vec<Vec<(TaskKind, u32)>> = mixes
        .iter()
        .map(|(_, spec)| WorkloadSpec::parse_mix(spec).expect("mix spec"))
        .collect();
    let solo_points: Vec<(&'static str, &Architecture, TaskKind)> = archs
        .iter()
        .flat_map(|(name, arch)| {
            let mut tasks: Vec<TaskKind> = Vec::new();
            for &(t, _) in parsed.iter().flatten() {
                if !tasks.contains(&t) {
                    tasks.push(t);
                }
            }
            tasks.into_iter().map(move |t| (*name, arch, t))
        })
        .collect();
    let solo_sims: Vec<(Simulation, TaskPlan)> = solo_points
        .iter()
        .map(|(_, arch, task)| {
            (
                Simulation::new((*arch).clone()).with_seed(SEED),
                plan_task(*task, arch),
            )
        })
        .collect();
    let solo = howsim::cache::run_sims(&solo_sims);
    let solo_secs = |arch: &str, task: TaskKind| -> f64 {
        solo_points
            .iter()
            .zip(&solo)
            .find(|((name, _, t), _)| *name == arch && *t == task)
            .map(|(_, r)| r.elapsed().as_secs_f64())
            .expect("solo baseline present")
    };

    // Pass 2: every loaded point, batched through the load cache.
    struct Point {
        arch: &'static str,
        mix: &'static str,
        load: String,
        offered_qps: f64,
    }
    let mut meta = Vec::new();
    let mut batch = Vec::new();
    for (name, arch) in &archs {
        for ((mix_name, _), mix) in mixes.iter().zip(&parsed) {
            let weight: u32 = mix.iter().map(|&(_, w)| w).sum();
            let mean_secs: f64 = mix
                .iter()
                .map(|&(t, w)| solo_secs(name, t) * f64::from(w))
                .sum::<f64>()
                / f64::from(weight);
            let deadline = DeadlinePolicy {
                deadline: Some(Duration::from_secs_f64(mean_secs * 4.0)),
                max_retries: 1,
                backoff: Duration::from_secs_f64(mean_secs * 0.25),
            };
            let capacity_qps = 1.0 / mean_secs;
            for &x in rates {
                let qps = capacity_qps * x;
                let spec = WorkloadSpec::poisson(qps, queries)
                    .with_mix(mix.clone())
                    .with_seed(SEED);
                meta.push(Point {
                    arch: name,
                    mix: mix_name,
                    load: format!("{x:.1}x"),
                    offered_qps: qps,
                });
                batch.push((
                    Simulation::new(arch.clone()).with_seed(SEED),
                    spec,
                    ADMISSION,
                    deadline,
                ));
            }
            let spec = WorkloadSpec::closed(CLOSED_CLIENTS, queries)
                .with_mix(mix.clone())
                .with_seed(SEED);
            meta.push(Point {
                arch: name,
                mix: mix_name,
                load: format!("closed:{CLOSED_CLIENTS}"),
                offered_qps: 0.0,
            });
            batch.push((
                Simulation::new(arch.clone()).with_seed(SEED),
                spec,
                ADMISSION,
                deadline,
            ));
        }
    }
    let reports = howsim::cache::run_workloads(&batch);

    let rows: Vec<Row> = meta
        .iter()
        .zip(&reports)
        .map(|(p, r)| {
            let pct = |q: f64| r.latency_percentile(q).map(|d| d.as_secs_f64());
            Row {
                arch: p.arch,
                mix: p.mix,
                load: p.load.clone(),
                offered_qps: p.offered_qps,
                completed: r.completed(),
                shed: r.shed(),
                timed_out: r.timed_out(),
                aborted: r.aborted(),
                retries: r.retries(),
                p50_s: pct(50.0),
                p95_s: pct(95.0),
                p99_s: pct(99.0),
                goodput_qps: r.goodput_qps(),
            }
        })
        .collect();

    let mut summaries = Vec::new();
    for (name, _) in &archs {
        for (mix_name, _) in mixes {
            let mut best = (0.0, 0.0);
            for (p, row) in meta.iter().zip(&rows) {
                if p.arch != *name || p.mix != *mix_name || p.offered_qps <= 0.0 {
                    continue;
                }
                let x: f64 = p.load.trim_end_matches('x').parse().unwrap_or(0.0);
                let total = row.completed + row.shed + row.timed_out + row.aborted;
                let done = row.completed as f64 / total.max(1) as f64;
                if done >= SUSTAINED_FRACTION && p.offered_qps > best.0 {
                    best = (p.offered_qps, x);
                }
            }
            summaries.push(Summary {
                arch: name,
                mix: mix_name,
                max_sustainable_qps: best.0,
                max_sustainable_x: best.1,
            });
        }
    }
    (rows, summaries)
}

/// Runs the default load sweep (16 disks, 12 queries per point, the
/// standard mixes and rates).
pub fn run() -> (Vec<Row>, Vec<Summary>) {
    run_configs(16, 12, &MIXES, &RATES)
}

/// Renders the load-sweep table plus the per-configuration saturation
/// verdicts.
pub fn render(rows: &[Row], summaries: &[Summary]) -> String {
    let header: Vec<String> = [
        "arch", "mix", "load", "offered", "done", "shed", "t/o", "abrt", "retry", "p50", "p95",
        "p99", "goodput",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let sec = |v: Option<f64>| match v {
        Some(s) => format!("{s:.1}s"),
        None => "-".to_string(),
    };
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.arch.to_string(),
                r.mix.to_string(),
                r.load.clone(),
                if r.offered_qps > 0.0 {
                    format!("{:.4}/s", r.offered_qps)
                } else {
                    "-".to_string()
                },
                r.completed.to_string(),
                r.shed.to_string(),
                r.timed_out.to_string(),
                r.aborted.to_string(),
                r.retries.to_string(),
                sec(r.p50_s),
                sec(r.p95_s),
                sec(r.p99_s),
                format!("{:.4}/s", r.goodput_qps),
            ]
        })
        .collect();
    let mut out = render_table(
        "Extension: overload robustness (Poisson arrivals at multiples of \
         single-query capacity; admission 2:8, deadline 4x mean, 1 retry)",
        &header,
        &body,
    );
    for s in summaries {
        out.push_str(&format!(
            "  max sustainable ({}, {}): {}\n",
            s.arch,
            s.mix,
            if s.max_sustainable_qps > 0.0 {
                format!(
                    "{:.4} queries/s ({:.1}x capacity, >= {:.0}% of arrivals completed)",
                    s.max_sustainable_qps,
                    s.max_sustainable_x,
                    SUSTAINED_FRACTION * 100.0
                )
            } else {
                "none (every rate collapsed)".to_string()
            }
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_emits_rows_and_saturation_verdicts() {
        let mixes = [("scan", "select:1")];
        let (rows, summaries) = run_configs(8, 4, &mixes, &[0.5, 2.0]);
        // 3 architectures x (2 Poisson points + 1 closed point).
        assert_eq!(rows.len(), 3 * 3);
        assert_eq!(summaries.len(), 3);
        for r in &rows {
            assert_eq!(
                r.completed + r.shed + r.timed_out + r.aborted,
                4,
                "{}/{}: every arrival is accounted for",
                r.arch,
                r.load
            );
        }
        // The closed-loop point always completes everything: each client
        // waits for its query, so nothing is shed or times out.
        for r in rows.iter().filter(|r| r.load.starts_with("closed")) {
            assert_eq!(r.completed, 4, "{}: closed loop self-paces", r.arch);
            assert!(r.goodput_qps > 0.0);
        }
        // At half capacity the system keeps up.
        for r in rows.iter().filter(|r| r.load == "0.5x") {
            assert!(
                r.completed >= 3,
                "{}: 0.5x should mostly complete, got {}",
                r.arch,
                r.completed
            );
        }
    }

    #[test]
    fn sweep_is_deterministic_across_repeats() {
        let mixes = [("scan", "aggregate:1")];
        let a = run_configs(4, 3, &mixes, &[1.0]);
        let b = run_configs(4, 3, &mixes, &[1.0]);
        assert_eq!(a, b);
    }
}
