//! Extension experiment: sensitivity to key skew.
//!
//! The paper's datasets use uniformly distributed keys (Table 2), which
//! makes every repartition perfectly balanced. Real decision-support keys
//! are heavy-tailed; hash-partitioning Zipf(θ) keys sends a
//! disproportionate share of the shuffle to the partitions owning the hot
//! ranks, and the hottest node becomes the straggler that sets the phase
//! time. This experiment quantifies that effect for the repartitioning
//! tasks on Active Disks.

use arch::Architecture;
use datagen::zipf::Zipf;
use tasks::planner::apply_shuffle_skew;
use tasks::{plan_task, TaskKind};

use crate::render_table;

/// One row of the skew experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Task name.
    pub task: &'static str,
    /// Zipf exponent of the key distribution (0 = uniform).
    pub theta: f64,
    /// Simulated seconds.
    pub seconds: f64,
    /// Normalized to the uniform (θ = 0) run.
    pub slowdown: f64,
    /// The hottest partition's share of the shuffle.
    pub hottest_share: f64,
}

/// Runs the skew sweep for `disks` Active Disks over the given exponents.
///
/// Swept in parallel over (task, θ) points; each task's first exponent is
/// the normalization base, applied after the sweep so the parallel order
/// cannot affect it.
pub fn run_thetas(disks: usize, thetas: &[f64]) -> Vec<Row> {
    let points: Vec<(TaskKind, f64)> = [TaskKind::Sort, TaskKind::Join]
        .into_iter()
        .flat_map(|task| thetas.iter().map(move |&theta| (task, theta)))
        .collect();
    let mut rows = howsim::sweep::map(&points, |&(task, theta)| {
        let arch = Architecture::active_disks(disks);
        let mut plan = plan_task(task, &arch);
        let hottest = if theta > 0.0 {
            // 100k distinct keys hashed rank-major over the nodes.
            let weights = Zipf::new(100_000, theta).partition_weights(disks);
            let hottest = weights.iter().cloned().fold(0.0, f64::max);
            apply_shuffle_skew(&mut plan, weights);
            hottest
        } else {
            1.0 / disks as f64
        };
        let secs = howsim::cache::run_plan(&arch, &plan)
            .elapsed()
            .as_secs_f64();
        Row {
            task: task.name(),
            theta,
            seconds: secs,
            slowdown: 1.0,
            hottest_share: hottest,
        }
    });
    for series in rows.chunks_mut(thetas.len()) {
        let base = series[0].seconds;
        for r in series {
            r.slowdown = r.seconds / base;
        }
    }
    rows
}

/// Runs the default sweep (64 disks, θ ∈ {0, 0.5, 1.0}).
pub fn run() -> Vec<Row> {
    run_thetas(64, &[0.0, 0.5, 1.0])
}

/// Renders the skew experiment.
pub fn render(rows: &[Row]) -> String {
    let header: Vec<String> = ["task", "theta", "seconds", "slowdown", "hottest node share"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.task.to_string(),
                format!("{:.1}", r.theta),
                format!("{:.1}", r.seconds),
                format!("{:.2}x", r.slowdown),
                format!("{:.1}%", r.hottest_share * 100.0),
            ]
        })
        .collect();
    render_table(
        "Extension: repartitioning under Zipf key skew (Active Disks; θ = 0 \
         is the paper's uniform case)",
        &header,
        &body,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skew_slows_repartitioning_monotonically() {
        let rows = run_thetas(16, &[0.0, 0.5, 1.0]);
        for task in ["sort", "join"] {
            let series: Vec<&Row> = rows.iter().filter(|r| r.task == task).collect();
            assert!((series[0].slowdown - 1.0).abs() < 1e-9);
            assert!(
                series[2].slowdown > series[1].slowdown,
                "{task}: θ=1 ({}) should be worse than θ=0.5 ({})",
                series[2].slowdown,
                series[1].slowdown
            );
            assert!(
                series[2].slowdown > 1.2,
                "{task}: classic Zipf should hurt, got {:.2}",
                series[2].slowdown
            );
        }
    }

    #[test]
    fn hottest_share_tracks_theta() {
        let rows = run_thetas(16, &[0.0, 1.0]);
        let uniform = rows.iter().find(|r| r.theta == 0.0).unwrap();
        let zipf = rows.iter().find(|r| r.theta == 1.0).unwrap();
        assert!(zipf.hottest_share > 2.0 * uniform.hottest_share);
    }
}
