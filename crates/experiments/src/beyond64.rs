//! Extension experiment: scaling beyond the paper's configurations.
//!
//! The paper's first conclusion ends with a recommendation it does not
//! evaluate: "To scale to larger configurations, a more aggressive
//! interconnect (e.g., multiple fibre channel loops connected by a
//! FibreSwitch) would be needed." This experiment evaluates it: sort (the
//! loop-saturating task) on Active Disk farms of 64–512 disks with the
//! baseline dual loop versus the switched multi-loop fabric.

use arch::Architecture;
use tasks::TaskKind;

use crate::render_table;

/// One row of the extension experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Configuration size (disks).
    pub disks: usize,
    /// Sort time on the baseline dual loop (seconds).
    pub dual_loop_secs: f64,
    /// Sort time on the FibreSwitch fabric (seconds).
    pub fibre_switch_secs: f64,
    /// Dual-loop time normalized to the FibreSwitch time.
    pub speedup: f64,
}

/// Runs the extension experiment for the given sizes.
///
/// Swept in parallel over sizes; see [`howsim::sweep`].
pub fn run_sizes(sizes: &[usize]) -> Vec<Row> {
    howsim::sweep::map(sizes, |&disks| {
        let dual = howsim::cache::run(&Architecture::active_disks(disks), TaskKind::Sort)
            .elapsed()
            .as_secs_f64();
        let switched = howsim::cache::run(
            &Architecture::active_disks(disks).with_fibre_switch(),
            TaskKind::Sort,
        )
        .elapsed()
        .as_secs_f64();
        Row {
            disks,
            dual_loop_secs: dual,
            fibre_switch_secs: switched,
            speedup: dual / switched,
        }
    })
}

/// Runs the default sweep (64–512 disks).
pub fn run() -> Vec<Row> {
    run_sizes(&[64, 128, 256, 512])
}

/// Renders the extension experiment.
pub fn render(rows: &[Row]) -> String {
    let header: Vec<String> = ["disks", "dual loop (s)", "FibreSwitch (s)", "speedup"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.disks.to_string(),
                format!("{:.1}", r.dual_loop_secs),
                format!("{:.1}", r.fibre_switch_secs),
                format!("{:.2}x", r.speedup),
            ]
        })
        .collect();
    render_table(
        "Extension: sort beyond 64 disks — dual FC-AL vs FibreSwitch \
         (the paper's scaling recommendation, evaluated)",
        &header,
        &body,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn switch_matters_only_past_the_loop_knee() {
        let rows = run_sizes(&[16, 128]);
        let r16 = &rows[0];
        let r128 = &rows[1];
        assert!(
            r16.speedup < 1.1,
            "at 16 disks the dual loop is not a bottleneck: {:.2}",
            r16.speedup
        );
        assert!(
            r128.speedup > 1.3,
            "at 128 disks the switch should pay off: {:.2}",
            r128.speedup
        );
    }

    #[test]
    fn switched_fabric_restores_scaling() {
        let rows = run_sizes(&[64, 256]);
        // With the switch, 4x the disks keeps cutting sort time.
        let scaled = rows[0].fibre_switch_secs / rows[1].fibre_switch_secs;
        assert!(
            scaled > 1.5,
            "sort should keep scaling on the switched fabric, got {scaled:.2}"
        );
        // Without it, the dual loop pins sort time.
        let pinned = rows[0].dual_loop_secs / rows[1].dual_loop_secs;
        assert!(
            pinned < scaled,
            "dual loop ({pinned:.2}) should scale worse than the switch ({scaled:.2})"
        );
    }
}
