//! Table 2: the datasets for the tasks in the workload.

use datagen::{DatasetSpec, TaskParams};

use crate::render_table;

/// Computes Table 2 rows (one per task, paper order).
pub fn run() -> Vec<DatasetSpec> {
    DatasetSpec::all()
}

fn describe(d: &DatasetSpec) -> String {
    match &d.params {
        TaskParams::Select { selectivity } => format!(
            "{} million, {}-byte tuples, {}% selectivity",
            d.tuples / 1_000_000,
            d.tuple_bytes,
            selectivity * 100.0
        ),
        TaskParams::Aggregate => format!(
            "{} million, {}-byte tuples, SUM function",
            d.tuples / 1_000_000,
            d.tuple_bytes
        ),
        TaskParams::GroupBy {
            distinct_groups, ..
        } => format!(
            "{} million, {}-byte tuples, {:.1} million distinct",
            d.tuples / 1_000_000,
            d.tuple_bytes,
            *distinct_groups as f64 / 1e6
        ),
        TaskParams::DataCube {
            dim_distinct_fractions,
            ..
        } => format!(
            "{} million, {}-byte tuples, 4-dimensions, {} distinct values",
            d.tuples / 1_000_000,
            d.tuple_bytes,
            dim_distinct_fractions
                .iter()
                .map(|f| format!("{}%", f * 100.0))
                .collect::<Vec<_>>()
                .join(",")
        ),
        TaskParams::Sort { key_bytes } => format!(
            "{}-byte tuples, {}-byte uniformly distributed keys",
            d.tuple_bytes, key_bytes
        ),
        TaskParams::Join {
            projected_tuple_bytes,
            key_bytes,
        } => format!(
            "{}-byte tuples, {}-byte keys (uniformly distributed), {}-byte tuples after projection",
            d.tuple_bytes, key_bytes, projected_tuple_bytes
        ),
        TaskParams::DataMine {
            transactions,
            items,
            avg_items_per_txn,
            min_support,
            ..
        } => format!(
            "{} million transactions, {} million items, avg {} items per transaction, {}% minsup",
            transactions / 1_000_000,
            items / 1_000_000,
            avg_items_per_txn,
            min_support * 100.0
        ),
        TaskParams::MaterializedView {
            derived_bytes,
            delta_bytes,
        } => format!(
            "{}-byte tuples, {} GB derived relations, {} GB deltas",
            d.tuple_bytes,
            derived_bytes / datagen::GB,
            delta_bytes / datagen::GB
        ),
    }
}

/// Renders Table 2 as text.
pub fn render(rows: &[DatasetSpec]) -> String {
    let header = vec![
        "Task".to_string(),
        "GB".to_string(),
        "Characteristics of Dataset".to_string(),
    ];
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|d| {
            vec![
                d.name.to_string(),
                format!("{:.0}", d.total_bytes as f64 / datagen::GB as f64),
                describe(d),
            ]
        })
        .collect();
    render_table(
        "Table 2: datasets for the tasks in the workload",
        &header,
        &body,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_has_eight_rows_in_paper_order() {
        let rows = run();
        assert_eq!(rows.len(), 8);
        assert_eq!(rows[0].name, "select");
        assert_eq!(rows[7].name, "mview");
    }

    #[test]
    fn render_mentions_paper_parameters() {
        let text = render(&run());
        assert!(text.contains("1% selectivity"));
        assert!(text.contains("13.5 million distinct"));
        assert!(text.contains("300 million transactions"));
        assert!(text.contains("4 GB derived relations"));
    }
}
