//! Regenerates the paper's tables and figures.
//!
//! Usage:
//!
//! ```text
//! experiments [--table1] [--table2] [--fig1] [--fig2] [--fig3] [--fig4]
//!             [--fig5] [--beyond64] [--skew] [--growth] [--sensitivity]
//!             [--availability] [--loadsweep] [--ablations] [--quick]
//!             [--csv] [--all] [--jobs N] [--metrics-out FILE] [--cache]
//!             [--no-cache]
//! ```
//!
//! With no arguments, everything is regenerated (`--all`). `--quick`
//! restricts the figure sweeps to 16- and 64-disk configurations.
//! `--jobs N` sets the sweep worker count (default: all cores); the
//! output is byte-identical for any worker count. `--metrics-out FILE`
//! additionally sweeps select/sort/join over the figure sizes and
//! writes one `howsim-sweep/v1` manifest document aggregating every
//! run's bottleneck attribution.
//!
//! Overlapping sweep points (the figure sweeps share many configurations)
//! simulate once per invocation via the in-memory result cache; a
//! hit/miss summary is logged at exit. `--cache` additionally persists
//! results under `results/.simcache/` so later invocations start warm
//! (wipe by deleting that directory); `--no-cache` disables caching
//! entirely. The output bytes are identical either way.

use std::env;
use std::fs;
use std::path::Path;

fn write_csv(enabled: bool, name: &str, contents: &str) {
    if !enabled {
        return;
    }
    let dir = Path::new("results");
    fs::create_dir_all(dir).expect("create results dir");
    let path = dir.join(name);
    fs::write(&path, contents).expect("write csv");
    eprintln!("wrote {}", path.display());
}

fn main() {
    let mut args: Vec<String> = env::args().skip(1).collect();
    // `--jobs N` configures the sweep engine and is not a section flag.
    if let Some(i) = args.iter().position(|a| a == "--jobs") {
        let n: usize = match args.get(i + 1).and_then(|v| v.parse().ok()) {
            Some(n) if n > 0 => n,
            _ => {
                eprintln!("error: --jobs needs a positive integer");
                std::process::exit(2);
            }
        };
        howsim::sweep::set_default_jobs(n);
        args.drain(i..=i + 1);
    }
    // `--metrics-out FILE` requests a sweep manifest and is not a
    // section flag either.
    let mut metrics_out: Option<String> = None;
    if let Some(i) = args.iter().position(|a| a == "--metrics-out") {
        match args.get(i + 1) {
            Some(path) if !path.starts_with("--") => metrics_out = Some(path.clone()),
            _ => {
                eprintln!("error: --metrics-out needs a file path");
                std::process::exit(2);
            }
        }
        args.drain(i..=i + 1);
    }
    // `--cache`/`--no-cache` configure the result cache; not section
    // flags. The in-memory tier is on by default; `--cache` adds the
    // on-disk tier and `--no-cache` turns everything off.
    if let Some(i) = args.iter().position(|a| a == "--cache") {
        howsim::cache::set_disk_dir(Some(howsim::cache::default_disk_dir()));
        args.remove(i);
    }
    if let Some(i) = args.iter().position(|a| a == "--no-cache") {
        howsim::cache::set_enabled(false);
        args.remove(i);
    }
    let quick = args.iter().any(|a| a == "--quick");
    let csv = args.iter().any(|a| a == "--csv");
    let all = args.is_empty() || args.iter().any(|a| a == "--all");
    let want = |flag: &str| all || args.iter().any(|a| a == flag);
    let sizes: &[usize] = if quick { &[16, 64] } else { &[16, 32, 64, 128] };
    let fig2_sizes: &[usize] = if quick { &[64] } else { &[64, 128] };
    let fig5_sizes: &[usize] = if quick { &[64] } else { &[32, 64, 128] };

    if want("--table1") {
        println!(
            "{}",
            experiments::table1::render(&experiments::table1::run())
        );
    }
    if want("--table2") {
        println!(
            "{}",
            experiments::table2::render(&experiments::table2::run())
        );
    }
    if want("--fig1") {
        let cells = experiments::fig1::run_sizes(sizes);
        println!("{}", experiments::fig1::render(&cells));
        write_csv(csv, "fig1.csv", &experiments::csv::fig1(&cells));
    }
    if want("--fig2") {
        let cells = experiments::fig2::run_sizes(fig2_sizes);
        println!("{}", experiments::fig2::render(&cells));
        write_csv(csv, "fig2.csv", &experiments::csv::fig2(&cells));
    }
    if want("--fig3") {
        let rows = experiments::fig3::run_sizes(sizes);
        println!("{}", experiments::fig3::render(&rows));
        write_csv(csv, "fig3.csv", &experiments::csv::fig3(&rows));
    }
    if want("--fig4") {
        let cells = experiments::fig4::run_memory(sizes, 64);
        println!("{}", experiments::fig4::render(&cells));
        write_csv(csv, "fig4.csv", &experiments::csv::fig4(&cells));
    }
    if want("--fig5") {
        let cells = experiments::fig5::run_sizes(fig5_sizes);
        println!("{}", experiments::fig5::render(&cells));
        write_csv(csv, "fig5.csv", &experiments::csv::fig5(&cells));
    }
    if want("--beyond64") {
        let rows = if quick {
            experiments::beyond64::run_sizes(&[64, 128])
        } else {
            experiments::beyond64::run()
        };
        println!("{}", experiments::beyond64::render(&rows));
        write_csv(csv, "beyond64.csv", &experiments::csv::beyond64(&rows));
    }
    if want("--growth") {
        let rows = if quick {
            experiments::growth::run_scales(16, &[1, 4])
        } else {
            experiments::growth::run()
        };
        println!("{}", experiments::growth::render(&rows));
    }
    if want("--skew") {
        let rows = if quick {
            experiments::skew::run_thetas(16, &[0.0, 1.0])
        } else {
            experiments::skew::run()
        };
        println!("{}", experiments::skew::render(&rows));
    }
    if want("--availability") {
        use tasks::TaskKind;
        let rows = if quick {
            experiments::availability::run_configs(16, &[TaskKind::Select, TaskKind::Sort])
        } else {
            experiments::availability::run()
        };
        println!("{}", experiments::availability::render(&rows));
        write_csv(
            csv,
            "availability.csv",
            &experiments::csv::availability(&rows),
        );
    }
    if want("--loadsweep") {
        let (rows, summaries) = if quick {
            experiments::loadsweep::run_configs(
                16,
                8,
                &experiments::loadsweep::MIXES[..1],
                &[0.5, 2.0],
            )
        } else {
            experiments::loadsweep::run()
        };
        println!("{}", experiments::loadsweep::render(&rows, &summaries));
        write_csv(csv, "loadsweep.csv", &experiments::csv::loadsweep(&rows));
    }
    if want("--sensitivity") {
        let rows = if quick {
            experiments::sensitivity::run_scales(16, &[0.5, 2.0])
        } else {
            experiments::sensitivity::run()
        };
        println!("{}", experiments::sensitivity::render(&rows));
    }
    if want("--ablations") {
        ablations(sizes);
    }
    if let Some(path) = metrics_out {
        use tasks::TaskKind;
        let grid_tasks = [TaskKind::Select, TaskKind::Sort, TaskKind::Join];
        let manifests = experiments::manifests::run_grid(&grid_tasks, sizes);
        let json = experiments::manifests::to_json(&manifests);
        fs::write(&path, json).expect("write sweep manifest");
        eprintln!("wrote sweep manifest ({} runs) to {path}", manifests.len());
    }
    if howsim::cache::enabled() {
        let s = howsim::cache::stats();
        eprintln!(
            "cache: {} points served from cache, {} simulated ({} from disk)",
            s.hits, s.misses, s.disk_hits
        );
    }
}

/// Extra design-space sweeps the paper describes in prose: 128 MB disk
/// memory, the 1 GHz front-end, and Fast Disks for every task.
fn ablations(sizes: &[usize]) {
    use arch::Architecture;
    use howsim::cache;
    use tasks::TaskKind;

    println!("Ablation: 128 MB disk memory (vs 32 MB)");
    let cells = experiments::fig4::run_memory(sizes, 128);
    println!("{}", experiments::fig4::render(&cells));

    println!("Ablation: 1 GHz front-end (vs 450 MHz), % improvement");
    for &disks in sizes {
        for task in TaskKind::ALL {
            let base = cache::run(&Architecture::active_disks(disks), task)
                .elapsed()
                .as_secs_f64();
            let fast = cache::run(
                &Architecture::active_disks(disks)
                    .with_front_end(arch::ProcessorSpec::front_end_1ghz()),
                task,
            )
            .elapsed()
            .as_secs_f64();
            println!(
                "  {:>10} @ {:>3} disks: {:+.1}%",
                task.name(),
                disks,
                (1.0 - fast / base) * 100.0
            );
        }
    }
    println!();

    println!("Ablation: next-generation embedded processor (2x Cyrix), % improvement");
    for &disks in sizes {
        for task in TaskKind::ALL {
            let base = cache::run(&Architecture::active_disks(disks), task)
                .elapsed()
                .as_secs_f64();
            let fast = cache::run(
                &Architecture::active_disks(disks)
                    .with_embedded_cpu(arch::ProcessorSpec::embedded_next_gen()),
                task,
            )
            .elapsed()
            .as_secs_f64();
            println!(
                "  {:>10} @ {:>3} disks: {:+.1}%",
                task.name(),
                disks,
                (1.0 - fast / base) * 100.0
            );
        }
    }
    println!();

    println!("Ablation: Hitachi Fast Disks (vs Cheetah 9LP), % improvement");
    for &disks in sizes {
        for task in TaskKind::ALL {
            let base = cache::run(&Architecture::active_disks(disks), task)
                .elapsed()
                .as_secs_f64();
            let fast = cache::run(
                &Architecture::active_disks(disks)
                    .with_disk_spec(diskmodel::DiskSpec::hitachi_dk3e1t_91()),
                task,
            )
            .elapsed()
            .as_secs_f64();
            println!(
                "  {:>10} @ {:>3} disks: {:+.1}%",
                task.name(),
                disks,
                (1.0 - fast / base) * 100.0
            );
        }
    }
}
