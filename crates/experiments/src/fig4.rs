//! Figure 4: impact of the memory available on Active Disks — the
//! percentage improvement in execution time when the per-disk memory is
//! raised from 32 MB to 64 MB (and, as an extension, 128 MB).
//!
//! The paper plots select/sort/join/dcube/mview; aggregate, groupby and
//! dmine are reported in prose as memory-insensitive, so they are included
//! here as (near-)zero rows.

use arch::Architecture;
use tasks::TaskKind;

use crate::render_table;

/// One bar of Figure 4.
#[derive(Debug, Clone, PartialEq)]
pub struct Cell {
    /// Task name.
    pub task: &'static str,
    /// Configuration size (disks).
    pub disks: usize,
    /// Seconds with 32 MB per disk.
    pub secs_32mb: f64,
    /// Seconds with `memory_mb` per disk.
    pub secs_big: f64,
    /// Per-disk memory of the improved configuration (MB).
    pub memory_mb: u64,
    /// Percent improvement over the 32 MB baseline.
    pub improvement_pct: f64,
}

/// Runs Figure 4 (64 MB variant) for the paper's sizes.
pub fn run() -> Vec<Cell> {
    run_memory(&arch::PAPER_SIZES, 64)
}

/// Runs the memory sweep for arbitrary sizes and a per-disk memory in MB.
///
/// Swept in parallel over (size, task) points; see [`howsim::sweep`].
pub fn run_memory(sizes: &[usize], memory_mb: u64) -> Vec<Cell> {
    let points: Vec<(usize, TaskKind)> = sizes
        .iter()
        .flat_map(|&disks| TaskKind::ALL.into_iter().map(move |task| (disks, task)))
        .collect();
    howsim::sweep::map(&points, |&(disks, task)| {
        let base = howsim::cache::run(
            &Architecture::active_disks(disks).with_disk_memory(32 << 20),
            task,
        )
        .elapsed()
        .as_secs_f64();
        let big = howsim::cache::run(
            &Architecture::active_disks(disks).with_disk_memory(memory_mb << 20),
            task,
        )
        .elapsed()
        .as_secs_f64();
        Cell {
            task: task.name(),
            disks,
            secs_32mb: base,
            secs_big: big,
            memory_mb,
            improvement_pct: (1.0 - big / base) * 100.0,
        }
    })
}

/// Renders Figure 4 as a text table (tasks × sizes).
pub fn render(cells: &[Cell]) -> String {
    let sizes: Vec<usize> = {
        let mut s: Vec<usize> = cells.iter().map(|c| c.disks).collect();
        s.sort_unstable();
        s.dedup();
        s
    };
    let mem = cells.first().map_or(64, |c| c.memory_mb);
    let mut header = vec!["task".to_string()];
    header.extend(sizes.iter().map(|d| format!("{d} disks")));
    let rows: Vec<Vec<String>> = TaskKind::ALL
        .iter()
        .map(|t| {
            let mut row = vec![t.name().to_string()];
            for &d in &sizes {
                let c = cells
                    .iter()
                    .find(|c| c.task == t.name() && c.disks == d)
                    .expect("cell present");
                row.push(format!("{:+.1}%", c.improvement_pct));
            }
            row
        })
        .collect();
    render_table(
        &format!("Figure 4: % improvement with {mem} MB of disk memory (vs 32 MB)"),
        &header,
        &rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn find<'a>(cells: &'a [Cell], task: &str, disks: usize) -> &'a Cell {
        cells
            .iter()
            .find(|c| c.task == task && c.disks == disks)
            .expect("cell present")
    }

    #[test]
    fn flat_tasks_do_not_improve() {
        // Paper: "the performance of aggregate, groupby and dmine on
        // Active Disks did not improve with additional memory."
        let cells = run_memory(&[64], 64);
        for t in ["aggregate", "groupby", "dmine"] {
            let c = find(&cells, t, 64);
            assert!(
                c.improvement_pct.abs() < 2.0,
                "{t}: improvement {:.2}%",
                c.improvement_pct
            );
        }
    }

    #[test]
    fn dcube_spikes_at_16_disks() {
        // Paper: "the largest performance improvement is only about 35%
        // which occurs for 16-disk configurations."
        let cells = run_memory(&[16], 64);
        let c = find(&cells, "dcube", 16);
        assert!(
            (20.0..50.0).contains(&c.improvement_pct),
            "dcube at 16 disks improved {:.1}%",
            c.improvement_pct
        );
    }

    #[test]
    fn sort_improves_only_slightly() {
        // Paper: longer runs cut CPU ~7% and disk access ~2%; overall
        // effect on sort is a few percent.
        let cells = run_memory(&[16], 64);
        let c = find(&cells, "sort", 16);
        assert!(
            (-1.0..10.0).contains(&c.improvement_pct),
            "sort at 16 disks improved {:.1}%",
            c.improvement_pct
        );
    }
}
