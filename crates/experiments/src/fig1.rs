//! Figure 1: performance of all eight tasks on comparable configurations
//! of Active Disks, clusters, and SMPs (16/32/64/128 disks), normalized to
//! the Active Disk configuration of the same size.

use arch::{Architecture, PAPER_SIZES};
use tasks::TaskKind;

use crate::{cell, render_table};

/// One cell of Figure 1.
#[derive(Debug, Clone, PartialEq)]
pub struct Cell {
    /// Task name.
    pub task: &'static str,
    /// Architecture short name.
    pub arch: &'static str,
    /// Configuration size (disks).
    pub disks: usize,
    /// Simulated execution time in seconds.
    pub seconds: f64,
    /// Execution time normalized to Active Disks at the same size.
    pub normalized: f64,
}

/// Runs the full Figure 1 sweep (96 simulations).
pub fn run() -> Vec<Cell> {
    run_sizes(&PAPER_SIZES)
}

/// Runs Figure 1 for a subset of sizes (used by tests and quick modes).
///
/// The whole `sizes × tasks × architectures` grid goes through
/// [`howsim::cache::run_tasks`] as one batch: overlapping points (shared
/// with `manifests` and other sweeps) are deduplicated before dispatch
/// and the unique simulations run in parallel, with the cells coming
/// back in grid order so the output is identical to the serial loop.
pub fn run_sizes(sizes: &[usize]) -> Vec<Cell> {
    let points: Vec<(usize, TaskKind)> = sizes
        .iter()
        .flat_map(|&disks| TaskKind::ALL.into_iter().map(move |task| (disks, task)))
        .collect();
    let sims: Vec<(Architecture, TaskKind)> = points
        .iter()
        .flat_map(|&(disks, task)| {
            [
                Architecture::active_disks(disks),
                Architecture::cluster(disks),
                Architecture::smp(disks),
            ]
            .into_iter()
            .map(move |arch| (arch, task))
        })
        .collect();
    let reports = howsim::cache::run_tasks(&sims);
    points
        .iter()
        .zip(reports.chunks(3))
        .flat_map(|(&(disks, task), archs)| {
            let active = archs[0].elapsed().as_secs_f64();
            archs.iter().map(move |r| Cell {
                task: task.name(),
                arch: r.architecture,
                disks,
                seconds: r.elapsed().as_secs_f64(),
                normalized: r.elapsed().as_secs_f64() / active,
            })
        })
        .collect()
}

/// Renders the four panels of Figure 1 as text tables.
pub fn render(cells: &[Cell]) -> String {
    let mut out = String::new();
    let sizes: Vec<usize> = {
        let mut s: Vec<usize> = cells.iter().map(|c| c.disks).collect();
        s.sort_unstable();
        s.dedup();
        s
    };
    for disks in sizes {
        let header = vec![
            "task".to_string(),
            "Active".to_string(),
            "Cluster".to_string(),
            "SMP".to_string(),
            "Active(s)".to_string(),
        ];
        let rows: Vec<Vec<String>> = TaskKind::ALL
            .iter()
            .map(|t| {
                let get = |arch: &str| {
                    cells
                        .iter()
                        .find(|c| c.task == t.name() && c.disks == disks && c.arch == arch)
                        .expect("cell present")
                };
                vec![
                    t.name().to_string(),
                    cell(get("Active").normalized),
                    cell(get("Cluster").normalized),
                    cell(get("SMP").normalized),
                    format!("{:.1}", get("Active").seconds),
                ]
            })
            .collect();
        out.push_str(&render_table(
            &format!(
                "Figure 1: normalized execution time, {disks}-disk configurations \
                 (Active Disks = 1.00)"
            ),
            &header,
            &rows,
        ));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sixteen_disk_architectures_are_comparable() {
        // Paper: "for the 16-disk configurations, the performance of all
        // three architectures is comparable."
        for c in run_sizes(&[16]) {
            assert!(
                (0.4..=2.2).contains(&c.normalized),
                "{} on {} at 16 disks: {:.2}× Active",
                c.task,
                c.arch,
                c.normalized
            );
        }
    }

    #[test]
    fn active_normalization_is_one() {
        for c in run_sizes(&[32]) {
            if c.arch == "Active" {
                assert!((c.normalized - 1.0).abs() < 1e-12);
            }
        }
    }
}
