//! Figure 1: performance of all eight tasks on comparable configurations
//! of Active Disks, clusters, and SMPs (16/32/64/128 disks), normalized to
//! the Active Disk configuration of the same size.

use arch::{Architecture, PAPER_SIZES};
use howsim::Simulation;
use tasks::TaskKind;

use crate::{cell, render_table};

/// One cell of Figure 1.
#[derive(Debug, Clone, PartialEq)]
pub struct Cell {
    /// Task name.
    pub task: &'static str,
    /// Architecture short name.
    pub arch: &'static str,
    /// Configuration size (disks).
    pub disks: usize,
    /// Simulated execution time in seconds.
    pub seconds: f64,
    /// Execution time normalized to Active Disks at the same size.
    pub normalized: f64,
}

/// Runs the full Figure 1 sweep (96 simulations).
pub fn run() -> Vec<Cell> {
    run_sizes(&PAPER_SIZES)
}

/// Runs Figure 1 for a subset of sizes (used by tests and quick modes).
///
/// The (size, task) points are independent simulations, swept in parallel
/// by [`howsim::sweep`]; the cells come back in sweep order, so the output
/// is identical to the serial loop.
pub fn run_sizes(sizes: &[usize]) -> Vec<Cell> {
    let points: Vec<(usize, TaskKind)> = sizes
        .iter()
        .flat_map(|&disks| TaskKind::ALL.into_iter().map(move |task| (disks, task)))
        .collect();
    howsim::sweep::map(&points, |&(disks, task)| {
        let archs = [
            Architecture::active_disks(disks),
            Architecture::cluster(disks),
            Architecture::smp(disks),
        ];
        let times: Vec<(&'static str, f64)> = archs
            .iter()
            .map(|a| {
                let r = Simulation::new(a.clone()).run(task);
                (a.short_name(), r.elapsed().as_secs_f64())
            })
            .collect();
        let active = times[0].1;
        times
            .into_iter()
            .map(|(arch, secs)| Cell {
                task: task.name(),
                arch,
                disks,
                seconds: secs,
                normalized: secs / active,
            })
            .collect::<Vec<Cell>>()
    })
    .into_iter()
    .flatten()
    .collect()
}

/// Renders the four panels of Figure 1 as text tables.
pub fn render(cells: &[Cell]) -> String {
    let mut out = String::new();
    let sizes: Vec<usize> = {
        let mut s: Vec<usize> = cells.iter().map(|c| c.disks).collect();
        s.sort_unstable();
        s.dedup();
        s
    };
    for disks in sizes {
        let header = vec![
            "task".to_string(),
            "Active".to_string(),
            "Cluster".to_string(),
            "SMP".to_string(),
            "Active(s)".to_string(),
        ];
        let rows: Vec<Vec<String>> = TaskKind::ALL
            .iter()
            .map(|t| {
                let get = |arch: &str| {
                    cells
                        .iter()
                        .find(|c| c.task == t.name() && c.disks == disks && c.arch == arch)
                        .expect("cell present")
                };
                vec![
                    t.name().to_string(),
                    cell(get("Active").normalized),
                    cell(get("Cluster").normalized),
                    cell(get("SMP").normalized),
                    format!("{:.1}", get("Active").seconds),
                ]
            })
            .collect();
        out.push_str(&render_table(
            &format!(
                "Figure 1: normalized execution time, {disks}-disk configurations \
                 (Active Disks = 1.00)"
            ),
            &header,
            &rows,
        ));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sixteen_disk_architectures_are_comparable() {
        // Paper: "for the 16-disk configurations, the performance of all
        // three architectures is comparable."
        for c in run_sizes(&[16]) {
            assert!(
                (0.4..=2.2).contains(&c.normalized),
                "{} on {} at 16 disks: {:.2}× Active",
                c.task,
                c.arch,
                c.normalized
            );
        }
    }

    #[test]
    fn active_normalization_is_one() {
        for c in run_sizes(&[32]) {
            if c.arch == "Active" {
                assert!((c.normalized - 1.0).abs() < 1e-12);
            }
        }
    }
}
