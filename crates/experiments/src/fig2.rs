//! Figure 2: impact of varying the I/O interconnect bandwidth (200 vs
//! 400 MB/s) for Active Disks and SMPs, 64- and 128-disk configurations,
//! normalized to the Active Disk 200 MB/s configuration of the same size.

use arch::Architecture;
use tasks::TaskKind;

use crate::{cell, render_table};

/// The four configurations of Figure 2's legend.
pub const CONFIGS: [(&str, f64, bool); 4] = [
    ("200MB(A)", 200.0, true),
    ("400MB(A)", 400.0, true),
    ("200MB(S)", 200.0, false),
    ("400MB(S)", 400.0, false),
];

/// One cell of Figure 2.
#[derive(Debug, Clone, PartialEq)]
pub struct Cell {
    /// Task name.
    pub task: &'static str,
    /// Legend label (`"400MB(S)"` etc.).
    pub config: &'static str,
    /// Configuration size (disks).
    pub disks: usize,
    /// Simulated seconds.
    pub seconds: f64,
    /// Normalized to `200MB(A)` at the same size.
    pub normalized: f64,
}

/// Runs Figure 2 for the paper's sizes (64 and 128 disks).
pub fn run() -> Vec<Cell> {
    run_sizes(&[64, 128])
}

/// Runs Figure 2 for arbitrary sizes.
///
/// Swept in parallel over (size, task) points; see [`howsim::sweep`].
pub fn run_sizes(sizes: &[usize]) -> Vec<Cell> {
    let points: Vec<(usize, TaskKind)> = sizes
        .iter()
        .flat_map(|&disks| TaskKind::ALL.into_iter().map(move |task| (disks, task)))
        .collect();
    howsim::sweep::map(&points, |&(disks, task)| {
        let times: Vec<(&'static str, f64)> = CONFIGS
            .iter()
            .map(|&(label, mb, active)| {
                let arch = if active {
                    Architecture::active_disks(disks)
                } else {
                    Architecture::smp(disks)
                }
                .with_interconnect_mb(mb);
                let secs = howsim::cache::run(&arch, task).elapsed().as_secs_f64();
                (label, secs)
            })
            .collect();
        let base = times[0].1;
        times
            .into_iter()
            .map(|(config, seconds)| Cell {
                task: task.name(),
                config,
                disks,
                seconds,
                normalized: seconds / base,
            })
            .collect::<Vec<Cell>>()
    })
    .into_iter()
    .flatten()
    .collect()
}

/// Renders Figure 2 panels.
pub fn render(cells: &[Cell]) -> String {
    let mut out = String::new();
    let sizes: Vec<usize> = {
        let mut s: Vec<usize> = cells.iter().map(|c| c.disks).collect();
        s.sort_unstable();
        s.dedup();
        s
    };
    for disks in sizes {
        let mut header = vec!["task".to_string()];
        header.extend(CONFIGS.iter().map(|&(l, _, _)| l.to_string()));
        let rows: Vec<Vec<String>> = TaskKind::ALL
            .iter()
            .map(|t| {
                let mut row = vec![t.name().to_string()];
                for &(label, _, _) in &CONFIGS {
                    let c = cells
                        .iter()
                        .find(|c| c.task == t.name() && c.disks == disks && c.config == label)
                        .expect("cell present");
                    row.push(cell(c.normalized));
                }
                row
            })
            .collect();
        out.push_str(&render_table(
            &format!(
                "Figure 2: I/O interconnect bandwidth, {disks}-disk configurations \
                 (200MB(A) = 1.00; A = Active Disks, S = SMP)"
            ),
            &header,
            &rows,
        ));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn doubling_bandwidth_helps_smp_everywhere() {
        // Paper: "doubling the I/O interconnect bandwidth has a large
        // impact on the performance of SMP configurations for all tasks."
        let cells = run_sizes(&[64]);
        for t in TaskKind::ALL {
            let s200 = cells
                .iter()
                .find(|c| c.task == t.name() && c.config == "200MB(S)")
                .unwrap();
            let s400 = cells
                .iter()
                .find(|c| c.task == t.name() && c.config == "400MB(S)")
                .unwrap();
            assert!(
                s400.seconds < s200.seconds * 0.75,
                "{}: SMP 400 MB/s should be much faster ({} vs {})",
                t.name(),
                s400.seconds,
                s200.seconds
            );
        }
    }

    #[test]
    fn active_disks_beat_smp_even_at_double_bandwidth() {
        // Paper: Active Disks with 200 MB/s outperform SMPs with 400 MB/s
        // (1.5–4.8× on 128-disk configurations).
        let cells = run_sizes(&[128]);
        for t in TaskKind::ALL {
            let a200 = cells
                .iter()
                .find(|c| c.task == t.name() && c.config == "200MB(A)")
                .unwrap();
            let s400 = cells
                .iter()
                .find(|c| c.task == t.name() && c.config == "400MB(S)")
                .unwrap();
            let ratio = s400.seconds / a200.seconds;
            assert!(
                ratio > 1.2,
                "{}: SMP-400 / Active-200 ratio {ratio} should exceed 1.2",
                t.name()
            );
        }
    }
}
