//! CSV serialization of experiment results, for plotting.
//!
//! Each function mirrors a figure module's data type and produces one CSV
//! document (header row + data rows) suitable for gnuplot/matplotlib.

use crate::{availability, beyond64, fig1, fig2, fig3, fig4, fig5, loadsweep};

/// Figure 1 cells as CSV.
pub fn fig1(cells: &[fig1::Cell]) -> String {
    let mut out = String::from("task,arch,disks,seconds,normalized\n");
    for c in cells {
        out.push_str(&format!(
            "{},{},{},{:.3},{:.4}\n",
            c.task, c.arch, c.disks, c.seconds, c.normalized
        ));
    }
    out
}

/// Figure 2 cells as CSV.
pub fn fig2(cells: &[fig2::Cell]) -> String {
    let mut out = String::from("task,config,disks,seconds,normalized\n");
    for c in cells {
        out.push_str(&format!(
            "{},{},{},{:.3},{:.4}\n",
            c.task, c.config, c.disks, c.seconds, c.normalized
        ));
    }
    out
}

/// Figure 3 breakdowns as CSV.
pub fn fig3(rows: &[fig3::Breakdown]) -> String {
    let mut out = String::from(
        "disks,variant,total_seconds,p1_share,p1_partitioner,p1_append,p1_sort,p1_idle,p2_merge,p2_idle\n",
    );
    for b in rows {
        out.push_str(&format!(
            "{},{},{:.3},{:.4},{:.4},{:.4},{:.4},{:.4},{:.4},{:.4}\n",
            b.disks,
            b.variant,
            b.total_seconds,
            b.p1_share,
            b.p1_partitioner,
            b.p1_append,
            b.p1_sort,
            b.p1_idle,
            b.p2_merge,
            b.p2_idle
        ));
    }
    out
}

/// Figure 4 cells as CSV.
pub fn fig4(cells: &[fig4::Cell]) -> String {
    let mut out = String::from("task,disks,memory_mb,secs_32mb,secs_big,improvement_pct\n");
    for c in cells {
        out.push_str(&format!(
            "{},{},{},{:.3},{:.3},{:.3}\n",
            c.task, c.disks, c.memory_mb, c.secs_32mb, c.secs_big, c.improvement_pct
        ));
    }
    out
}

/// Figure 5 cells as CSV.
pub fn fig5(cells: &[fig5::Cell]) -> String {
    let mut out = String::from("task,disks,secs_direct,secs_restricted,normalized\n");
    for c in cells {
        out.push_str(&format!(
            "{},{},{:.3},{:.3},{:.4}\n",
            c.task, c.disks, c.secs_direct, c.secs_restricted, c.normalized
        ));
    }
    out
}

/// Extension-experiment rows as CSV.
pub fn beyond64(rows: &[beyond64::Row]) -> String {
    let mut out = String::from("disks,dual_loop_seconds,fibre_switch_seconds,speedup\n");
    for r in rows {
        out.push_str(&format!(
            "{},{:.3},{:.3},{:.4}\n",
            r.disks, r.dual_loop_secs, r.fibre_switch_secs, r.speedup
        ));
    }
    out
}

/// Load-sweep rows as CSV.
pub fn loadsweep(rows: &[loadsweep::Row]) -> String {
    let mut out = String::from(
        "arch,mix,load,offered_qps,completed,shed,timed_out,aborted,retries,p50_s,p95_s,p99_s,goodput_qps\n",
    );
    let sec = |v: Option<f64>| match v {
        Some(s) => format!("{s:.3}"),
        None => String::new(),
    };
    for r in rows {
        out.push_str(&format!(
            "{},{},{},{:.6},{},{},{},{},{},{},{},{},{:.6}\n",
            r.arch,
            r.mix,
            r.load,
            r.offered_qps,
            r.completed,
            r.shed,
            r.timed_out,
            r.aborted,
            r.retries,
            sec(r.p50_s),
            sec(r.p95_s),
            sec(r.p99_s),
            r.goodput_qps
        ));
    }
    out
}

/// Availability rows as CSV.
pub fn availability(rows: &[availability::Row]) -> String {
    let mut out = String::from("task,arch,scenario,seconds,slowdown,faults_injected\n");
    for r in rows {
        out.push_str(&format!(
            "{},{},{},{:.3},{:.4},{}\n",
            r.task, r.arch, r.scenario, r.seconds, r.slowdown, r.faults
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_csv_round_numbers() {
        let cells = vec![fig1::Cell {
            task: "select",
            arch: "SMP",
            disks: 64,
            seconds: 12.5,
            normalized: 6.25,
        }];
        let csv = fig1(&cells);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "task,arch,disks,seconds,normalized");
        assert_eq!(lines[1], "select,SMP,64,12.500,6.2500");
    }

    #[test]
    fn all_serializers_emit_headers() {
        assert!(fig2(&[]).starts_with("task,config"));
        assert!(fig3(&[]).starts_with("disks,variant"));
        assert!(fig4(&[]).starts_with("task,disks,memory_mb"));
        assert!(fig5(&[]).starts_with("task,disks,secs_direct"));
        assert!(beyond64(&[]).starts_with("disks,dual_loop"));
        assert!(availability(&[]).starts_with("task,arch,scenario"));
        assert!(loadsweep(&[]).starts_with("arch,mix,load,offered_qps"));
    }
}
