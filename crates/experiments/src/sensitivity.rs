//! Extension experiment: robustness of Figure 1 to the CPU calibration.
//!
//! The simulator's per-tuple CPU costs are calibrated constants
//! (`tasks::costs`), standing in for the paper's DEC Alpha traces. A fair
//! question is how much the architecture comparison depends on them. This
//! experiment rescales *every* CPU cost by ½× to 2× and re-runs the
//! comparison: the paper's conclusions are structural (interconnect
//! topology × data movement), so the orderings should — and do — survive.

use arch::Architecture;
use tasks::{plan_task, TaskKind};

use crate::{cell, render_table};

/// One row: a task under one CPU-cost scaling.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Task name.
    pub task: &'static str,
    /// Factor applied to every calibrated CPU cost.
    pub cpu_scale: f64,
    /// SMP time / Active Disk time.
    pub smp_over_active: f64,
    /// Cluster time / Active Disk time.
    pub cluster_over_active: f64,
}

/// Runs the sensitivity sweep at `disks` for the given scale factors.
///
/// Swept in parallel over (task, factor) points; see [`howsim::sweep`].
pub fn run_scales(disks: usize, scales: &[f64]) -> Vec<Row> {
    let points: Vec<(TaskKind, f64)> = [TaskKind::Select, TaskKind::Sort, TaskKind::DataMine]
        .into_iter()
        .flat_map(|task| scales.iter().map(move |&factor| (task, factor)))
        .collect();
    howsim::sweep::map(&points, |&(task, factor)| {
        let time = |arch: Architecture| {
            let mut plan = plan_task(task, &arch);
            plan.scale_cpu(factor);
            // The scaled plan is part of the cache key, so the ×1.0 points
            // share entries with Figure 1 and nothing else collides.
            howsim::cache::run_plan(&arch, &plan)
                .elapsed()
                .as_secs_f64()
        };
        let active = time(Architecture::active_disks(disks));
        let smp = time(Architecture::smp(disks));
        let cluster = time(Architecture::cluster(disks));
        Row {
            task: task.name(),
            cpu_scale: factor,
            smp_over_active: smp / active,
            cluster_over_active: cluster / active,
        }
    })
}

/// Runs the default sweep: 64 disks, CPU costs ×0.5, ×1, ×2.
pub fn run() -> Vec<Row> {
    run_scales(64, &[0.5, 1.0, 2.0])
}

/// Renders the sensitivity table.
pub fn render(rows: &[Row]) -> String {
    let header: Vec<String> = ["task", "cpu scale", "SMP/Active", "Cluster/Active"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.task.to_string(),
                format!("x{:.1}", r.cpu_scale),
                cell(r.smp_over_active),
                cell(r.cluster_over_active),
            ]
        })
        .collect();
    render_table(
        "Extension: robustness of the architecture comparison to the CPU \
         calibration (64 disks)",
        &header,
        &body,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conclusions_survive_calibration_error() {
        // Halving or doubling every calibrated CPU constant must not flip
        // the paper's core result: the SMP loses at scale.
        for r in run_scales(64, &[0.5, 2.0]) {
            assert!(
                r.smp_over_active > 1.5,
                "{} at cpu x{}: SMP/Active {:.2}",
                r.task,
                r.cpu_scale,
                r.smp_over_active
            );
        }
    }

    #[test]
    fn cpu_scaling_moves_compute_bound_tasks_most() {
        // dmine is CPU-bound on the Cyrix: doubling costs narrows the
        // SMP gap (everyone slows, the slow embedded cores slow most).
        let rows = run_scales(64, &[0.5, 2.0]);
        let gap = |scale: f64| {
            rows.iter()
                .find(|r| r.task == "dmine" && r.cpu_scale == scale)
                .unwrap()
                .smp_over_active
        };
        assert!(
            gap(2.0) < gap(0.5),
            "heavier CPU should narrow dmine's SMP gap: {:.2} vs {:.2}",
            gap(2.0),
            gap(0.5)
        );
    }
}
