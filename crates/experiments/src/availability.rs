//! Degraded-mode availability experiment.
//!
//! The paper evaluates healthy hardware only, but a 64-disk decision
//! support machine spends a meaningful fraction of its life with
//! something broken. This experiment measures how each architecture
//! degrades when faults strike mid-query: disk fail-stops at 25–90%
//! of the healthy run (under the redistribute and reconstruct-read
//! recovery policies, plus the abort-and-rerun baseline), grown-defect
//! media bursts, and interconnect faults. Every scenario reports the
//! slowdown relative to the healthy run of the same (task, architecture)
//! point.
//!
//! Fault times are derived from the *healthy simulated elapsed time* of
//! the same point, so the schedule is fully deterministic: same seed,
//! same table, at any `--jobs` count.
//!
//! Every fault scenario at one point shares the identical healthy prefix
//! up to its fault time, so the sweep runs through the checkpoint fork
//! API: one shared prefix run pauses at each fault fraction in turn and
//! [`howsim::ExecRun::fork_with_faults`] branches a continuation per
//! scenario. Forked reports are field-identical to from-scratch runs
//! (enforced by test against [`run_configs_scratch`]); the healthy
//! prefix is simulated exactly once per (arch, task) point instead of
//! once per scenario.

use arch::Architecture;
use howsim::faults::{FaultPlan, RecoveryPolicy};
use howsim::{Report, Simulation};
use simcore::{Duration, SimTime};
use tasks::{plan_task, TaskKind, TaskPlan};

use crate::render_table;

/// The seed every availability run uses (defect placement draws on it).
pub const SEED: u64 = 42;

/// One row of the availability table.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Task name.
    pub task: &'static str,
    /// Architecture label.
    pub arch: &'static str,
    /// Fault scenario label.
    pub scenario: &'static str,
    /// Simulated seconds (for abort-and-rerun: aborted run + full rerun).
    pub seconds: f64,
    /// Normalized to the healthy run of the same (task, arch) point.
    pub slowdown: f64,
    /// Fault events that struck.
    pub faults: u64,
}

/// The architectures the availability table compares.
fn architectures(disks: usize) -> [(&'static str, Architecture); 3] {
    [
        ("Active", Architecture::active_disks(disks)),
        ("Cluster", Architecture::cluster(disks)),
        ("SMP", Architecture::smp(disks)),
    ]
}

/// A fault scenario: a label plus the plan/policy it runs under, built
/// from the healthy elapsed time of the point it applies to.
struct Scenario {
    label: &'static str,
    policy: RecoveryPolicy,
    /// Abort-and-rerun scenarios add the healthy elapsed time on top of
    /// the aborted run (the query restarts from scratch on the survivors'
    /// next maintenance window).
    rerun: bool,
    /// Fraction of the healthy elapsed time at which the fault strikes —
    /// the fork boundary of the shared prefix run.
    frac: f64,
    plan: fn(f64) -> FaultPlan,
}

/// The fault scenarios, each a function of the healthy elapsed seconds.
/// Ordered by fault fraction so the shared prefix run pauses at each
/// boundary exactly once on its way forward.
fn scenarios() -> Vec<Scenario> {
    fn at(frac: f64, healthy: f64) -> Duration {
        Duration::from_secs_f64(healthy * frac)
    }
    vec![
        Scenario {
            label: "media-burst@25%",
            policy: RecoveryPolicy::Redistribute,
            rerun: false,
            frac: 0.25,
            plan: |h| FaultPlan::new().media_burst(1, at(0.25, h), 2_000),
        },
        Scenario {
            label: "disk-fail@50%",
            policy: RecoveryPolicy::Redistribute,
            rerun: false,
            frac: 0.50,
            plan: |h| FaultPlan::new().disk_fail_stop(1, at(0.50, h)),
        },
        Scenario {
            label: "disk-fail@50%/reconstruct",
            policy: RecoveryPolicy::ReconstructRead,
            rerun: false,
            frac: 0.50,
            plan: |h| FaultPlan::new().disk_fail_stop(1, at(0.50, h)),
        },
        Scenario {
            label: "disk-fail@50%/abort+rerun",
            policy: RecoveryPolicy::FailStop,
            rerun: true,
            frac: 0.50,
            plan: |h| FaultPlan::new().disk_fail_stop(1, at(0.50, h)),
        },
        Scenario {
            label: "media-burst@50%",
            policy: RecoveryPolicy::Redistribute,
            rerun: false,
            frac: 0.50,
            plan: |h| FaultPlan::new().media_burst(1, at(0.50, h), 2_000),
        },
        Scenario {
            label: "link-fault@50%",
            policy: RecoveryPolicy::Redistribute,
            rerun: false,
            frac: 0.50,
            plan: |h| FaultPlan::new().link_fault(1, at(0.50, h), 0.5),
        },
        Scenario {
            label: "disk-fail@75%",
            policy: RecoveryPolicy::Redistribute,
            rerun: false,
            frac: 0.75,
            plan: |h| FaultPlan::new().disk_fail_stop(1, at(0.75, h)),
        },
        Scenario {
            label: "disk-fail@75%/reconstruct",
            policy: RecoveryPolicy::ReconstructRead,
            rerun: false,
            frac: 0.75,
            plan: |h| FaultPlan::new().disk_fail_stop(1, at(0.75, h)),
        },
        Scenario {
            label: "disk-fail@75%/abort+rerun",
            policy: RecoveryPolicy::FailStop,
            rerun: true,
            frac: 0.75,
            plan: |h| FaultPlan::new().disk_fail_stop(1, at(0.75, h)),
        },
        Scenario {
            label: "media-burst@75%",
            policy: RecoveryPolicy::Redistribute,
            rerun: false,
            frac: 0.75,
            plan: |h| FaultPlan::new().media_burst(1, at(0.75, h), 2_000),
        },
        Scenario {
            label: "link-fault@75%",
            policy: RecoveryPolicy::Redistribute,
            rerun: false,
            frac: 0.75,
            plan: |h| FaultPlan::new().link_fault(1, at(0.75, h), 0.5),
        },
        Scenario {
            label: "disk-fail@90%",
            policy: RecoveryPolicy::Redistribute,
            rerun: false,
            frac: 0.90,
            plan: |h| FaultPlan::new().disk_fail_stop(1, at(0.90, h)),
        },
    ]
}

/// How much simulation the sweep actually performed (fork-path
/// accounting, asserted by test: the healthy prefix re-runs once per
/// point, never once per scenario).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RunCounts {
    /// Shared healthy-prefix runs (at most one per (arch, task) point;
    /// zero when every scenario of the point was cached).
    pub prefix_runs: u64,
    /// Forked fault-scenario continuations simulated (cache misses).
    pub forked_runs: u64,
}

/// Runs the availability sweep for `disks`-node configurations of every
/// architecture over `tasks` via fork-at-fault-time.
pub fn run_configs(disks: usize, tasks: &[TaskKind]) -> Vec<Row> {
    run_configs_counting(disks, tasks).0
}

/// [`run_configs`] plus the simulated-run accounting.
///
/// One batched cache pass computes the healthy baselines (their elapsed
/// times parameterize the fault schedules and are the `healthy` rows).
/// Then, per point, one shared prefix run pauses at each fault fraction
/// and forks a continuation per uncached scenario — the continuations
/// are field-identical to from-scratch faulted runs and are inserted
/// into the cache under the same keys [`run_configs_scratch`] would use.
pub fn run_configs_counting(disks: usize, tasks: &[TaskKind]) -> (Vec<Row>, RunCounts) {
    let archs = architectures(disks);
    let points: Vec<(&'static str, &Architecture, TaskKind)> = tasks
        .iter()
        .flat_map(|&task| archs.iter().map(move |(name, arch)| (*name, arch, task)))
        .collect();
    let base: Vec<(Simulation, TaskPlan)> = points
        .iter()
        .map(|(_, arch, task)| {
            let plan = plan_task(*task, arch);
            (Simulation::new((*arch).clone()).with_seed(SEED), plan)
        })
        .collect();
    let healthy = howsim::cache::run_sims(&base);

    let scens = scenarios();
    let indices: Vec<usize> = (0..points.len()).collect();
    let per_point: Vec<(Vec<Row>, RunCounts)> = howsim::sweep::map(&indices, |&ix| {
        let (name, arch, task) = points[ix];
        run_point(name, arch, task, &healthy[ix], &scens)
    });

    let mut rows = Vec::with_capacity(points.len() * (1 + scens.len()));
    let mut counts = RunCounts::default();
    for (point_rows, c) in per_point {
        rows.extend(point_rows);
        counts.prefix_runs += c.prefix_runs;
        counts.forked_runs += c.forked_runs;
    }
    (rows, counts)
}

/// One (arch, task) point of the fork-path sweep: the healthy row plus
/// every fault scenario, sharing a single healthy prefix run.
fn run_point(
    name: &'static str,
    arch: &Architecture,
    task: TaskKind,
    healthy: &Report,
    scens: &[Scenario],
) -> (Vec<Row>, RunCounts) {
    let plan = plan_task(task, arch);
    let h_secs = healthy.elapsed().as_secs_f64();
    let sims: Vec<Simulation> = scens
        .iter()
        .map(|s| {
            Simulation::new(arch.clone())
                .with_seed(SEED)
                .with_fault_plan((s.plan)(h_secs))
                .with_recovery(s.policy)
        })
        .collect();
    let mut reports: Vec<Option<Report>> = sims
        .iter()
        .map(|sim| howsim::cache::probe_sim(sim, &plan))
        .collect();

    let mut counts = RunCounts::default();
    if reports.iter().any(Option::is_none) {
        // One shared prefix run, paused at each fault fraction in turn
        // (scenarios are sorted by fraction). Each fork swaps in its
        // scenario's fault plan and recovery policy; the prefix itself
        // never consumes fault state, so the swap is exact.
        let healthy_sim = Simulation::new(arch.clone()).with_seed(SEED);
        let mut prefix = healthy_sim.start(&plan);
        counts.prefix_runs = 1;
        for (six, s) in scens.iter().enumerate() {
            if reports[six].is_some() {
                continue;
            }
            debug_assert!(six == 0 || scens[six - 1].frac <= s.frac, "sorted by frac");
            let at = SimTime::ZERO + Duration::from_secs_f64(h_secs * s.frac);
            prefix.run_until(at);
            let fork = prefix.fork_with_faults((s.plan)(h_secs), s.policy);
            let report = fork.finish();
            howsim::cache::insert_sim(&sims[six], &plan, &report);
            reports[six] = Some(report);
            counts.forked_runs += 1;
        }
    }

    let mut rows = Vec::with_capacity(1 + scens.len());
    rows.push(Row {
        task: task.name(),
        arch: name,
        scenario: "healthy",
        seconds: h_secs,
        slowdown: 1.0,
        faults: 0,
    });
    for (s, r) in scens.iter().zip(&reports) {
        let r = r.as_ref().expect("every scenario resolved");
        debug_assert_eq!(r.aborted, s.rerun, "{name}/{}/{}", task.name(), s.label);
        let secs = r.elapsed().as_secs_f64() + if s.rerun { h_secs } else { 0.0 };
        rows.push(Row {
            task: task.name(),
            arch: name,
            scenario: s.label,
            seconds: secs,
            slowdown: secs / h_secs,
            faults: r.faults_injected,
        });
    }
    (rows, counts)
}

/// The pre-fork reference implementation: every fault scenario simulated
/// from t=0 through the batched result cache. Kept as the differential
/// baseline (fork-path rows must be field-identical) and as the
/// benchmark's scratch side.
pub fn run_configs_scratch(disks: usize, tasks: &[TaskKind]) -> Vec<Row> {
    let archs = architectures(disks);
    let points: Vec<(&'static str, &Architecture, TaskKind)> = tasks
        .iter()
        .flat_map(|&task| archs.iter().map(move |(name, arch)| (*name, arch, task)))
        .collect();
    let base: Vec<(Simulation, TaskPlan)> = points
        .iter()
        .map(|(_, arch, task)| {
            let plan = plan_task(*task, arch);
            (Simulation::new((*arch).clone()).with_seed(SEED), plan)
        })
        .collect();
    let healthy = howsim::cache::run_sims(&base);

    let scens = scenarios();
    let faulted: Vec<(Simulation, TaskPlan)> = points
        .iter()
        .zip(&healthy)
        .flat_map(|((_, arch, task), h)| {
            let plan = plan_task(*task, arch);
            let h_secs = h.elapsed().as_secs_f64();
            scens.iter().map(move |s| {
                (
                    Simulation::new((*arch).clone())
                        .with_seed(SEED)
                        .with_fault_plan((s.plan)(h_secs))
                        .with_recovery(s.policy),
                    plan.clone(),
                )
            })
        })
        .collect();
    let reports = howsim::cache::run_sims(&faulted);

    let mut rows = Vec::with_capacity(points.len() * (1 + scens.len()));
    for (ix, ((name, _, task), h)) in points.iter().zip(&healthy).enumerate() {
        let h_secs = h.elapsed().as_secs_f64();
        rows.push(Row {
            task: task.name(),
            arch: name,
            scenario: "healthy",
            seconds: h_secs,
            slowdown: 1.0,
            faults: 0,
        });
        for (six, s) in scens.iter().enumerate() {
            let r = &reports[ix * scens.len() + six];
            debug_assert_eq!(r.aborted, s.rerun, "{name}/{}/{}", task.name(), s.label);
            let secs = r.elapsed().as_secs_f64() + if s.rerun { h_secs } else { 0.0 };
            rows.push(Row {
                task: task.name(),
                arch: name,
                scenario: s.label,
                seconds: secs,
                slowdown: secs / h_secs,
                faults: r.faults_injected,
            });
        }
    }
    rows
}

/// Runs the default availability table (16 disks; select, sort, join).
pub fn run() -> Vec<Row> {
    run_configs(16, &[TaskKind::Select, TaskKind::Sort, TaskKind::Join])
}

/// Renders the availability experiment.
pub fn render(rows: &[Row]) -> String {
    let header: Vec<String> = ["task", "arch", "scenario", "seconds", "slowdown", "faults"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.task.to_string(),
                r.arch.to_string(),
                r.scenario.to_string(),
                format!("{:.1}", r.seconds),
                format!("{:.2}x", r.slowdown),
                r.faults.to_string(),
            ]
        })
        .collect();
    render_table(
        "Extension: degraded-mode availability (faults injected mid-query; \
         slowdown vs the healthy run of the same point)",
        &header,
        &body,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn redistribute_beats_abort_and_rerun() {
        let rows = run_configs(8, &[TaskKind::Sort]);
        let pick = |arch: &str, scenario: &str| -> &Row {
            rows.iter()
                .find(|r| r.arch == arch && r.scenario == scenario)
                .unwrap()
        };
        for arch in ["Active", "Cluster", "SMP"] {
            let healthy = pick(arch, "healthy");
            let redist = pick(arch, "disk-fail@50%");
            let rerun = pick(arch, "disk-fail@50%/abort+rerun");
            assert!((healthy.slowdown - 1.0).abs() < 1e-9);
            if arch != "SMP" {
                // The SMP stripes every read over the whole array, so a
                // mid-merge disk loss restripes over survivors at almost
                // no cost — its redistribute slowdown can be ~1.0. The
                // per-node-partitioned architectures must pay.
                assert!(
                    redist.slowdown > 1.0,
                    "{arch}: losing a disk must cost time, got {:.3}x",
                    redist.slowdown
                );
            }
            assert!(
                redist.slowdown > 0.999,
                "{arch}: recovery cannot beat healthy, got {:.3}x",
                redist.slowdown
            );
            assert!(
                rerun.slowdown > redist.slowdown,
                "{arch}: abort+rerun ({:.2}x) should be worse than \
                 redistribute ({:.2}x)",
                rerun.slowdown,
                redist.slowdown
            );
            assert_eq!(redist.faults, 1);
        }
    }

    #[test]
    fn every_scenario_emits_one_row_per_point() {
        let rows = run_configs(4, &[TaskKind::Select]);
        // 3 architectures × (1 healthy + 12 fault scenarios).
        assert_eq!(rows.len(), 3 * 13);
        assert!(rows.iter().all(|r| r.seconds > 0.0 && r.slowdown > 0.0));
        // Media bursts and link faults degrade without killing anything.
        for r in rows.iter().filter(|r| r.scenario == "media-burst@25%") {
            assert!(r.slowdown >= 1.0, "{}: {}", r.arch, r.slowdown);
        }
    }

    #[test]
    fn fork_path_matches_scratch_and_shares_the_prefix() {
        let _guard = crate::CACHE_TOGGLE_LOCK.lock().unwrap();
        // Unique config (2 disks, Aggregate) so this test's cache keys are
        // cold regardless of what the other tests have populated.
        let (rows, counts) = run_configs_counting(2, &[TaskKind::Aggregate]);
        // The healthy prefix simulated exactly once per (arch, task)
        // point — not once per scenario.
        assert_eq!(counts.prefix_runs, 3, "one shared prefix per point");
        assert_eq!(counts.forked_runs, 3 * 12, "one fork per scenario");
        // Field-identical to actually simulating every scenario from
        // t=0: the cache is disabled for the scratch pass so nothing is
        // served from the entries the fork path inserted.
        howsim::cache::set_enabled(false);
        let scratch = run_configs_scratch(2, &[TaskKind::Aggregate]);
        howsim::cache::set_enabled(true);
        assert_eq!(rows, scratch);
        // Re-running the fork path is all cache hits: no prefix re-run.
        let (again, recounts) = run_configs_counting(2, &[TaskKind::Aggregate]);
        assert_eq!(again, rows);
        assert_eq!(recounts, RunCounts::default());
    }
}
