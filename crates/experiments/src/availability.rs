//! Degraded-mode availability experiment.
//!
//! The paper evaluates healthy hardware only, but a 64-disk decision
//! support machine spends a meaningful fraction of its life with
//! something broken. This experiment measures how each architecture
//! degrades when faults strike mid-query: disk fail-stops at 25% and 50%
//! of the healthy run (under the redistribute and reconstruct-read
//! recovery policies, plus the abort-and-rerun baseline), a grown-defect
//! media burst, and an interconnect fault. Every scenario reports the
//! slowdown relative to the healthy run of the same (task, architecture)
//! point.
//!
//! Fault times are derived from the *healthy simulated elapsed time* of
//! the same point, so the schedule is fully deterministic: same seed,
//! same table, at any `--jobs` count.

use arch::Architecture;
use howsim::faults::{FaultPlan, RecoveryPolicy};
use howsim::Simulation;
use simcore::Duration;
use tasks::{plan_task, TaskKind, TaskPlan};

use crate::render_table;

/// The seed every availability run uses (defect placement draws on it).
pub const SEED: u64 = 42;

/// One row of the availability table.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Task name.
    pub task: &'static str,
    /// Architecture label.
    pub arch: &'static str,
    /// Fault scenario label.
    pub scenario: &'static str,
    /// Simulated seconds (for abort-and-rerun: aborted run + full rerun).
    pub seconds: f64,
    /// Normalized to the healthy run of the same (task, arch) point.
    pub slowdown: f64,
    /// Fault events that struck.
    pub faults: u64,
}

/// The architectures the availability table compares.
fn architectures(disks: usize) -> [(&'static str, Architecture); 3] {
    [
        ("Active", Architecture::active_disks(disks)),
        ("Cluster", Architecture::cluster(disks)),
        ("SMP", Architecture::smp(disks)),
    ]
}

/// A fault scenario: a label plus the plan/policy it runs under, built
/// from the healthy elapsed time of the point it applies to.
struct Scenario {
    label: &'static str,
    policy: RecoveryPolicy,
    /// Abort-and-rerun scenarios add the healthy elapsed time on top of
    /// the aborted run (the query restarts from scratch on the survivors'
    /// next maintenance window).
    rerun: bool,
    plan: fn(f64) -> FaultPlan,
}

/// The fault scenarios, each a function of the healthy elapsed seconds.
fn scenarios() -> Vec<Scenario> {
    fn at(frac: f64, healthy: f64) -> Duration {
        Duration::from_secs_f64(healthy * frac)
    }
    vec![
        Scenario {
            label: "disk-fail@25%",
            policy: RecoveryPolicy::Redistribute,
            rerun: false,
            plan: |h| FaultPlan::new().disk_fail_stop(1, at(0.25, h)),
        },
        Scenario {
            label: "disk-fail@50%",
            policy: RecoveryPolicy::Redistribute,
            rerun: false,
            plan: |h| FaultPlan::new().disk_fail_stop(1, at(0.50, h)),
        },
        Scenario {
            label: "disk-fail@50%/reconstruct",
            policy: RecoveryPolicy::ReconstructRead,
            rerun: false,
            plan: |h| FaultPlan::new().disk_fail_stop(1, at(0.50, h)),
        },
        Scenario {
            label: "disk-fail@50%/abort+rerun",
            policy: RecoveryPolicy::FailStop,
            rerun: true,
            plan: |h| FaultPlan::new().disk_fail_stop(1, at(0.50, h)),
        },
        Scenario {
            label: "media-burst@25%",
            policy: RecoveryPolicy::Redistribute,
            rerun: false,
            plan: |h| FaultPlan::new().media_burst(1, at(0.25, h), 2_000),
        },
        Scenario {
            label: "link-fault@25%",
            policy: RecoveryPolicy::Redistribute,
            rerun: false,
            plan: |h| FaultPlan::new().link_fault(1, at(0.25, h), 0.5),
        },
    ]
}

/// Runs the availability sweep for `disks`-node configurations of every
/// architecture over `tasks`.
///
/// Two batched passes through the result cache: the healthy baselines
/// first (their elapsed times parameterize the fault schedules), then
/// every fault scenario in one deterministic parallel sweep.
pub fn run_configs(disks: usize, tasks: &[TaskKind]) -> Vec<Row> {
    let archs = architectures(disks);
    let points: Vec<(&'static str, &Architecture, TaskKind)> = tasks
        .iter()
        .flat_map(|&task| archs.iter().map(move |(name, arch)| (*name, arch, task)))
        .collect();
    let base: Vec<(Simulation, TaskPlan)> = points
        .iter()
        .map(|(_, arch, task)| {
            let plan = plan_task(*task, arch);
            (Simulation::new((*arch).clone()).with_seed(SEED), plan)
        })
        .collect();
    let healthy = howsim::cache::run_sims(&base);

    let scens = scenarios();
    let faulted: Vec<(Simulation, TaskPlan)> = points
        .iter()
        .zip(&healthy)
        .flat_map(|((_, arch, task), h)| {
            let plan = plan_task(*task, arch);
            let h_secs = h.elapsed().as_secs_f64();
            scens.iter().map(move |s| {
                (
                    Simulation::new((*arch).clone())
                        .with_seed(SEED)
                        .with_fault_plan((s.plan)(h_secs))
                        .with_recovery(s.policy),
                    plan.clone(),
                )
            })
        })
        .collect();
    let reports = howsim::cache::run_sims(&faulted);

    let mut rows = Vec::with_capacity(points.len() * (1 + scens.len()));
    for (ix, ((name, _, task), h)) in points.iter().zip(&healthy).enumerate() {
        let h_secs = h.elapsed().as_secs_f64();
        rows.push(Row {
            task: task.name(),
            arch: name,
            scenario: "healthy",
            seconds: h_secs,
            slowdown: 1.0,
            faults: 0,
        });
        for (six, s) in scens.iter().enumerate() {
            let r = &reports[ix * scens.len() + six];
            debug_assert_eq!(r.aborted, s.rerun, "{name}/{}/{}", task.name(), s.label);
            let secs = r.elapsed().as_secs_f64() + if s.rerun { h_secs } else { 0.0 };
            rows.push(Row {
                task: task.name(),
                arch: name,
                scenario: s.label,
                seconds: secs,
                slowdown: secs / h_secs,
                faults: r.faults_injected,
            });
        }
    }
    rows
}

/// Runs the default availability table (16 disks; select, sort, join).
pub fn run() -> Vec<Row> {
    run_configs(16, &[TaskKind::Select, TaskKind::Sort, TaskKind::Join])
}

/// Renders the availability experiment.
pub fn render(rows: &[Row]) -> String {
    let header: Vec<String> = ["task", "arch", "scenario", "seconds", "slowdown", "faults"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.task.to_string(),
                r.arch.to_string(),
                r.scenario.to_string(),
                format!("{:.1}", r.seconds),
                format!("{:.2}x", r.slowdown),
                r.faults.to_string(),
            ]
        })
        .collect();
    render_table(
        "Extension: degraded-mode availability (faults injected mid-query; \
         slowdown vs the healthy run of the same point)",
        &header,
        &body,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn redistribute_beats_abort_and_rerun() {
        let rows = run_configs(8, &[TaskKind::Sort]);
        let pick = |arch: &str, scenario: &str| -> &Row {
            rows.iter()
                .find(|r| r.arch == arch && r.scenario == scenario)
                .unwrap()
        };
        for arch in ["Active", "Cluster", "SMP"] {
            let healthy = pick(arch, "healthy");
            let redist = pick(arch, "disk-fail@50%");
            let rerun = pick(arch, "disk-fail@50%/abort+rerun");
            assert!((healthy.slowdown - 1.0).abs() < 1e-9);
            if arch != "SMP" {
                // The SMP stripes every read over the whole array, so a
                // mid-merge disk loss restripes over survivors at almost
                // no cost — its redistribute slowdown can be ~1.0. The
                // per-node-partitioned architectures must pay.
                assert!(
                    redist.slowdown > 1.0,
                    "{arch}: losing a disk must cost time, got {:.3}x",
                    redist.slowdown
                );
            }
            assert!(
                redist.slowdown > 0.999,
                "{arch}: recovery cannot beat healthy, got {:.3}x",
                redist.slowdown
            );
            assert!(
                rerun.slowdown > redist.slowdown,
                "{arch}: abort+rerun ({:.2}x) should be worse than \
                 redistribute ({:.2}x)",
                rerun.slowdown,
                redist.slowdown
            );
            assert_eq!(redist.faults, 1);
        }
    }

    #[test]
    fn every_scenario_emits_one_row_per_point() {
        let rows = run_configs(4, &[TaskKind::Select]);
        // 3 architectures × (1 healthy + 6 fault scenarios).
        assert_eq!(rows.len(), 3 * 7);
        assert!(rows.iter().all(|r| r.seconds > 0.0 && r.slowdown > 0.0));
        // Media bursts and link faults degrade without killing anything.
        for r in rows.iter().filter(|r| r.scenario == "media-burst@25%") {
            assert!(r.slowdown >= 1.0, "{}: {}", r.arch, r.slowdown);
        }
    }
}
