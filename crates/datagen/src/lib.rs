//! Dataset definitions and synthetic generators for the workload suite.
//!
//! [`DatasetSpec`] encodes Table 2 of the paper — the dataset each of the
//! eight decision-support tasks runs on. The [`gen`] module synthesizes
//! actual records at reduced scale so the [`kernels`] crate can execute the
//! real algorithms (correctness tests and work-unit derivation); the
//! simulator itself consumes only the aggregate shape (bytes, tuples,
//! cardinalities).
//!
//! [`kernels`]: https://docs.rs/kernels

#![warn(missing_docs)]

pub mod gen;
pub mod spec;
pub mod zipf;

pub use spec::{DatasetSpec, TaskParams, GB};
