//! Table 2: the dataset used for each task in the workload.

/// One decimal gigabyte.
pub const GB: u64 = 1_000_000_000;

/// Task-specific dataset parameters beyond size and tuple shape.
#[derive(Debug, Clone, PartialEq)]
pub enum TaskParams {
    /// SQL select: fraction of tuples satisfying the predicate.
    Select {
        /// Selectivity in [0, 1] (1% in the paper).
        selectivity: f64,
    },
    /// SQL aggregate (SUM): a zero-dimensional reduction.
    Aggregate,
    /// SQL group-by: number of distinct groups (13.5 million).
    GroupBy {
        /// Distinct group keys.
        distinct_groups: u64,
        /// Bytes per result row (group key + aggregate).
        result_tuple_bytes: u64,
    },
    /// The datacube operator over a 4-dimensional fact table.
    DataCube {
        /// Distinct values per dimension, as fractions of the tuple count
        /// (1%, 0.1%, 0.01%, 0.001% in the paper).
        dim_distinct_fractions: [f64; 4],
        /// Bytes per hash-table entry (group key + aggregate + chain).
        entry_bytes: u64,
    },
    /// External sort: uniformly distributed keys.
    Sort {
        /// Key length in bytes (10 in the paper).
        key_bytes: u64,
    },
    /// Project-join: two relations totalling `total_bytes`, tuples
    /// projected before the shuffle.
    Join {
        /// Bytes per tuple after projection (32 in the paper).
        projected_tuple_bytes: u64,
        /// Key length in bytes (4 in the paper).
        key_bytes: u64,
    },
    /// Association-rule mining (Apriori) on retail transactions.
    DataMine {
        /// Number of transactions (300 million).
        transactions: u64,
        /// Catalog size (1 million items).
        items: u64,
        /// Average items per transaction (4).
        avg_items_per_txn: f64,
        /// Minimum support (0.1%).
        min_support: f64,
        /// Bytes of itemset counters needed per disk (5.4 MB measured in
        /// the paper for this dataset).
        counter_bytes_per_disk: u64,
    },
    /// Materialized-view maintenance: applying deltas to derived relations.
    MaterializedView {
        /// Total size of the derived relations (4 GB).
        derived_bytes: u64,
        /// Total size of the delta stream (1 GB).
        delta_bytes: u64,
    },
}

/// A dataset description (one row of Table 2).
///
/// # Example
///
/// ```
/// use datagen::{DatasetSpec, GB};
/// let d = DatasetSpec::select();
/// assert_eq!(d.tuples, 268_000_000);
/// assert_eq!(d.tuple_bytes, 64);
/// assert!(d.total_bytes >= 16 * GB);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetSpec {
    /// Task name (paper spelling).
    pub name: &'static str,
    /// Number of input tuples (or transactions for dmine).
    pub tuples: u64,
    /// Bytes per input tuple.
    pub tuple_bytes: u64,
    /// Total input bytes scanned in the first pass.
    pub total_bytes: u64,
    /// Task-specific parameters.
    pub params: TaskParams,
}

impl DatasetSpec {
    /// select: 268 million 64-byte tuples, 1% selectivity.
    pub fn select() -> Self {
        DatasetSpec {
            name: "select",
            tuples: 268_000_000,
            tuple_bytes: 64,
            total_bytes: 268_000_000 * 64,
            params: TaskParams::Select { selectivity: 0.01 },
        }
    }

    /// aggregate: 268 million 64-byte tuples, SUM function.
    pub fn aggregate() -> Self {
        DatasetSpec {
            name: "aggregate",
            tuples: 268_000_000,
            tuple_bytes: 64,
            total_bytes: 268_000_000 * 64,
            params: TaskParams::Aggregate,
        }
    }

    /// groupby: 268 million 64-byte tuples, 13.5 million distinct groups.
    pub fn groupby() -> Self {
        DatasetSpec {
            name: "groupby",
            tuples: 268_000_000,
            tuple_bytes: 64,
            total_bytes: 268_000_000 * 64,
            params: TaskParams::GroupBy {
                distinct_groups: 13_500_000,
                result_tuple_bytes: 64,
            },
        }
    }

    /// dcube: 536 million 32-byte tuples, 4 dimensions with 1%, 0.1%,
    /// 0.01% and 0.001% distinct values.
    pub fn dcube() -> Self {
        DatasetSpec {
            name: "dcube",
            tuples: 536_000_000,
            tuple_bytes: 32,
            total_bytes: 536_000_000 * 32,
            params: TaskParams::DataCube {
                dim_distinct_fractions: [0.01, 0.001, 0.000_1, 0.000_01],
                entry_bytes: 32,
            },
        }
    }

    /// sort: 16 GB of 100-byte tuples with 10-byte uniform keys.
    pub fn sort() -> Self {
        DatasetSpec {
            name: "sort",
            tuples: 16 * GB / 100,
            tuple_bytes: 100,
            total_bytes: 16 * GB,
            params: TaskParams::Sort { key_bytes: 10 },
        }
    }

    /// join: 32 GB of 64-byte tuples, 4-byte uniform keys, 32-byte tuples
    /// after projection.
    pub fn join() -> Self {
        DatasetSpec {
            name: "join",
            tuples: 32 * GB / 64,
            tuple_bytes: 64,
            total_bytes: 32 * GB,
            params: TaskParams::Join {
                projected_tuple_bytes: 32,
                key_bytes: 4,
            },
        }
    }

    /// dmine: 300 million transactions, 1 million items, average 4 items
    /// per transaction, 0.1% minimum support (16 GB encoded).
    pub fn dmine() -> Self {
        DatasetSpec {
            name: "dmine",
            tuples: 300_000_000,
            tuple_bytes: 53, // 16 GB / 300 M transactions, encoded
            total_bytes: 16 * GB,
            params: TaskParams::DataMine {
                transactions: 300_000_000,
                items: 1_000_000,
                avg_items_per_txn: 4.0,
                min_support: 0.001,
                counter_bytes_per_disk: 5_400_000,
            },
        }
    }

    /// mview: 15 GB base dataset of 32-byte tuples, 4 GB derived
    /// relations, 1 GB deltas.
    pub fn mview() -> Self {
        DatasetSpec {
            name: "mview",
            tuples: 15 * GB / 32,
            tuple_bytes: 32,
            total_bytes: 15 * GB,
            params: TaskParams::MaterializedView {
                derived_bytes: 4 * GB,
                delta_bytes: GB,
            },
        }
    }

    /// All eight datasets in the paper's presentation order.
    pub fn all() -> Vec<DatasetSpec> {
        vec![
            Self::select(),
            Self::aggregate(),
            Self::groupby(),
            Self::dcube(),
            Self::sort(),
            Self::join(),
            Self::dmine(),
            Self::mview(),
        ]
    }

    /// A proportionally scaled-up copy (same shape, `factor×` the tuples
    /// and bytes) — used for growth studies: the paper's motivation is
    /// datasets that double every nine-to-twelve months.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is zero.
    #[must_use]
    pub fn scaled_up(&self, factor: u64) -> DatasetSpec {
        assert!(factor > 0, "scale factor must be positive");
        let mut d = self.clone();
        d.tuples *= factor;
        d.total_bytes *= factor;
        if let TaskParams::DataMine {
            ref mut transactions,
            ..
        } = d.params
        {
            *transactions *= factor;
        }
        if let TaskParams::MaterializedView {
            ref mut derived_bytes,
            ref mut delta_bytes,
        } = d.params
        {
            *derived_bytes *= factor;
            *delta_bytes *= factor;
        }
        d
    }

    /// A proportionally scaled-down copy for fast tests (same shape,
    /// `1/factor` of the tuples and bytes).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is zero or larger than the tuple count.
    #[must_use]
    pub fn scaled_down(&self, factor: u64) -> DatasetSpec {
        assert!(factor > 0, "scale factor must be positive");
        assert!(factor <= self.tuples, "cannot scale below one tuple");
        let mut d = self.clone();
        d.tuples /= factor;
        d.total_bytes /= factor;
        if let TaskParams::DataMine {
            ref mut transactions,
            ..
        } = d.params
        {
            *transactions /= factor;
        }
        if let TaskParams::MaterializedView {
            ref mut derived_bytes,
            ref mut delta_bytes,
        } = d.params
        {
            *derived_bytes /= factor;
            *delta_bytes /= factor;
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_sizes() {
        // 16 GB datasets for all applications except join (32 GB) and
        // mview (15 GB). The 64-byte tuple datasets are 268 M × 64 B
        // ≈ 17.2 decimal GB, i.e. "16 GB" in binary units.
        for d in DatasetSpec::all() {
            let gb = d.total_bytes as f64 / GB as f64;
            match d.name {
                "join" => assert!((gb - 32.0).abs() < 3.0, "{}: {gb}", d.name),
                "mview" => assert!((gb - 15.0).abs() < 1.5, "{}: {gb}", d.name),
                _ => assert!((gb - 16.0).abs() < 2.0, "{}: {gb}", d.name),
            }
        }
    }

    #[test]
    fn eight_tasks_in_order() {
        let names: Vec<_> = DatasetSpec::all().iter().map(|d| d.name).collect();
        assert_eq!(
            names,
            vec![
                "select",
                "aggregate",
                "groupby",
                "dcube",
                "sort",
                "join",
                "dmine",
                "mview"
            ]
        );
    }

    #[test]
    fn select_parameters() {
        let d = DatasetSpec::select();
        match d.params {
            TaskParams::Select { selectivity } => assert_eq!(selectivity, 0.01),
            _ => panic!("wrong params"),
        }
    }

    #[test]
    fn groupby_distinct_count() {
        match DatasetSpec::groupby().params {
            TaskParams::GroupBy {
                distinct_groups, ..
            } => assert_eq!(distinct_groups, 13_500_000),
            _ => panic!("wrong params"),
        }
    }

    #[test]
    fn dcube_dimension_fractions() {
        match DatasetSpec::dcube().params {
            TaskParams::DataCube {
                dim_distinct_fractions,
                ..
            } => {
                assert_eq!(dim_distinct_fractions, [0.01, 0.001, 0.000_1, 0.000_01]);
            }
            _ => panic!("wrong params"),
        }
    }

    #[test]
    fn dmine_parameters() {
        match DatasetSpec::dmine().params {
            TaskParams::DataMine {
                transactions,
                items,
                min_support,
                counter_bytes_per_disk,
                ..
            } => {
                assert_eq!(transactions, 300_000_000);
                assert_eq!(items, 1_000_000);
                assert_eq!(min_support, 0.001);
                assert_eq!(counter_bytes_per_disk, 5_400_000);
            }
            _ => panic!("wrong params"),
        }
    }

    #[test]
    fn mview_sizes() {
        match DatasetSpec::mview().params {
            TaskParams::MaterializedView {
                derived_bytes,
                delta_bytes,
            } => {
                assert_eq!(derived_bytes, 4 * GB);
                assert_eq!(delta_bytes, GB);
            }
            _ => panic!("wrong params"),
        }
    }

    #[test]
    fn scaling_preserves_shape() {
        let d = DatasetSpec::sort().scaled_down(1_000);
        assert_eq!(d.tuple_bytes, 100);
        assert_eq!(d.tuples, 160_000_000 / 1_000);
        assert_eq!(d.total_bytes, 16 * GB / 1_000);
    }

    #[test]
    fn scaling_up_multiplies() {
        let d = DatasetSpec::dmine().scaled_up(4);
        assert_eq!(d.total_bytes, 64 * GB);
        match d.params {
            TaskParams::DataMine { transactions, .. } => {
                assert_eq!(transactions, 1_200_000_000);
            }
            _ => panic!("wrong params"),
        }
        // Round trip.
        assert_eq!(d.scaled_down(4), DatasetSpec::dmine());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_scale_rejected() {
        let _ = DatasetSpec::sort().scaled_down(0);
    }
}
