//! Synthetic record generators (reduced-scale, deterministic).
//!
//! The paper acquired application traces by running each algorithm on a
//! real workstation over the Table 2 datasets. This reproduction instead
//! runs the real algorithms (crate `kernels`) over *reduced-scale*
//! synthetic data with the same statistical shape, generated here. All
//! generators are deterministic in their seed.

use simcore::SplitMix64;

/// A relational tuple for select/aggregate/group-by (the interesting
/// fields of the paper's 64-byte tuple).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Tuple {
    /// Grouping / predicate key.
    pub key: u64,
    /// Measure being aggregated.
    pub value: i64,
}

/// A 100-byte sort record: 10-byte key plus payload (payload elided; the
/// record index stands in for it so permutation checks are possible).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SortRecord {
    /// The 10-byte sort key.
    pub key: [u8; 10],
    /// Original position (stands in for the 90-byte payload).
    pub origin: u64,
}

/// A fact-table row for the datacube task.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CubeFact {
    /// The four dimension attributes.
    pub dims: [u32; 4],
    /// The measure.
    pub measure: i64,
}

/// Generates `n` tuples with keys uniform in `[0, distinct)`.
///
/// # Panics
///
/// Panics if `distinct` is zero.
pub fn tuples(n: usize, distinct: u64, seed: u64) -> Vec<Tuple> {
    assert!(distinct > 0, "distinct must be positive");
    let mut rng = SplitMix64::new(seed);
    (0..n)
        .map(|_| Tuple {
            key: rng.next_below(distinct),
            value: (rng.next_below(1_000)) as i64,
        })
        .collect()
}

/// Generates `n` sort records with uniform 10-byte keys.
pub fn sort_records(n: usize, seed: u64) -> Vec<SortRecord> {
    let mut rng = SplitMix64::new(seed);
    (0..n as u64)
        .map(|i| {
            let mut key = [0u8; 10];
            let hi = rng.next_u64().to_be_bytes();
            let lo = rng.next_u64().to_be_bytes();
            key[..8].copy_from_slice(&hi);
            key[8..].copy_from_slice(&lo[..2]);
            SortRecord { key, origin: i }
        })
        .collect()
}

/// Generates `n` fact rows whose dimension `d` takes `cardinalities[d]`
/// distinct values uniformly.
///
/// # Panics
///
/// Panics if any cardinality is zero.
pub fn cube_facts(n: usize, cardinalities: [u64; 4], seed: u64) -> Vec<CubeFact> {
    assert!(
        cardinalities.iter().all(|&c| c > 0),
        "cardinalities must be positive"
    );
    let mut rng = SplitMix64::new(seed);
    (0..n)
        .map(|_| CubeFact {
            dims: [
                rng.next_below(cardinalities[0]) as u32,
                rng.next_below(cardinalities[1]) as u32,
                rng.next_below(cardinalities[2]) as u32,
                rng.next_below(cardinalities[3]) as u32,
            ],
            measure: rng.next_below(100) as i64,
        })
        .collect()
}

/// Generates `n` join tuples with uniform keys in `[0, distinct)`; used
/// for both relations of the project-join.
pub fn join_tuples(n: usize, distinct: u64, seed: u64) -> Vec<Tuple> {
    tuples(n, distinct, seed)
}

/// Generates retail market-basket transactions.
///
/// Transaction lengths are geometric with the given mean (minimum one
/// item). Items mix a small "hot" set (popular products) with a uniform
/// tail over the full catalog, so that frequent itemsets exist at
/// realistic supports — the shape Apriori-style mining is sensitive to.
///
/// # Panics
///
/// Panics if `items` is zero or `avg_items < 1.0`.
pub fn transactions(n: usize, items: u64, avg_items: f64, seed: u64) -> Vec<Vec<u32>> {
    assert!(items > 0, "catalog must be non-empty");
    assert!(avg_items >= 1.0, "mean basket size must be >= 1");
    let mut rng = SplitMix64::new(seed);
    let hot = (items / 100).clamp(1, 50);
    // Geometric with mean m: success probability 1/m, support {1, 2, ...}.
    let p = 1.0 / avg_items;
    (0..n)
        .map(|_| {
            let mut len = 1usize;
            while rng.next_f64() > p && len < 32 {
                len += 1;
            }
            let mut txn: Vec<u32> = (0..len)
                .map(|_| {
                    if rng.next_f64() < 0.5 {
                        rng.next_below(hot) as u32
                    } else {
                        rng.next_below(items) as u32
                    }
                })
                .collect();
            txn.sort_unstable();
            txn.dedup();
            txn
        })
        .collect()
}

/// Generates a delta stream for materialized-view maintenance: updates to
/// `distinct` view keys.
///
/// # Panics
///
/// Panics if `distinct` is zero.
pub fn deltas(n: usize, distinct: u64, seed: u64) -> Vec<Tuple> {
    tuples(n, distinct, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(tuples(100, 10, 7), tuples(100, 10, 7));
        assert_eq!(sort_records(100, 7), sort_records(100, 7));
        assert_eq!(
            transactions(100, 1_000, 4.0, 7),
            transactions(100, 1_000, 4.0, 7)
        );
        assert_eq!(
            cube_facts(100, [10, 10, 10, 10], 7),
            cube_facts(100, [10, 10, 10, 10], 7)
        );
    }

    #[test]
    fn different_seeds_differ() {
        assert_ne!(tuples(100, 1_000, 1), tuples(100, 1_000, 2));
    }

    #[test]
    fn tuple_keys_respect_cardinality() {
        let ts = tuples(10_000, 13, 42);
        assert!(ts.iter().all(|t| t.key < 13));
        // All 13 keys should appear in 10 k draws.
        let mut seen = [false; 13];
        for t in &ts {
            seen[t.key as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn sort_keys_are_roughly_uniform() {
        let rs = sort_records(10_000, 3);
        let high: usize = rs.iter().filter(|r| r.key[0] >= 128).count();
        assert!(
            (4_000..6_000).contains(&high),
            "first byte balanced: {high}"
        );
        // Origins form the identity permutation.
        assert!(rs.iter().enumerate().all(|(i, r)| r.origin == i as u64));
    }

    #[test]
    fn basket_sizes_average_out() {
        let txns = transactions(20_000, 100_000, 4.0, 9);
        let total: usize = txns.iter().map(Vec::len).sum();
        let mean = total as f64 / txns.len() as f64;
        // Dedup trims a little below the geometric mean of 4.
        assert!((3.0..4.5).contains(&mean), "mean basket {mean}");
        assert!(txns.iter().all(|t| !t.is_empty()));
    }

    #[test]
    fn baskets_are_sorted_and_unique() {
        for txn in transactions(1_000, 10_000, 4.0, 11) {
            assert!(txn.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn hot_items_are_frequent() {
        let txns = transactions(10_000, 100_000, 4.0, 13);
        let hot_hits = txns.iter().filter(|t| t.iter().any(|&i| i < 1_000)).count();
        // At least a quarter of baskets touch the hot set, so frequent
        // itemsets exist at 1% support.
        assert!(hot_hits > 2_500, "hot hits {hot_hits}");
    }

    #[test]
    fn cube_dims_respect_cardinalities() {
        let card = [50, 5, 2, 100];
        let facts = cube_facts(5_000, card, 21);
        for f in &facts {
            for (dim, &cap) in f.dims.iter().zip(&card) {
                assert!(u64::from(*dim) < cap);
            }
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_distinct_rejected() {
        tuples(1, 0, 0);
    }
}
