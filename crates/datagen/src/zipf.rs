//! Zipf-distributed key generation.
//!
//! Decision-support data is rarely uniform: customer, product, and region
//! keys follow heavy-tailed distributions. The paper's datasets use
//! uniform keys (Table 2), which makes repartitioning perfectly balanced;
//! this module provides the skewed alternative used by the repository's
//! skew-sensitivity extension experiment.

use simcore::SplitMix64;

/// A Zipf(θ) sampler over ranks `0..n` (rank 0 most popular), using the
/// classical inverse-CDF over precomputed cumulative weights.
///
/// # Example
///
/// ```
/// use datagen::zipf::Zipf;
/// use simcore::SplitMix64;
///
/// let zipf = Zipf::new(100, 1.0);
/// let mut rng = SplitMix64::new(7);
/// let x = zipf.sample(&mut rng);
/// assert!(x < 100);
/// ```
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds a sampler over `n` ranks with exponent `theta`
    /// (`theta = 0` is uniform; ~1 is classic Zipf).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or `theta` is negative/not finite.
    pub fn new(n: usize, theta: f64) -> Self {
        assert!(n > 0, "need at least one rank");
        assert!(
            theta.is_finite() && theta >= 0.0,
            "theta must be a non-negative finite number"
        );
        let mut cdf = Vec::with_capacity(n);
        let mut total = 0.0;
        for rank in 1..=n {
            total += 1.0 / (rank as f64).powf(theta);
            cdf.push(total);
        }
        for c in &mut cdf {
            *c /= total;
        }
        Zipf { cdf }
    }

    /// Number of ranks.
    pub fn ranks(&self) -> usize {
        self.cdf.len()
    }

    /// Probability mass of `rank`.
    ///
    /// # Panics
    ///
    /// Panics if `rank` is out of range.
    pub fn pmf(&self, rank: usize) -> f64 {
        let hi = self.cdf[rank];
        let lo = if rank == 0 { 0.0 } else { self.cdf[rank - 1] };
        hi - lo
    }

    /// Draws one rank.
    pub fn sample(&self, rng: &mut SplitMix64) -> usize {
        let u = rng.next_f64();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }

    /// The per-partition load weights induced by hashing Zipf keys onto
    /// `parts` partitions rank-major (rank r → partition r % parts) — the
    /// shape a skewed repartition produces.
    ///
    /// # Panics
    ///
    /// Panics if `parts` is zero.
    pub fn partition_weights(&self, parts: usize) -> Vec<f64> {
        assert!(parts > 0, "need at least one partition");
        let mut weights = vec![0.0; parts];
        for rank in 0..self.ranks() {
            weights[rank % parts] += self.pmf(rank);
        }
        weights
    }
}

/// Generates `n` tuples with Zipf(θ)-distributed keys over `distinct` ranks.
pub fn zipf_tuples(n: usize, distinct: u64, theta: f64, seed: u64) -> Vec<crate::gen::Tuple> {
    let zipf = Zipf::new(distinct as usize, theta);
    let mut rng = SplitMix64::new(seed);
    (0..n)
        .map(|_| crate::gen::Tuple {
            key: zipf.sample(&mut rng) as u64,
            value: rng.next_below(1_000) as i64,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn theta_zero_is_uniform() {
        let z = Zipf::new(10, 0.0);
        for rank in 0..10 {
            assert!((z.pmf(rank) - 0.1).abs() < 1e-12);
        }
    }

    #[test]
    fn classic_zipf_head_dominates() {
        let z = Zipf::new(1_000, 1.0);
        assert!(z.pmf(0) > 0.1, "rank 0 mass {}", z.pmf(0));
        assert!(z.pmf(0) > 50.0 * z.pmf(999));
        // Monotone non-increasing.
        for r in 1..1_000 {
            assert!(z.pmf(r) <= z.pmf(r - 1) + 1e-15);
        }
    }

    #[test]
    fn samples_match_pmf() {
        let z = Zipf::new(50, 1.0);
        let mut rng = SplitMix64::new(3);
        let n = 200_000;
        let mut counts = vec![0u64; 50];
        for _ in 0..n {
            counts[z.sample(&mut rng)] += 1;
        }
        for rank in [0usize, 1, 5, 20] {
            let observed = counts[rank] as f64 / n as f64;
            let expected = z.pmf(rank);
            assert!(
                (observed - expected).abs() < 0.01,
                "rank {rank}: observed {observed:.4} vs pmf {expected:.4}"
            );
        }
    }

    #[test]
    fn partition_weights_sum_to_one_and_skew() {
        let z = Zipf::new(10_000, 1.0);
        let w = z.partition_weights(16);
        let total: f64 = w.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
        let max = w.iter().cloned().fold(0.0, f64::max);
        assert!(max > 2.0 / 16.0, "hot partition weight {max}");
    }

    #[test]
    fn zipf_tuples_are_deterministic_and_skewed() {
        let a = zipf_tuples(10_000, 100, 1.0, 5);
        let b = zipf_tuples(10_000, 100, 1.0, 5);
        assert_eq!(a, b);
        let zeros = a.iter().filter(|t| t.key == 0).count();
        assert!(zeros > 1_000, "rank-0 key count {zeros}");
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_rejected() {
        Zipf::new(0, 1.0);
    }

    proptest! {
        /// The CDF is a proper distribution for any theta.
        #[test]
        fn prop_cdf_valid(n in 1usize..500, theta in 0.0f64..2.5) {
            let z = Zipf::new(n, theta);
            let total: f64 = (0..n).map(|r| z.pmf(r)).sum();
            prop_assert!((total - 1.0).abs() < 1e-9);
            let mut rng = SplitMix64::new(1);
            for _ in 0..100 {
                prop_assert!(z.sample(&mut rng) < n);
            }
        }
    }
}
