//! Integration tests for the observability layer: manifest determinism
//! and bottleneck attribution on the paper's figure-2 configurations.

use arch::Architecture;
use howsim::manifest::RunManifest;
use howsim::{Attribution, MetricsBuilder, Resource, Simulation, Trace};
use tasks::TaskKind;

/// Two runs of the same configuration and seed must serialize to
/// byte-identical manifests (the `host` section, the only wall-clock
/// data, defaults to `null`).
#[test]
fn identical_runs_produce_byte_identical_manifests() {
    let arch = Architecture::cluster(16);
    let make = || {
        let sim = Simulation::new(arch.clone());
        let plan = tasks::plan_task(TaskKind::Join, &arch);
        let mut trace = Trace::new();
        let mut metrics = MetricsBuilder::new();
        let report = sim.run_plan_instrumented(&plan, Some(&mut trace), Some(&mut metrics));
        RunManifest::new(&arch, &report)
            .with_seed(42)
            .with_metrics(metrics.finish(report.events))
            .with_trace(trace.summary())
            .to_json()
    };
    let a = make();
    let b = make();
    assert_eq!(a, b);
    assert!(a.contains("\"schema\": \"howsim-manifest/v1\""));
    assert!(a.contains("\"seed\": 42"));
    assert!(a.contains("\"sample_interval_ns\": 250000000"));
}

/// The fig2-style 64-disk cluster join must attribute a saturated
/// (≥90% busy) resource as its bottleneck.
#[test]
fn cluster_join_at_64_disks_has_a_saturated_bottleneck() {
    let report = Simulation::new(Architecture::cluster(64)).run(TaskKind::Join);
    let attr = Attribution::from_report(&report);
    let b = attr.bottleneck().expect("phases ran");
    assert!(
        b.peak_utilization >= 0.90,
        "bottleneck {:?} only {:.1}% utilized",
        b.resource,
        b.peak_utilization * 100.0
    );
    // The cluster join is disk-bound in this model: each host scans and
    // rescans its partitions at full media rate.
    assert_eq!(b.resource, Resource::DiskMedia);
}

/// On the 64-disk SMP the shared FC I/O loop is the wall — the paper's
/// explanation for why the server configurations stop scaling.
#[test]
fn smp_join_at_64_disks_saturates_the_interconnect() {
    let report = Simulation::new(Architecture::smp(64)).run(TaskKind::Join);
    let attr = Attribution::from_report(&report);
    let b = attr.bottleneck().expect("phases ran");
    assert_eq!(b.resource, Resource::Interconnect);
    assert!(b.peak_utilization >= 0.90);
}

/// Sampled metrics land on the simulated-time grid and cover every
/// resource the machine owns.
#[test]
fn instrumented_run_collects_utilization_series() {
    let arch = Architecture::smp(16);
    let sim = Simulation::new(arch.clone());
    let plan = tasks::plan_task(TaskKind::Select, &arch);
    let mut metrics = MetricsBuilder::new();
    let report = sim.run_plan_instrumented(&plan, None, Some(&mut metrics));
    let m = metrics.finish(report.events);
    assert_eq!(m.events, report.events);
    assert!(report.events > 0);
    // SMP owns disk media, worker CPUs, front-end CPU, interconnect,
    // memory fabric, plus the (idle here) recovery lane.
    assert_eq!(m.utilization.len(), 6);
    let (resource, _, series) = &m.utilization[0];
    assert_eq!(*resource, Resource::DiskMedia);
    assert!(!series.samples().is_empty());
    assert!(series
        .samples()
        .iter()
        .all(|&(_, v)| (0.0..=1.0).contains(&v)));
    assert_eq!(m.queue_depth.samples().len(), series.samples().len());
}

/// Instrumentation must not change simulation results: the report from
/// an instrumented run is identical to a plain run.
#[test]
fn metrics_collection_is_result_invariant() {
    let arch = Architecture::active_disks(8);
    let plain = Simulation::new(arch.clone()).run(TaskKind::Sort);
    let sim = Simulation::new(arch.clone());
    let plan = tasks::plan_task(TaskKind::Sort, &arch);
    let mut metrics = MetricsBuilder::new();
    let instrumented = sim.run_plan_instrumented(&plan, None, Some(&mut metrics));
    assert_eq!(plain, instrumented);
}
