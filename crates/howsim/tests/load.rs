//! Integration tests for the loaded multi-query executor: report
//! identity across event-queue backends and sweep worker counts, and the
//! ISSUE's headline scenario — a disk fail-stop striking mid-load with
//! every per-query report intact and every per-query critical path
//! summing exactly to that query's execution time.

use arch::Architecture;
use howsim::faults::FaultPlan;
use howsim::{AdmissionPolicy, DeadlinePolicy, QueryStatus, Simulation, WorkloadSpec};
use simcore::{Duration, QueueBackend};
use tasks::TaskKind;

/// An overloaded workload derived from the healthy single-query elapsed
/// time, so arrivals, deadlines, and backoffs are deterministic for the
/// configuration regardless of absolute calibration.
fn overloaded(arch: &Architecture) -> (Simulation, WorkloadSpec, AdmissionPolicy, DeadlinePolicy) {
    let healthy = Simulation::new(arch.clone())
        .run(TaskKind::Select)
        .elapsed()
        .as_secs_f64();
    let workload = WorkloadSpec::poisson(1.5 / healthy, 5)
        .with_mix(vec![(TaskKind::Select, 1), (TaskKind::Aggregate, 1)])
        .with_seed(7);
    let admission = AdmissionPolicy {
        max_concurrent: 1,
        queue_limit: 2,
    };
    let deadline = DeadlinePolicy {
        deadline: Some(Duration::from_secs_f64(healthy * 2.0)),
        max_retries: 1,
        backoff: Duration::from_secs_f64(healthy * 0.25),
    };
    (
        Simulation::new(arch.clone()).with_seed(7),
        workload,
        admission,
        deadline,
    )
}

/// The same overloaded workload must produce an identical `LoadReport` —
/// every outcome, phase boundary, retry count, and event count — on all
/// four event-queue backends, and the serialized load manifest must be
/// byte-identical.
#[test]
fn load_report_is_identical_across_queue_backends() {
    let arch = Architecture::active_disks(8);
    let (sim, workload, admission, deadline) = overloaded(&arch);
    let backends = [
        QueueBackend::CalendarWheel,
        QueueBackend::ShardedWheel { shards: 1 },
        QueueBackend::ShardedWheel { shards: 4 },
        QueueBackend::BinaryHeap,
    ];
    let reports: Vec<_> = backends
        .iter()
        .map(|&qb| {
            sim.clone()
                .with_queue_backend(qb)
                .run_workload(&workload, admission, deadline)
        })
        .collect();
    for (qb, r) in backends.iter().zip(&reports).skip(1) {
        assert_eq!(&reports[0], r, "backend {qb:?} diverged");
        assert_eq!(
            howsim::manifest::load_manifest_json(&reports[0], 7, "none", "redistribute"),
            howsim::manifest::load_manifest_json(r, 7, "none", "redistribute"),
        );
    }
    // The point of the overload: the admission and deadline layers fired.
    let r = &reports[0];
    assert_eq!(r.outcomes.len(), 5);
    assert!(r.completed() > 0, "some queries complete");
    assert!(
        r.shed() + r.timed_out() > 0,
        "overload sheds or times out something (completed {}, shed {}, timed out {})",
        r.completed(),
        r.shed(),
        r.timed_out()
    );
}

/// A batch of loaded points must produce identical reports at any sweep
/// worker count (the loaded executor shares no state across points).
#[test]
fn load_reports_are_identical_across_sweep_jobs() {
    let points: Vec<_> = [
        Architecture::active_disks(8),
        Architecture::cluster(8),
        Architecture::smp(8),
    ]
    .iter()
    .map(overloaded)
    .collect();
    let run = |p: &(Simulation, WorkloadSpec, AdmissionPolicy, DeadlinePolicy)| {
        p.0.run_workload(&p.1, p.2, p.3)
    };
    let serial = howsim::sweep::map_jobs(&points, 1, run);
    let parallel = howsim::sweep::map_jobs(&points, 8, run);
    assert_eq!(serial, parallel);
}

/// The headline robustness scenario: a disk fail-stops in the middle of
/// a loaded run under the redistribute policy. Every query must still
/// complete with its per-query report intact, and each completed query's
/// causal critical path must sum exactly — to the nanosecond — to its
/// execution time.
#[test]
fn midload_disk_fault_completes_with_exact_per_query_critical_paths() {
    let arch = Architecture::active_disks(8);
    let healthy = Simulation::new(arch.clone())
        .run(TaskKind::Select)
        .elapsed()
        .as_secs_f64();
    let workload = WorkloadSpec::closed(2, 4)
        .with_mix(vec![(TaskKind::Select, 1), (TaskKind::Aggregate, 1)])
        .with_seed(7);
    let sim = Simulation::new(arch).with_seed(7).with_fault_plan(
        FaultPlan::new().disk_fail_stop(3, Duration::from_secs_f64(healthy * 0.5)),
    );
    let (report, trace) = sim.run_workload_profiled(
        &workload,
        AdmissionPolicy::default(),
        DeadlinePolicy::default(),
    );

    assert_eq!(report.faults_injected, 1);
    assert!(report.work_redistributed > 0, "survivors absorbed work");
    assert_eq!(report.completed(), 4, "every query survives the fault");
    for q in &report.outcomes {
        assert_eq!(q.status, QueryStatus::Completed);
        assert!(
            !q.phases.is_empty(),
            "query {} kept its phase report",
            q.query
        );
        let started = q.started.expect("completed query started");
        let executed = q.finished.since(started);
        let phase_sum: Duration = q.phases.iter().map(|p| p.elapsed).sum();
        assert_eq!(
            phase_sum, executed,
            "query {}: phases tile its execution exactly",
            q.query
        );
        let cp = trace
            .critical_path(q.query)
            .expect("profiled query has a critical path");
        assert_eq!(
            cp.total, executed,
            "query {}: critical path equals execution time exactly",
            q.query
        );
        let seg_sum: Duration = cp.segments.iter().map(|s| s.time).sum();
        assert_eq!(
            seg_sum, cp.total,
            "query {}: per-resource decomposition is exhaustive",
            q.query
        );
    }
    // The Chrome trace carries one pid lane per query.
    let json = trace.chrome_trace_json();
    for q in 0..4 {
        assert!(
            json.contains(&format!("\"pid\": {q}")),
            "trace has a lane for query {q}"
        );
    }
}
