//! Integration tests for causal span profiling: result invariance,
//! critical-path exactness on the paper's figure-2 join, and determinism
//! of the Chrome-trace export across queue backends.

use arch::Architecture;
use howsim::faults::FaultPlan;
use howsim::profile::UNATTRIBUTED;
use howsim::Simulation;
use simcore::{Duration, QueueBackend};
use tasks::TaskKind;

const BACKENDS: [QueueBackend; 4] = [
    QueueBackend::BinaryHeap,
    QueueBackend::CalendarWheel,
    QueueBackend::ShardedWheel { shards: 1 },
    QueueBackend::ShardedWheel { shards: 4 },
];

/// Profiling must not change simulation results: the report from a
/// profiled run is identical to a plain run, on every queue backend.
#[test]
fn profiling_is_result_invariant_across_backends() {
    let arch = Architecture::cluster(16);
    for backend in BACKENDS {
        let plain = Simulation::new(arch.clone())
            .with_queue_backend(backend)
            .run(TaskKind::Join);
        let (profiled, trace) = Simulation::new(arch.clone())
            .with_queue_backend(backend)
            .run_profiled(TaskKind::Join);
        assert_eq!(
            plain, profiled,
            "profiling perturbed results on {backend:?}"
        );
        assert!(!trace.arena.is_empty(), "profiled run recorded spans");
        assert_eq!(trace.arena.dropped(), 0, "default capacity must suffice");
        assert_eq!(trace.phases.len(), profiled.phases.len());
    }
}

/// The acceptance bar: on the 64-disk cluster join the critical path's
/// total equals the run's elapsed time exactly, in integer nanoseconds,
/// and the per-resource segments tile it with nothing unattributed.
#[test]
fn critical_path_total_equals_elapsed_on_64_disk_cluster_join() {
    let (report, trace) = Simulation::new(Architecture::cluster(64)).run_profiled(TaskKind::Join);
    let cp = trace.critical_path();
    assert_eq!(
        cp.total.as_nanos(),
        report.elapsed().as_nanos(),
        "critical path total must equal elapsed exactly"
    );
    let sum: Duration = cp.segments.iter().map(|s| s.time).sum();
    assert_eq!(sum, cp.total, "segments tile the elapsed time exactly");
    assert!(
        cp.segments.iter().all(|s| s.resource != UNATTRIBUTED),
        "healthy runs leave no unattributed time: {:?}",
        cp.segments
    );
    // The join is disk-bound here (the attribution tests pin that), so
    // disk media must dominate its critical path too.
    assert_eq!(cp.segments[0].resource, "disk_media");
}

/// Exactness holds for every architecture and task shape we model —
/// scan-only, shuffle-heavy, multi-phase — not just the headline join.
#[test]
fn critical_path_is_exact_on_every_architecture_and_task() {
    let archs = [
        Architecture::active_disks(8),
        Architecture::cluster(8),
        Architecture::smp(8),
    ];
    for arch in archs {
        for task in [TaskKind::Select, TaskKind::Sort, TaskKind::Join] {
            let (report, trace) = Simulation::new(arch.clone()).run_profiled(task);
            let cp = trace.critical_path();
            assert_eq!(
                cp.total,
                report.elapsed(),
                "{task:?} on {}: critical path != elapsed",
                report.architecture
            );
            let sum: Duration = cp.segments.iter().map(|s| s.time).sum();
            assert_eq!(sum, cp.total);
        }
    }
}

/// The Chrome-trace export is a pure function of the simulated run:
/// byte-identical across queue backends.
#[test]
fn chrome_export_is_byte_identical_across_backends() {
    let arch = Architecture::active_disks(8);
    let reference = Simulation::new(arch.clone())
        .with_queue_backend(BACKENDS[0])
        .run_profiled(TaskKind::Sort)
        .1
        .chrome_trace_json();
    assert!(reference.contains("\"ph\": \"B\""));
    for backend in &BACKENDS[1..] {
        let json = Simulation::new(arch.clone())
            .with_queue_backend(*backend)
            .run_profiled(TaskKind::Sort)
            .1
            .chrome_trace_json();
        assert_eq!(reference, json, "export differs on {backend:?}");
    }
}

/// Profiling a degraded run still tiles elapsed time exactly; recovery
/// re-reads surface on the critical path as the synthetic resources
/// rather than breaking the accounting.
#[test]
fn critical_path_stays_exact_under_faults() {
    let arch = Architecture::active_disks(16);
    let healthy = Simulation::new(arch.clone()).run(TaskKind::Sort).elapsed();
    let at = Duration::from_secs_f64(healthy.as_secs_f64() * 0.5);
    let (report, trace) = Simulation::new(arch)
        .with_seed(42)
        .with_fault_plan(FaultPlan::new().disk_fail_stop(3, at))
        .run_profiled(TaskKind::Sort);
    assert!(!report.aborted);
    assert_eq!(report.faults_injected, 1);
    let cp = trace.critical_path();
    assert_eq!(cp.total, report.elapsed());
    let sum: Duration = cp.segments.iter().map(|s| s.time).sum();
    assert_eq!(sum, cp.total);
}
