//! Integration tests for the fault-injection and recovery subsystem:
//! the ISSUE's headline scenario (a disk fail-stop at 50% of a Sort run),
//! the recovery-policy ordering, attribution of the recovery delta, and
//! byte-level determinism of faulted runs.

use arch::Architecture;
use howsim::faults::{FaultPlan, RecoveryPolicy};
use howsim::{Attribution, Resource, Simulation};
use simcore::{Duration, QueueBackend};
use tasks::TaskKind;

/// The headline configuration: 16 Active Disks sorting, node 3's disk
/// fail-stopping at 50% of the healthy elapsed time.
fn half_sort_fault(arch: &Architecture) -> (Duration, FaultPlan) {
    let healthy = Simulation::new(arch.clone()).run(TaskKind::Sort).elapsed();
    let at = Duration::from_secs_f64(healthy.as_secs_f64() * 0.5);
    (healthy, FaultPlan::new().disk_fail_stop(3, at))
}

#[test]
fn redistribute_is_slower_than_healthy_but_beats_abort_and_rerun() {
    let arch = Architecture::active_disks(16);
    let (healthy, plan) = half_sort_fault(&arch);

    let redist = Simulation::new(arch.clone())
        .with_seed(42)
        .with_fault_plan(plan.clone())
        .run(TaskKind::Sort);
    assert!(!redist.aborted);
    assert_eq!(redist.faults_injected, 1);
    assert!(redist.work_redistributed > 0, "survivors took over work");
    assert!(redist.recovery_time > Duration::ZERO);
    assert!(redist.downtime > Duration::ZERO);
    assert!(
        redist.elapsed() > healthy,
        "degraded run ({:?}) must cost more than healthy ({healthy:?})",
        redist.elapsed()
    );

    let aborted = Simulation::new(arch)
        .with_seed(42)
        .with_fault_plan(plan)
        .with_recovery(RecoveryPolicy::FailStop)
        .run(TaskKind::Sort);
    assert!(aborted.aborted, "FailStop must cut the run short");
    assert!(aborted.elapsed() < healthy, "the abort is a partial run");
    let rerun = aborted.elapsed() + healthy;
    assert!(
        redist.elapsed() < rerun,
        "redistribute ({:?}) must beat abort-and-rerun ({rerun:?})",
        redist.elapsed()
    );
}

#[test]
fn reconstruct_read_amplifies_more_than_redistribute() {
    let arch = Architecture::active_disks(16);
    let (_, plan) = half_sort_fault(&arch);
    let mk = |policy| {
        Simulation::new(arch.clone())
            .with_seed(42)
            .with_fault_plan(plan.clone())
            .with_recovery(policy)
            .run(TaskKind::Sort)
    };
    let redist = mk(RecoveryPolicy::Redistribute);
    let reconstruct = mk(RecoveryPolicy::ReconstructRead);
    // RAID-5-style reconstruction reads every survivor for each lost
    // batch, so its recovery work strictly dominates the mirror read.
    assert!(
        reconstruct.recovery_time > redist.recovery_time,
        "reconstruct {:?} vs redistribute {:?}",
        reconstruct.recovery_time,
        redist.recovery_time
    );
    assert_eq!(reconstruct.work_redistributed, redist.work_redistributed);
}

#[test]
fn explain_attributes_the_delta_to_recovery() {
    let arch = Architecture::active_disks(16);
    let (_, plan) = half_sort_fault(&arch);
    let healthy = Simulation::new(arch.clone()).run(TaskKind::Sort);
    let faulted = Simulation::new(arch)
        .with_seed(42)
        .with_fault_plan(plan)
        .run(TaskKind::Sort);
    let recovery_busy = |r: &howsim::Report| {
        Attribution::from_report(r)
            .resources
            .iter()
            .find(|a| a.resource == Resource::Recovery)
            .map(|a| a.busy)
            .unwrap_or(Duration::ZERO)
    };
    assert_eq!(recovery_busy(&healthy), Duration::ZERO);
    let busy = recovery_busy(&faulted);
    assert!(busy > Duration::ZERO, "recovery lane shows the repair work");
    assert_eq!(busy, faulted.recovery_time);
}

#[test]
fn faulted_runs_are_deterministic_across_repeats_and_backends() {
    let arch = Architecture::active_disks(8);
    let plan = FaultPlan::new()
        .media_burst(1, Duration::from_millis(200), 1_000)
        .disk_fail_stop(5, Duration::from_secs(20))
        .link_fault(2, Duration::from_secs(2), 0.5);
    let mk = |backend| {
        Simulation::new(arch.clone())
            .with_seed(9)
            .with_fault_plan(plan.clone())
            .with_queue_backend(backend)
            .run(TaskKind::Sort)
    };
    let a = mk(QueueBackend::CalendarWheel);
    let b = mk(QueueBackend::CalendarWheel);
    assert_eq!(a, b, "same seed and plan must be field-identical");
    let heap = mk(QueueBackend::BinaryHeap);
    assert_eq!(a, heap, "the queue backend must not leak into results");
    assert_eq!(a.faults_injected, 3);
}

#[test]
fn different_seeds_change_defect_placement_not_determinism() {
    let arch = Architecture::active_disks(4);
    let plan = FaultPlan::new().media_burst(0, Duration::ZERO, 2_000);
    let mk = |seed| {
        Simulation::new(arch.clone())
            .with_seed(seed)
            .with_fault_plan(plan.clone())
            .run(TaskKind::Select)
    };
    assert_eq!(mk(1), mk(1));
    // Different seeds scatter the grown defects differently; the scan
    // cost may or may not coincide, but both runs stay reproducible.
    assert_eq!(mk(2), mk(2));
}

#[test]
fn cluster_and_smp_survive_mid_run_failures() {
    for arch in [Architecture::cluster(8), Architecture::smp(8)] {
        let (healthy, plan) = half_sort_fault(&arch);
        let r = Simulation::new(arch.clone())
            .with_seed(3)
            .with_fault_plan(plan)
            .run(TaskKind::Sort);
        assert!(!r.aborted);
        assert_eq!(r.faults_injected, 1);
        assert!(r.work_redistributed > 0);
        assert!(
            r.elapsed().as_secs_f64() >= healthy.as_secs_f64() * 0.999,
            "{}: degraded {:?} vs healthy {healthy:?}",
            r.architecture,
            r.elapsed()
        );
    }
}
