//! Checkpoint differential tests: snapshot a run mid-flight, restore it
//! (under any queue backend), run to completion, and the report — and its
//! serialized manifest — is byte-identical to simulating from scratch.

use arch::Architecture;
use howsim::manifest::RunManifest;
use howsim::{checkpoint, Simulation};
use proptest::prelude::*;
use simcore::{Duration, QueueBackend, SimTime};
use tasks::{CpuWork, PhasePlan, TaskKind, TaskPlan};

/// Every event-queue backend a checkpoint must restore under.
const BACKENDS: [QueueBackend; 4] = [
    QueueBackend::CalendarWheel,
    QueueBackend::BinaryHeap,
    QueueBackend::ShardedWheel { shards: 2 },
    QueueBackend::ShardedWheel { shards: 8 },
];

fn tmp(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("howsim-ckpt-it-{}-{name}.ckpt", std::process::id()))
}

/// The manifest JSON is the byte-comparison surface: every report field
/// serialized in exact integers, no host or wall-clock data attached.
fn manifest_bytes(arch: &Architecture, report: &howsim::Report) -> String {
    RunManifest::new(arch, report).to_json()
}

#[test]
fn restored_join_is_byte_identical_across_backends() {
    let arch = Architecture::cluster(4);
    let plan = tasks::plan_task(TaskKind::Join, &arch);
    let sim = Simulation::new(arch.clone()).with_seed(7);
    let scratch = sim.run_plan(&plan);
    let golden = manifest_bytes(&arch, &scratch);
    let elapsed = scratch.elapsed().as_secs_f64();
    let path = tmp("join");
    for frac in [0.1, 0.5, 0.9] {
        let at = SimTime::ZERO + Duration::from_secs_f64(elapsed * frac);
        let mut run = sim.start(&plan);
        run.run_until(at);
        assert!(!run.is_done(), "pause at {frac} of elapsed is mid-flight");
        checkpoint::write_file(&path, &sim, &plan, at, &run).unwrap();
        for backend in BACKENDS {
            let loader = sim.clone().with_queue_backend(backend);
            let restored =
                checkpoint::read_file(&path, &loader, &plan).expect("valid checkpoint restores");
            let report = restored.finish();
            assert_eq!(report, scratch, "frac {frac} backend {backend:?}");
            assert_eq!(
                manifest_bytes(&arch, &report),
                golden,
                "manifest bytes at frac {frac} under {backend:?}"
            );
        }
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn profiled_fork_keeps_the_critical_path() {
    // Profiled runs cannot be serialized (spans hold arena state), but
    // in-memory forks of a profiled prefix must still reproduce the
    // from-scratch critical-path decomposition exactly.
    let arch = Architecture::active_disks(4);
    let plan = tasks::plan_task(TaskKind::Sort, &arch);
    let sim = Simulation::new(arch).with_seed(3);
    let (scratch, scratch_spans) = sim.start_profiled(&plan).finish_profiled();
    let scratch_cp = scratch_spans.critical_path();

    let mut prefix = sim.start_profiled(&plan);
    prefix
        .run_until(SimTime::ZERO + Duration::from_secs_f64(scratch.elapsed().as_secs_f64() * 0.4));
    let (report, spans) = prefix.fork().finish_profiled();
    let cp = spans.critical_path();
    assert_eq!(report, scratch);
    assert_eq!(cp.total, scratch_cp.total);
    assert_eq!(cp.segments, scratch_cp.segments);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The satellite property: a random plan, snapshotted at a random
    /// event boundary under one random backend and restored under
    /// another, finishes byte-identical to the from-scratch run.
    #[test]
    fn prop_random_snapshot_restores_byte_identical(
        read_mb in 1u64..64,
        shuffle_pct in 0u32..=100,
        write_pct in 0u32..=100,
        cpu_ns in 0.0f64..20.0,
        nodes in 1usize..6,
        arch_ix in 0usize..3,
        pause_frac in 0.0f64..1.05,
        save_backend in 0usize..4,
        load_backend in 0usize..4,
    ) {
        let mut phase = PhasePlan::new("random", read_mb << 20);
        phase.read_cpu = vec![CpuWork { tag: "work", ns_per_byte: cpu_ns }];
        phase.shuffle_factor = shuffle_pct as f64 / 100.0;
        phase.local_write_factor = write_pct as f64 / 100.0;
        if phase.shuffle_factor > 0.0 {
            phase.recv_cpu = vec![CpuWork { tag: "recv", ns_per_byte: cpu_ns / 2.0 }];
        }
        let plan = TaskPlan { task: "random", phases: vec![phase] };
        let arch = match arch_ix {
            0 => Architecture::active_disks(nodes),
            1 => Architecture::cluster(nodes),
            _ => Architecture::smp(nodes),
        };
        let sim = Simulation::new(arch.clone())
            .with_seed(read_mb ^ u64::from(shuffle_pct))
            .with_queue_backend(BACKENDS[save_backend]);
        let scratch = sim.run_plan(&plan);
        let at = SimTime::ZERO
            + Duration::from_secs_f64(scratch.elapsed().as_secs_f64() * pause_frac);
        let mut run = sim.start(&plan);
        run.run_until(at);
        let path = tmp("prop");
        checkpoint::write_file(&path, &sim, &plan, at, &run).unwrap();
        let loader = sim.clone().with_queue_backend(BACKENDS[load_backend]);
        let restored = checkpoint::read_file(&path, &loader, &plan)
            .expect("valid checkpoint restores");
        let report = restored.finish();
        prop_assert_eq!(&report, &scratch);
        prop_assert_eq!(manifest_bytes(&arch, &report), manifest_bytes(&arch, &scratch));
        let _ = std::fs::remove_file(&path);
    }
}
