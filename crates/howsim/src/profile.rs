//! Causal profiling: critical-path analysis and Chrome-trace export over
//! the span arena recorded by a profiled run.
//!
//! The executor (see [`crate::Simulation::run_profiled`]) emits one
//! [`Span`] per unit of attributable work — a batch read, a CPU burst, a
//! wire transfer — each linked to the span whose completion caused it.
//! Because the event loop schedules every child at its parent's
//! completion time, walking the parent chain backward from the span that
//! ends a phase tiles the phase's elapsed time exactly: the per-resource
//! critical-path decomposition sums to the run's elapsed time in integer
//! nanoseconds, with any uncovered interval attributed to the synthetic
//! `"unattributed"` resource rather than silently dropped.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use simcore::span::{Span, SpanArena, SpanId, FRONT_END_NODE};
use simcore::{Duration, SimTime};
use tasks::TaskKind;

/// Synthetic critical-path resource for intervals no span covers (e.g. a
/// node idling for a straggler inside a phase when spans were dropped).
pub const UNATTRIBUTED: &str = "unattributed";

/// One phase's window and the span that determined its end.
#[derive(Debug, Clone, Copy)]
pub struct PhaseSpans {
    /// Phase name (paper spelling).
    pub name: &'static str,
    /// When the phase began.
    pub start: SimTime,
    /// When the phase ended (its barrier completed, or the abort clock).
    pub end: SimTime,
    /// The last span to finish in the phase — the barrier span on healthy
    /// phases — from which the critical path walks backward.
    pub anchor: SpanId,
}

/// The spans of one profiled run, grouped by phase.
#[derive(Debug, Clone, Default)]
pub struct SpanTrace {
    /// All recorded spans ([`SpanId`] indexes into the arena).
    pub arena: SpanArena,
    /// Per-phase windows and critical-path anchors, in execution order.
    pub phases: Vec<PhaseSpans>,
}

/// Time one resource contributed to the critical path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PathSegment {
    /// Resource key (`"disk_media"`, `"barrier"`, [`UNATTRIBUTED`]...).
    pub resource: &'static str,
    /// Critical-path time attributed to the resource.
    pub time: Duration,
}

/// Per-resource decomposition of a run's elapsed time along the longest
/// dependency chain. `segments` always sums to `total` exactly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CriticalPath {
    /// The run's total elapsed simulated time.
    pub total: Duration,
    /// Per-resource critical-path time, longest first (ties broken by
    /// resource name for determinism).
    pub segments: Vec<PathSegment>,
}

impl SpanTrace {
    /// Walks the longest dependency chain of every phase and returns the
    /// per-resource critical-path decomposition.
    ///
    /// Within a phase the walk starts at the anchor span and follows
    /// parents backward, maintaining a time cursor that starts at the
    /// phase end. Each span claims the interval from its start to the
    /// cursor (clamped so overlapping ancestors never double-count);
    /// gaps between a child's start and its parent's end — which only
    /// appear when spans were dropped by a full arena — are charged to
    /// [`UNATTRIBUTED`]. The invariant that makes the total exact: every
    /// nanosecond of `[phase.start, phase.end]` is claimed exactly once.
    pub fn critical_path(&self) -> CriticalPath {
        critical_path_over(&self.arena, &self.phases)
    }

    /// The `k` longest spans, by duration descending (ties broken by
    /// record order, which is deterministic across queue backends).
    pub fn top_spans(&self, k: usize) -> Vec<(SpanId, &Span)> {
        let spans = self.arena.spans();
        let mut ix: Vec<usize> = (0..spans.len()).collect();
        ix.sort_by(|&a, &b| {
            spans[b]
                .duration()
                .cmp(&spans[a].duration())
                .then(a.cmp(&b))
        });
        ix.truncate(k);
        ix.into_iter()
            .map(|i| (SpanId::from_index(i), &spans[i]))
            .collect()
    }

    /// Serializes the arena as Chrome trace-event JSON (the format
    /// `chrome://tracing` and Perfetto load).
    ///
    /// Every span becomes a matched `B`/`E` pair; a span's `pid` is its
    /// query lane (0 for single-query runs), `tid` 0 is the front-end,
    /// worker node `n` is `tid` `n + 1`. Timestamps are microseconds
    /// with nanosecond precision (three decimals), emitted in
    /// nondecreasing order with `E` events sorted before `B` events at
    /// the same instant so stacks nest correctly. The bytes are a pure
    /// function of the arena, hence identical across queue backends,
    /// worker counts, and cache states.
    pub fn chrome_trace_json(&self) -> String {
        chrome_trace_of(&self.arena)
    }
}

/// Walks each phase's longest dependency chain — the shared body of
/// [`SpanTrace::critical_path`] and [`LoadSpanTrace::critical_path`].
fn critical_path_over(arena: &SpanArena, phases: &[PhaseSpans]) -> CriticalPath {
    let mut by_resource: BTreeMap<&'static str, Duration> = BTreeMap::new();
    let mut total = Duration::ZERO;
    for phase in phases {
        total += phase.end.since(phase.start);
        let mut cursor = phase.end;
        let mut id = phase.anchor;
        while let Some(span) = arena.get(id) {
            if span.end < cursor {
                *by_resource.entry(UNATTRIBUTED).or_default() += cursor.since(span.end);
                cursor = span.end;
            }
            let claim_from = span.start.min(cursor);
            *by_resource.entry(span.resource).or_default() += cursor.since(claim_from);
            cursor = claim_from;
            id = span.parent;
        }
        if cursor > phase.start {
            *by_resource.entry(UNATTRIBUTED).or_default() += cursor.since(phase.start);
        }
    }
    let mut segments: Vec<PathSegment> = by_resource
        .into_iter()
        .map(|(resource, time)| PathSegment { resource, time })
        .collect();
    // BTreeMap iteration is already name-sorted; a stable sort by
    // descending time keeps the name order as the tie-break.
    segments.sort_by_key(|s| std::cmp::Reverse(s.time));
    segments.retain(|s| !s.time.is_zero());
    CriticalPath { total, segments }
}

/// Chrome trace-event serialization shared by [`SpanTrace`] and
/// [`LoadSpanTrace`]: each span's `pid` is its query lane, so Perfetto
/// renders concurrent queries as separate processes.
fn chrome_trace_of(arena: &SpanArena) -> String {
    let spans = arena.spans();
    // (ts_ns, is_begin, span index): E sorts before B at equal ts;
    // among Es later spans close first (LIFO nesting), among Bs
    // earlier spans open first.
    let mut events: Vec<(u64, bool, usize)> = Vec::with_capacity(spans.len() * 2);
    for (ix, s) in spans.iter().enumerate() {
        events.push((s.start.as_nanos(), true, ix));
        events.push((s.end.as_nanos(), false, ix));
    }
    events.sort_by(|a, b| {
        a.0.cmp(&b.0)
            .then(a.1.cmp(&b.1)) // false (E) < true (B)
            .then_with(|| if a.1 { a.2.cmp(&b.2) } else { b.2.cmp(&a.2) })
    });
    let mut out = String::with_capacity(events.len() * 96 + 64);
    out.push_str("{\"traceEvents\": [\n");
    for (ix, &(ts, is_begin, span_ix)) in events.iter().enumerate() {
        let s = &spans[span_ix];
        let tid = trace_tid(s.node);
        if is_begin {
            let _ = write!(
                out,
                "{{\"name\": \"{}\", \"cat\": \"{}\", \"ph\": \"B\", \
                 \"ts\": {}.{:03}, \"pid\": {}, \"tid\": {}, \
                 \"args\": {{\"span\": {}, \"parent\": {}, \"bytes\": {}}}}}",
                s.kind.name(),
                s.resource,
                ts / 1_000,
                ts % 1_000,
                s.query,
                tid,
                span_ix,
                s.parent
                    .index()
                    .map_or(-1i64, |p| i64::try_from(p).expect("span index fits i64")),
                s.bytes,
            );
        } else {
            let _ = write!(
                out,
                "{{\"name\": \"{}\", \"cat\": \"{}\", \"ph\": \"E\", \
                 \"ts\": {}.{:03}, \"pid\": {}, \"tid\": {}}}",
                s.kind.name(),
                s.resource,
                ts / 1_000,
                ts % 1_000,
                s.query,
                tid,
            );
        }
        out.push_str(if ix + 1 < events.len() { ",\n" } else { "\n" });
    }
    out.push_str("], \"displayTimeUnit\": \"ms\"}\n");
    out
}

/// One query's phase windows within a loaded run's shared span arena.
#[derive(Debug, Clone)]
pub struct QuerySpans {
    /// The query lane (index in arrival order).
    pub query: u32,
    /// The DSS task the query ran.
    pub task: TaskKind,
    /// Phase windows of the query's final attempt, in execution order.
    pub phases: Vec<PhaseSpans>,
}

/// The spans of one profiled multi-query run: a single shared arena
/// (every span stamped with its query lane) plus each query's phase
/// windows, so the critical path of any individual query can be walked
/// even though the queries interleaved on one machine.
#[derive(Debug, Clone, Default)]
pub struct LoadSpanTrace {
    /// All recorded spans across every query, in record order.
    pub arena: SpanArena,
    /// Per-query phase windows, indexed by query id.
    pub queries: Vec<QuerySpans>,
}

impl LoadSpanTrace {
    /// The critical-path decomposition of one query's final attempt.
    /// Sums exactly to the attempt's elapsed time — the same invariant
    /// as the single-query walker, per lane.
    pub fn critical_path(&self, query: u32) -> Option<CriticalPath> {
        self.queries
            .iter()
            .find(|q| q.query == query)
            .map(|q| critical_path_over(&self.arena, &q.phases))
    }

    /// Spans dropped from this query's lane by arena overflow.
    pub fn dropped_for(&self, query: u32) -> u64 {
        self.arena.dropped_for(query)
    }

    /// Chrome trace-event JSON with one `pid` per query, so Perfetto
    /// shows each concurrent query as its own process track.
    pub fn chrome_trace_json(&self) -> String {
        chrome_trace_of(&self.arena)
    }
}

/// Chrome-trace thread id for a span's node (front-end is thread 0,
/// worker `n` is thread `n + 1`).
fn trace_tid(node: u32) -> u64 {
    if node == FRONT_END_NODE {
        0
    } else {
        u64::from(node) + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::span::SpanKind;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    /// A two-phase trace: phase 0 is a read→cpu chain with a barrier,
    /// phase 1 a single cpu span ending at the phase end.
    fn sample() -> SpanTrace {
        let mut arena = SpanArena::with_capacity(16);
        let read = arena.record(
            SpanId::NONE,
            "disk_media",
            SpanKind::DiskRead,
            0,
            t(0),
            t(60),
            100,
        );
        let cpu = arena.record(read, "worker_cpu", SpanKind::Cpu, 0, t(60), t(90), 100);
        let barrier = arena.record(
            cpu,
            "barrier",
            SpanKind::Barrier,
            FRONT_END_NODE,
            t(90),
            t(100),
            0,
        );
        let cpu2 = arena.record(
            SpanId::NONE,
            "worker_cpu",
            SpanKind::Cpu,
            1,
            t(100),
            t(140),
            7,
        );
        SpanTrace {
            arena,
            phases: vec![
                PhaseSpans {
                    name: "scan",
                    start: t(0),
                    end: t(100),
                    anchor: barrier,
                },
                PhaseSpans {
                    name: "merge",
                    start: t(100),
                    end: t(140),
                    anchor: cpu2,
                },
            ],
        }
    }

    #[test]
    fn critical_path_total_equals_elapsed_and_decomposes() {
        let trace = sample();
        let cp = trace.critical_path();
        assert_eq!(cp.total, Duration::from_nanos(140));
        let sum: Duration = cp.segments.iter().map(|s| s.time).sum();
        assert_eq!(sum, cp.total, "segments tile the elapsed time exactly");
        let get = |r: &str| {
            cp.segments
                .iter()
                .find(|s| s.resource == r)
                .map(|s| s.time.as_nanos())
        };
        assert_eq!(get("disk_media"), Some(60));
        assert_eq!(get("worker_cpu"), Some(70)); // 30 in scan + 40 in merge
        assert_eq!(get("barrier"), Some(10));
        assert_eq!(get(UNATTRIBUTED), None, "healthy chains leave no gap");
    }

    #[test]
    fn gaps_from_broken_chains_are_surfaced_not_lost() {
        let mut arena = SpanArena::with_capacity(4);
        // A lone span covering [40, 70] of a [0, 100] phase: the walker
        // must charge 30ns (tail) + 40ns (head) to UNATTRIBUTED.
        let lone = arena.record(
            SpanId::NONE,
            "worker_cpu",
            SpanKind::Cpu,
            0,
            t(40),
            t(70),
            0,
        );
        let trace = SpanTrace {
            arena,
            phases: vec![PhaseSpans {
                name: "scan",
                start: t(0),
                end: t(100),
                anchor: lone,
            }],
        };
        let cp = trace.critical_path();
        assert_eq!(cp.total, Duration::from_nanos(100));
        let sum: Duration = cp.segments.iter().map(|s| s.time).sum();
        assert_eq!(sum, cp.total);
        assert!(cp
            .segments
            .iter()
            .any(|s| s.resource == UNATTRIBUTED && s.time == Duration::from_nanos(70)));
    }

    #[test]
    fn overlapping_ancestors_never_double_count() {
        let mut arena = SpanArena::with_capacity(4);
        // Parent [0, 80] overlaps child [50, 100]: the child claims
        // [50, 100], the parent only the uncovered [0, 50].
        let parent = arena.record(
            SpanId::NONE,
            "disk_media",
            SpanKind::DiskRead,
            0,
            t(0),
            t(80),
            0,
        );
        let child = arena.record(parent, "worker_cpu", SpanKind::Cpu, 0, t(50), t(100), 0);
        let trace = SpanTrace {
            arena,
            phases: vec![PhaseSpans {
                name: "scan",
                start: t(0),
                end: t(100),
                anchor: child,
            }],
        };
        let cp = trace.critical_path();
        let sum: Duration = cp.segments.iter().map(|s| s.time).sum();
        assert_eq!(sum, Duration::from_nanos(100));
        // Both claim exactly 50ns; the tie breaks by resource name.
        assert_eq!(cp.segments[0].resource, "disk_media");
        assert_eq!(cp.segments[0].time, Duration::from_nanos(50));
        assert_eq!(cp.segments[1].resource, "worker_cpu");
        assert_eq!(cp.segments[1].time, Duration::from_nanos(50));
    }

    #[test]
    fn top_spans_orders_by_duration_then_record_order() {
        let trace = sample();
        let top = trace.top_spans(2);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].1.duration(), Duration::from_nanos(60)); // disk read
        assert_eq!(top[1].1.duration(), Duration::from_nanos(40)); // merge cpu
        assert!(trace.top_spans(0).is_empty());
        assert_eq!(trace.top_spans(99).len(), trace.arena.len());
    }

    #[test]
    fn chrome_export_is_sorted_with_matched_pairs() {
        let trace = sample();
        let json = trace.chrome_trace_json();
        assert!(json.starts_with("{\"traceEvents\": ["));
        assert!(json.trim_end().ends_with("\"displayTimeUnit\": \"ms\"}"));
        let begins = json.matches("\"ph\": \"B\"").count();
        let ends = json.matches("\"ph\": \"E\"").count();
        assert_eq!(begins, trace.arena.len());
        assert_eq!(ends, begins, "every B has a matching E");
        // ts values appear in nondecreasing order.
        let ts: Vec<f64> = json
            .lines()
            .filter_map(|l| {
                let rest = l.split("\"ts\": ").nth(1)?;
                rest.split(',').next()?.parse().ok()
            })
            .collect();
        assert_eq!(ts.len(), begins + ends);
        assert!(ts.windows(2).all(|w| w[0] <= w[1]), "sorted by ts");
        // Front-end barrier span runs on tid 0.
        assert!(json.contains("\"name\": \"barrier\""));
        assert!(json.contains("\"tid\": 0"));
    }

    #[test]
    fn empty_trace_profiles_cleanly() {
        let trace = SpanTrace::default();
        let cp = trace.critical_path();
        assert_eq!(cp.total, Duration::ZERO);
        assert!(cp.segments.is_empty());
        assert!(trace.top_spans(5).is_empty());
        let json = trace.chrome_trace_json();
        assert!(json.contains("\"traceEvents\": [\n]"));
    }
}
