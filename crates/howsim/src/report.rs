//! Simulation reports: elapsed time, per-phase execution breakdowns, and
//! resource traffic — the raw material for every figure in the paper.

use std::collections::BTreeMap;
use std::fmt;

use simcore::{Duration, Histogram};

use crate::metrics::{Resource, ResourceUsage};

/// Measurements for one executed phase.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseReport {
    /// Phase label (e.g. `"sort"`, `"merge"`).
    pub name: &'static str,
    /// Wall-clock (simulated) time of the phase.
    pub elapsed: Duration,
    /// Worker-CPU busy time per operator tag, summed over nodes.
    pub cpu_busy_by_tag: BTreeMap<&'static str, Duration>,
    /// Total worker-CPU busy time, summed over nodes.
    pub cpu_busy_total: Duration,
    /// Total disk busy time, summed over drives.
    pub disk_busy_total: Duration,
    /// Bytes that crossed the peer interconnect during this phase.
    pub interconnect_bytes: u64,
    /// Bytes delivered to the front-end during this phase.
    pub frontend_bytes: u64,
    /// Number of worker nodes.
    pub nodes: usize,
    /// Per-resource busy-time deltas for this phase, in the machine's
    /// stable resource order (see
    /// [`crate::machine::Machine::resource_usage`]).
    pub resources: Vec<ResourceUsage>,
}

impl PhaseReport {
    /// Aggregate CPU idle time: node-seconds not spent computing.
    pub fn cpu_idle(&self) -> Duration {
        (self.elapsed * self.nodes as u64).saturating_sub(self.cpu_busy_total)
    }

    /// Fraction of aggregate node time spent on `tag` (0..1).
    pub fn cpu_fraction(&self, tag: &str) -> f64 {
        let total = self.elapsed.as_secs_f64() * self.nodes as f64;
        if total == 0.0 {
            return 0.0;
        }
        self.cpu_busy_by_tag
            .get(tag)
            .map_or(0.0, |d| d.as_secs_f64())
            / total
    }

    /// Fraction of aggregate node time the CPUs sat idle (0..1) — the
    /// "Idle" band of the paper's Figure 3.
    pub fn idle_fraction(&self) -> f64 {
        let total = self.elapsed.as_secs_f64() * self.nodes as f64;
        if total == 0.0 {
            return 0.0;
        }
        self.cpu_idle().as_secs_f64() / total
    }

    /// Busy fraction of `resource` during this phase (0..1); zero when
    /// the machine does not own that resource.
    pub fn utilization_of(&self, resource: Resource) -> f64 {
        self.resources
            .iter()
            .find(|u| u.resource == resource)
            .map_or(0.0, |u| u.utilization(self.elapsed))
    }
}

/// The result of simulating one task on one configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct Report {
    /// Task name (paper spelling).
    pub task: &'static str,
    /// Architecture short name ("Active" / "Cluster" / "SMP").
    pub architecture: &'static str,
    /// Number of disks (= processors).
    pub disks: usize,
    /// Per-phase measurements, in execution order.
    pub phases: Vec<PhaseReport>,
    /// The merged per-request disk service-time distribution for the
    /// whole run.
    pub disk_service: Histogram,
    /// Total discrete events the executor processed — the simulator's
    /// self-profiling work counter (deterministic for a given plan).
    pub events: u64,
    /// Number of fault events that actually struck during the run.
    pub faults_injected: u64,
    /// Aggregate service time of recovery work (surviving-disk re-reads
    /// plus rebalance transfers) charged by the recovery policy.
    pub recovery_time: Duration,
    /// Bytes of the failed node's partition re-assigned to survivors.
    pub work_redistributed: u64,
    /// True if the run was cut short by the `FailStop` policy; the phase
    /// list stops at the aborted phase and later phases never ran.
    pub aborted: bool,
    /// Total disk downtime: failed-disk node-seconds through the end of
    /// the run.
    pub downtime: Duration,
}

impl Report {
    /// Total simulated execution time across all phases.
    pub fn elapsed(&self) -> Duration {
        self.phases.iter().map(|p| p.elapsed).sum()
    }

    /// Looks up a phase by name (first match).
    pub fn phase(&self, name: &str) -> Option<&PhaseReport> {
        self.phases.iter().find(|p| p.name == name)
    }

    /// Total bytes moved over the peer interconnect.
    pub fn interconnect_bytes(&self) -> u64 {
        self.phases.iter().map(|p| p.interconnect_bytes).sum()
    }

    /// Total bytes delivered to the front-end.
    pub fn frontend_bytes(&self) -> u64 {
        self.phases.iter().map(|p| p.frontend_bytes).sum()
    }

    /// Serializes the per-phase measurements as CSV
    /// (`task,arch,disks,phase,elapsed_s,cpu_busy_s,disk_busy_s,idle_frac,net_bytes,fe_bytes`).
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "task,arch,disks,phase,elapsed_s,cpu_busy_s,disk_busy_s,idle_frac,net_bytes,fe_bytes\n",
        );
        for p in &self.phases {
            out.push_str(&format!(
                "{},{},{},{},{:.6},{:.6},{:.6},{:.4},{},{}\n",
                self.task,
                self.architecture,
                self.disks,
                p.name,
                p.elapsed.as_secs_f64(),
                p.cpu_busy_total.as_secs_f64(),
                p.disk_busy_total.as_secs_f64(),
                p.idle_fraction(),
                p.interconnect_bytes,
                p.frontend_bytes
            ));
        }
        out
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} on {} × {} disks: {:.2} s ({} phases)",
            self.task,
            self.architecture,
            self.disks,
            self.elapsed().as_secs_f64(),
            self.phases.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_phase() -> PhaseReport {
        let mut tags = BTreeMap::new();
        tags.insert("sort", Duration::from_secs(10));
        tags.insert("merge", Duration::from_secs(5));
        PhaseReport {
            name: "p1",
            elapsed: Duration::from_secs(10),
            cpu_busy_by_tag: tags,
            cpu_busy_total: Duration::from_secs(15),
            disk_busy_total: Duration::from_secs(12),
            interconnect_bytes: 1_000,
            frontend_bytes: 10,
            nodes: 2,
            resources: vec![ResourceUsage {
                resource: Resource::DiskMedia,
                busy: Duration::from_secs(12),
                wait: Duration::ZERO,
                lanes: 2,
            }],
        }
    }

    #[test]
    fn idle_is_capacity_minus_busy() {
        let p = sample_phase();
        // 2 nodes × 10 s = 20 s capacity, 15 s busy → 5 s idle.
        assert_eq!(p.cpu_idle(), Duration::from_secs(5));
        assert!((p.idle_fraction() - 0.25).abs() < 1e-9);
    }

    #[test]
    fn utilization_of_reads_resource_deltas() {
        let p = sample_phase();
        // 12 s busy over 10 s × 2 lanes = 60%.
        assert!((p.utilization_of(Resource::DiskMedia) - 0.6).abs() < 1e-9);
        assert_eq!(p.utilization_of(Resource::MemoryFabric), 0.0);
    }

    #[test]
    fn fractions_sum_to_one_with_idle() {
        let p = sample_phase();
        let total = p.cpu_fraction("sort") + p.cpu_fraction("merge") + p.idle_fraction();
        assert!((total - 1.0).abs() < 1e-9);
        assert_eq!(p.cpu_fraction("absent"), 0.0);
    }

    fn sample_report() -> Report {
        Report {
            task: "sort",
            architecture: "Active",
            disks: 2,
            phases: vec![sample_phase(), sample_phase()],
            disk_service: Histogram::new(),
            events: 0,
            faults_injected: 0,
            recovery_time: Duration::ZERO,
            work_redistributed: 0,
            aborted: false,
            downtime: Duration::ZERO,
        }
    }

    #[test]
    fn report_sums_phases() {
        let r = sample_report();
        assert_eq!(r.elapsed(), Duration::from_secs(20));
        assert_eq!(r.interconnect_bytes(), 2_000);
        assert_eq!(r.frontend_bytes(), 20);
        assert!(r.phase("p1").is_some());
        assert!(r.phase("nope").is_none());
        assert!(format!("{r}").contains("sort on Active"));
    }

    #[test]
    fn csv_has_header_and_one_row_per_phase() {
        let r = sample_report();
        let csv = r.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("task,arch,disks,phase"));
        assert!(lines[1].starts_with("sort,Active,2,p1,"));
    }
}
