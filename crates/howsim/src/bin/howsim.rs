//! The `howsim` command-line simulator.
//!
//! ```text
//! howsim --arch active --disks 64 --task sort
//! howsim --arch smp --disks 128 --task select --interconnect 400
//! howsim --arch active --disks 32 --task join --memory 64 --no-direct
//! howsim --arch active --disks 256 --task sort --fibre-switch --trace trace.csv
//! howsim explain --arch cluster --disks 64 --task join
//! howsim profile --arch cluster --disks 64 --task join
//! howsim checkpoint --arch cluster --disks 64 --task join --at 10s --out join.ckpt
//! howsim --arch cluster --disks 64 --task join --resume-from join.ckpt
//! howsim --arch cluster --disks 64 --task join --metrics-out run.json
//! howsim --arch cluster --disks 64 --task join --trace-events trace.json
//! ```
//!
//! Prints the report (total and per-phase breakdown). The `explain`
//! subcommand prints the per-resource utilization table (with the
//! wait-vs-service split) and names the bottleneck and critical-path
//! resource instead; `profile` prints the causal critical-path
//! decomposition, the wait/service table, and the longest spans.
//! `--trace FILE` writes the event trace as CSV, `--trace-out FILE` as
//! JSONL (summary line first), `--metrics-out FILE` writes a structured
//! run manifest with sampled utilization time-series, and
//! `--trace-events FILE` writes the causal spans as Chrome trace-event
//! JSON (load it in `chrome://tracing` or <https://ui.perfetto.dev>).
//!
//! `--cache` consults and populates the on-disk result cache under
//! `results/.simcache/` (wipe by deleting the directory); `--no-cache`
//! skips even the in-process cache. Traced, instrumented, and profiled
//! runs always simulate — only the plain report path is cached — and a
//! cached report is byte-identical to a fresh one.
//!
//! The `checkpoint` subcommand pauses a single-task run at an event
//! boundary (`--at <dur>`) and writes the full simulation state to
//! `--out <file>`; `--resume-from <file>` finishes such a run from the
//! saved boundary — under any `--queue` backend — producing a report
//! field-identical to simulating from scratch. A corrupt, truncated, or
//! mismatched checkpoint is a warning plus a scratch run, never a panic.
//!
//! `--load <spec>` switches to the loaded multi-query executor: many
//! queries drawn from `--mix` interleave on one shared machine under
//! admission control (`--admission <concurrent>:<queue>`) and optional
//! per-query deadlines with retry/backoff (`--deadline <dur>[:<retries>:<backoff>]`).
//! Prints per-query outcomes plus p50/p95/p99 latency and goodput;
//! `--metrics-out` writes the load manifest JSON and `--trace-events`
//! writes a Chrome trace with one pid lane per query.
//!
//! ```text
//! howsim --arch active --disks 64 --load poisson:0.2:16@7 --mix select:1,sort:1 \
//!        --admission 4:16 --deadline 120s:1:5s
//! ```

use std::process::ExitCode;

use arch::Architecture;
use howsim::faults::{FaultPlan, RecoveryPolicy};
use howsim::manifest::{HostInfo, RunManifest};
use howsim::profile::CriticalPath;
use howsim::{
    AdmissionPolicy, Attribution, DeadlinePolicy, LoadReport, MetricsBuilder, Simulation,
    SpanTrace, Trace, WorkloadSpec,
};
use simcore::span::FRONT_END_NODE;
use simcore::QueueBackend;
use tasks::TaskKind;

/// Spans printed by the `profile` subcommand's longest-spans table.
const PROFILE_TOP_K: usize = 10;

/// Parsed command-line options.
#[derive(Debug, Clone, PartialEq)]
struct Options {
    explain: bool,
    profile: bool,
    checkpoint: bool,
    at: Option<simcore::Duration>,
    out: Option<String>,
    resume_from: Option<String>,
    arch: String,
    disks: usize,
    task: TaskKind,
    memory_mb: Option<u64>,
    interconnect_mb: Option<f64>,
    direct: bool,
    fibre_switch: bool,
    fast_disk: bool,
    trace_path: Option<String>,
    trace_out: Option<String>,
    metrics_out: Option<String>,
    trace_events: Option<String>,
    jobs: Option<usize>,
    disk_cache: bool,
    no_cache: bool,
    seed: u64,
    faults: Vec<String>,
    recovery: RecoveryPolicy,
    queue: QueueBackend,
    load: Option<String>,
    mix: String,
    admission: AdmissionPolicy,
    deadline: DeadlinePolicy,
}

/// Parses `--queue` values: `heap`, `wheel`, or `sharded:<n>`.
fn parse_queue(name: &str) -> Result<QueueBackend, String> {
    match name {
        "heap" => Ok(QueueBackend::BinaryHeap),
        "wheel" => Ok(QueueBackend::CalendarWheel),
        _ => match name.strip_prefix("sharded:") {
            Some(n) => {
                let shards: usize = n.parse().map_err(|e| format!("--queue sharded:<n>: {e}"))?;
                if shards == 0 {
                    return Err("--queue sharded:<n> needs n >= 1".to_string());
                }
                Ok(QueueBackend::ShardedWheel { shards })
            }
            None => Err(format!(
                "--queue: unknown backend `{name}` (want heap, wheel, or sharded:<n>)"
            )),
        },
    }
}

fn usage() -> String {
    "usage: howsim [explain|profile|checkpoint] --arch <active|cluster|smp> --disks <n> --task <name>\n\
     \x20      [--memory <MB>] [--interconnect <MB/s>] [--no-direct]\n\
     \x20      [--fibre-switch] [--fast-disk] [--jobs <n>] [--cache] [--no-cache]\n\
     \x20      [--seed <n>] [--fault <spec>]... [--recovery <failstop|redistribute|reconstruct>]\n\
     \x20      [--queue <heap|wheel|sharded:<n>>]\n\
     \x20      [--trace <file.csv>] [--trace-out <file.jsonl>] [--metrics-out <file.json>]\n\
     \x20      [--trace-events <file.json>]\n\
     \x20      [--load <poisson:<qps>:<queries>[@seed] | closed:<clients>:<queries>[@seed]>]\n\
     \x20      [--mix <all | name,... | name:weight,...>] [--admission <concurrent>:<queue>]\n\
     \x20      [--deadline <none | dur | dur:<retries>:<backoff>>]\n\
     \x20      [--resume-from <file.ckpt>]\n\
     tasks: select aggregate groupby dcube sort join dmine mview\n\
     fault specs: disk:<node>@<time>  slow:<node>@<time>:<defects>  link:<node>@<time>:<factor>\n\
     explain: print the per-resource utilization table and name the bottleneck\n\
     profile: print the critical path, wait/service table, and longest spans\n\
     checkpoint: pause at --at <dur> and write the state to --out <file.ckpt>"
        .to_string()
}

fn parse_task(name: &str) -> Result<TaskKind, String> {
    TaskKind::ALL
        .into_iter()
        .find(|t| t.name() == name)
        .ok_or_else(|| format!("unknown task `{name}`"))
}

fn parse(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        explain: false,
        profile: false,
        checkpoint: false,
        at: None,
        out: None,
        resume_from: None,
        arch: "active".to_string(),
        disks: 64,
        task: TaskKind::Select,
        memory_mb: None,
        interconnect_mb: None,
        direct: true,
        fibre_switch: false,
        fast_disk: false,
        trace_path: None,
        trace_out: None,
        metrics_out: None,
        trace_events: None,
        jobs: None,
        disk_cache: false,
        no_cache: false,
        seed: 0,
        faults: Vec::new(),
        recovery: RecoveryPolicy::default(),
        queue: QueueBackend::default(),
        load: None,
        mix: "all".to_string(),
        admission: AdmissionPolicy::default(),
        deadline: DeadlinePolicy::default(),
    };
    let mut args = args;
    match args.first().map(String::as_str) {
        Some("explain") => {
            opts.explain = true;
            args = &args[1..];
        }
        Some("profile") => {
            opts.profile = true;
            args = &args[1..];
        }
        Some("checkpoint") => {
            opts.checkpoint = true;
            args = &args[1..];
        }
        _ => {}
    }
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--arch" => opts.arch = value("--arch")?,
            "--disks" => {
                opts.disks = value("--disks")?
                    .parse()
                    .map_err(|e| format!("--disks: {e}"))?
            }
            "--task" => opts.task = parse_task(&value("--task")?)?,
            "--memory" => {
                opts.memory_mb = Some(
                    value("--memory")?
                        .parse()
                        .map_err(|e| format!("--memory: {e}"))?,
                )
            }
            "--interconnect" => {
                opts.interconnect_mb = Some(
                    value("--interconnect")?
                        .parse()
                        .map_err(|e| format!("--interconnect: {e}"))?,
                )
            }
            "--no-direct" => opts.direct = false,
            "--fibre-switch" => opts.fibre_switch = true,
            "--fast-disk" => opts.fast_disk = true,
            "--trace" => opts.trace_path = Some(value("--trace")?),
            "--trace-out" => opts.trace_out = Some(value("--trace-out")?),
            "--metrics-out" => opts.metrics_out = Some(value("--metrics-out")?),
            "--trace-events" => opts.trace_events = Some(value("--trace-events")?),
            "--jobs" => {
                let n: usize = value("--jobs")?
                    .parse()
                    .map_err(|e| format!("--jobs: {e}"))?;
                if n == 0 {
                    return Err("--jobs must be positive".to_string());
                }
                opts.jobs = Some(n);
            }
            "--cache" => opts.disk_cache = true,
            "--no-cache" => opts.no_cache = true,
            "--seed" => {
                opts.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--fault" => {
                let spec = value("--fault")?;
                // Validate eagerly so a typo fails before simulating.
                FaultPlan::parse_spec(&spec)?;
                opts.faults.push(spec);
            }
            "--queue" => opts.queue = parse_queue(&value("--queue")?)?,
            "--at" => opts.at = Some(howsim::parse_duration(&value("--at")?)?),
            "--out" => opts.out = Some(value("--out")?),
            "--resume-from" => opts.resume_from = Some(value("--resume-from")?),
            "--load" => opts.load = Some(value("--load")?),
            "--mix" => opts.mix = value("--mix")?,
            "--admission" => opts.admission = AdmissionPolicy::parse_spec(&value("--admission")?)?,
            "--deadline" => opts.deadline = DeadlinePolicy::parse_spec(&value("--deadline")?)?,
            "--recovery" => {
                let name = value("--recovery")?;
                opts.recovery = RecoveryPolicy::parse(&name).ok_or_else(|| {
                    format!("--recovery: unknown policy `{name}` (want failstop, redistribute, or reconstruct)")
                })?;
            }
            "--help" | "-h" => return Err(usage()),
            other => return Err(format!("unknown flag `{other}`\n{}", usage())),
        }
    }
    if opts.disks == 0 {
        return Err("--disks must be positive".to_string());
    }
    let observed = opts.explain
        || opts.profile
        || opts.trace_path.is_some()
        || opts.trace_out.is_some()
        || opts.trace_events.is_some();
    if opts.checkpoint {
        if opts.at.is_none() || opts.out.is_none() {
            return Err("checkpoint needs --at <dur> and --out <file>".to_string());
        }
        if observed
            || opts.metrics_out.is_some()
            || opts.load.is_some()
            || opts.resume_from.is_some()
        {
            return Err(
                "checkpoint applies to plain single-task runs (no observers, --load, or --resume-from)"
                    .to_string(),
            );
        }
    } else if opts.at.is_some() || opts.out.is_some() {
        return Err("--at/--out apply to the checkpoint subcommand only".to_string());
    }
    if opts.resume_from.is_some() && (observed || opts.load.is_some()) {
        return Err(
            "--resume-from applies to plain single-task runs: checkpoints carry no span \
             or trace state, so explain/profile/--trace*/--load cannot resume \
             (--metrics-out works, minus the sampled time-series)"
                .to_string(),
        );
    }
    if let Some(load) = &opts.load {
        // Validate the workload spec eagerly so a typo fails before simulating.
        WorkloadSpec::parse_spec(load, &opts.mix)?;
        if opts.explain || opts.profile {
            return Err("explain/profile apply to single-task runs, not --load".to_string());
        }
        if opts.trace_path.is_some() || opts.trace_out.is_some() {
            return Err("--trace/--trace-out apply to single-task runs, not --load".to_string());
        }
    } else {
        WorkloadSpec::parse_mix(&opts.mix)?;
    }
    Ok(opts)
}

fn build_architecture(opts: &Options) -> Result<Architecture, String> {
    let mut arch = match opts.arch.as_str() {
        "active" => Architecture::active_disks(opts.disks),
        "cluster" => Architecture::cluster(opts.disks),
        "smp" => Architecture::smp(opts.disks),
        other => return Err(format!("unknown architecture `{other}`")),
    };
    if let Some(mb) = opts.memory_mb {
        arch = arch.with_disk_memory(mb << 20);
    }
    if let Some(mb) = opts.interconnect_mb {
        arch = arch.with_interconnect_mb(mb);
    }
    if !opts.direct {
        arch = arch.with_direct_disk_to_disk(false);
    }
    if opts.fibre_switch {
        arch = arch.with_fibre_switch();
    }
    if opts.fast_disk {
        arch = arch.with_disk_spec(diskmodel::DiskSpec::hitachi_dk3e1t_91());
    }
    Ok(arch)
}

/// Prints the per-resource utilization table (service vs wait) and the
/// bottleneck and critical-path verdicts — the `explain` subcommand body.
fn print_explanation(
    report: &howsim::Report,
    critical_path: Option<&CriticalPath>,
    wall: std::time::Duration,
) {
    let attr = Attribution::from_report(report);
    println!("{report}");
    println!();
    println!(
        "  {:<16} {:>5} {:>11} {:>11} {:>8} {:>8}   peak phase",
        "resource", "lanes", "service (s)", "wait (s)", "overall", "peak"
    );
    for r in &attr.resources {
        println!(
            "  {:<16} {:>5} {:>11.3} {:>11.3} {:>7.1}% {:>7.1}%   {}",
            r.resource.label(report.architecture),
            r.lanes,
            r.busy.as_secs_f64(),
            r.wait.as_secs_f64(),
            r.overall_utilization * 100.0,
            r.peak_utilization * 100.0,
            r.peak_phase,
        );
    }
    println!();
    match attr.bottleneck() {
        Some(b) => println!(
            "  bottleneck: {} — {:.1}% busy during `{}`",
            b.resource.label(report.architecture),
            b.peak_utilization * 100.0,
            b.peak_phase,
        ),
        None => println!("  bottleneck: none (no phases executed)"),
    }
    if let Some(cp) = critical_path {
        match cp.segments.first() {
            Some(top) if !cp.total.is_zero() => println!(
                "  critical path: {} — {:.1}% of elapsed ({:.3} s of {:.3} s)",
                top.resource,
                top.time.as_secs_f64() / cp.total.as_secs_f64() * 100.0,
                top.time.as_secs_f64(),
                cp.total.as_secs_f64(),
            ),
            _ => println!("  critical path: none (no phases executed)"),
        }
    }
    let wall_s = wall.as_secs_f64();
    println!(
        "  simulator: {} events in {:.3} s wall ({:.0} events/s)",
        report.events,
        wall_s,
        if wall_s > 0.0 {
            report.events as f64 / wall_s
        } else {
            0.0
        },
    );
}

/// Prints the causal profile: the per-resource critical-path
/// decomposition, the wait/service table, and the longest spans — the
/// `profile` subcommand body. Deterministic: no wall-clock data.
fn print_profile(report: &howsim::Report, spans: &SpanTrace) {
    println!("{report}");
    let cp = spans.critical_path();
    println!();
    println!(
        "  critical path ({} ns — equals elapsed exactly):",
        cp.total.as_nanos()
    );
    println!("  {:<18} {:>12} {:>8}", "resource", "time (s)", "share");
    for seg in &cp.segments {
        println!(
            "  {:<18} {:>12.3} {:>7.1}%",
            seg.resource,
            seg.time.as_secs_f64(),
            seg.time.as_secs_f64() / cp.total.as_secs_f64().max(f64::MIN_POSITIVE) * 100.0,
        );
    }
    println!();
    println!(
        "  {:<16} {:>5} {:>12} {:>12} {:>10}",
        "resource", "lanes", "service (s)", "wait (s)", "wait frac"
    );
    let attr = Attribution::from_report(report);
    for r in &attr.resources {
        let total = r.busy + r.wait;
        let frac = if total.is_zero() {
            0.0
        } else {
            r.wait.as_secs_f64() / total.as_secs_f64()
        };
        println!(
            "  {:<16} {:>5} {:>12.3} {:>12.3} {:>9.1}%",
            r.resource.label(report.architecture),
            r.lanes,
            r.busy.as_secs_f64(),
            r.wait.as_secs_f64(),
            frac * 100.0,
        );
    }
    println!();
    println!("  top {PROFILE_TOP_K} longest spans:");
    println!(
        "  {:>8} {:<12} {:<16} {:>6} {:>14} {:>14} {:>12}",
        "span", "kind", "resource", "node", "start (ns)", "dur (ns)", "bytes"
    );
    for (id, s) in spans.top_spans(PROFILE_TOP_K) {
        let node = if s.node == FRONT_END_NODE {
            "fe".to_string()
        } else {
            s.node.to_string()
        };
        println!(
            "  {:>8} {:<12} {:<16} {:>6} {:>14} {:>14} {:>12}",
            id.index().unwrap_or(usize::MAX),
            s.kind.name(),
            s.resource,
            node,
            s.start.as_nanos(),
            s.duration().as_nanos(),
            s.bytes,
        );
    }
    println!();
    println!(
        "  spans: {} recorded, {} dropped (capacity {})",
        spans.arena.len(),
        spans.arena.dropped(),
        spans.arena.capacity(),
    );
}

/// Prints the per-query outcome table and the load summary — the
/// `--load` output body.
fn print_load_report(report: &LoadReport) {
    println!(
        "loaded run: {} x{} disks  workload {}  admission {}  deadline {}",
        report.architecture, report.disks, report.workload, report.admission, report.deadline,
    );
    println!();
    println!(
        "  {:>5} {:<10} {:<10} {:>12} {:>12} {:>7} {:>8} {:>6}",
        "query", "task", "status", "arrival (s)", "latency (s)", "retries", "timeouts", "phases"
    );
    for o in &report.outcomes {
        println!(
            "  {:>5} {:<10} {:<10} {:>12.3} {:>12.3} {:>7} {:>8} {:>6}",
            o.query,
            o.task.name(),
            o.status.name(),
            o.arrival.as_secs_f64(),
            o.latency().as_secs_f64(),
            o.retries,
            o.timeouts,
            o.phases.len(),
        );
    }
    println!();
    println!(
        "  outcomes: {} queries — {} completed, {} shed, {} timed out, {} aborted ({} retries, {} timeouts)",
        report.outcomes.len(),
        report.completed(),
        report.shed(),
        report.timed_out(),
        report.aborted(),
        report.retries(),
        report.timeouts(),
    );
    let pct = |p: f64| match report.latency_percentile(p) {
        Some(d) => format!("{:.3} s", d.as_secs_f64()),
        None => "-".to_string(),
    };
    println!(
        "  latency: p50 {}  p95 {}  p99 {}",
        pct(50.0),
        pct(95.0),
        pct(99.0),
    );
    println!(
        "  goodput: {:.4} queries/s over {:.3} s simulated ({} events)",
        report.goodput_qps(),
        report.elapsed.as_secs_f64(),
        report.events,
    );
    if report.faults_injected > 0 {
        println!(
            "  faults: {} injected — {} MB redistributed, {:.3} s disk downtime",
            report.faults_injected,
            report.work_redistributed / 1_000_000,
            report.downtime.as_secs_f64(),
        );
    }
}

/// Runs the `--load` multi-query path: simulate (through the load cache
/// when uninstrumented), print the outcome table, and write the optional
/// load manifest and per-query Chrome trace.
fn run_loaded(opts: &Options, sim: &Simulation, fault_plan: &FaultPlan) -> ExitCode {
    let workload = WorkloadSpec::parse_spec(opts.load.as_deref().expect("--load set"), &opts.mix)
        .expect("spec validated during parse");
    let want_profile = opts.trace_events.is_some();
    let (report, span_trace) = if want_profile {
        let (r, t) = sim.run_workload_profiled(&workload, opts.admission, opts.deadline);
        (r, Some(t))
    } else {
        (
            howsim::cache::run_workload(sim, &workload, opts.admission, opts.deadline),
            None,
        )
    };
    if opts.disk_cache && howsim::cache::stats().disk_hits > 0 {
        eprintln!("cache: load report served from results/.simcache/");
    }
    print_load_report(&report);
    if let Some(path) = &opts.trace_events {
        let trace = span_trace.as_ref().expect("profiled run");
        if let Err(e) = std::fs::write(path, trace.chrome_trace_json()) {
            eprintln!("failed to write trace events {path}: {e}");
            return ExitCode::FAILURE;
        }
        let dropped: u64 = trace
            .queries
            .iter()
            .map(|q| trace.dropped_for(q.query))
            .sum();
        eprintln!(
            "wrote {} spans ({} dropped) as Chrome trace events to {path} (one pid per query)",
            trace.arena.len(),
            dropped,
        );
    }
    if let Some(path) = &opts.metrics_out {
        let json = howsim::manifest::load_manifest_json(
            &report,
            opts.seed,
            &fault_plan.summary(),
            opts.recovery.name(),
        );
        if let Err(e) = std::fs::write(path, json) {
            eprintln!("failed to write manifest {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote load manifest to {path}");
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse(&args) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let arch = match build_architecture(&opts) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(jobs) = opts.jobs {
        howsim::sweep::set_default_jobs(jobs);
    }
    if opts.no_cache {
        howsim::cache::set_enabled(false);
    } else if opts.disk_cache {
        howsim::cache::set_disk_dir(Some(howsim::cache::default_disk_dir()));
    }
    let mut fault_plan = FaultPlan::new();
    for spec in &opts.faults {
        fault_plan = match fault_plan.with_spec(spec) {
            Ok(p) => p,
            Err(msg) => {
                eprintln!("{msg}");
                return ExitCode::FAILURE;
            }
        };
    }
    let sim = Simulation::new(arch.clone())
        .with_seed(opts.seed)
        .with_fault_plan(fault_plan.clone())
        .with_recovery(opts.recovery)
        .with_queue_backend(opts.queue);
    if opts.load.is_some() {
        return run_loaded(&opts, &sim, &fault_plan);
    }
    let plan = tasks::plan_task(opts.task, &arch);
    if opts.checkpoint {
        let at = simcore::SimTime::ZERO + opts.at.expect("validated during parse");
        let mut run = sim.start(&plan);
        run.run_until(at);
        let path = opts.out.as_deref().expect("validated during parse");
        return match howsim::checkpoint::write_file(
            std::path::Path::new(path),
            &sim,
            &plan,
            at,
            &run,
        ) {
            Ok(()) => {
                eprintln!(
                    "checkpointed {} on {} x{} at {:.3} s ({} events) to {path}",
                    opts.task.name(),
                    opts.arch,
                    opts.disks,
                    at.as_secs_f64(),
                    run.events_so_far(),
                );
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("failed to write checkpoint {path}: {e}");
                ExitCode::FAILURE
            }
        };
    }
    let want_trace = opts.trace_path.is_some() || opts.trace_out.is_some();
    // `explain` needs the critical path, so it profiles too.
    let want_profile = opts.profile || opts.explain || opts.trace_events.is_some();
    let mut trace = want_trace.then(Trace::new);
    // A resumed run cannot re-sample the utilization series it skipped,
    // so its manifest carries everything but the metrics section.
    let mut metrics =
        (opts.metrics_out.is_some() && opts.resume_from.is_none()).then(MetricsBuilder::new);
    let started = std::time::Instant::now();
    // Traced/instrumented/profiled runs must actually execute to produce
    // their event streams; only the plain report path is cacheable.
    let (report, span_trace) = if want_trace || metrics.is_some() || want_profile {
        sim.run_plan_observed(&plan, trace.as_mut(), metrics.as_mut(), want_profile)
    } else if let Some(path) = &opts.resume_from {
        match howsim::checkpoint::read_file(std::path::Path::new(path), &sim, &plan) {
            Some(run) => {
                eprintln!(
                    "resumed from checkpoint {path} at {:.3} s ({} events already simulated)",
                    run.paused_at().as_secs_f64(),
                    run.events_so_far(),
                );
                (run.finish(), None)
            }
            None => {
                eprintln!(
                    "checkpoint {path} is unusable (missing, corrupt, or a different \
                     configuration); simulating from scratch"
                );
                (howsim::cache::run_sim(&sim, &plan), None)
            }
        }
    } else {
        (howsim::cache::run_sim(&sim, &plan), None)
    };
    let wall = started.elapsed();
    if opts.disk_cache && howsim::cache::stats().disk_hits > 0 {
        eprintln!("cache: report served from results/.simcache/");
    }
    let critical_path = span_trace.as_ref().map(SpanTrace::critical_path);

    if opts.explain {
        print_explanation(&report, critical_path.as_ref(), wall);
    } else if opts.profile {
        print_profile(&report, span_trace.as_ref().expect("profiled run"));
    } else {
        println!("{report}");
        for p in &report.phases {
            println!(
                "  {:<16} {:>9.3} s   CPU idle {:>5.1}%   net {:>8} MB   front-end {:>8} MB",
                p.name,
                p.elapsed.as_secs_f64(),
                p.idle_fraction() * 100.0,
                p.interconnect_bytes / 1_000_000,
                p.frontend_bytes / 1_000_000,
            );
            for (tag, busy) in &p.cpu_busy_by_tag {
                println!(
                    "    {:<14} {:>9.3} node-seconds ({:>4.1}%)",
                    tag,
                    busy.as_secs_f64(),
                    p.cpu_fraction(tag) * 100.0
                );
            }
        }
        println!("  disk service times: {}", report.disk_service);
    }
    if report.faults_injected > 0 {
        println!(
            "  faults: {} injected ({}), recovery {} — {:.3} s recovery work, {} MB redistributed, {:.3} s disk downtime{}",
            report.faults_injected,
            fault_plan.summary(),
            opts.recovery.name(),
            report.recovery_time.as_secs_f64(),
            report.work_redistributed / 1_000_000,
            report.downtime.as_secs_f64(),
            if report.aborted { ", run ABORTED" } else { "" },
        );
    }

    if let Some(path) = &opts.trace_events {
        let spans = span_trace.as_ref().expect("profiled run");
        if let Err(e) = std::fs::write(path, spans.chrome_trace_json()) {
            eprintln!("failed to write trace events {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!(
            "wrote {} spans as Chrome trace events to {path}",
            spans.arena.len()
        );
    }
    if let Some(path) = &opts.metrics_out {
        let mut manifest = RunManifest::new(&arch, &report)
            .with_seed(opts.seed)
            .with_faults(&fault_plan, opts.recovery)
            .with_host(HostInfo::capture(report.events, wall));
        if let Some(mb) = metrics {
            manifest = manifest.with_metrics(mb.finish(report.events));
        }
        if let Some(t) = &trace {
            manifest = manifest.with_trace(t.summary());
        }
        if let Some(cp) = critical_path.clone() {
            manifest = manifest.with_critical_path(cp);
        }
        if let Err(e) = std::fs::write(path, manifest.to_json()) {
            eprintln!("failed to write manifest {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote run manifest to {path}");
    }
    if let Some(t) = &trace {
        if let Some(path) = &opts.trace_path {
            if let Err(e) = std::fs::write(path, t.to_csv()) {
                eprintln!("failed to write trace {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("wrote trace to {path}: {}", t.summary());
        }
        if let Some(path) = &opts.trace_out {
            if let Err(e) = std::fs::write(path, t.to_jsonl()) {
                eprintln!("failed to write trace {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("wrote trace to {path}: {}", t.summary());
        }
    }
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn defaults_parse() {
        let o = parse(&[]).unwrap();
        assert!(!o.explain);
        assert_eq!(o.arch, "active");
        assert_eq!(o.disks, 64);
        assert_eq!(o.task, TaskKind::Select);
        assert!(o.direct);
        assert_eq!(o.metrics_out, None);
    }

    #[test]
    fn full_flag_set_parses() {
        let o = parse(&argv(
            "--arch smp --disks 128 --task sort --memory 64 --interconnect 400 \
             --no-direct --fibre-switch --fast-disk --trace t.csv --trace-out t.jsonl \
             --metrics-out m.json --jobs 4 --cache",
        ))
        .unwrap();
        assert_eq!(o.arch, "smp");
        assert_eq!(o.disks, 128);
        assert_eq!(o.task, TaskKind::Sort);
        assert_eq!(o.memory_mb, Some(64));
        assert_eq!(o.interconnect_mb, Some(400.0));
        assert!(!o.direct);
        assert!(o.fibre_switch);
        assert!(o.fast_disk);
        assert_eq!(o.trace_path.as_deref(), Some("t.csv"));
        assert_eq!(o.trace_out.as_deref(), Some("t.jsonl"));
        assert_eq!(o.metrics_out.as_deref(), Some("m.json"));
        assert_eq!(o.jobs, Some(4));
        assert!(o.disk_cache);
        assert!(!o.no_cache);
    }

    #[test]
    fn cache_flags_parse() {
        let o = parse(&argv("--no-cache")).unwrap();
        assert!(o.no_cache);
        assert!(!o.disk_cache);
        assert!(!parse(&[]).unwrap().disk_cache);
    }

    #[test]
    fn explain_subcommand_parses() {
        let o = parse(&argv("explain --arch cluster --disks 64 --task join")).unwrap();
        assert!(o.explain);
        assert!(!o.profile);
        assert_eq!(o.arch, "cluster");
        assert_eq!(o.disks, 64);
        assert_eq!(o.task, TaskKind::Join);
        // `explain` is only recognized as the leading word.
        assert!(parse(&argv("--arch smp explain")).is_err());
    }

    #[test]
    fn profile_subcommand_and_trace_events_parse() {
        let o = parse(&argv("profile --arch cluster --disks 64 --task join")).unwrap();
        assert!(o.profile);
        assert!(!o.explain);
        assert_eq!(o.task, TaskKind::Join);
        assert!(parse(&argv("--arch smp profile")).is_err());

        let o = parse(&argv("--trace-events t.json")).unwrap();
        assert_eq!(o.trace_events.as_deref(), Some("t.json"));
        assert!(!o.profile);
        assert!(parse(&argv("--trace-events")).is_err());
        assert_eq!(parse(&[]).unwrap().trace_events, None);
    }

    #[test]
    fn errors_are_reported() {
        assert!(parse(&argv("--task nonsense")).is_err());
        assert!(parse(&argv("--disks 0")).is_err());
        assert!(parse(&argv("--bogus")).is_err());
        assert!(parse(&argv("--disks")).is_err());
        assert!(parse(&argv("--jobs 0")).is_err());
        assert!(parse(&argv("--metrics-out")).is_err());
        assert!(parse(&argv("--help")).is_err());
    }

    #[test]
    fn fault_flags_parse() {
        let o = parse(&argv(
            "--seed 42 --fault disk:3@2.5s --fault slow:0@1s:128 --recovery reconstruct",
        ))
        .unwrap();
        assert_eq!(o.seed, 42);
        assert_eq!(o.faults, vec!["disk:3@2.5s", "slow:0@1s:128"]);
        assert_eq!(o.recovery, RecoveryPolicy::ReconstructRead);
        // Defaults: seed 0, no faults, redistribute.
        let d = parse(&[]).unwrap();
        assert_eq!(d.seed, 0);
        assert!(d.faults.is_empty());
        assert_eq!(d.recovery, RecoveryPolicy::Redistribute);
    }

    #[test]
    fn bad_fault_flags_are_rejected() {
        assert!(parse(&argv("--fault nuke:0@1s")).is_err());
        assert!(parse(&argv("--fault disk:0")).is_err());
        assert!(parse(&argv("--recovery raid6")).is_err());
        assert!(parse(&argv("--seed abc")).is_err());
        assert!(parse(&argv("--fault")).is_err());
    }

    #[test]
    fn queue_flag_parses() {
        assert_eq!(parse(&[]).unwrap().queue, QueueBackend::CalendarWheel);
        assert_eq!(
            parse(&argv("--queue heap")).unwrap().queue,
            QueueBackend::BinaryHeap
        );
        assert_eq!(
            parse(&argv("--queue wheel")).unwrap().queue,
            QueueBackend::CalendarWheel
        );
        assert_eq!(
            parse(&argv("--queue sharded:4")).unwrap().queue,
            QueueBackend::ShardedWheel { shards: 4 }
        );
        assert!(parse(&argv("--queue sharded:0")).is_err());
        assert!(parse(&argv("--queue sharded:x")).is_err());
        assert!(parse(&argv("--queue splay")).is_err());
        assert!(parse(&argv("--queue")).is_err());
    }

    #[test]
    fn load_flags_parse() {
        let o = parse(&argv(
            "--load poisson:0.5:16@7 --mix select:2,sort:1 --admission 2:8 --deadline 30s:1:2s",
        ))
        .unwrap();
        assert_eq!(o.load.as_deref(), Some("poisson:0.5:16@7"));
        assert_eq!(o.mix, "select:2,sort:1");
        assert_eq!(o.admission.max_concurrent, 2);
        assert_eq!(o.admission.queue_limit, 8);
        assert_eq!(o.deadline.max_retries, 1);
        assert!(o.deadline.deadline.is_some());
        // Defaults: no load, mix `all`, admission 4:16, no deadline.
        let d = parse(&[]).unwrap();
        assert_eq!(d.load, None);
        assert_eq!(d.mix, "all");
        assert_eq!(d.admission, AdmissionPolicy::default());
        assert_eq!(d.deadline.deadline, None);
    }

    #[test]
    fn bad_load_flags_are_rejected() {
        assert!(parse(&argv("--load warp:1:2")).is_err());
        assert!(parse(&argv("--load poisson:0.5:4 --mix nonsense")).is_err());
        assert!(parse(&argv("--mix nonsense")).is_err());
        assert!(parse(&argv("--admission 4")).is_err());
        assert!(parse(&argv("--deadline 5")).is_err());
        // Single-run observers don't apply to loaded runs.
        assert!(parse(&argv("explain --load closed:1:1")).is_err());
        assert!(parse(&argv("profile --load closed:1:1")).is_err());
        assert!(parse(&argv("--load closed:1:1 --trace t.csv")).is_err());
        // But the loaded manifest and Chrome trace do.
        assert!(parse(&argv(
            "--load closed:1:1 --metrics-out m.json --trace-events t.json"
        ))
        .is_ok());
    }

    #[test]
    fn checkpoint_and_resume_flags_parse() {
        let o = parse(&argv(
            "checkpoint --arch cluster --disks 8 --task join --at 2.5s --out j.ckpt",
        ))
        .unwrap();
        assert!(o.checkpoint);
        assert_eq!(o.at, Some(simcore::Duration::from_secs_f64(2.5)));
        assert_eq!(o.out.as_deref(), Some("j.ckpt"));

        let o = parse(&argv("--task join --resume-from j.ckpt")).unwrap();
        assert_eq!(o.resume_from.as_deref(), Some("j.ckpt"));
        assert!(!o.checkpoint);

        // checkpoint needs both --at and --out, and a plain run.
        assert!(parse(&argv("checkpoint --task join --out j.ckpt")).is_err());
        assert!(parse(&argv("checkpoint --task join --at 1s")).is_err());
        assert!(parse(&argv("checkpoint --at 1s --out j.ckpt --load closed:1:1")).is_err());
        assert!(parse(&argv(
            "checkpoint --at 1s --out j.ckpt --metrics-out m.json"
        ))
        .is_err());
        // --at/--out are checkpoint-only; resume rejects observers.
        assert!(parse(&argv("--at 1s")).is_err());
        assert!(parse(&argv("--out j.ckpt")).is_err());
        assert!(parse(&argv("profile --resume-from j.ckpt")).is_err());
        assert!(parse(&argv("explain --resume-from j.ckpt")).is_err());
        assert!(parse(&argv("--resume-from j.ckpt --trace t.csv")).is_err());
        assert!(parse(&argv("--resume-from j.ckpt --load closed:1:1")).is_err());
        // The manifest (minus the sampled series) still works on resume.
        assert!(parse(&argv("--resume-from j.ckpt --metrics-out m.json")).is_ok());
        assert!(parse(&argv("--at nonsense --out j.ckpt")).is_err());
        // Resuming under a different queue backend is allowed.
        assert!(parse(&argv("--resume-from j.ckpt --queue heap")).is_ok());
    }

    #[test]
    fn architecture_construction() {
        let o = parse(&argv("--arch active --disks 32 --memory 128 --no-direct")).unwrap();
        let a = build_architecture(&o).unwrap();
        let Architecture::ActiveDisks(c) = &a else {
            panic!()
        };
        assert_eq!(c.disks, 32);
        assert_eq!(c.disk_memory_bytes, 128 << 20);
        assert!(!c.direct_disk_to_disk);

        let bad = Options {
            arch: "mainframe".to_string(),
            ..o
        };
        assert!(build_architecture(&bad).is_err());
    }
}
