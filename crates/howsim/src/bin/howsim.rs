//! The `howsim` command-line simulator.
//!
//! ```text
//! howsim --arch active --disks 64 --task sort
//! howsim --arch smp --disks 128 --task select --interconnect 400
//! howsim --arch active --disks 32 --task join --memory 64 --no-direct
//! howsim --arch active --disks 256 --task sort --fibre-switch --trace trace.csv
//! ```
//!
//! Prints the report (total and per-phase breakdown); `--trace FILE`
//! additionally writes the event trace as CSV.

use std::process::ExitCode;

use arch::Architecture;
use howsim::Simulation;
use tasks::TaskKind;

/// Parsed command-line options.
#[derive(Debug, Clone, PartialEq)]
struct Options {
    arch: String,
    disks: usize,
    task: TaskKind,
    memory_mb: Option<u64>,
    interconnect_mb: Option<f64>,
    direct: bool,
    fibre_switch: bool,
    fast_disk: bool,
    trace_path: Option<String>,
    jobs: Option<usize>,
}

fn usage() -> String {
    "usage: howsim --arch <active|cluster|smp> --disks <n> --task <name>\n\
     \x20      [--memory <MB>] [--interconnect <MB/s>] [--no-direct]\n\
     \x20      [--fibre-switch] [--fast-disk] [--trace <file.csv>] [--jobs <n>]\n\
     tasks: select aggregate groupby dcube sort join dmine mview"
        .to_string()
}

fn parse_task(name: &str) -> Result<TaskKind, String> {
    TaskKind::ALL
        .into_iter()
        .find(|t| t.name() == name)
        .ok_or_else(|| format!("unknown task `{name}`"))
}

fn parse(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        arch: "active".to_string(),
        disks: 64,
        task: TaskKind::Select,
        memory_mb: None,
        interconnect_mb: None,
        direct: true,
        fibre_switch: false,
        fast_disk: false,
        trace_path: None,
        jobs: None,
    };
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--arch" => opts.arch = value("--arch")?,
            "--disks" => {
                opts.disks = value("--disks")?
                    .parse()
                    .map_err(|e| format!("--disks: {e}"))?
            }
            "--task" => opts.task = parse_task(&value("--task")?)?,
            "--memory" => {
                opts.memory_mb = Some(
                    value("--memory")?
                        .parse()
                        .map_err(|e| format!("--memory: {e}"))?,
                )
            }
            "--interconnect" => {
                opts.interconnect_mb = Some(
                    value("--interconnect")?
                        .parse()
                        .map_err(|e| format!("--interconnect: {e}"))?,
                )
            }
            "--no-direct" => opts.direct = false,
            "--fibre-switch" => opts.fibre_switch = true,
            "--fast-disk" => opts.fast_disk = true,
            "--trace" => opts.trace_path = Some(value("--trace")?),
            "--jobs" => {
                let n: usize = value("--jobs")?
                    .parse()
                    .map_err(|e| format!("--jobs: {e}"))?;
                if n == 0 {
                    return Err("--jobs must be positive".to_string());
                }
                opts.jobs = Some(n);
            }
            "--help" | "-h" => return Err(usage()),
            other => return Err(format!("unknown flag `{other}`\n{}", usage())),
        }
    }
    if opts.disks == 0 {
        return Err("--disks must be positive".to_string());
    }
    Ok(opts)
}

fn build_architecture(opts: &Options) -> Result<Architecture, String> {
    let mut arch = match opts.arch.as_str() {
        "active" => Architecture::active_disks(opts.disks),
        "cluster" => Architecture::cluster(opts.disks),
        "smp" => Architecture::smp(opts.disks),
        other => return Err(format!("unknown architecture `{other}`")),
    };
    if let Some(mb) = opts.memory_mb {
        arch = arch.with_disk_memory(mb << 20);
    }
    if let Some(mb) = opts.interconnect_mb {
        arch = arch.with_interconnect_mb(mb);
    }
    if !opts.direct {
        arch = arch.with_direct_disk_to_disk(false);
    }
    if opts.fibre_switch {
        arch = arch.with_fibre_switch();
    }
    if opts.fast_disk {
        arch = arch.with_disk_spec(diskmodel::DiskSpec::hitachi_dk3e1t_91());
    }
    Ok(arch)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse(&args) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let arch = match build_architecture(&opts) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(jobs) = opts.jobs {
        howsim::sweep::set_default_jobs(jobs);
    }
    let sim = Simulation::new(arch);
    let (report, trace) = sim.run_traced(opts.task);
    println!("{report}");
    for p in &report.phases {
        println!(
            "  {:<16} {:>9.3} s   CPU idle {:>5.1}%   net {:>8} MB   front-end {:>8} MB",
            p.name,
            p.elapsed.as_secs_f64(),
            p.idle_fraction() * 100.0,
            p.interconnect_bytes / 1_000_000,
            p.frontend_bytes / 1_000_000,
        );
        for (tag, busy) in &p.cpu_busy_by_tag {
            println!(
                "    {:<14} {:>9.3} node-seconds ({:>4.1}%)",
                tag,
                busy.as_secs_f64(),
                p.cpu_fraction(tag) * 100.0
            );
        }
    }
    println!("  disk service times: {}", report.disk_service);
    if let Some(path) = &opts.trace_path {
        if let Err(e) = std::fs::write(path, trace.to_csv()) {
            eprintln!("failed to write trace {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!(
            "wrote {} events ({} dropped) to {path}",
            trace.events().len(),
            trace.dropped()
        );
    }
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn defaults_parse() {
        let o = parse(&[]).unwrap();
        assert_eq!(o.arch, "active");
        assert_eq!(o.disks, 64);
        assert_eq!(o.task, TaskKind::Select);
        assert!(o.direct);
    }

    #[test]
    fn full_flag_set_parses() {
        let o = parse(&argv(
            "--arch smp --disks 128 --task sort --memory 64 --interconnect 400 \
             --no-direct --fibre-switch --fast-disk --trace t.csv --jobs 4",
        ))
        .unwrap();
        assert_eq!(o.arch, "smp");
        assert_eq!(o.disks, 128);
        assert_eq!(o.task, TaskKind::Sort);
        assert_eq!(o.memory_mb, Some(64));
        assert_eq!(o.interconnect_mb, Some(400.0));
        assert!(!o.direct);
        assert!(o.fibre_switch);
        assert!(o.fast_disk);
        assert_eq!(o.trace_path.as_deref(), Some("t.csv"));
        assert_eq!(o.jobs, Some(4));
    }

    #[test]
    fn errors_are_reported() {
        assert!(parse(&argv("--task nonsense")).is_err());
        assert!(parse(&argv("--disks 0")).is_err());
        assert!(parse(&argv("--bogus")).is_err());
        assert!(parse(&argv("--disks")).is_err());
        assert!(parse(&argv("--jobs 0")).is_err());
        assert!(parse(&argv("--help")).is_err());
    }

    #[test]
    fn architecture_construction() {
        let o = parse(&argv("--arch active --disks 32 --memory 128 --no-direct")).unwrap();
        let a = build_architecture(&o).unwrap();
        let Architecture::ActiveDisks(c) = &a else {
            panic!()
        };
        assert_eq!(c.disks, 32);
        assert_eq!(c.disk_memory_bytes, 128 << 20);
        assert!(!c.direct_disk_to_disk);

        let bad = Options {
            arch: "mainframe".to_string(),
            ..o
        };
        assert!(build_architecture(&bad).is_err());
    }
}
