//! The machine model: architecture-specific resources and data paths.
//!
//! A [`Machine`] owns every contended resource of one configuration —
//! disks, node CPUs, the interconnect fabric(s), the front-end — and
//! exposes the four data-path operations the executor needs: local read,
//! local write, peer transfer, and front-end transfer. All resources are
//! FIFO queueing servers, so contention and overlap emerge from the
//! event-driven executor rather than from closed-form formulas.

use arch::{
    ActiveDiskConfig, Architecture, ClusterConfig, InterconnectKind, ProcessorSpec, SmpConfig,
};
use diskmodel::{Disk, Request};
use diskos::Sandbox;
use hostos::OsCosts;
use netmodel::{
    BarrierCosts, ClusterFabric, FcLoop, FcSwitchFabric, MsgCosts, SmpFabric, SmpIoSubsystem,
};
use simcore::state::{StateError, StateReader, StateWriter};
use simcore::{Bandwidth, DowntimeTracker, Duration, FifoServer, SimTime, SplitMix64};

use crate::faults::RecoveryPolicy;
use crate::metrics::{Resource, ResourceUsage};

/// The Active Disk serial fabric: the baseline shared dual loop, or the
/// switched multi-loop extension the paper recommends beyond 64 disks.
#[derive(Clone)]
enum ActiveWire {
    Loop(FcLoop),
    Switch(FcSwitchFabric),
}

impl ActiveWire {
    fn transfer(
        &mut self,
        now: SimTime,
        src: usize,
        dst: usize,
        bytes: u64,
        tag: &'static str,
    ) -> SimTime {
        match self {
            ActiveWire::Loop(fc) => fc.transfer(now, src, bytes, tag),
            ActiveWire::Switch(sw) => sw.transfer(now, src, dst, bytes, tag),
        }
    }

    fn front_end_leg(
        &mut self,
        now: SimTime,
        src: usize,
        bytes: u64,
        tag: &'static str,
    ) -> SimTime {
        match self {
            ActiveWire::Loop(fc) => fc.transfer(now, src, bytes, tag),
            ActiveWire::Switch(sw) => sw.transfer_to_front_end(now, src, bytes, tag),
        }
    }
}

/// Two extent regions: region 0 holds base datasets on the inner quarter
/// of each drive (datasets of this era filled drives from the inside of
/// partitions; this also reproduces the paper's sustained scan rates),
/// region 1 holds intermediates (run files, partitions) on the outer
/// three quarters. Multi-phase tasks read one region while writing the
/// other, keeping arm movement realistic without a full allocator.
const REGIONS: u64 = 2;

/// Chunk size of the SMP striping library (64 KB per disk).
const SMP_CHUNK: u64 = 64 * 1024;

/// Architecture-specific state behind the common machine interface.
#[derive(Clone)]
enum Fabric {
    Active {
        fc: ActiveWire,
        /// The front-end's single FC attachment: all traffic to/through
        /// the front-end serializes here (one loop pair's port rate).
        fe_port: FifoServer,
        fe_port_rate: Bandwidth,
        direct: bool,
        msg: MsgCosts,
    },
    Cluster {
        net: ClusterFabric,
        msg: MsgCosts,
    },
    Smp {
        mem: SmpFabric,
        io: SmpIoSubsystem,
        msg: MsgCosts,
    },
}

/// One configured machine, ready to execute phases.
#[derive(Clone)]
pub struct Machine {
    nodes: usize,
    disks: Vec<Disk>,
    cpus: Vec<FifoServer>,
    fe_cpu: FifoServer,
    node_cpu: ProcessorSpec,
    fe_cpu_spec: ProcessorSpec,
    os: OsCosts,
    fabric: Fabric,
    /// Per-disk, per-region next sequential offset.
    cursors: Vec<[u64; REGIONS as usize]>,
    /// SMP global stripe cursors (read, write).
    stripe_cursor: [usize; 2],
    /// Pipeline window: batches in flight between disk and CPU per node.
    window: usize,
    region_size: u64,
    interconnect_bytes: u64,
    frontend_bytes: u64,
    /// Per-node fail-stop flags (set by [`Machine::fail_disk`]).
    failed: Vec<bool>,
    /// Per-node disk downtime accounting.
    downtime: Vec<DowntimeTracker>,
    /// Aggregate service time of recovery reads and rebalance transfers.
    recovery_busy: Duration,
    /// Bytes of failed partitions re-read through the recovery path.
    work_redistributed: u64,
    /// Rotating cursor spreading Redistribute mirror reads over survivors.
    recovery_rr: usize,
    /// Cached count of failed nodes (keeps the healthy hot path free of
    /// per-read scans and allocations).
    failed_count: usize,
}

/// The healthy members of the stripe group `[start, start+len)`, falling
/// back to all healthy nodes when the whole group has failed.
fn healthy_group(failed: &[bool], start: usize, len: usize) -> Vec<usize> {
    let group: Vec<usize> = (start..start + len).filter(|&d| !failed[d]).collect();
    if !group.is_empty() {
        return group;
    }
    (0..failed.len()).filter(|&d| !failed[d]).collect()
}

impl Machine {
    /// Builds the machine for an architecture configuration.
    pub fn new(arch: &Architecture) -> Self {
        match arch {
            Architecture::ActiveDisks(c) => Self::active(c),
            Architecture::Cluster(c) => Self::cluster(c),
            Architecture::Smp(c) => Self::smp(c),
        }
    }

    fn active(c: &ActiveDiskConfig) -> Self {
        let disks: Vec<Disk> = (0..c.disks)
            .map(|_| Disk::new(c.disk_spec.clone()))
            .collect();
        let region_size = disks[0].capacity_bytes() / REGIONS;
        let sandbox = Sandbox::for_disk_memory(c.disk_memory_bytes);
        Machine {
            nodes: c.disks,
            cpus: vec![FifoServer::new(); c.disks],
            fe_cpu: FifoServer::new(),
            node_cpu: c.embedded_cpu,
            fe_cpu_spec: c.front_end_cpu,
            os: OsCosts::disk_os(),
            fabric: Fabric::Active {
                fc: match c.interconnect_kind {
                    InterconnectKind::DualLoop => ActiveWire::Loop(FcLoop::dual(c.interconnect)),
                    InterconnectKind::FibreSwitch => {
                        ActiveWire::Switch(FcSwitchFabric::for_devices(c.disks))
                    }
                },
                fe_port: FifoServer::new(),
                fe_port_rate: Bandwidth::from_bytes_per_sec(c.interconnect.bytes_per_sec() / 2.0),
                direct: c.direct_disk_to_disk,
                msg: MsgCosts::disk_stream(),
            },
            cursors: vec![[0; 2]; c.disks],
            stripe_cursor: [0; 2],
            window: sandbox.comm_buffers(),
            region_size,
            disks,
            interconnect_bytes: 0,
            frontend_bytes: 0,
            failed: Vec::new(),
            downtime: Vec::new(),
            recovery_busy: Duration::ZERO,
            work_redistributed: 0,
            recovery_rr: 0,
            failed_count: 0,
        }
        .init_fault_state()
    }

    fn cluster(c: &ClusterConfig) -> Self {
        let disks: Vec<Disk> = (0..c.nodes)
            .map(|_| Disk::new(c.disk_spec.clone()))
            .collect();
        let region_size = disks[0].capacity_bytes() / REGIONS;
        Machine {
            nodes: c.nodes,
            cpus: vec![FifoServer::new(); c.nodes],
            fe_cpu: FifoServer::new(),
            node_cpu: c.node_cpu,
            fe_cpu_spec: c.node_cpu,
            os: OsCosts::full_function(),
            fabric: Fabric::Cluster {
                net: ClusterFabric::new(c.nodes),
                msg: MsgCosts::user_space_ethernet(),
            },
            cursors: vec![[0; 2]; c.nodes],
            stripe_cursor: [0; 2],
            window: 2 * hostos::AsyncIoQueue::PAPER_DEPTH,
            region_size,
            disks,
            interconnect_bytes: 0,
            frontend_bytes: 0,
            failed: Vec::new(),
            downtime: Vec::new(),
            recovery_busy: Duration::ZERO,
            work_redistributed: 0,
            recovery_rr: 0,
            failed_count: 0,
        }
        .init_fault_state()
    }

    fn smp(c: &SmpConfig) -> Self {
        let disks: Vec<Disk> = (0..c.processors)
            .map(|_| Disk::new(c.disk_spec.clone()))
            .collect();
        let region_size = disks[0].capacity_bytes() / REGIONS;
        let boards = c.processors.div_ceil(2);
        Machine {
            nodes: c.processors,
            cpus: vec![FifoServer::new(); c.processors],
            fe_cpu: FifoServer::new(),
            node_cpu: c.cpu,
            fe_cpu_spec: c.cpu,
            os: OsCosts::full_function(),
            fabric: Fabric::Smp {
                mem: SmpFabric::new(boards),
                io: SmpIoSubsystem::new(c.io_interconnect),
                msg: MsgCosts::smp_block_transfer(),
            },
            cursors: vec![[0; 2]; c.processors],
            stripe_cursor: [0; 2],
            window: 2 * hostos::AsyncIoQueue::PAPER_DEPTH,
            region_size,
            disks,
            interconnect_bytes: 0,
            frontend_bytes: 0,
            failed: Vec::new(),
            downtime: Vec::new(),
            recovery_busy: Duration::ZERO,
            work_redistributed: 0,
            recovery_rr: 0,
            failed_count: 0,
        }
        .init_fault_state()
    }

    fn init_fault_state(mut self) -> Self {
        self.failed = vec![false; self.nodes];
        self.downtime = vec![DowntimeTracker::new(); self.nodes];
        self
    }

    /// Number of worker nodes (processors / disks).
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Conservative lookahead bound for partitioned event scheduling:
    /// the minimum latency any cross-node interaction pays on this
    /// machine's interconnect. An event one node schedules on another is
    /// always at least this far in the future, which bounds how far
    /// independent scheduler shards could run ahead of each other.
    pub fn lookahead_bound(&self) -> Duration {
        match &self.fabric {
            Fabric::Active { fc, .. } => match fc {
                ActiveWire::Loop(fc) => fc.arbitration(),
                ActiveWire::Switch(sw) => sw.switch_latency(),
            },
            Fabric::Cluster { net, .. } => net.min_link_latency(),
            Fabric::Smp { mem, .. } => mem.link_latency(),
        }
    }

    /// The pipeline window (in-flight batches) per node.
    pub fn window(&self) -> usize {
        self.window
    }

    /// The worker-node processor.
    pub fn node_cpu(&self) -> ProcessorSpec {
        self.node_cpu
    }

    /// The front-end processor.
    pub fn fe_cpu_spec(&self) -> ProcessorSpec {
        self.fe_cpu_spec
    }

    /// Host OS costs on the worker nodes.
    pub fn os(&self) -> OsCosts {
        self.os
    }

    /// Offers tagged work to a node's CPU; returns completion time.
    pub fn node_cpu_work(
        &mut self,
        node: usize,
        now: SimTime,
        work: Duration,
        tag: &'static str,
    ) -> SimTime {
        self.cpus[node].offer(now, work, tag).end
    }

    /// Offers a back-to-back run of tagged work items to a node's CPU;
    /// returns the run's completion time. Bit-identical with offering
    /// each item in sequence, at a single queueing round.
    pub fn node_cpu_run(
        &mut self,
        node: usize,
        now: SimTime,
        parts: impl IntoIterator<Item = (Duration, &'static str)>,
    ) -> SimTime {
        self.cpus[node].offer_run(now, parts).end
    }

    /// Offers tagged work to the front-end CPU.
    pub fn fe_cpu_work(&mut self, now: SimTime, work: Duration, tag: &'static str) -> SimTime {
        self.fe_cpu.offer(now, work, tag).end
    }

    /// Resets per-phase extent cursors: reads come from `read_region`,
    /// writes go to the other region.
    pub fn begin_phase(&mut self, read_region: usize) {
        for c in &mut self.cursors {
            c[read_region] = 0;
            c[1 - read_region] = 0;
        }
        self.stripe_cursor = [0, 0];
    }

    /// On SMP repartition phases, disks are split into read and write
    /// groups (NOW-sort style); returns the groups (same set when the
    /// phase does not write or the machine is not an SMP).
    fn smp_groups(&self, phase_writes: bool) -> (usize, usize, usize) {
        // (read_start, read_len, write_start)
        if matches!(self.fabric, Fabric::Smp { .. }) && phase_writes && self.nodes >= 2 {
            (0, self.nodes / 2, self.nodes / 2)
        } else {
            (0, self.nodes, 0)
        }
    }

    /// Issues a sequential read of `bytes` for `node` at `now`; returns
    /// when the data is in the node's memory.
    pub fn read(
        &mut self,
        node: usize,
        now: SimTime,
        bytes: u64,
        region: usize,
        phase_writes: bool,
    ) -> SimTime {
        let rbase = self.region_base(region);
        let rcap = self.region_capacity(region);
        match &mut self.fabric {
            Fabric::Active { .. } | Fabric::Cluster { .. } => {
                let offset = self.alloc(node, region, bytes);
                self.disks[node]
                    .submit(now, Request::read(offset, bytes))
                    .end
            }
            Fabric::Smp { io, .. } => {
                // Striped read: 64 KB chunks over the read group (failed
                // drives drop out of the stripe), each crossing the FC
                // loop + XIO into memory.
                let (start, len) = {
                    if phase_writes && self.nodes >= 2 {
                        (0usize, self.nodes / 2)
                    } else {
                        (0, self.nodes)
                    }
                };
                let group = if self.failed_count > 0 {
                    healthy_group(&self.failed, start, len)
                } else {
                    Vec::new()
                };
                let mut remaining = bytes;
                let mut ready = now;
                while remaining > 0 {
                    let chunk = remaining.min(SMP_CHUNK);
                    let disk_ix = if group.is_empty() {
                        start + (self.stripe_cursor[0] % len)
                    } else {
                        group[self.stripe_cursor[0] % group.len()]
                    };
                    self.stripe_cursor[0] += 1;
                    let offset = {
                        let cur = &mut self.cursors[disk_ix][region];
                        if *cur + chunk > rcap {
                            *cur = 0;
                        }
                        let off = rbase + *cur;
                        *cur += chunk;
                        off
                    };
                    let media_done = self.disks[disk_ix]
                        .submit(now, Request::read(offset, chunk))
                        .end;
                    let arrived = io.disk_transfer(media_done, disk_ix, chunk, "io-read");
                    self.interconnect_bytes += chunk;
                    ready = ready.max(arrived);
                    remaining -= chunk;
                }
                ready
            }
        }
    }

    /// Issues a sequential write of `bytes` from `node` at `now`; returns
    /// when the write is on media.
    pub fn write(
        &mut self,
        node: usize,
        now: SimTime,
        bytes: u64,
        read_region: usize,
        phase_writes: bool,
    ) -> SimTime {
        let region = 1 - read_region;
        let rbase = self.region_base(region);
        let rcap = self.region_capacity(region);
        match &mut self.fabric {
            Fabric::Active { .. } | Fabric::Cluster { .. } => {
                let offset = self.alloc(node, region, bytes);
                self.disks[node]
                    .submit(now, Request::write(offset, bytes))
                    .end
            }
            Fabric::Smp { io, .. } => {
                let (wstart, len) = {
                    if phase_writes && self.nodes >= 2 {
                        (self.nodes / 2, self.nodes / 2)
                    } else {
                        (0, self.nodes)
                    }
                };
                let group = if self.failed_count > 0 {
                    healthy_group(&self.failed, wstart, len.max(1))
                } else {
                    Vec::new()
                };
                let mut remaining = bytes;
                let mut done = now;
                while remaining > 0 {
                    let chunk = remaining.min(SMP_CHUNK);
                    let disk_ix = if group.is_empty() {
                        wstart + (self.stripe_cursor[1] % len.max(1))
                    } else {
                        group[self.stripe_cursor[1] % group.len()]
                    };
                    self.stripe_cursor[1] += 1;
                    let offset = {
                        let cur = &mut self.cursors[disk_ix][region];
                        if *cur + chunk > rcap {
                            *cur = 0;
                        }
                        let off = rbase + *cur;
                        *cur += chunk;
                        off
                    };
                    // Data crosses the loop to the disk, then hits media.
                    let at_disk = io.disk_transfer(now, disk_ix, chunk, "io-write");
                    self.interconnect_bytes += chunk;
                    let media = self.disks[disk_ix]
                        .submit(at_disk, Request::write(offset, chunk))
                        .end;
                    done = done.max(media);
                    remaining -= chunk;
                }
                done
            }
        }
    }

    /// Region 0 (datasets) lives on the inner half of each drive, region 1
    /// (intermediates) on the outer half; base offsets reflect that.
    fn region_base(&self, region: usize) -> u64 {
        if region == 0 {
            // Base datasets: inner quarter.
            3 * self.region_size / 2
        } else {
            0
        }
    }

    fn region_capacity(&self, region: usize) -> u64 {
        if region == 0 {
            self.region_size / 2
        } else {
            3 * self.region_size / 2
        }
    }

    fn alloc(&mut self, node: usize, region: usize, bytes: u64) -> u64 {
        let base = self.region_base(region);
        let cap = self.region_capacity(region);
        assert!(
            bytes <= cap,
            "request of {bytes} B exceeds region capacity {cap}"
        );
        let cur = &mut self.cursors[node][region];
        // Streams larger than the region wrap around (placement is
        // synthetic; a wrap costs one re-positioning in the disk model).
        if *cur + bytes > cap {
            *cur = 0;
        }
        let offset = base + *cur;
        *cur += bytes;
        offset
    }

    /// CPU cost charged to a sender/receiver per message.
    pub fn msg_cost(&self, bytes: u64) -> Duration {
        match &self.fabric {
            Fabric::Active { msg, .. } | Fabric::Cluster { msg, .. } | Fabric::Smp { msg, .. } => {
                msg.send_cost(bytes)
            }
        }
    }

    /// Transfers `bytes` from `src` to peer `dst`; returns arrival time.
    /// `src == dst` is a local hand-off (no wire).
    pub fn peer_transfer(&mut self, now: SimTime, src: usize, dst: usize, bytes: u64) -> SimTime {
        if src == dst {
            return now;
        }
        self.interconnect_bytes += bytes;
        match &mut self.fabric {
            Fabric::Active {
                fc,
                fe_port,
                fe_port_rate,
                direct,
                ..
            } => {
                if *direct {
                    fc.transfer(now, src, dst, bytes, "shuffle")
                } else {
                    // Restricted architecture: through the front-end's
                    // memory. Inbound loop leg, front-end port (in), then
                    // outbound loop leg and the port again (out).
                    let in_loop = fc.front_end_leg(now, src, bytes, "shuffle-in");
                    let in_port = fe_port
                        .offer(in_loop, fe_port_rate.transfer_time(bytes), "fe-in")
                        .end;
                    let out_port = fe_port
                        .offer(in_port, fe_port_rate.transfer_time(bytes), "fe-out")
                        .end;
                    fc.transfer(out_port, dst, dst, bytes, "shuffle-out")
                }
            }
            Fabric::Cluster { net, .. } => net.send(now, src, dst, bytes, "shuffle"),
            Fabric::Smp { mem, .. } => mem.block_transfer(now, src / 2, dst / 2, bytes, "shuffle"),
        }
    }

    /// Transfers `bytes` from `src` to the front-end; returns arrival.
    pub fn fe_transfer(&mut self, now: SimTime, src: usize, bytes: u64) -> SimTime {
        self.frontend_bytes += bytes;
        match &mut self.fabric {
            Fabric::Active {
                fc,
                fe_port,
                fe_port_rate,
                ..
            } => {
                let on_loop = fc.front_end_leg(now, src, bytes, "to-frontend");
                fe_port
                    .offer(on_loop, fe_port_rate.transfer_time(bytes), "fe-in")
                    .end
            }
            Fabric::Cluster { net, .. } => {
                let fe = net.front_end();
                net.send(now, src, fe, bytes, "to-frontend")
            }
            Fabric::Smp { mem, .. } => mem.block_transfer(now, src / 2, 0, bytes, "to-frontend"),
        }
    }
    /// Snapshot of all worker-CPU busy time by tag since construction.
    pub fn cpu_busy_by_tag(&self) -> std::collections::BTreeMap<&'static str, Duration> {
        let mut map = std::collections::BTreeMap::new();
        for cpu in &self.cpus {
            for (tag, busy) in cpu.busy_breakdown() {
                *map.entry(tag).or_insert(Duration::ZERO) += busy;
            }
        }
        map
    }

    /// Total worker-CPU busy time since construction.
    pub fn cpu_busy_total(&self) -> Duration {
        self.cpus.iter().map(FifoServer::busy_total).sum()
    }

    /// Total worker-CPU queueing time since construction.
    pub fn cpu_wait_total(&self) -> Duration {
        self.cpus.iter().map(FifoServer::wait_total).sum()
    }

    /// Total disk busy time since construction.
    pub fn disk_busy_total(&self) -> Duration {
        self.disks.iter().map(Disk::busy_total).sum()
    }

    /// Total disk queueing time since construction.
    pub fn disk_wait_total(&self) -> Duration {
        self.disks.iter().map(Disk::wait_total).sum()
    }

    /// Injects `count` grown defects into `node`'s drive, spread across
    /// the dataset region (straggler / failure-injection studies). Stops
    /// silently when the drive's spare region is exhausted.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn degrade_disk(&mut self, node: usize, count: u64) {
        assert!(node < self.disks.len(), "node out of range");
        let total = self.disks[node].geometry().total_sectors();
        // Dataset region: inner quarter (see region_base).
        let base = 3 * total / 4;
        let span = total / 4 - 2_048;
        let stride = (span / count.max(1)).max(1);
        for i in 0..count {
            if self.disks[node].grow_defect(base + i * stride).is_err() {
                break;
            }
        }
    }

    /// Injects `count` grown defects into `node`'s drive at positions
    /// drawn from `rng` across the dataset region (a defect *burst*, as
    /// from a head ding — unlike [`Machine::degrade_disk`]'s even
    /// stride). Silently stops on spare exhaustion; no-op on a
    /// fail-stopped drive.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn degrade_disk_seeded(&mut self, node: usize, count: u64, rng: &mut SplitMix64) {
        assert!(node < self.disks.len(), "node out of range");
        if self.failed[node] {
            return;
        }
        let total = self.disks[node].geometry().total_sectors();
        let base = 3 * total / 4;
        let span = total / 4 - 2_048;
        for _ in 0..count {
            if self.disks[node]
                .grow_defect(base + rng.next_below(span))
                .is_err()
            {
                break;
            }
        }
    }

    /// Fail-stops `node`'s disk at `now`: it serves no further requests,
    /// drops out of SMP stripe groups, and starts accruing downtime.
    /// Idempotent.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn fail_disk(&mut self, node: usize, now: SimTime) {
        assert!(node < self.nodes, "node out of range");
        if !self.failed[node] {
            self.failed[node] = true;
            self.failed_count += 1;
            self.downtime[node].fail(now);
        }
    }

    /// True if `node`'s disk has fail-stopped.
    pub fn disk_failed(&self, node: usize) -> bool {
        self.failed[node]
    }

    /// Number of fail-stopped nodes.
    pub fn failed_count(&self) -> usize {
        self.failed_count
    }

    /// Applies an interconnect fault near `node`: on the Active dual loop
    /// one loop drops (survivors carry everything); on a cluster the
    /// node's NIC pair degrades to `severity` of its bandwidth; on an SMP
    /// one FC I/O loop drops. The Active switch fabric is unaffected
    /// (switched segments have no shared medium to lose — the fault is
    /// absorbed, which is itself a finding the availability experiment
    /// can surface).
    pub fn interconnect_fault(&mut self, node: usize, severity: f64) {
        match &mut self.fabric {
            Fabric::Active { fc, .. } => {
                if let ActiveWire::Loop(l) = fc {
                    l.fail_loop(node % l.loop_count());
                }
            }
            Fabric::Cluster { net, .. } => net.degrade_host_link(node, severity),
            Fabric::Smp { io, .. } => io.fail_loop(node % io.loop_count()),
        }
    }

    /// Serves one batch of a failed node's partition through the recovery
    /// path, delivering `bytes` into `consumer`'s memory; returns when
    /// the data is there.
    ///
    /// * [`RecoveryPolicy::Redistribute`] reads the batch from a rotating
    ///   surviving mirror and ships it to `consumer` over the real
    ///   interconnect.
    /// * [`RecoveryPolicy::ReconstructRead`] reads `bytes` from *every*
    ///   surviving drive (RAID-5 stripe reconstruction — the read
    ///   amplification is the point) and ships the survivors' shares to
    ///   `consumer`; the batch is ready when the last share lands.
    /// * [`RecoveryPolicy::FailStop`] never issues recovery reads; calling
    ///   with it is a logic error.
    ///
    /// # Panics
    ///
    /// Panics with `FailStop`, or when no healthy node remains.
    pub fn recovery_read(
        &mut self,
        policy: RecoveryPolicy,
        consumer: usize,
        now: SimTime,
        bytes: u64,
        region: usize,
        phase_writes: bool,
    ) -> SimTime {
        let healthy: Vec<usize> = (0..self.nodes).filter(|&n| !self.failed[n]).collect();
        assert!(!healthy.is_empty(), "recovery with no surviving node");
        let ready = match policy {
            RecoveryPolicy::FailStop => panic!("FailStop policy issues no recovery reads"),
            RecoveryPolicy::Redistribute => {
                // Prefer a mirror other than the consumer so the rebalance
                // traffic actually crosses the interconnect.
                let mirror = if healthy.len() > 1 {
                    let others: Vec<usize> =
                        healthy.iter().copied().filter(|&n| n != consumer).collect();
                    let m = others[self.recovery_rr % others.len()];
                    self.recovery_rr += 1;
                    m
                } else {
                    healthy[0]
                };
                let media_done = self.read(mirror, now, bytes, region, phase_writes);
                self.peer_transfer(media_done, mirror, consumer, bytes)
            }
            RecoveryPolicy::ReconstructRead => {
                let mut ready = now;
                for &survivor in &healthy {
                    let media_done = self.read(survivor, now, bytes, region, phase_writes);
                    let arrived = self.peer_transfer(media_done, survivor, consumer, bytes);
                    ready = ready.max(arrived);
                }
                ready
            }
        };
        self.recovery_busy += ready.since(now);
        self.work_redistributed += bytes;
        ready
    }

    /// Aggregate service time of recovery reads and rebalance transfers.
    pub fn recovery_busy(&self) -> Duration {
        self.recovery_busy
    }

    /// Bytes of failed partitions served through the recovery path.
    pub fn work_redistributed(&self) -> u64 {
        self.work_redistributed
    }

    /// Total disk downtime (failed node-seconds) through `end`.
    pub fn disk_downtime(&self, end: SimTime) -> Duration {
        self.downtime.iter().map(|d| d.total(end)).sum()
    }

    /// The merged per-request disk service-time distribution across all
    /// drives.
    pub fn disk_service_histogram(&self) -> simcore::Histogram {
        let mut merged = simcore::Histogram::new();
        for d in &self.disks {
            merged.merge(d.service_histogram());
        }
        merged
    }

    /// Bytes moved over the peer interconnect so far.
    pub fn interconnect_bytes(&self) -> u64 {
        self.interconnect_bytes
    }

    /// Bytes delivered to the front-end so far.
    pub fn frontend_bytes(&self) -> u64 {
        self.frontend_bytes
    }

    /// Cumulative busy time and lane count of every contended resource
    /// this machine owns, in a stable order (the same call at two instants
    /// is differenced into per-window utilizations).
    ///
    /// Lane counts: drives and worker CPUs have one lane per node; the
    /// front-end CPU one. Interconnect lanes are fabric-specific — FC
    /// loops (dual loop: 2), switch segment loops (2 per segment), worker
    /// NIC directions (2 per host), or the SMP FC I/O loops. The
    /// front-end link is the FC port (1) or the front-end NIC pair (2);
    /// the SMP memory fabric has one block-transfer engine per board.
    pub fn resource_usage(&self) -> Vec<ResourceUsage> {
        let mut v = Vec::with_capacity(6);
        v.push(ResourceUsage {
            resource: Resource::DiskMedia,
            busy: self.disk_busy_total(),
            wait: self.disk_wait_total(),
            lanes: self.disks.len() as u32,
        });
        v.push(ResourceUsage {
            resource: Resource::WorkerCpu,
            busy: self.cpu_busy_total(),
            wait: self.cpu_wait_total(),
            lanes: self.nodes as u32,
        });
        v.push(ResourceUsage {
            resource: Resource::FrontEndCpu,
            busy: self.fe_cpu.busy_total(),
            wait: self.fe_cpu.wait_total(),
            lanes: 1,
        });
        match &self.fabric {
            Fabric::Active {
                fc, fe_port: port, ..
            } => {
                let (busy, wait, lanes) = match fc {
                    ActiveWire::Loop(l) => (l.busy_total(), l.wait_total(), l.loop_count() as u32),
                    ActiveWire::Switch(s) => {
                        (s.busy_total(), s.wait_total(), s.lane_count() as u32)
                    }
                };
                v.push(ResourceUsage {
                    resource: Resource::Interconnect,
                    busy,
                    wait,
                    lanes,
                });
                v.push(ResourceUsage {
                    resource: Resource::FrontEndLink,
                    busy: port.busy_total(),
                    wait: port.wait_total(),
                    lanes: 1,
                });
            }
            Fabric::Cluster { net, .. } => {
                v.push(ResourceUsage {
                    resource: Resource::Interconnect,
                    busy: net.worker_nic_busy_total(),
                    wait: net.worker_nic_wait_total(),
                    lanes: net.worker_nic_lanes() as u32,
                });
                v.push(ResourceUsage {
                    resource: Resource::FrontEndLink,
                    busy: net.front_end_link_busy_total(),
                    wait: net.front_end_link_wait_total(),
                    lanes: 2,
                });
            }
            Fabric::Smp { mem, io, .. } => {
                v.push(ResourceUsage {
                    resource: Resource::Interconnect,
                    busy: io.loop_busy_total(),
                    wait: io.loop_wait_total(),
                    lanes: io.loop_count() as u32,
                });
                v.push(ResourceUsage {
                    resource: Resource::MemoryFabric,
                    busy: mem.busy_total(),
                    wait: mem.wait_total(),
                    lanes: mem.boards() as u32,
                });
            }
        }
        v.push(ResourceUsage {
            resource: Resource::Recovery,
            busy: self.recovery_busy,
            // Recovery is an attribution lane, not a queueing server.
            wait: Duration::ZERO,
            lanes: 1,
        });
        v
    }

    /// The global-barrier cost model for this architecture's fabric.
    pub fn barrier_costs(&self) -> BarrierCosts {
        match &self.fabric {
            Fabric::Active { .. } => BarrierCosts::fibre_channel(),
            Fabric::Cluster { .. } => BarrierCosts::ethernet(),
            Fabric::Smp { .. } => BarrierCosts::smp(),
        }
    }

    /// True when peers cannot address each other directly (the Figure 5
    /// restricted Active Disk architecture): combinable reductions then
    /// happen at the front-end rather than along a peer tree.
    pub fn restricted_peer_routing(&self) -> bool {
        matches!(self.fabric, Fabric::Active { direct: false, .. })
    }

    /// Whether the phase's writes force SMP read/write disk groups.
    pub fn uses_disk_groups(&self, phase_writes: bool) -> bool {
        let (_, len, _) = self.smp_groups(phase_writes);
        len != self.nodes
    }

    /// Serializes all mutable machine state for checkpointing: every
    /// drive, CPU server, the fabric's queueing servers, extent cursors,
    /// fault flags, downtime trackers, and recovery accounting.
    /// Configuration (node count, processor specs, OS and message costs,
    /// rates) is not written; restore targets a machine freshly built
    /// from the same [`Architecture`].
    pub fn save_state(&self, w: &mut StateWriter) {
        w.field("nodes", self.nodes);
        for d in &self.disks {
            d.save_state(w);
        }
        for c in &self.cpus {
            c.save_state(w);
        }
        self.fe_cpu.save_state(w);
        match &self.fabric {
            Fabric::Active { fc, fe_port, .. } => {
                match fc {
                    ActiveWire::Loop(l) => l.save_state(w),
                    ActiveWire::Switch(s) => s.save_state(w),
                }
                fe_port.save_state(w);
            }
            Fabric::Cluster { net, .. } => net.save_state(w),
            Fabric::Smp { mem, io, .. } => {
                mem.save_state(w);
                io.save_state(w);
            }
        }
        for c in &self.cursors {
            w.list("cursor", c.iter().copied());
        }
        w.list("stripe_cursor", self.stripe_cursor.iter().copied());
        w.field("interconnect_bytes", self.interconnect_bytes);
        w.field("frontend_bytes", self.frontend_bytes);
        w.list("failed", self.failed.iter().map(|&f| u8::from(f)));
        for d in &self.downtime {
            d.save_state(w);
        }
        w.field("recovery_busy", self.recovery_busy.as_nanos());
        w.field("work_redistributed", self.work_redistributed);
        w.field("recovery_rr", self.recovery_rr);
    }

    /// Restores state saved by [`Machine::save_state`] into a machine
    /// built from the same [`Architecture`]. The failed-node count is
    /// recomputed from the restored flags rather than trusted from the
    /// checkpoint.
    ///
    /// # Errors
    ///
    /// Returns [`StateError`] on malformed input or a node-count
    /// mismatch (a checkpoint from a differently-sized machine).
    pub fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), StateError> {
        let nodes: usize = r.num("nodes")?;
        if nodes != self.nodes {
            return Err(StateError::new(format!(
                "checkpoint has {nodes} nodes, machine has {}",
                self.nodes
            )));
        }
        for d in &mut self.disks {
            d.load_state(r)?;
        }
        for c in &mut self.cpus {
            *c = FifoServer::load_state(r)?;
        }
        self.fe_cpu = FifoServer::load_state(r)?;
        match &mut self.fabric {
            Fabric::Active { fc, fe_port, .. } => {
                match fc {
                    ActiveWire::Loop(l) => l.load_state(r)?,
                    ActiveWire::Switch(s) => s.load_state(r)?,
                }
                *fe_port = FifoServer::load_state(r)?;
            }
            Fabric::Cluster { net, .. } => net.load_state(r)?,
            Fabric::Smp { mem, io, .. } => {
                mem.load_state(r)?;
                io.load_state(r)?;
            }
        }
        for c in &mut self.cursors {
            let vals: Vec<u64> = r.nums("cursor")?;
            let [a, b] = vals[..] else {
                return Err(StateError::new("cursor line needs 2 values"));
            };
            *c = [a, b];
        }
        let sc: Vec<usize> = r.nums("stripe_cursor")?;
        let [sr, sw] = sc[..] else {
            return Err(StateError::new("stripe_cursor line needs 2 values"));
        };
        self.stripe_cursor = [sr, sw];
        self.interconnect_bytes = r.num("interconnect_bytes")?;
        self.frontend_bytes = r.num("frontend_bytes")?;
        let flags: Vec<u8> = r.nums("failed")?;
        if flags.len() != self.nodes {
            return Err(StateError::new("failed-flag count mismatch"));
        }
        self.failed = flags.iter().map(|&f| f != 0).collect();
        self.failed_count = self.failed.iter().filter(|&&f| f).count();
        for d in &mut self.downtime {
            *d = DowntimeTracker::load_state(r)?;
        }
        self.recovery_busy = Duration::from_nanos(r.num("recovery_busy")?);
        self.work_redistributed = r.num("work_redistributed")?;
        self.recovery_rr = r.num("recovery_rr")?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arch::Architecture;

    fn active(n: usize) -> Machine {
        Machine::new(&Architecture::active_disks(n))
    }

    #[test]
    fn construction_matches_architecture() {
        assert_eq!(active(16).nodes(), 16);
        assert_eq!(Machine::new(&Architecture::cluster(32)).nodes(), 32);
        assert_eq!(Machine::new(&Architecture::smp(64)).nodes(), 64);
    }

    #[test]
    fn window_scales_with_disk_memory() {
        let base = Machine::new(&Architecture::active_disks(8));
        let big = Machine::new(&Architecture::active_disks(8).with_disk_memory(64 << 20));
        assert_eq!(big.window(), 2 * base.window(), "64 MB doubles OS buffers");
    }

    #[test]
    fn sequential_reads_stream() {
        let mut m = active(4);
        m.begin_phase(0);
        let t1 = m.read(0, SimTime::ZERO, 256 * 1024, 0, false);
        let t2 = m.read(0, t1, 256 * 1024, 0, false);
        // The second read continues the stream: cheaper than the first.
        assert!(t2.since(t1) < t1.since(SimTime::ZERO));
    }

    #[test]
    fn begin_phase_resets_cursors() {
        let mut m = active(2);
        m.begin_phase(0);
        let a = m.read(0, SimTime::ZERO, 512, 0, false);
        m.begin_phase(0);
        // Same extent again: the disk serves from its stream state, but the
        // allocator restarted at the region base (no overflow after many
        // phases).
        let b = m.read(0, a, 512, 0, false);
        assert!(b > a);
    }

    #[test]
    fn peer_transfer_local_is_free() {
        let mut m = active(4);
        let now = SimTime::from_nanos(500);
        assert_eq!(m.peer_transfer(now, 2, 2, 1 << 20,), now);
        assert_eq!(
            m.interconnect_bytes(),
            0,
            "local hand-off is not wire traffic"
        );
    }

    #[test]
    fn peer_transfer_counts_bytes() {
        let mut m = active(4);
        let t = m.peer_transfer(SimTime::ZERO, 0, 1, 1 << 20);
        assert!(t > SimTime::ZERO);
        assert_eq!(m.interconnect_bytes(), 1 << 20);
    }

    #[test]
    fn restricted_routing_is_slower_and_flagged() {
        let mut direct = Machine::new(&Architecture::active_disks(8));
        let mut restricted =
            Machine::new(&Architecture::active_disks(8).with_direct_disk_to_disk(false));
        assert!(!direct.restricted_peer_routing());
        assert!(restricted.restricted_peer_routing());
        let td = direct.peer_transfer(SimTime::ZERO, 0, 5, 1 << 20);
        let tr = restricted.peer_transfer(SimTime::ZERO, 0, 5, 1 << 20);
        assert!(tr > td, "front-end staging must cost more");
    }

    #[test]
    fn fibre_switch_machine_transfers() {
        let mut m = Machine::new(&Architecture::active_disks(32).with_fibre_switch());
        let t = m.peer_transfer(SimTime::ZERO, 0, 31, 1 << 20);
        assert!(t > SimTime::ZERO);
        let fe = m.fe_transfer(t, 3, 4_096);
        assert!(fe > t);
    }

    #[test]
    fn smp_reads_cross_the_loop() {
        let mut m = Machine::new(&Architecture::smp(8));
        m.begin_phase(0);
        let t = m.read(0, SimTime::ZERO, 256 * 1024, 0, false);
        assert!(t > SimTime::ZERO);
        assert_eq!(
            m.interconnect_bytes(),
            256 * 1024,
            "striped chunks cross the FC loop"
        );
    }

    #[test]
    fn cpu_work_is_tag_accounted() {
        let mut m = active(2);
        m.node_cpu_work(0, SimTime::ZERO, Duration::from_micros(5), "alpha");
        m.node_cpu_work(1, SimTime::ZERO, Duration::from_micros(7), "beta");
        let tags = m.cpu_busy_by_tag();
        assert_eq!(tags["alpha"], Duration::from_micros(5));
        assert_eq!(tags["beta"], Duration::from_micros(7));
        assert_eq!(m.cpu_busy_total(), Duration::from_micros(12));
    }

    #[test]
    fn resource_usage_is_architecture_shaped() {
        let mut a = active(4);
        let usage = a.resource_usage();
        assert_eq!(usage.len(), 6);
        assert_eq!(usage.last().unwrap().resource, Resource::Recovery);
        assert!(usage.iter().any(|u| u.resource == Resource::FrontEndLink));
        assert!(usage.iter().all(|u| u.resource != Resource::MemoryFabric));
        assert!(usage.iter().all(|u| u.busy.is_zero()), "idle machine");
        // A dual loop reports two lanes; work accrues busy time.
        let ic = usage
            .iter()
            .find(|u| u.resource == Resource::Interconnect)
            .unwrap();
        assert_eq!(ic.lanes, 2);
        a.peer_transfer(SimTime::ZERO, 0, 1, 1 << 20);
        let after = a.resource_usage();
        assert!(
            after
                .iter()
                .find(|u| u.resource == Resource::Interconnect)
                .unwrap()
                .busy
                > Duration::ZERO
        );

        let s = Machine::new(&Architecture::smp(8)).resource_usage();
        assert!(s.iter().any(|u| u.resource == Resource::MemoryFabric));
        assert!(s.iter().all(|u| u.resource != Resource::FrontEndLink));

        let c = Machine::new(&Architecture::cluster(16)).resource_usage();
        let nic = c
            .iter()
            .find(|u| u.resource == Resource::Interconnect)
            .unwrap();
        assert_eq!(nic.lanes, 32, "one tx + one rx lane per worker host");
    }

    #[test]
    fn fail_disk_is_idempotent_and_accrues_downtime() {
        let mut m = active(4);
        assert!(!m.disk_failed(2));
        let t = SimTime::ZERO + Duration::from_secs(1);
        m.fail_disk(2, t);
        m.fail_disk(2, t + Duration::from_secs(5));
        assert!(m.disk_failed(2));
        assert_eq!(m.failed_count(), 1);
        assert_eq!(
            m.disk_downtime(t + Duration::from_secs(3)),
            Duration::from_secs(3)
        );
    }

    #[test]
    fn redistribute_recovery_crosses_the_interconnect() {
        let mut m = active(4);
        m.begin_phase(0);
        m.fail_disk(1, SimTime::ZERO);
        let ready = m.recovery_read(
            RecoveryPolicy::Redistribute,
            1,
            SimTime::ZERO,
            256 * 1024,
            0,
            false,
        );
        assert!(ready > SimTime::ZERO);
        assert_eq!(m.work_redistributed(), 256 * 1024);
        assert!(m.recovery_busy() > Duration::ZERO);
        assert_eq!(
            m.interconnect_bytes(),
            256 * 1024,
            "rebalance traffic rides the real fabric"
        );
    }

    #[test]
    fn reconstruct_amplifies_surviving_disk_reads() {
        let run = |policy| {
            let mut m = active(8);
            m.begin_phase(0);
            m.fail_disk(0, SimTime::ZERO);
            m.recovery_read(policy, 0, SimTime::ZERO, 256 * 1024, 0, false);
            m.disk_busy_total()
        };
        let redistribute = run(RecoveryPolicy::Redistribute);
        let reconstruct = run(RecoveryPolicy::ReconstructRead);
        assert!(
            reconstruct > redistribute * 4,
            "every survivor reads the stripe: {reconstruct} vs {redistribute}"
        );
    }

    #[test]
    fn smp_stripe_skips_failed_disks() {
        let mut m = Machine::new(&Architecture::smp(8));
        m.begin_phase(0);
        m.fail_disk(3, SimTime::ZERO);
        let t = m.read(0, SimTime::ZERO, 1 << 20, 0, false);
        assert!(t > SimTime::ZERO);
        // The failed drive served nothing.
        assert!(m.disks[3].busy_total().is_zero());
    }

    #[test]
    fn seeded_degradation_is_reproducible() {
        // Scan 64 MB in executor-sized batches (the access pattern the
        // simulator actually issues).
        let scan = |m: &mut Machine| {
            m.begin_phase(0);
            let mut t = SimTime::ZERO;
            for _ in 0..256 {
                t = m.read(0, t, 256 << 10, 0, false);
            }
            t
        };
        let mk = || {
            let mut m = active(2);
            let mut rng = SplitMix64::new(42);
            m.degrade_disk_seeded(0, 1_000, &mut rng);
            scan(&mut m)
        };
        assert_eq!(mk(), mk(), "same seed, same defect pattern");
        let mut healthy = active(2);
        let h = scan(&mut healthy);
        let d = mk();
        assert!(
            d > h,
            "grown defects slow the scan: degraded {d}, healthy {h}"
        );
    }

    #[test]
    fn interconnect_fault_slows_active_loop_traffic() {
        let mut m = active(8);
        let healthy = m.peer_transfer(SimTime::ZERO, 0, 1, 8 << 20);
        let mut faulty = active(8);
        faulty.interconnect_fault(1, 0.5);
        let t = faulty.peer_transfer(SimTime::ZERO, 0, 1, 8 << 20);
        // One loop dropped: the survivor serializes both parities.
        let t2 = faulty.peer_transfer(SimTime::ZERO, 1, 0, 8 << 20);
        assert!(t2 > t, "single surviving loop serializes");
        assert!(t >= healthy);
    }

    #[test]
    fn barrier_costs_differ_by_fabric() {
        let a = active(64).barrier_costs().barrier(64);
        let s = Machine::new(&Architecture::smp(64))
            .barrier_costs()
            .barrier(64);
        assert!(s < a, "SMP barriers are hardware-assisted");
    }

    #[test]
    fn msg_costs_differ_by_fabric() {
        let a = active(4).msg_cost(1 << 20);
        let c = Machine::new(&Architecture::cluster(4)).msg_cost(1 << 20);
        assert!(c > a, "ethernet staging copies cost more than disk streams");
    }

    #[test]
    fn state_round_trips_and_continues_identically_on_every_fabric() {
        for arch in [
            Architecture::active_disks(4),
            Architecture::active_disks(16).with_fibre_switch(),
            Architecture::active_disks(4).with_direct_disk_to_disk(false),
            Architecture::cluster(4),
            Architecture::smp(4),
        ] {
            let mut live = Machine::new(&arch);
            live.begin_phase(0);
            let t1 = live.read(0, SimTime::ZERO, 256 * 1024, 0, false);
            let t2 = live.write(1, t1, 128 * 1024, 0, true);
            live.node_cpu_work(0, t2, Duration::from_micros(30), "scan");
            live.fe_cpu_work(t2, Duration::from_micros(12), "collect");
            live.fail_disk(2, t2);
            let t3 = live.recovery_read(RecoveryPolicy::Redistribute, 2, t2, 64 * 1024, 0, false);
            live.interconnect_fault(1, 0.5);

            let mut w = simcore::StateWriter::new();
            live.save_state(&mut w);
            let text = w.finish();

            let mut restored = Machine::new(&arch);
            restored
                .load_state(&mut simcore::StateReader::new(&text))
                .expect("restore");
            assert_eq!(restored.failed_count(), 1, "failed flags restored");

            // Identical continuations in both worlds.
            let ops = |m: &mut Machine| {
                let a = m.read(0, t3, 256 * 1024, 0, false);
                let b = m.write(3, a, 64 * 1024, 0, true);
                let c = m.peer_transfer(b, 0, 3, 512 * 1024);
                let d = m.fe_transfer(c, 3, 4_096);
                let e = m.recovery_read(RecoveryPolicy::ReconstructRead, 2, d, 32 * 1024, 0, false);
                (a, b, c, d, e)
            };
            assert_eq!(ops(&mut live), ops(&mut restored), "diverged on {arch:?}");
            assert_eq!(live.resource_usage(), restored.resource_usage());
            assert_eq!(
                live.disk_downtime(t3 + Duration::from_secs(1)),
                restored.disk_downtime(t3 + Duration::from_secs(1))
            );
            assert_eq!(live.interconnect_bytes(), restored.interconnect_bytes());
            assert_eq!(live.frontend_bytes(), restored.frontend_bytes());
            assert_eq!(live.work_redistributed(), restored.work_redistributed());
            assert_eq!(
                live.disk_service_histogram(),
                restored.disk_service_histogram()
            );
        }
    }

    #[test]
    fn load_state_rejects_wrong_node_count() {
        let live = active(4);
        let mut w = simcore::StateWriter::new();
        live.save_state(&mut w);
        let text = w.finish();
        let mut other = active(8);
        assert!(other
            .load_state(&mut simcore::StateReader::new(&text))
            .is_err());
    }
}
