//! Deterministic fault injection and recovery policies.
//!
//! A [`FaultPlan`] schedules fault events against *simulated* time: disk
//! fail-stops, transient media slowdowns (grown-defect bursts remapped
//! through `diskmodel::defects`), and interconnect faults (FC-AL loop
//! drops, cluster link degradation). The plan is pure data; `exec.rs`
//! delivers the events through the simulation event loop so they
//! interleave exactly with phase execution, and the chosen
//! [`RecoveryPolicy`] decides what happens to the failed node's remaining
//! work.
//!
//! Determinism is the design constraint: a simulation configured with the
//! same seed and the same fault plan produces byte-identical reports at
//! any worker count. The plan therefore carries absolute simulated-time
//! offsets (not wall-clock anything), and all randomized choices (defect
//! placement) draw from the simulation's seeded generator.
//!
//! # Spec syntax
//!
//! The CLI and experiment drivers build plans from compact specs:
//!
//! ```text
//! disk:<node>@<time>            fail-stop of node <node>'s disk
//! slow:<node>@<time>:<defects>  grown-defect burst (<defects> sectors)
//! link:<node>@<time>:<factor>   interconnect fault touching <node>
//! ```
//!
//! `<time>` accepts `2.5s`, `750ms`, or a plain number of seconds.
//!
//! # Example
//!
//! ```
//! use howsim::faults::{FaultPlan, RecoveryPolicy};
//! let plan = FaultPlan::parse_spec("disk:3@2.5s").unwrap();
//! assert_eq!(plan.events().len(), 1);
//! assert_eq!(RecoveryPolicy::parse("redistribute"),
//!            Some(RecoveryPolicy::Redistribute));
//! ```

use simcore::Duration;

/// How long the system takes to *notice* a fail-stopped node: outstanding
/// requests to it time out after this interval and recovery begins.
pub const DETECT_TIMEOUT: Duration = Duration::from_millis(500);

/// Penalty paid by an in-flight transfer addressed to a failed node
/// before it is retried against a survivor.
pub const RETRY_TIMEOUT: Duration = Duration::from_millis(250);

/// One kind of injected fault.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// The node's disk fail-stops: it serves nothing from the fault time
    /// on, and its unfinished partition is handled per [`RecoveryPolicy`].
    DiskFailStop {
        /// Node whose disk fails.
        node: usize,
    },
    /// A transient media slowdown: a burst of grown defects is remapped
    /// to the spare region, so subsequent reads over the affected band
    /// pay extra seeks.
    MediaBurst {
        /// Node whose disk suffers the burst.
        node: usize,
        /// Number of defective sectors grown.
        defects: usize,
    },
    /// An interconnect fault near the node: an FC-AL loop drop (Active
    /// Disks, SMP I/O) or a degraded host link (cluster).
    LinkFault {
        /// Node whose interconnect attachment degrades.
        node: usize,
        /// Remaining bandwidth fraction in `(0, 1]` for degradable links.
        severity: f64,
    },
}

/// A fault scheduled at an absolute simulated-time offset.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    /// When the fault strikes, measured from simulation start.
    pub at: Duration,
    /// What breaks.
    pub kind: FaultKind,
}

/// A deterministic schedule of fault events.
///
/// Plans are plain data: building one never touches a simulation. Events
/// are kept in chronological order (stable for equal times, preserving
/// insertion order) so delivery order is reproducible.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan: the healthy baseline.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules a disk fail-stop on `node` at offset `at`.
    #[must_use]
    pub fn disk_fail_stop(mut self, node: usize, at: Duration) -> Self {
        self.push(FaultEvent {
            at,
            kind: FaultKind::DiskFailStop { node },
        });
        self
    }

    /// Schedules a grown-defect burst of `defects` sectors on `node`.
    #[must_use]
    pub fn media_burst(mut self, node: usize, at: Duration, defects: usize) -> Self {
        self.push(FaultEvent {
            at,
            kind: FaultKind::MediaBurst { node, defects },
        });
        self
    }

    /// Schedules an interconnect fault touching `node`. `severity` is the
    /// remaining bandwidth fraction for degradable links.
    ///
    /// # Panics
    ///
    /// Panics unless `severity` is in `(0, 1]`.
    #[must_use]
    pub fn link_fault(mut self, node: usize, at: Duration, severity: f64) -> Self {
        assert!(
            severity > 0.0 && severity <= 1.0,
            "link fault severity must be in (0, 1], got {severity}"
        );
        self.push(FaultEvent {
            at,
            kind: FaultKind::LinkFault { node, severity },
        });
        self
    }

    fn push(&mut self, ev: FaultEvent) {
        // Insertion sort keeps events chronological while preserving
        // insertion order among equal times (delivery must be stable).
        let pos = self.events.partition_point(|e| e.at <= ev.at);
        self.events.insert(pos, ev);
    }

    /// The scheduled events in delivery order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// True if the plan schedules nothing (healthy run).
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Parses a single fault spec (see module docs for syntax) into a
    /// one-event plan.
    pub fn parse_spec(spec: &str) -> Result<Self, String> {
        Self::new().with_spec(spec)
    }

    /// Parses a fault spec and appends it to this plan.
    pub fn with_spec(self, spec: &str) -> Result<Self, String> {
        let (kind, rest) = spec
            .split_once(':')
            .ok_or_else(|| format!("fault spec '{spec}' missing ':' (want kind:node@time)"))?;
        let (node_str, tail) = rest
            .split_once('@')
            .ok_or_else(|| format!("fault spec '{spec}' missing '@' (want kind:node@time)"))?;
        let node: usize = node_str
            .parse()
            .map_err(|_| format!("fault spec '{spec}': bad node '{node_str}'"))?;
        match kind {
            "disk" => {
                let at = parse_time(tail)
                    .ok_or_else(|| format!("fault spec '{spec}': bad time '{tail}'"))?;
                Ok(self.disk_fail_stop(node, at))
            }
            "slow" => {
                let (time_str, defects_str) = tail.split_once(':').ok_or_else(|| {
                    format!("fault spec '{spec}' missing defect count (want slow:node@time:count)")
                })?;
                let at = parse_time(time_str)
                    .ok_or_else(|| format!("fault spec '{spec}': bad time '{time_str}'"))?;
                let defects: usize = defects_str.parse().map_err(|_| {
                    format!("fault spec '{spec}': bad defect count '{defects_str}'")
                })?;
                Ok(self.media_burst(node, at, defects))
            }
            "link" => {
                let (time_str, sev_str) = tail.split_once(':').ok_or_else(|| {
                    format!("fault spec '{spec}' missing severity (want link:node@time:factor)")
                })?;
                let at = parse_time(time_str)
                    .ok_or_else(|| format!("fault spec '{spec}': bad time '{time_str}'"))?;
                let severity: f64 = sev_str
                    .parse()
                    .map_err(|_| format!("fault spec '{spec}': bad severity '{sev_str}'"))?;
                if !(severity > 0.0 && severity <= 1.0) {
                    return Err(format!(
                        "fault spec '{spec}': severity must be in (0, 1], got {severity}"
                    ));
                }
                Ok(self.link_fault(node, at, severity))
            }
            other => Err(format!(
                "fault spec '{spec}': unknown kind '{other}' (want disk, slow, or link)"
            )),
        }
    }

    /// A compact human-readable summary for manifests and `explain`.
    pub fn summary(&self) -> String {
        if self.is_empty() {
            return "none".to_string();
        }
        let parts: Vec<String> = self
            .events
            .iter()
            .map(|ev| match ev.kind {
                FaultKind::DiskFailStop { node } => {
                    format!("disk:{node}@{:.3}s", ev.at.as_secs_f64())
                }
                FaultKind::MediaBurst { node, defects } => {
                    format!("slow:{node}@{:.3}s:{defects}", ev.at.as_secs_f64())
                }
                FaultKind::LinkFault { node, severity } => {
                    format!("link:{node}@{:.3}s:{severity}", ev.at.as_secs_f64())
                }
            })
            .collect();
        parts.join(",")
    }
}

/// Parses `2.5s`, `750ms`, or a plain seconds number.
fn parse_time(s: &str) -> Option<Duration> {
    let (num, scale) = if let Some(ms) = s.strip_suffix("ms") {
        (ms, 1e-3)
    } else if let Some(secs) = s.strip_suffix('s') {
        (secs, 1.0)
    } else {
        (s, 1.0)
    };
    let value: f64 = num.parse().ok()?;
    if !value.is_finite() || value < 0.0 {
        return None;
    }
    Some(Duration::from_secs_f64(value * scale))
}

/// What the system does about a fail-stopped node's unfinished work.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RecoveryPolicy {
    /// Abort the run at failure detection and emit a partial report
    /// (availability experiments model "abort and rerun" from it).
    FailStop,
    /// Re-assign the failed node's remaining partition across survivors;
    /// each reassigned batch is read from a survivor's replica and shipped
    /// to the consuming node over the real interconnect.
    #[default]
    Redistribute,
    /// RAID-5-style reconstruction: every surviving disk reads its share
    /// of the stripe for each lost batch (read amplification on all
    /// survivors) before the batch is delivered.
    ReconstructRead,
}

impl RecoveryPolicy {
    /// Parses a CLI policy name.
    pub fn parse(name: &str) -> Option<Self> {
        match name {
            "failstop" => Some(Self::FailStop),
            "redistribute" => Some(Self::Redistribute),
            "reconstruct" => Some(Self::ReconstructRead),
            _ => None,
        }
    }

    /// The CLI-facing policy name.
    pub fn name(self) -> &'static str {
        match self {
            Self::FailStop => "failstop",
            Self::Redistribute => "redistribute",
            Self::ReconstructRead => "reconstruct",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_healthy() {
        let plan = FaultPlan::new();
        assert!(plan.is_empty());
        assert_eq!(plan.summary(), "none");
    }

    #[test]
    fn events_sort_chronologically_and_stably() {
        let plan = FaultPlan::new()
            .disk_fail_stop(5, Duration::from_secs(3))
            .media_burst(1, Duration::from_secs(1), 64)
            .link_fault(2, Duration::from_secs(3), 0.5);
        let at: Vec<u64> = plan.events().iter().map(|e| e.at.as_nanos()).collect();
        assert_eq!(at, vec![1_000_000_000, 3_000_000_000, 3_000_000_000]);
        // Equal times preserve insertion order: disk before link.
        assert!(matches!(
            plan.events()[1].kind,
            FaultKind::DiskFailStop { node: 5 }
        ));
        assert!(matches!(
            plan.events()[2].kind,
            FaultKind::LinkFault { node: 2, .. }
        ));
    }

    #[test]
    fn spec_parses_all_kinds() {
        let plan = FaultPlan::parse_spec("disk:3@2.5s").unwrap();
        assert_eq!(
            plan.events()[0],
            FaultEvent {
                at: Duration::from_millis(2_500),
                kind: FaultKind::DiskFailStop { node: 3 },
            }
        );
        let plan = FaultPlan::parse_spec("slow:0@750ms:128").unwrap();
        assert_eq!(
            plan.events()[0],
            FaultEvent {
                at: Duration::from_millis(750),
                kind: FaultKind::MediaBurst {
                    node: 0,
                    defects: 128
                },
            }
        );
        let plan = FaultPlan::parse_spec("link:7@4:0.25").unwrap();
        assert_eq!(
            plan.events()[0],
            FaultEvent {
                at: Duration::from_secs(4),
                kind: FaultKind::LinkFault {
                    node: 7,
                    severity: 0.25
                },
            }
        );
    }

    #[test]
    fn spec_round_trips_through_summary() {
        let plan = FaultPlan::parse_spec("disk:3@2.5s").unwrap();
        let reparsed = FaultPlan::parse_spec(&plan.summary()).unwrap();
        assert_eq!(plan, reparsed);
    }

    #[test]
    fn bad_specs_are_rejected_with_context() {
        for bad in [
            "disk3@2.5s",
            "disk:3",
            "disk:x@1s",
            "disk:3@fast",
            "slow:3@1s",
            "slow:3@1s:many",
            "link:3@1s",
            "link:3@1s:0",
            "link:3@1s:1.5",
            "nuke:3@1s",
        ] {
            let err = FaultPlan::parse_spec(bad).unwrap_err();
            assert!(err.contains(bad), "error for '{bad}' lacks context: {err}");
        }
    }

    #[test]
    fn negative_time_is_rejected() {
        assert!(FaultPlan::parse_spec("disk:3@-1s").is_err());
    }

    #[test]
    fn policy_names_round_trip() {
        for policy in [
            RecoveryPolicy::FailStop,
            RecoveryPolicy::Redistribute,
            RecoveryPolicy::ReconstructRead,
        ] {
            assert_eq!(RecoveryPolicy::parse(policy.name()), Some(policy));
        }
        assert_eq!(RecoveryPolicy::parse("raid6"), None);
        assert_eq!(RecoveryPolicy::default(), RecoveryPolicy::Redistribute);
    }

    #[test]
    #[should_panic(expected = "severity")]
    fn builder_rejects_zero_severity() {
        let _ = FaultPlan::new().link_fault(0, Duration::ZERO, 0.0);
    }
}
