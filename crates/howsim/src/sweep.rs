//! Deterministic parallel sweep engine.
//!
//! Experiment sweeps run hundreds of independent simulations (Figure 1
//! alone is 96). Each simulation is a pure function of its inputs, so the
//! sweep parallelizes trivially — but the *outputs* must stay in sweep
//! order so tables and CSV files are byte-identical regardless of worker
//! count. [`map`] guarantees exactly that: workers pull job indices from a
//! shared atomic counter and results are reassembled in item order, so
//! `--jobs 1` and `--jobs 8` produce the same bytes, only faster.
//!
//! The worker count defaults to the machine's available parallelism and
//! can be overridden process-wide (the binaries' `--jobs N` flag calls
//! [`set_default_jobs`]) or per call with [`map_jobs`].
//!
//! # Example
//!
//! ```
//! let squares = howsim::sweep::map(&[1u64, 2, 3, 4], |&x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//! ```

use std::fmt::Debug;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Process-wide default worker count; 0 means "auto" (available
/// parallelism).
static DEFAULT_JOBS: AtomicUsize = AtomicUsize::new(0);

/// Sets the process-wide default worker count for [`map`]. `0` restores
/// the auto default (the machine's available parallelism).
pub fn set_default_jobs(jobs: usize) {
    DEFAULT_JOBS.store(jobs, Ordering::Relaxed);
}

/// The worker count [`map`] will use: the last [`set_default_jobs`] value,
/// or the machine's available parallelism if unset.
pub fn default_jobs() -> usize {
    match DEFAULT_JOBS.load(Ordering::Relaxed) {
        0 => std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
        n => n,
    }
}

/// Applies `f` to every item, in parallel across [`default_jobs`] workers,
/// returning the results **in item order**.
///
/// Deterministic by construction: `f` runs on disjoint items with no
/// shared state, and the output vector is assembled by item index, so the
/// result is identical to `items.iter().map(f).collect()` for any worker
/// count.
pub fn map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync + Debug,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    map_jobs(items, default_jobs(), f)
}

/// Best-effort rendering of a caught panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// [`map`] with an explicit worker count.
///
/// # Panics
///
/// Panics if any invocation of `f` panics. The panic is caught per point
/// and re-raised from the calling thread naming the lowest panicked sweep
/// index and its item, so a 300-point sweep that dies on point 217 says
/// so instead of unwinding anonymously through a worker join.
pub fn map_jobs<T, R, F>(items: &[T], jobs: usize, f: F) -> Vec<R>
where
    T: Sync + Debug,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let jobs = jobs.max(1).min(items.len());
    let run = |i: usize| catch_unwind(AssertUnwindSafe(|| f(&items[i])));
    if jobs <= 1 {
        return items
            .iter()
            .enumerate()
            .map(|(i, item)| match run(i) {
                Ok(r) => r,
                Err(p) => panic!(
                    "sweep point {i} (item: {item:?}) panicked: {}",
                    panic_message(p.as_ref())
                ),
            })
            .collect();
    }
    let next = AtomicUsize::new(0);
    let panics: Mutex<Vec<(usize, String)>> = Mutex::new(Vec::new());
    let mut slots: Vec<Option<R>> = Vec::with_capacity(items.len());
    slots.resize_with(items.len(), || None);
    std::thread::scope(|s| {
        let workers: Vec<_> = (0..jobs)
            .map(|_| {
                s.spawn(|| {
                    let mut done = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        match run(i) {
                            Ok(r) => done.push((i, r)),
                            Err(p) => {
                                // Record and stop pulling work: the sweep
                                // is going to fail, so don't waste cores.
                                let msg = panic_message(p.as_ref());
                                panics.lock().expect("panic list").push((i, msg));
                                break;
                            }
                        }
                    }
                    done
                })
            })
            .collect();
        for w in workers {
            for (i, r) in w.join().expect("sweep worker thread died") {
                slots[i] = Some(r);
            }
        }
    });
    let panicked = panics.into_inner().expect("panic list");
    if let Some((i, msg)) = panicked.into_iter().min_by_key(|&(i, _)| i) {
        panic!("sweep point {i} (item: {:?}) panicked: {msg}", items[i]);
    }
    slots
        .into_iter()
        .map(|r| r.expect("every sweep job produced a result"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_item_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = map_jobs(&items, 8, |&x| x * 3);
        let expected: Vec<u64> = items.iter().map(|&x| x * 3).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn parallel_matches_serial_under_uneven_load() {
        // Jobs with wildly different run times still land in order.
        let items: Vec<u64> = (0..40).collect();
        let work = |&x: &u64| {
            let mut acc = x;
            for _ in 0..(x % 7) * 10_000 {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
            }
            (x, acc)
        };
        assert_eq!(map_jobs(&items, 1, work), map_jobs(&items, 8, work));
    }

    #[test]
    fn handles_empty_and_singleton() {
        let empty: Vec<u32> = Vec::new();
        assert_eq!(map_jobs(&empty, 8, |&x| x), Vec::<u32>::new());
        assert_eq!(map_jobs(&[7u32], 8, |&x| x + 1), vec![8]);
    }

    #[test]
    fn more_workers_than_items_is_fine() {
        let out = map_jobs(&[1u32, 2, 3], 64, |&x| x);
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn default_jobs_is_positive() {
        assert!(default_jobs() >= 1);
    }

    #[test]
    #[should_panic(expected = "sweep point 4 (item: 4) panicked: boom")]
    fn worker_panics_name_the_point() {
        // Indices are handed out in order, so the lowest panicking index
        // (4) is always the one reported, at any worker count.
        let items: Vec<u32> = (0..8).collect();
        let _ = map_jobs(&items, 2, |&x| {
            assert!(x < 4, "boom");
            x
        });
    }

    #[test]
    #[should_panic(expected = "sweep point 2 (item: 2) panicked: serial boom")]
    fn serial_panics_name_the_point_too() {
        let items: Vec<u32> = (0..4).collect();
        let _ = map_jobs(&items, 1, |&x| {
            assert!(x != 2, "serial boom");
            x
        });
    }
}
