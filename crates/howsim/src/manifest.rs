//! Structured run manifests: a deterministic JSON record of what was
//! simulated, what it cost, and which resource was the bottleneck.
//!
//! A manifest captures everything needed to reproduce and audit a run:
//! the configuration (architecture, task, disk count, seed, and an
//! FNV-1a hash of the full config debug representation), the git
//! revision the binary was built from, per-phase elapsed/busy
//! breakdowns, the per-resource [`Attribution`] table, and — when the
//! run was instrumented — sampled utilization time-series and a trace
//! summary.
//!
//! Serialization is hand-rolled (the workspace vendors no JSON crate)
//! and **deterministic**: two runs of the same config and seed produce
//! byte-identical manifests, except for the optional `host` section
//! which carries wall-clock measurements and is `null` unless
//! explicitly attached via [`RunManifest::with_host`].

use std::collections::{BTreeMap, HashMap};
use std::fmt::Write as _;
use std::process::Command;
use std::sync::{Mutex, OnceLock};

use arch::Architecture;
use simcore::{Duration, Histogram};

use crate::metrics::{Attribution, Resource, ResourceUsage, RunMetrics};
use crate::mqexec::{LoadReport, QueryOutcome, QueryPhase, QueryStatus};
use crate::report::{PhaseReport, Report};
use crate::trace::TraceSummary;

/// Manifest schema identifier, bumped on breaking layout changes.
pub const SCHEMA: &str = "howsim-manifest/v1";

/// Wall-clock facts about the machine that produced a manifest.
///
/// This is the only nondeterministic manifest section; everything else
/// is a pure function of the configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct HostInfo {
    /// Milliseconds since the Unix epoch when the manifest was written.
    pub generated_unix_ms: u64,
    /// Wall-clock seconds the simulation took to execute.
    pub wall_seconds: f64,
    /// Simulator throughput: discrete events per wall-clock second.
    pub events_per_sec: f64,
}

impl HostInfo {
    /// Captures the current wall clock and derives throughput from a
    /// run's event count and measured duration.
    pub fn capture(events: u64, wall: std::time::Duration) -> Self {
        let wall_seconds = wall.as_secs_f64();
        HostInfo {
            generated_unix_ms: std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map_or(0, |d| d.as_millis() as u64),
            wall_seconds,
            events_per_sec: if wall_seconds > 0.0 {
                events as f64 / wall_seconds
            } else {
                0.0
            },
        }
    }
}

/// A structured, reproducible record of one simulation run.
///
/// # Example
///
/// ```
/// use arch::Architecture;
/// use howsim::{manifest::RunManifest, Simulation};
/// use tasks::TaskKind;
///
/// let arch = Architecture::smp(4);
/// let report = Simulation::new(arch.clone()).run(TaskKind::Select);
/// let json = RunManifest::new(&arch, &report).to_json();
/// assert!(json.contains("\"schema\": \"howsim-manifest/v1\""));
/// ```
#[derive(Debug, Clone)]
pub struct RunManifest {
    /// Architecture short name ("Active" / "Cluster" / "SMP").
    pub architecture: &'static str,
    /// Task name (paper spelling).
    pub task: &'static str,
    /// Number of disks (= processors).
    pub disks: usize,
    /// Run seed (provenance only; the simulator is deterministic).
    pub seed: u64,
    /// Human-readable fault-plan summary (`"none"` for healthy runs).
    pub faults: String,
    /// Recovery policy name in effect for the run.
    pub recovery: String,
    /// FNV-1a 64-bit hash of the config debug representation, hex.
    pub config_hash: String,
    /// Full config debug representation, for human auditing.
    pub config_repr: String,
    /// Short git revision the binary was built from, or "unknown".
    pub git_rev: String,
    /// Total simulated elapsed time.
    pub elapsed: Duration,
    /// Total discrete events processed.
    pub events: u64,
    /// Per-phase measurements (cloned from the report).
    pub phases: Vec<crate::report::PhaseReport>,
    /// Per-resource utilization rollup with bottleneck.
    pub attribution: Attribution,
    /// Sampled time-series, when the run was instrumented.
    pub metrics: Option<RunMetrics>,
    /// Trace totals, when the run was traced.
    pub trace: Option<TraceSummary>,
    /// Critical-path decomposition, when the run was profiled.
    pub critical_path: Option<crate::profile::CriticalPath>,
    /// Wall-clock facts; `None` keeps the manifest fully deterministic.
    pub host: Option<HostInfo>,
}

impl RunManifest {
    /// Builds a manifest from a configuration and its finished report.
    pub fn new(arch: &Architecture, report: &Report) -> Self {
        let config_repr = format!("{arch:?}");
        RunManifest {
            architecture: report.architecture,
            task: report.task,
            disks: report.disks,
            seed: 0,
            faults: "none".to_string(),
            recovery: crate::faults::RecoveryPolicy::default().name().to_string(),
            config_hash: format!("{:016x}", fnv1a64(config_repr.as_bytes())),
            config_repr,
            git_rev: git_revision(),
            elapsed: report.elapsed(),
            events: report.events,
            phases: report.phases.clone(),
            attribution: Attribution::from_report(report),
            metrics: None,
            trace: None,
            critical_path: None,
            host: None,
        }
    }

    /// Records the run seed (provenance; defaults to 0).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Records the fault plan and recovery policy the run executed under.
    pub fn with_faults(
        mut self,
        plan: &crate::faults::FaultPlan,
        policy: crate::faults::RecoveryPolicy,
    ) -> Self {
        self.faults = plan.summary();
        self.recovery = policy.name().to_string();
        self
    }

    /// Attaches sampled time-series from an instrumented run.
    pub fn with_metrics(mut self, metrics: RunMetrics) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// Attaches a trace summary.
    pub fn with_trace(mut self, trace: TraceSummary) -> Self {
        self.trace = Some(trace);
        self
    }

    /// Attaches a critical-path decomposition from a profiled run.
    pub fn with_critical_path(mut self, cp: crate::profile::CriticalPath) -> Self {
        self.critical_path = Some(cp);
        self
    }

    /// Attaches wall-clock host facts (makes the manifest
    /// nondeterministic; omit for regression comparisons).
    pub fn with_host(mut self, host: HostInfo) -> Self {
        self.host = Some(host);
        self
    }

    /// Serializes to deterministic, pretty-printed JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\n");
        kv_str(&mut out, 1, "schema", SCHEMA, true);
        out.push_str("  \"config\": {\n");
        kv_str(&mut out, 2, "architecture", self.architecture, true);
        kv_str(&mut out, 2, "task", self.task, true);
        kv_raw(&mut out, 2, "disks", &self.disks.to_string(), true);
        kv_raw(&mut out, 2, "seed", &self.seed.to_string(), true);
        kv_str(&mut out, 2, "faults", &self.faults, true);
        kv_str(&mut out, 2, "recovery", &self.recovery, true);
        kv_str(&mut out, 2, "hash", &self.config_hash, true);
        kv_str(&mut out, 2, "repr", &self.config_repr, false);
        out.push_str("  },\n");
        kv_str(&mut out, 1, "git_rev", &self.git_rev, true);
        out.push_str("  \"result\": {\n");
        kv_raw(
            &mut out,
            2,
            "elapsed_s",
            &format!("{:.9}", self.elapsed.as_secs_f64()),
            true,
        );
        kv_raw(&mut out, 2, "events", &self.events.to_string(), true);
        out.push_str("    \"phases\": [\n");
        for (ix, p) in self.phases.iter().enumerate() {
            out.push_str("      {");
            let _ = write!(
                out,
                "\"name\": {}, \"elapsed_s\": {:.9}, \"cpu_busy_s\": {:.9}, \
                 \"disk_busy_s\": {:.9}, \"idle_frac\": {:.6}, \
                 \"interconnect_bytes\": {}, \"frontend_bytes\": {}, \
                 \"utilization\": {{",
                json_string(p.name),
                p.elapsed.as_secs_f64(),
                p.cpu_busy_total.as_secs_f64(),
                p.disk_busy_total.as_secs_f64(),
                p.idle_fraction(),
                p.interconnect_bytes,
                p.frontend_bytes,
            );
            for (jx, u) in p.resources.iter().enumerate() {
                let _ = write!(
                    out,
                    "{}{}: {:.6}",
                    if jx > 0 { ", " } else { "" },
                    json_string(u.resource.key()),
                    u.utilization(p.elapsed)
                );
            }
            out.push_str("}}");
            out.push_str(if ix + 1 < self.phases.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("    ]\n  },\n");
        out.push_str("  \"attribution\": {\n");
        match self.attribution.bottleneck() {
            Some(b) => {
                kv_str(&mut out, 2, "bottleneck", b.resource.key(), true);
                kv_str(
                    &mut out,
                    2,
                    "bottleneck_label",
                    b.resource.label(self.architecture),
                    true,
                );
            }
            None => {
                kv_raw(&mut out, 2, "bottleneck", "null", true);
                kv_raw(&mut out, 2, "bottleneck_label", "null", true);
            }
        }
        out.push_str("    \"resources\": [\n");
        let n = self.attribution.resources.len();
        for (ix, r) in self.attribution.resources.iter().enumerate() {
            let _ = writeln!(
                out,
                "      {{\"resource\": {}, \"label\": {}, \"lanes\": {}, \
                 \"busy_s\": {:.9}, \"wait_s\": {:.9}, \
                 \"overall_utilization\": {:.6}, \
                 \"peak_utilization\": {:.6}, \"peak_phase\": {}}}{}",
                json_string(r.resource.key()),
                json_string(r.resource.label(self.architecture)),
                r.lanes,
                r.busy.as_secs_f64(),
                r.wait.as_secs_f64(),
                r.overall_utilization,
                r.peak_utilization,
                json_string(r.peak_phase),
                if ix + 1 < n { "," } else { "" },
            );
        }
        out.push_str("    ]\n  },\n");
        match &self.critical_path {
            Some(cp) => {
                let _ = write!(
                    out,
                    "  \"critical_path\": {{\"total_ns\": {}, \"resources\": [",
                    cp.total.as_nanos()
                );
                for (ix, seg) in cp.segments.iter().enumerate() {
                    let _ = write!(
                        out,
                        "{}{{\"resource\": {}, \"ns\": {}}}",
                        if ix > 0 { ", " } else { "" },
                        json_string(seg.resource),
                        seg.time.as_nanos()
                    );
                }
                out.push_str("]},\n");
            }
            None => out.push_str("  \"critical_path\": null,\n"),
        }
        match &self.trace {
            Some(t) => {
                let _ = writeln!(
                    out,
                    "  \"trace\": {{\"total\": {}, \"retained\": {}, \
                     \"dropped\": {}, \"truncated\": {}}},",
                    t.total, t.retained, t.dropped, t.truncated
                );
            }
            None => out.push_str("  \"trace\": null,\n"),
        }
        match &self.metrics {
            Some(m) => {
                out.push_str("  \"series\": {\n");
                kv_raw(
                    &mut out,
                    2,
                    "sample_interval_ns",
                    &m.sample_interval.as_nanos().to_string(),
                    true,
                );
                out.push_str("    \"utilization\": [\n");
                let nu = m.utilization.len();
                for (ix, (resource, lanes, series)) in m.utilization.iter().enumerate() {
                    let _ = write!(
                        out,
                        "      {{\"resource\": {}, \"lanes\": {}, ",
                        json_string(resource.key()),
                        lanes
                    );
                    write_series(&mut out, series);
                    out.push('}');
                    out.push_str(if ix + 1 < nu { ",\n" } else { "\n" });
                }
                out.push_str("    ],\n");
                out.push_str("    \"queue_depth\": {");
                write_series(&mut out, &m.queue_depth);
                out.push_str("}\n  },\n");
            }
            None => out.push_str("  \"series\": null,\n"),
        }
        match &self.host {
            Some(h) => {
                let _ = writeln!(
                    out,
                    "  \"host\": {{\"generated_unix_ms\": {}, \
                     \"wall_seconds\": {:.6}, \"events_per_sec\": {:.1}}}",
                    h.generated_unix_ms, h.wall_seconds, h.events_per_sec
                );
            }
            None => out.push_str("  \"host\": null\n"),
        }
        out.push_str("}\n");
        out
    }
}

/// Writes the body of a series object: truncation facts and samples as
/// `[t_ns, value]` pairs.
fn write_series(out: &mut String, series: &simcore::GaugeSeries) {
    let _ = write!(
        out,
        "\"truncated\": {}, \"dropped\": {}, \"samples\": [",
        series.truncated(),
        series.dropped()
    );
    for (ix, (t, v)) in series.samples().iter().enumerate() {
        let _ = write!(
            out,
            "{}[{}, {:.6}]",
            if ix > 0 { ", " } else { "" },
            t.as_nanos(),
            v
        );
    }
    out.push(']');
}

/// Writes `"key": "value"` at `indent` levels (2 spaces each).
fn kv_str(out: &mut String, indent: usize, key: &str, value: &str, comma: bool) {
    let _ = writeln!(
        out,
        "{}{}: {}{}",
        "  ".repeat(indent),
        json_string(key),
        json_string(value),
        if comma { "," } else { "" }
    );
}

/// Writes `"key": value` (raw, unquoted value) at `indent` levels.
fn kv_raw(out: &mut String, indent: usize, key: &str, value: &str, comma: bool) {
    let _ = writeln!(
        out,
        "{}{}: {}{}",
        "  ".repeat(indent),
        json_string(key),
        value,
        if comma { "," } else { "" }
    );
}

/// Quotes and escapes a string for JSON.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// FNV-1a 64-bit hash — small, dependency-free, stable across runs.
/// Used for the manifest `config_hash` and as the content address of
/// [`crate::cache`] entries.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Interns a string, returning a `&'static str` with the same contents.
///
/// [`Report`] carries `&'static str` names (task, architecture, phase and
/// CPU-work tags); deserializing a cached report reconstructs them by
/// leaking each *distinct* name once per process. The set of names is
/// tiny and fixed by the workload definitions, so the leak is bounded.
pub(crate) fn intern(s: &str) -> &'static str {
    static POOL: OnceLock<Mutex<HashMap<String, &'static str>>> = OnceLock::new();
    let mut pool = POOL
        .get_or_init(|| Mutex::new(HashMap::new()))
        .lock()
        .expect("intern pool lock");
    if let Some(&v) = pool.get(s) {
        return v;
    }
    let leaked: &'static str = Box::leak(s.to_string().into_boxed_str());
    pool.insert(s.to_string(), leaked);
    leaked
}

/// Serializes a [`Report`] to the compact line-based format used by the
/// result cache (see [`crate::cache`]).
///
/// Every field is an exact integer — nanoseconds, bytes, or counts; the
/// report holds no floats — so the round trip through
/// [`report_from_cache`] is field-identical, and serializing the same
/// report twice yields identical bytes.
pub fn report_to_cache(report: &Report) -> String {
    let mut out = String::with_capacity(1024);
    let _ = writeln!(out, "task {}", report.task);
    let _ = writeln!(out, "arch {}", report.architecture);
    let _ = writeln!(out, "disks {}", report.disks);
    let _ = writeln!(out, "events {}", report.events);
    let _ = writeln!(out, "faults_injected {}", report.faults_injected);
    let _ = writeln!(out, "recovery_ns {}", report.recovery_time.as_nanos());
    let _ = writeln!(out, "work_redistributed {}", report.work_redistributed);
    let _ = writeln!(out, "aborted {}", u8::from(report.aborted));
    let _ = writeln!(out, "downtime_ns {}", report.downtime.as_nanos());
    let h = &report.disk_service;
    let _ = writeln!(out, "hist_total_ns {}", h.total().as_nanos());
    let _ = writeln!(out, "hist_max_ns {}", h.max().as_nanos());
    out.push_str("hist_buckets");
    for c in h.bucket_counts() {
        let _ = write!(out, " {c}");
    }
    out.push('\n');
    let _ = writeln!(out, "phases {}", report.phases.len());
    for p in &report.phases {
        let _ = writeln!(out, "phase {}", p.name);
        let _ = writeln!(out, "elapsed_ns {}", p.elapsed.as_nanos());
        let _ = writeln!(out, "cpu_busy_ns {}", p.cpu_busy_total.as_nanos());
        let _ = writeln!(out, "disk_busy_ns {}", p.disk_busy_total.as_nanos());
        let _ = writeln!(out, "interconnect_bytes {}", p.interconnect_bytes);
        let _ = writeln!(out, "frontend_bytes {}", p.frontend_bytes);
        let _ = writeln!(out, "nodes {}", p.nodes);
        let _ = writeln!(out, "tags {}", p.cpu_busy_by_tag.len());
        for (tag, d) in &p.cpu_busy_by_tag {
            // Nanoseconds first: the tag is the rest of the line, so
            // names with spaces survive the round trip.
            let _ = writeln!(out, "tag {} {}", d.as_nanos(), tag);
        }
        let _ = writeln!(out, "resources {}", p.resources.len());
        for u in &p.resources {
            let _ = writeln!(
                out,
                "res {} {} {} {}",
                u.resource.key(),
                u.busy.as_nanos(),
                u.wait.as_nanos(),
                u.lanes
            );
        }
    }
    out
}

/// Reads lines of the cache format, enforcing the expected field order.
struct CacheLines<'a> {
    lines: std::str::Lines<'a>,
}

impl<'a> CacheLines<'a> {
    /// The value of the next line, which must start with `key `.
    fn field(&mut self, key: &str) -> Result<&'a str, String> {
        let line = self
            .lines
            .next()
            .ok_or_else(|| format!("missing `{key}` line"))?;
        line.strip_prefix(key)
            .and_then(|rest| rest.strip_prefix(' '))
            .ok_or_else(|| format!("expected `{key} ...`, got `{line}`"))
    }

    /// The next `key`-line value parsed as a number.
    fn num<T: std::str::FromStr>(&mut self, key: &str) -> Result<T, String> {
        self.field(key)?
            .trim()
            .parse()
            .map_err(|_| format!("bad number in `{key}` line"))
    }
}

/// Parses the output of [`report_to_cache`] back into a [`Report`].
///
/// Strict: any missing, reordered, malformed, or trailing line is an
/// error, so a corrupt or stale on-disk cache entry is rejected rather
/// than silently misread.
pub fn report_from_cache(text: &str) -> Result<Report, String> {
    let mut p = CacheLines {
        lines: text.lines(),
    };
    let task = intern(p.field("task")?);
    let architecture = intern(p.field("arch")?);
    let disks: usize = p.num("disks")?;
    let events: u64 = p.num("events")?;
    let faults_injected: u64 = p.num("faults_injected")?;
    let recovery_time = Duration::from_nanos(p.num("recovery_ns")?);
    let work_redistributed: u64 = p.num("work_redistributed")?;
    let aborted = match p.num::<u8>("aborted")? {
        0 => false,
        1 => true,
        other => return Err(format!("aborted: expected 0 or 1, got {other}")),
    };
    let downtime = Duration::from_nanos(p.num("downtime_ns")?);
    let total = Duration::from_nanos(p.num("hist_total_ns")?);
    let max = Duration::from_nanos(p.num("hist_max_ns")?);
    let mut buckets = [0u64; 64];
    let mut counts = p.field("hist_buckets")?.split_whitespace();
    for b in buckets.iter_mut() {
        *b = counts
            .next()
            .ok_or("hist_buckets: expected 64 counts")?
            .parse()
            .map_err(|_| "hist_buckets: bad count".to_string())?;
    }
    if counts.next().is_some() {
        return Err("hist_buckets: more than 64 counts".into());
    }
    let disk_service = Histogram::from_raw(buckets, total, max);
    let nphases: usize = p.num("phases")?;
    let mut phases = Vec::with_capacity(nphases);
    for _ in 0..nphases {
        let name = intern(p.field("phase")?);
        let elapsed = Duration::from_nanos(p.num("elapsed_ns")?);
        let cpu_busy_total = Duration::from_nanos(p.num("cpu_busy_ns")?);
        let disk_busy_total = Duration::from_nanos(p.num("disk_busy_ns")?);
        let interconnect_bytes: u64 = p.num("interconnect_bytes")?;
        let frontend_bytes: u64 = p.num("frontend_bytes")?;
        let nodes: usize = p.num("nodes")?;
        let ntags: usize = p.num("tags")?;
        let mut cpu_busy_by_tag = BTreeMap::new();
        for _ in 0..ntags {
            let rest = p.field("tag")?;
            let (ns, tag) = rest.split_once(' ').ok_or("tag: expected `<ns> <name>`")?;
            let ns: u64 = ns.parse().map_err(|_| "tag: bad nanoseconds".to_string())?;
            cpu_busy_by_tag.insert(intern(tag), Duration::from_nanos(ns));
        }
        let nres: usize = p.num("resources")?;
        let mut resources = Vec::with_capacity(nres);
        for _ in 0..nres {
            let rest = p.field("res")?;
            let mut parts = rest.split_whitespace();
            let key = parts.next().ok_or("res: missing resource key")?;
            let resource =
                Resource::from_key(key).ok_or_else(|| format!("res: unknown resource `{key}`"))?;
            let busy = Duration::from_nanos(
                parts
                    .next()
                    .ok_or("res: missing busy time")?
                    .parse()
                    .map_err(|_| "res: bad busy time".to_string())?,
            );
            let wait = Duration::from_nanos(
                parts
                    .next()
                    .ok_or("res: missing wait time")?
                    .parse()
                    .map_err(|_| "res: bad wait time".to_string())?,
            );
            let lanes: u32 = parts
                .next()
                .ok_or("res: missing lanes")?
                .parse()
                .map_err(|_| "res: bad lanes".to_string())?;
            resources.push(ResourceUsage {
                resource,
                busy,
                wait,
                lanes,
            });
        }
        phases.push(PhaseReport {
            name,
            elapsed,
            cpu_busy_by_tag,
            cpu_busy_total,
            disk_busy_total,
            interconnect_bytes,
            frontend_bytes,
            nodes,
            resources,
        });
    }
    if let Some(extra) = p.lines.next() {
        return Err(format!("trailing data after last phase: `{extra}`"));
    }
    Ok(Report {
        task,
        architecture,
        disks,
        phases,
        disk_service,
        events,
        faults_injected,
        recovery_time,
        work_redistributed,
        aborted,
        downtime,
    })
}

/// Load-manifest schema identifier (the loaded-run counterpart of
/// [`SCHEMA`]), bumped on breaking layout changes.
pub const LOAD_SCHEMA: &str = "howsim-load-manifest/v1";

/// Serializes a [`LoadReport`] to the compact line-based format used by
/// the result cache. Every field is an exact integer or a verbatim
/// string — no floats — so the round trip through
/// [`load_report_from_cache`] is field-identical.
pub fn load_report_to_cache(report: &LoadReport) -> String {
    let mut out = String::with_capacity(1024);
    let _ = writeln!(out, "arch {}", report.architecture);
    let _ = writeln!(out, "disks {}", report.disks);
    let _ = writeln!(out, "workload {}", report.workload);
    let _ = writeln!(out, "admission {}", report.admission);
    let _ = writeln!(out, "deadline {}", report.deadline);
    let _ = writeln!(out, "elapsed_ns {}", report.elapsed.as_nanos());
    let _ = writeln!(out, "events {}", report.events);
    let _ = writeln!(out, "faults_injected {}", report.faults_injected);
    let _ = writeln!(out, "work_redistributed {}", report.work_redistributed);
    let _ = writeln!(out, "downtime_ns {}", report.downtime.as_nanos());
    let _ = writeln!(out, "queries {}", report.outcomes.len());
    for o in &report.outcomes {
        let _ = writeln!(out, "query {}", o.query);
        let _ = writeln!(out, "qtask {}", o.task.name());
        let _ = writeln!(out, "status {}", o.status.name());
        let _ = writeln!(out, "arrival_ns {}", o.arrival.as_nanos());
        match o.started {
            Some(t) => {
                let _ = writeln!(out, "started_ns {}", t.as_nanos());
            }
            None => out.push_str("started_ns none\n"),
        }
        let _ = writeln!(out, "finished_ns {}", o.finished.as_nanos());
        let _ = writeln!(out, "retries {}", o.retries);
        let _ = writeln!(out, "timeouts {}", o.timeouts);
        let _ = writeln!(out, "qevents {}", o.events);
        let _ = writeln!(out, "qphases {}", o.phases.len());
        for p in &o.phases {
            // Nanoseconds first: the name is the rest of the line.
            let _ = writeln!(out, "qphase {} {}", p.elapsed.as_nanos(), p.name);
        }
    }
    out
}

/// Parses the output of [`load_report_to_cache`] back into a
/// [`LoadReport`]. Strict, like [`report_from_cache`]: any malformed or
/// trailing line rejects the entry.
pub fn load_report_from_cache(text: &str) -> Result<LoadReport, String> {
    let mut p = CacheLines {
        lines: text.lines(),
    };
    let architecture = intern(p.field("arch")?);
    let disks: usize = p.num("disks")?;
    let workload = p.field("workload")?.to_string();
    let admission = p.field("admission")?.to_string();
    let deadline = p.field("deadline")?.to_string();
    let elapsed = Duration::from_nanos(p.num("elapsed_ns")?);
    let events: u64 = p.num("events")?;
    let faults_injected: u64 = p.num("faults_injected")?;
    let work_redistributed: u64 = p.num("work_redistributed")?;
    let downtime = Duration::from_nanos(p.num("downtime_ns")?);
    let nqueries: usize = p.num("queries")?;
    let mut outcomes = Vec::with_capacity(nqueries);
    for _ in 0..nqueries {
        let query: u32 = p.num("query")?;
        let task_name = p.field("qtask")?;
        let task = *tasks::TaskKind::ALL
            .iter()
            .find(|k| k.name() == task_name)
            .ok_or_else(|| format!("qtask: unknown task `{task_name}`"))?;
        let status_name = p.field("status")?;
        let status = QueryStatus::parse(status_name)
            .ok_or_else(|| format!("status: unknown status `{status_name}`"))?;
        let arrival = simcore::SimTime::from_nanos(p.num("arrival_ns")?);
        let started = match p.field("started_ns")? {
            "none" => None,
            ns => Some(simcore::SimTime::from_nanos(
                ns.parse()
                    .map_err(|_| "started_ns: bad value".to_string())?,
            )),
        };
        let finished = simcore::SimTime::from_nanos(p.num("finished_ns")?);
        let retries: u32 = p.num("retries")?;
        let timeouts: u32 = p.num("timeouts")?;
        let qevents: u64 = p.num("qevents")?;
        let nphases: usize = p.num("qphases")?;
        let mut phases = Vec::with_capacity(nphases);
        for _ in 0..nphases {
            let rest = p.field("qphase")?;
            let (ns, name) = rest
                .split_once(' ')
                .ok_or("qphase: expected `<ns> <name>`")?;
            let ns: u64 = ns
                .parse()
                .map_err(|_| "qphase: bad nanoseconds".to_string())?;
            phases.push(QueryPhase {
                name: intern(name),
                elapsed: Duration::from_nanos(ns),
            });
        }
        outcomes.push(QueryOutcome {
            query,
            task,
            arrival,
            started,
            finished,
            status,
            retries,
            timeouts,
            phases,
            events: qevents,
        });
    }
    if let Some(extra) = p.lines.next() {
        return Err(format!("trailing data after last query: `{extra}`"));
    }
    Ok(LoadReport {
        architecture,
        disks,
        workload,
        admission,
        deadline,
        outcomes,
        elapsed,
        events,
        faults_injected,
        work_redistributed,
        downtime,
    })
}

/// Serializes a loaded run as deterministic JSON: config, aggregate load
/// statistics (percentiles, goodput, shed/timeout/retry counts), and the
/// per-query outcome table. No host section — the bytes are a pure
/// function of the report, so CI can diff them across worker counts and
/// queue backends.
pub fn load_manifest_json(report: &LoadReport, seed: u64, faults: &str, recovery: &str) -> String {
    let mut out = String::with_capacity(4096);
    out.push_str("{\n");
    kv_str(&mut out, 1, "schema", LOAD_SCHEMA, true);
    out.push_str("  \"config\": {\n");
    kv_str(&mut out, 2, "architecture", report.architecture, true);
    kv_raw(&mut out, 2, "disks", &report.disks.to_string(), true);
    kv_str(&mut out, 2, "workload", &report.workload, true);
    kv_str(&mut out, 2, "admission", &report.admission, true);
    kv_str(&mut out, 2, "deadline", &report.deadline, true);
    kv_raw(&mut out, 2, "seed", &seed.to_string(), true);
    kv_str(&mut out, 2, "faults", faults, true);
    kv_str(&mut out, 2, "recovery", recovery, false);
    out.push_str("  },\n");
    out.push_str("  \"load\": {\n");
    kv_raw(
        &mut out,
        2,
        "queries",
        &report.outcomes.len().to_string(),
        true,
    );
    kv_raw(
        &mut out,
        2,
        "completed",
        &report.completed().to_string(),
        true,
    );
    kv_raw(&mut out, 2, "shed", &report.shed().to_string(), true);
    kv_raw(
        &mut out,
        2,
        "timed_out",
        &report.timed_out().to_string(),
        true,
    );
    kv_raw(&mut out, 2, "aborted", &report.aborted().to_string(), true);
    kv_raw(&mut out, 2, "retries", &report.retries().to_string(), true);
    kv_raw(
        &mut out,
        2,
        "timeouts",
        &report.timeouts().to_string(),
        true,
    );
    for (key, p) in [("p50_ns", 50.0), ("p95_ns", 95.0), ("p99_ns", 99.0)] {
        let v = report
            .latency_percentile(p)
            .map_or("null".to_string(), |d| d.as_nanos().to_string());
        kv_raw(&mut out, 2, key, &v, true);
    }
    kv_raw(
        &mut out,
        2,
        "goodput_qps",
        &format!("{:.6}", report.goodput_qps()),
        true,
    );
    kv_raw(
        &mut out,
        2,
        "elapsed_ns",
        &report.elapsed.as_nanos().to_string(),
        true,
    );
    kv_raw(&mut out, 2, "events", &report.events.to_string(), true);
    kv_raw(
        &mut out,
        2,
        "faults_injected",
        &report.faults_injected.to_string(),
        true,
    );
    kv_raw(
        &mut out,
        2,
        "work_redistributed",
        &report.work_redistributed.to_string(),
        true,
    );
    kv_raw(
        &mut out,
        2,
        "downtime_ns",
        &report.downtime.as_nanos().to_string(),
        false,
    );
    out.push_str("  },\n");
    out.push_str("  \"queries\": [\n");
    let n = report.outcomes.len();
    for (ix, o) in report.outcomes.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"query\": {}, \"task\": {}, \"status\": {}, \
             \"arrival_ns\": {}, \"started_ns\": {}, \"finished_ns\": {}, \
             \"latency_ns\": {}, \"retries\": {}, \"timeouts\": {}, \
             \"events\": {}, \"phases\": [",
            o.query,
            json_string(o.task.name()),
            json_string(o.status.name()),
            o.arrival.as_nanos(),
            o.started
                .map_or("null".to_string(), |t| t.as_nanos().to_string()),
            o.finished.as_nanos(),
            o.latency().as_nanos(),
            o.retries,
            o.timeouts,
            o.events,
        );
        for (jx, ph) in o.phases.iter().enumerate() {
            let _ = write!(
                out,
                "{}{{\"name\": {}, \"elapsed_ns\": {}}}",
                if jx > 0 { ", " } else { "" },
                json_string(ph.name),
                ph.elapsed.as_nanos()
            );
        }
        out.push_str("]}");
        out.push_str(if ix + 1 < n { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

/// The repository's short git revision, or `"unknown"` outside a
/// checkout (or without git on PATH).
pub fn git_revision() -> String {
    Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::Simulation;
    use tasks::TaskKind;

    #[test]
    fn fnv_hash_is_stable() {
        // Reference vectors for FNV-1a 64.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn json_string_escapes_specials() {
        assert_eq!(json_string("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn manifest_json_is_deterministic_and_structured() {
        let arch = Architecture::smp(4);
        let r1 = Simulation::new(arch.clone()).run(TaskKind::Select);
        let r2 = Simulation::new(arch.clone()).run(TaskKind::Select);
        let m1 = RunManifest::new(&arch, &r1).to_json();
        let m2 = RunManifest::new(&arch, &r2).to_json();
        assert_eq!(m1, m2, "same config + seed must yield identical bytes");
        assert!(m1.contains("\"schema\": \"howsim-manifest/v1\""));
        assert!(m1.contains("\"architecture\": \"SMP\""));
        assert!(m1.contains("\"bottleneck\": \""));
        assert!(m1.contains("\"host\": null"));
        assert!(m1.contains("\"series\": null"));
    }

    #[test]
    fn host_and_trace_sections_render_when_attached() {
        let arch = Architecture::active_disks(2);
        let report = Simulation::new(arch.clone()).run(TaskKind::Select);
        let (_, trace) = Simulation::new(arch.clone()).run_traced(TaskKind::Select);
        let json = RunManifest::new(&arch, &report)
            .with_seed(7)
            .with_trace(trace.summary())
            .with_host(HostInfo {
                generated_unix_ms: 1_700_000_000_000,
                wall_seconds: 0.5,
                events_per_sec: 1e6,
            })
            .to_json();
        assert!(json.contains("\"seed\": 7"));
        assert!(json.contains("\"trace\": {\"total\":"));
        assert!(json.contains("\"generated_unix_ms\": 1700000000000"));
    }

    #[test]
    fn report_cache_round_trip_is_field_identical() {
        let arch = Architecture::active_disks(4);
        let fresh = Simulation::new(arch).run(TaskKind::Sort);
        let text = report_to_cache(&fresh);
        let back = report_from_cache(&text).expect("well-formed cache text");
        assert_eq!(back, fresh, "round trip must preserve every field");
        assert_eq!(report_to_cache(&back), text, "serialization is stable");
    }

    #[test]
    fn report_cache_rejects_malformed_input() {
        assert!(report_from_cache("").is_err());
        assert!(report_from_cache("task x\n").is_err());
        let arch = Architecture::smp(2);
        let fresh = Simulation::new(arch).run(TaskKind::Select);
        let text = report_to_cache(&fresh);
        assert!(report_from_cache(&text[..text.len() / 2]).is_err());
        assert!(report_from_cache(&format!("{text}junk trailing\n")).is_err());
    }

    #[test]
    fn intern_is_idempotent_and_content_equal() {
        let a = intern("some-phase-name");
        let b = intern("some-phase-name");
        assert_eq!(a, "some-phase-name");
        assert!(std::ptr::eq(a, b), "same name interns to the same pointer");
    }

    #[test]
    fn config_hash_distinguishes_configs() {
        let a = Architecture::smp(4);
        let b = Architecture::smp(8);
        let ra = Simulation::new(a.clone()).run(TaskKind::Select);
        let rb = Simulation::new(b.clone()).run(TaskKind::Select);
        let ma = RunManifest::new(&a, &ra);
        let mb = RunManifest::new(&b, &rb);
        assert_ne!(ma.config_hash, mb.config_hash);
    }
}
