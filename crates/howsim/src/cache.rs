//! Content-addressed simulation result cache.
//!
//! Every simulation is a pure function of `(architecture, plan,
//! degraded-disk set, seed, fault plan, recovery policy)`, so its
//! [`Report`] can be memoized. The cache key is that tuple's canonical
//! representation, content-addressed by the same FNV-1a hash the run
//! manifests use ([`crate::manifest::fnv1a64`]); the full key material
//! is stored alongside each entry and verified on lookup, so a hash
//! collision can never return the wrong report.
//!
//! Two tiers:
//!
//! * **In-memory** (always available, on by default): a process-wide
//!   map, so overlapping points across figure sweeps in one
//!   `experiments` invocation simulate once.
//! * **On-disk** (opt-in via [`set_disk_dir`], `--cache` in the
//!   binaries): entries under `results/.simcache/` persist across
//!   invocations. Files are written atomically (temp file + rename) and
//!   carry an FNV-1a checksum over their payload; any unreadable,
//!   truncated, bit-flipped, or colliding entry is treated as a miss.
//!   Wipe the cache by deleting the directory.
//!
//! Because cached reports are bit-identical to fresh ones (exact integer
//! serialization, no floats — see [`crate::manifest::report_to_cache`])
//! and [`run_plans`] dispatches misses through the deterministic
//! [`crate::sweep`] engine, cache-on and cache-off outputs are
//! byte-identical for any worker count. The event-queue backend is
//! deliberately *not* part of the key: every backend produces identical
//! reports (enforced by test), so they share entries.

use std::collections::HashMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::{Mutex, OnceLock};

use arch::Architecture;
use simcore::SimTime;
use tasks::{plan_task, TaskKind, TaskPlan};

use crate::checkpoint;
use crate::exec::{ExecRun, Simulation};
use crate::faults::{FaultPlan, RecoveryPolicy};
use crate::manifest::{
    fnv1a64, load_report_from_cache, load_report_to_cache, report_from_cache, report_to_cache,
};
use crate::mqexec::LoadReport;
use crate::report::Report;
use crate::sweep;
use crate::workload::{AdmissionPolicy, DeadlinePolicy, WorkloadSpec};

/// On-disk entry schema identifier, bumped on breaking layout changes
/// (v2 added the checksum line and the seed/fault-plan key fields; v3
/// added per-resource wait time to the report `res` lines, so v2
/// entries no longer parse and read as misses).
pub const SCHEMA: &str = "howsim-simcache/v3";

/// On-disk schema for loaded-run entries (`.load` files). Separate from
/// [`SCHEMA`] because [`crate::LoadReport`] has its own layout.
pub const LOAD_SCHEMA: &str = "howsim-loadcache/v1";

/// Lifetime hit/miss counters for the process-wide cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups served without simulating (including points deduplicated
    /// within one [`run_plans`] batch).
    pub hits: u64,
    /// Lookups that had to simulate.
    pub misses: u64,
    /// The subset of `hits` that came from the on-disk tier.
    pub disk_hits: u64,
}

struct CacheState {
    enabled: bool,
    disk_dir: Option<PathBuf>,
    /// Hash → entries; a `Vec` per hash so verified key material, not
    /// the hash, decides equality.
    entries: HashMap<u64, Vec<(String, Report)>>,
    /// Loaded-run tier, same collision discipline.
    load_entries: HashMap<u64, Vec<(String, LoadReport)>>,
    stats: CacheStats,
}

fn state() -> &'static Mutex<CacheState> {
    static STATE: OnceLock<Mutex<CacheState>> = OnceLock::new();
    STATE.get_or_init(|| {
        Mutex::new(CacheState {
            enabled: true,
            disk_dir: None,
            entries: HashMap::new(),
            load_entries: HashMap::new(),
            stats: CacheStats::default(),
        })
    })
}

fn lock() -> std::sync::MutexGuard<'static, CacheState> {
    state().lock().expect("cache lock")
}

/// Enables or disables the cache process-wide (`--no-cache` sets false).
/// Disabled, every `run_*` call simulates directly and no stats move.
pub fn set_enabled(on: bool) {
    lock().enabled = on;
}

/// Whether the cache is consulted at all.
pub fn enabled() -> bool {
    lock().enabled
}

/// Sets the on-disk tier directory (`None` keeps the cache
/// memory-only). The binaries' `--cache` flag passes
/// [`default_disk_dir`].
pub fn set_disk_dir(dir: Option<PathBuf>) {
    lock().disk_dir = dir;
}

/// The on-disk tier directory, if one is configured.
pub fn disk_dir() -> Option<PathBuf> {
    lock().disk_dir.clone()
}

/// The conventional on-disk cache location, next to the experiment CSVs.
pub fn default_disk_dir() -> PathBuf {
    PathBuf::from("results/.simcache")
}

/// Drops every in-memory entry (the on-disk tier is untouched).
pub fn clear() {
    let mut st = lock();
    st.entries.clear();
    st.load_entries.clear();
}

/// Lifetime hit/miss counters.
pub fn stats() -> CacheStats {
    lock().stats
}

/// Zeroes the hit/miss counters.
pub fn reset_stats() {
    lock().stats = CacheStats::default();
}

/// The full cache key for one simulation: every input the result depends
/// on, in canonical representation. Hashed with FNV-1a for addressing and
/// stored verbatim for collision-proof verification.
pub fn key_material(
    arch: &Architecture,
    plan: &TaskPlan,
    degraded: &[(usize, u64)],
    seed: u64,
    faults: &FaultPlan,
    recovery: RecoveryPolicy,
) -> String {
    format!(
        "arch={arch:?} | plan={plan:?} | degraded={degraded:?} | seed={seed} | faults={} | recovery={}",
        faults.summary(),
        recovery.name(),
    )
}

fn entry_path(dir: &Path, hash: u64) -> PathBuf {
    dir.join(format!("{hash:016x}.report"))
}

fn disk_load(dir: &Path, hash: u64, key: &str) -> Option<Report> {
    let text = fs::read_to_string(entry_path(dir, hash)).ok()?;
    let mut sections = text.splitn(3, '\n');
    if sections.next()? != SCHEMA {
        return None;
    }
    let sum = u64::from_str_radix(sections.next()?.strip_prefix("sum ")?, 16).ok()?;
    let payload = sections.next()?;
    if fnv1a64(payload.as_bytes()) != sum {
        return None; // truncated or bit-flipped entry
    }
    let (key_line, body) = payload.split_once('\n')?;
    if key_line.strip_prefix("key ")? != key {
        return None; // hash collision with a different config
    }
    report_from_cache(body).ok()
}

fn disk_store(dir: &Path, hash: u64, key: &str, report: &Report) -> std::io::Result<()> {
    fs::create_dir_all(dir)?;
    // Atomic publish: concurrent processes may race on the same entry,
    // but each rename installs a complete, verified file.
    let tmp = dir.join(format!(".tmp-{:016x}-{}", hash, std::process::id()));
    let payload = format!("key {key}\n{}", report_to_cache(report));
    let sum = fnv1a64(payload.as_bytes());
    fs::write(&tmp, format!("{SCHEMA}\nsum {sum:016x}\n{payload}"))?;
    fs::rename(&tmp, entry_path(dir, hash))
}

/// Looks `key` up in both tiers, counting one hit or one miss.
fn probe(key: &str) -> Option<Report> {
    let hash = fnv1a64(key.as_bytes());
    let disk = {
        let mut st = lock();
        if let Some(found) = st
            .entries
            .get(&hash)
            .and_then(|entries| entries.iter().find(|(k, _)| k == key))
            .map(|(_, r)| r.clone())
        {
            st.stats.hits += 1;
            return Some(found);
        }
        st.disk_dir.clone()
    };
    if let Some(dir) = disk {
        // File I/O happens outside the lock.
        if let Some(report) = disk_load(&dir, hash, key) {
            let mut st = lock();
            st.stats.hits += 1;
            st.stats.disk_hits += 1;
            let entries = st.entries.entry(hash).or_default();
            if !entries.iter().any(|(k, _)| k == key) {
                entries.push((key.to_string(), report.clone()));
            }
            return Some(report);
        }
    }
    lock().stats.misses += 1;
    None
}

/// Records a freshly simulated report under `key` in both tiers.
fn insert(key: &str, report: Report) {
    let hash = fnv1a64(key.as_bytes());
    let disk = {
        let mut st = lock();
        let entries = st.entries.entry(hash).or_default();
        if !entries.iter().any(|(k, _)| k == key) {
            entries.push((key.to_string(), report.clone()));
        }
        st.disk_dir.clone()
    };
    if let Some(dir) = disk {
        // Best effort: a full disk or unwritable directory degrades to
        // memory-only caching rather than failing the sweep.
        let _ = disk_store(&dir, hash, key, &report);
    }
}

/// Plans and runs `task` on `arch` through the cache.
pub fn run(arch: &Architecture, task: TaskKind) -> Report {
    run_sim(&Simulation::new(arch.clone()), &plan_task(task, arch))
}

/// Runs an explicit plan on `arch` through the cache.
pub fn run_plan(arch: &Architecture, plan: &TaskPlan) -> Report {
    run_sim(&Simulation::new(arch.clone()), plan)
}

/// The cache key for a configured [`Simulation`] and plan.
fn sim_key(sim: &Simulation, plan: &TaskPlan) -> String {
    key_material(
        sim.architecture(),
        plan,
        sim.degraded_disks(),
        sim.seed(),
        sim.fault_plan(),
        sim.recovery_policy(),
    )
}

/// Looks up one configured simulation's report without simulating on a
/// miss. The availability fork path uses this to serve cached fault
/// scenarios before paying for a shared prefix re-run; pairing it with
/// [`insert_sim`] keeps cache-on and cache-off outputs byte-identical.
pub fn probe_sim(sim: &Simulation, plan: &TaskPlan) -> Option<Report> {
    if !enabled() {
        return None;
    }
    probe(&sim_key(sim, plan))
}

/// Records an externally computed report (e.g. a forked continuation's)
/// under the same key [`run_sim`] would use.
pub fn insert_sim(sim: &Simulation, plan: &TaskPlan, report: &Report) {
    if !enabled() {
        return;
    }
    insert(&sim_key(sim, plan), report.clone());
}

/// Runs `plan` on a configured [`Simulation`] through the cache (the
/// degraded-disk set, seed, fault plan, and recovery policy all
/// participate in the key).
pub fn run_sim(sim: &Simulation, plan: &TaskPlan) -> Report {
    if !enabled() {
        return sim.run_plan(plan);
    }
    let key = sim_key(sim, plan);
    if let Some(report) = probe(&key) {
        return report;
    }
    let report = sim.run_plan(plan);
    insert(&key, report.clone());
    report
}

/// Batch variant of [`run`]: plans every point and delegates to
/// [`run_plans`].
pub fn run_tasks(points: &[(Architecture, TaskKind)]) -> Vec<Report> {
    let plans: Vec<(Architecture, TaskPlan)> = points
        .iter()
        .map(|(arch, task)| (arch.clone(), plan_task(*task, arch)))
        .collect();
    run_plans(&plans)
}

/// Runs a batch of sweep points, deduplicating before dispatch: cached
/// points are served immediately, duplicate uncached points simulate
/// once (the copies count as hits), and the unique misses go through
/// [`sweep::map`] in parallel. Results come back in point order, so the
/// output is byte-identical to mapping [`Simulation::run_plan`] over the
/// points directly.
pub fn run_plans(points: &[(Architecture, TaskPlan)]) -> Vec<Report> {
    let sims: Vec<(Simulation, TaskPlan)> = points
        .iter()
        .map(|(arch, plan)| (Simulation::new(arch.clone()), plan.clone()))
        .collect();
    run_sims(&sims)
}

/// Runs a batch of fully configured simulations (degraded disks, seeds,
/// fault plans and all) through the cache with the same deduplication and
/// deterministic parallel dispatch as [`run_plans`].
pub fn run_sims(points: &[(Simulation, TaskPlan)]) -> Vec<Report> {
    if !enabled() {
        return sweep::map(points, |(sim, plan)| sim.run_plan(plan));
    }
    enum Slot {
        Ready(Box<Report>),
        Fresh(usize),
    }
    let keys: Vec<String> = points
        .iter()
        .map(|(sim, plan)| sim_key(sim, plan))
        .collect();
    let mut first_job: HashMap<&str, usize> = HashMap::new();
    let mut jobs: Vec<usize> = Vec::new();
    let mut slots: Vec<Slot> = Vec::with_capacity(points.len());
    for (ix, key) in keys.iter().enumerate() {
        if let Some(report) = probe(key) {
            slots.push(Slot::Ready(Box::new(report)));
        } else if let Some(&job) = first_job.get(key.as_str()) {
            // Deduplicated within this batch: served without simulating.
            let mut st = lock();
            st.stats.hits += 1;
            st.stats.misses -= 1; // probe above counted it as a miss
            drop(st);
            slots.push(Slot::Fresh(job));
        } else {
            first_job.insert(key, jobs.len());
            slots.push(Slot::Fresh(jobs.len()));
            jobs.push(ix);
        }
    }
    let fresh: Vec<Report> = sweep::map(&jobs, |&ix| {
        let (sim, plan) = &points[ix];
        sim.run_plan(plan)
    });
    for (&ix, report) in jobs.iter().zip(&fresh) {
        insert(&keys[ix], report.clone());
    }
    slots
        .into_iter()
        .map(|slot| match slot {
            Slot::Ready(report) => *report,
            Slot::Fresh(job) => fresh[job].clone(),
        })
        .collect()
}

/// The full cache key for one loaded run: the single-query key inputs
/// minus the plan (the workload enumerates its tasks) plus the workload,
/// admission, and deadline specs — so two load scenarios can never alias
/// to one entry.
pub fn load_key_material(
    sim: &Simulation,
    workload: &WorkloadSpec,
    admission: AdmissionPolicy,
    deadline: DeadlinePolicy,
) -> String {
    format!(
        "arch={:?} | degraded={:?} | seed={} | faults={} | recovery={} | workload={} | admission={} | deadline={}",
        sim.architecture(),
        sim.degraded_disks(),
        sim.seed(),
        sim.fault_plan().summary(),
        sim.recovery_policy().name(),
        workload.summary(),
        admission.summary(),
        deadline.summary(),
    )
}

fn load_entry_path(dir: &Path, hash: u64) -> PathBuf {
    dir.join(format!("{hash:016x}.load"))
}

fn disk_load_report(dir: &Path, hash: u64, key: &str) -> Option<LoadReport> {
    let text = fs::read_to_string(load_entry_path(dir, hash)).ok()?;
    let mut sections = text.splitn(3, '\n');
    if sections.next()? != LOAD_SCHEMA {
        return None;
    }
    let sum = u64::from_str_radix(sections.next()?.strip_prefix("sum ")?, 16).ok()?;
    let payload = sections.next()?;
    if fnv1a64(payload.as_bytes()) != sum {
        return None;
    }
    let (key_line, body) = payload.split_once('\n')?;
    if key_line.strip_prefix("key ")? != key {
        return None;
    }
    load_report_from_cache(body).ok()
}

fn disk_store_load(dir: &Path, hash: u64, key: &str, report: &LoadReport) -> std::io::Result<()> {
    fs::create_dir_all(dir)?;
    let tmp = dir.join(format!(".ltmp-{:016x}-{}", hash, std::process::id()));
    let payload = format!("key {key}\n{}", load_report_to_cache(report));
    let sum = fnv1a64(payload.as_bytes());
    fs::write(&tmp, format!("{LOAD_SCHEMA}\nsum {sum:016x}\n{payload}"))?;
    fs::rename(&tmp, load_entry_path(dir, hash))
}

fn probe_load(key: &str) -> Option<LoadReport> {
    let hash = fnv1a64(key.as_bytes());
    let disk = {
        let mut st = lock();
        if let Some(found) = st
            .load_entries
            .get(&hash)
            .and_then(|entries| entries.iter().find(|(k, _)| k == key))
            .map(|(_, r)| r.clone())
        {
            st.stats.hits += 1;
            return Some(found);
        }
        st.disk_dir.clone()
    };
    if let Some(dir) = disk {
        if let Some(report) = disk_load_report(&dir, hash, key) {
            let mut st = lock();
            st.stats.hits += 1;
            st.stats.disk_hits += 1;
            let entries = st.load_entries.entry(hash).or_default();
            if !entries.iter().any(|(k, _)| k == key) {
                entries.push((key.to_string(), report.clone()));
            }
            return Some(report);
        }
    }
    lock().stats.misses += 1;
    None
}

fn insert_load(key: &str, report: LoadReport) {
    let hash = fnv1a64(key.as_bytes());
    let disk = {
        let mut st = lock();
        let entries = st.load_entries.entry(hash).or_default();
        if !entries.iter().any(|(k, _)| k == key) {
            entries.push((key.to_string(), report.clone()));
        }
        st.disk_dir.clone()
    };
    if let Some(dir) = disk {
        let _ = disk_store_load(&dir, hash, key, &report);
    }
}

/// Looks up a cached [`LoadReport`] for one load scenario without
/// simulating on a miss. The warm-start load sweep uses this to serve
/// hits before forking misses off a shared warm prefix; pairing it with
/// [`insert_workload`] keeps cache-on and cache-off outputs
/// byte-identical.
pub fn probe_workload(
    sim: &Simulation,
    workload: &WorkloadSpec,
    admission: AdmissionPolicy,
    deadline: DeadlinePolicy,
) -> Option<LoadReport> {
    if !enabled() {
        return None;
    }
    probe_load(&load_key_material(sim, workload, admission, deadline))
}

/// Records an externally computed [`LoadReport`] (e.g. a warm-start
/// continuation's) under the same key [`run_workload`] would use.
pub fn insert_workload(
    sim: &Simulation,
    workload: &WorkloadSpec,
    admission: AdmissionPolicy,
    deadline: DeadlinePolicy,
    report: &LoadReport,
) {
    if !enabled() {
        return;
    }
    let key = load_key_material(sim, workload, admission, deadline);
    insert_load(&key, report.clone());
}

/// The cache key for a warm-start composite run (a warmup segment run
/// to idle, then `measured` grafted on via [`crate::WarmStart::extend`]):
/// the measured-load key plus the warmup spec, so a composite run can
/// never alias a plain [`run_workload`] entry or a composite with a
/// different ramp-up.
pub fn warm_key_material(
    sim: &Simulation,
    warmup: &WorkloadSpec,
    measured: &WorkloadSpec,
    admission: AdmissionPolicy,
    deadline: DeadlinePolicy,
) -> String {
    format!(
        "{} | warmup={}",
        load_key_material(sim, measured, admission, deadline),
        warmup.summary(),
    )
}

/// Looks up a cached warm-start composite report (see
/// [`warm_key_material`]) without simulating on a miss.
pub fn probe_warm_workload(
    sim: &Simulation,
    warmup: &WorkloadSpec,
    measured: &WorkloadSpec,
    admission: AdmissionPolicy,
    deadline: DeadlinePolicy,
) -> Option<LoadReport> {
    if !enabled() {
        return None;
    }
    probe_load(&warm_key_material(
        sim, warmup, measured, admission, deadline,
    ))
}

/// Records a warm-start composite report under its composite key.
pub fn insert_warm_workload(
    sim: &Simulation,
    warmup: &WorkloadSpec,
    measured: &WorkloadSpec,
    admission: AdmissionPolicy,
    deadline: DeadlinePolicy,
    report: &LoadReport,
) {
    if !enabled() {
        return;
    }
    let key = warm_key_material(sim, warmup, measured, admission, deadline);
    insert_load(&key, report.clone());
}

/// Stores a paused run in the `.ckpt` tier of the configured on-disk
/// cache directory (a no-op returning `None` when the cache is off or
/// memory-only — checkpoints have no in-memory tier because they borrow
/// their plan). Returns the entry path on success.
pub fn store_checkpoint(
    sim: &Simulation,
    plan: &TaskPlan,
    at: SimTime,
    run: &ExecRun<'_>,
) -> Option<PathBuf> {
    if !enabled() {
        return None;
    }
    let dir = disk_dir()?;
    // Best effort, like `disk_store`: an unwritable directory degrades
    // to re-simulating the prefix rather than failing the run.
    checkpoint::store(&dir, sim, plan, at, run).ok()
}

/// Looks up the `.ckpt` tier for a run paused at `at` and rebuilds it
/// under `sim`'s queue backend. Counts a disk hit or a miss; corrupt or
/// mismatched entries are clean misses.
pub fn probe_checkpoint<'p>(
    sim: &Simulation,
    plan: &'p TaskPlan,
    at: SimTime,
) -> Option<ExecRun<'p>> {
    if !enabled() {
        return None;
    }
    let dir = disk_dir()?;
    match checkpoint::probe(&dir, sim, plan, at) {
        Some(run) => {
            let mut st = lock();
            st.stats.hits += 1;
            st.stats.disk_hits += 1;
            Some(run)
        }
        None => {
            lock().stats.misses += 1;
            None
        }
    }
}

/// Runs a multi-query workload through the cache. The key covers the
/// workload, admission, and deadline specs on top of the simulation
/// config, and cached reports round-trip bit-exactly (all-integer
/// serialization), so cache-on and cache-off outputs are byte-identical.
pub fn run_workload(
    sim: &Simulation,
    workload: &WorkloadSpec,
    admission: AdmissionPolicy,
    deadline: DeadlinePolicy,
) -> LoadReport {
    if !enabled() {
        return sim.run_workload(workload, admission, deadline);
    }
    let key = load_key_material(sim, workload, admission, deadline);
    if let Some(report) = probe_load(&key) {
        return report;
    }
    let report = sim.run_workload(workload, admission, deadline);
    insert_load(&key, report.clone());
    report
}

/// Batch variant of [`run_workload`] with the same deduplication and
/// deterministic parallel dispatch as [`run_sims`].
pub fn run_workloads(
    points: &[(Simulation, WorkloadSpec, AdmissionPolicy, DeadlinePolicy)],
) -> Vec<LoadReport> {
    if !enabled() {
        return sweep::map(points, |(sim, w, adm, dl)| sim.run_workload(w, *adm, *dl));
    }
    enum Slot {
        Ready(Box<LoadReport>),
        Fresh(usize),
    }
    let keys: Vec<String> = points
        .iter()
        .map(|(sim, w, adm, dl)| load_key_material(sim, w, *adm, *dl))
        .collect();
    let mut first_job: HashMap<&str, usize> = HashMap::new();
    let mut jobs: Vec<usize> = Vec::new();
    let mut slots: Vec<Slot> = Vec::with_capacity(points.len());
    for (ix, key) in keys.iter().enumerate() {
        if let Some(report) = probe_load(key) {
            slots.push(Slot::Ready(Box::new(report)));
        } else if let Some(&job) = first_job.get(key.as_str()) {
            let mut st = lock();
            st.stats.hits += 1;
            st.stats.misses -= 1; // probe above counted it as a miss
            drop(st);
            slots.push(Slot::Fresh(job));
        } else {
            first_job.insert(key, jobs.len());
            slots.push(Slot::Fresh(jobs.len()));
            jobs.push(ix);
        }
    }
    let fresh: Vec<LoadReport> = sweep::map(&jobs, |&ix| {
        let (sim, w, adm, dl) = &points[ix];
        sim.run_workload(w, *adm, *dl)
    });
    for (&ix, report) in jobs.iter().zip(&fresh) {
        insert_load(&keys[ix], report.clone());
    }
    slots
        .into_iter()
        .map(|slot| match slot {
            Slot::Ready(report) => *report,
            Slot::Fresh(job) => fresh[job].clone(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Cache state is process-global; serialize the tests that mutate it.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn fresh_cache() -> std::sync::MutexGuard<'static, ()> {
        let guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_enabled(true);
        set_disk_dir(None);
        clear();
        reset_stats();
        guard
    }

    #[test]
    fn cached_report_is_field_identical_to_fresh() {
        let _guard = fresh_cache();
        let arch = Architecture::active_disks(4);
        let fresh = Simulation::new(arch.clone()).run(TaskKind::Select);
        let first = run(&arch, TaskKind::Select);
        let second = run(&arch, TaskKind::Select);
        assert_eq!(first, fresh);
        assert_eq!(second, fresh);
        let s = stats();
        assert_eq!((s.hits, s.misses, s.disk_hits), (1, 1, 0));
    }

    #[test]
    fn key_separates_configs_and_degraded_sets() {
        let _guard = fresh_cache();
        let arch = Architecture::cluster(2);
        let plan = plan_task(TaskKind::Select, &arch);
        let none = FaultPlan::new();
        let policy = RecoveryPolicy::default();
        let base = key_material(&arch, &plan, &[], 0, &none, policy);
        assert_ne!(
            base,
            key_material(&Architecture::cluster(4), &plan, &[], 0, &none, policy)
        );
        assert_ne!(
            base,
            key_material(&arch, &plan, &[(0, 50)], 0, &none, policy)
        );
        assert_ne!(base, key_material(&arch, &plan, &[], 1, &none, policy));
        let failing = FaultPlan::parse_spec("disk:0@1s").unwrap();
        assert_ne!(base, key_material(&arch, &plan, &[], 0, &failing, policy));
        assert_ne!(
            base,
            key_material(&arch, &plan, &[], 0, &none, RecoveryPolicy::FailStop)
        );
        let degraded = Simulation::new(arch.clone()).with_degraded_disk(0, 50);
        let plain = run_sim(&Simulation::new(arch), &plan);
        let slow = run_sim(&degraded, &plan);
        assert!(slow.elapsed() > plain.elapsed(), "degraded run not shared");
        assert_eq!(stats().misses, 2);
    }

    #[test]
    fn different_seeds_miss_each_other() {
        let _guard = fresh_cache();
        let arch = Architecture::active_disks(2);
        let plan = plan_task(TaskKind::Select, &arch);
        // Seed matters once faults draw randomized placements from it: two
        // seeds must never share an entry.
        let burst = FaultPlan::parse_spec("slow:0@0s:500").unwrap();
        let a = run_sim(
            &Simulation::new(arch.clone())
                .with_seed(1)
                .with_fault_plan(burst.clone()),
            &plan,
        );
        let b = run_sim(
            &Simulation::new(arch.clone())
                .with_seed(2)
                .with_fault_plan(burst.clone()),
            &plan,
        );
        assert_eq!(stats().misses, 2, "distinct seeds simulate separately");
        assert_eq!(stats().hits, 0);
        // Re-running seed 1 hits its own entry and reproduces its report.
        let a2 = run_sim(
            &Simulation::new(arch).with_seed(1).with_fault_plan(burst),
            &plan,
        );
        assert_eq!(a, a2);
        assert_eq!(stats().hits, 1);
        let _ = b;
    }

    #[test]
    fn fault_plan_and_policy_separate_entries() {
        let _guard = fresh_cache();
        let arch = Architecture::active_disks(4);
        let plan = plan_task(TaskKind::Select, &arch);
        let healthy = run_sim(&Simulation::new(arch.clone()), &plan);
        let failing = FaultPlan::parse_spec("disk:1@0.05s").unwrap();
        let redistributed = run_sim(
            &Simulation::new(arch.clone()).with_fault_plan(failing.clone()),
            &plan,
        );
        let aborted = run_sim(
            &Simulation::new(arch)
                .with_fault_plan(failing)
                .with_recovery(RecoveryPolicy::FailStop),
            &plan,
        );
        assert_eq!(stats().misses, 3, "three configs, three entries");
        assert!(!healthy.aborted);
        assert!(redistributed.elapsed() > healthy.elapsed());
        assert!(aborted.aborted);
    }

    #[test]
    fn batch_dedups_before_dispatch() {
        let _guard = fresh_cache();
        let arch = Architecture::smp(2);
        let points = vec![
            (arch.clone(), TaskKind::Select),
            (arch.clone(), TaskKind::Aggregate),
            (arch.clone(), TaskKind::Select), // duplicate of point 0
        ];
        let reports = run_tasks(&points);
        assert_eq!(reports.len(), 3);
        assert_eq!(reports[0], reports[2]);
        let s = stats();
        assert_eq!((s.hits, s.misses), (1, 2), "duplicate served from batch");
        // A second batch is all hits and byte-identical.
        let again = run_tasks(&points);
        assert_eq!(again, reports);
        assert_eq!(stats().hits, 4);
        assert_eq!(stats().misses, 2);
    }

    #[test]
    fn disabled_cache_simulates_directly() {
        let _guard = fresh_cache();
        set_enabled(false);
        let arch = Architecture::active_disks(2);
        let a = run(&arch, TaskKind::Select);
        let b = run(&arch, TaskKind::Select);
        assert_eq!(a, b);
        assert_eq!(stats(), CacheStats::default(), "no stats move when off");
        set_enabled(true);
    }

    #[test]
    fn disk_tier_round_trips_and_rejects_corruption() {
        let _guard = fresh_cache();
        let dir = std::env::temp_dir().join(format!("howsim-simcache-test-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        set_disk_dir(Some(dir.clone()));
        let arch = Architecture::cluster(4);
        let fresh = run(&arch, TaskKind::Sort);
        assert_eq!(stats().misses, 1);
        let entry = fs::read_dir(&dir).unwrap().next().unwrap().unwrap().path();
        assert!(entry.to_string_lossy().ends_with(".report"));

        // Drop the memory tier: the next lookup must come from disk.
        clear();
        let warm = run(&arch, TaskKind::Sort);
        assert_eq!(warm, fresh, "disk round trip is field-identical");
        let s = stats();
        assert_eq!((s.hits, s.disk_hits), (1, 1));

        // A corrupt entry is a miss, not an error or a wrong answer.
        clear();
        fs::write(&entry, "garbage\n").unwrap();
        let recomputed = run(&arch, TaskKind::Sort);
        assert_eq!(recomputed, fresh);
        assert_eq!(stats().misses, 2);

        set_disk_dir(None);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_and_bit_flipped_entries_are_misses() {
        let _guard = fresh_cache();
        let dir =
            std::env::temp_dir().join(format!("howsim-simcache-corrupt-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        set_disk_dir(Some(dir.clone()));
        let arch = Architecture::active_disks(4);
        let fresh = run(&arch, TaskKind::Select);
        let entry = fs::read_dir(&dir).unwrap().next().unwrap().unwrap().path();
        let intact = fs::read(&entry).unwrap();

        // Truncation (a crash mid-write on a non-atomic filesystem, or a
        // partial copy): checksum fails, entry is recomputed.
        clear();
        reset_stats();
        fs::write(&entry, &intact[..intact.len() / 2]).unwrap();
        assert_eq!(run(&arch, TaskKind::Select), fresh);
        let s = stats();
        assert_eq!((s.hits, s.misses), (0, 1), "truncated entry must miss");

        // A single flipped bit in the payload: checksum fails.
        clear();
        reset_stats();
        let mut flipped = intact.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0x01;
        fs::write(&entry, &flipped).unwrap();
        assert_eq!(run(&arch, TaskKind::Select), fresh);
        let s = stats();
        assert_eq!((s.hits, s.misses), (0, 1), "bit-flipped entry must miss");

        // The rewritten (intact) entry loads again.
        clear();
        reset_stats();
        assert_eq!(run(&arch, TaskKind::Select), fresh);
        let s = stats();
        assert_eq!((s.hits, s.disk_hits, s.misses), (1, 1, 0));

        set_disk_dir(None);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn two_load_specs_never_alias_one_entry() {
        let _guard = fresh_cache();
        let arch = Architecture::active_disks(2);
        let sim = Simulation::new(arch);
        let mix = vec![(TaskKind::Select, 1)];
        let a_spec = WorkloadSpec::poisson(0.05, 3).with_mix(mix.clone());
        let b_spec = WorkloadSpec::poisson(0.10, 3).with_mix(mix.clone());
        let adm = AdmissionPolicy::default();
        let dl = DeadlinePolicy::default();
        // Every dimension of the load scenario separates keys.
        let base = load_key_material(&sim, &a_spec, adm, dl);
        assert_ne!(base, load_key_material(&sim, &b_spec, adm, dl));
        assert_ne!(
            base,
            load_key_material(&sim, &a_spec.clone().with_seed(9), adm, dl)
        );
        assert_ne!(
            base,
            load_key_material(
                &sim,
                &a_spec,
                AdmissionPolicy {
                    max_concurrent: 1,
                    queue_limit: 0
                },
                dl
            )
        );
        assert_ne!(
            base,
            load_key_material(
                &sim,
                &a_spec,
                adm,
                DeadlinePolicy {
                    deadline: Some(simcore::Duration::from_secs(1)),
                    max_retries: 0,
                    backoff: simcore::Duration::from_secs(1)
                }
            )
        );
        // Two different arrival rates must simulate separately...
        let a = run_workload(&sim, &a_spec, adm, dl);
        let b = run_workload(&sim, &b_spec, adm, dl);
        assert_eq!(stats().misses, 2, "distinct load specs miss each other");
        assert_ne!(a, b, "different arrival schedules, different reports");
        // ...and re-running one hits its own entry bit-exactly.
        let a2 = run_workload(&sim, &a_spec, adm, dl);
        assert_eq!(a, a2);
        assert_eq!(stats().hits, 1);
    }

    #[test]
    fn load_report_round_trips_through_disk_tier() {
        let _guard = fresh_cache();
        let dir =
            std::env::temp_dir().join(format!("howsim-loadcache-test-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        set_disk_dir(Some(dir.clone()));
        let sim = Simulation::new(Architecture::cluster(2)).with_seed(3);
        let w = WorkloadSpec::closed(2, 4).with_mix(vec![(TaskKind::Select, 1)]);
        let adm = AdmissionPolicy::default();
        let dl = DeadlinePolicy {
            deadline: Some(simcore::Duration::from_secs(600)),
            max_retries: 1,
            backoff: simcore::Duration::from_secs(1),
        };
        let cold = run_workload(&sim, &w, adm, dl);
        assert_eq!(stats().misses, 1);
        assert!(fs::read_dir(&dir).unwrap().any(|e| e
            .unwrap()
            .path()
            .to_string_lossy()
            .ends_with(".load")));

        // Drop the memory tier: the next lookup must come from disk,
        // bit-for-bit — per-query outcomes, phases, statuses and all.
        clear();
        let warm = run_workload(&sim, &w, adm, dl);
        assert_eq!(warm, cold, "disk round trip is field-identical");
        let s = stats();
        assert_eq!((s.hits, s.disk_hits), (1, 1));

        set_disk_dir(None);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn workload_batch_dedups_before_dispatch() {
        let _guard = fresh_cache();
        let sim = Simulation::new(Architecture::smp(2));
        let w = WorkloadSpec::poisson(0.02, 2).with_mix(vec![(TaskKind::Select, 1)]);
        let adm = AdmissionPolicy::default();
        let dl = DeadlinePolicy::default();
        let points = vec![
            (sim.clone(), w.clone(), adm, dl),
            (sim.clone(), w.clone().with_seed(5), adm, dl),
            (sim.clone(), w.clone(), adm, dl), // duplicate of point 0
        ];
        let reports = run_workloads(&points);
        assert_eq!(reports.len(), 3);
        assert_eq!(reports[0], reports[2]);
        let s = stats();
        assert_eq!((s.hits, s.misses), (1, 2), "duplicate served from batch");
        let again = run_workloads(&points);
        assert_eq!(again, reports);
    }

    #[test]
    fn checkpoint_tier_stores_and_resumes_paused_runs() {
        let _guard = fresh_cache();
        let dir = std::env::temp_dir().join(format!("howsim-ckpt-tier-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let arch = Architecture::active_disks(4);
        let plan = plan_task(TaskKind::Select, &arch);
        let sim = Simulation::new(arch).with_seed(5);
        let scratch = sim.run_plan(&plan);
        let at = simcore::SimTime::ZERO
            + simcore::Duration::from_nanos(scratch.elapsed().as_nanos() / 2);
        let mut run = sim.start(&plan);
        run.run_until(at);

        // Memory-only cache has no checkpoint tier: store is a no-op.
        assert!(store_checkpoint(&sim, &plan, at, &run).is_none());
        assert!(probe_checkpoint(&sim, &plan, at).is_none());
        assert_eq!(stats(), CacheStats::default());

        set_disk_dir(Some(dir.clone()));
        let path = store_checkpoint(&sim, &plan, at, &run).expect("ckpt stored");
        assert!(path.to_string_lossy().ends_with(".ckpt"));
        // A different backend resumes the entry to the scratch report.
        let resumer = sim
            .clone()
            .with_queue_backend(simcore::QueueBackend::BinaryHeap);
        let restored = probe_checkpoint(&resumer, &plan, at).expect("ckpt hit");
        assert_eq!(restored.finish(), scratch);
        let s = stats();
        assert_eq!((s.hits, s.disk_hits, s.misses), (1, 1, 0));
        // A different pause boundary is a miss.
        assert!(probe_checkpoint(&sim, &plan, at + simcore::Duration::from_nanos(1)).is_none());
        assert_eq!(stats().misses, 1);

        set_disk_dir(None);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn workload_probe_and_insert_pair_with_run_workload() {
        let _guard = fresh_cache();
        let sim = Simulation::new(Architecture::active_disks(2));
        let w = WorkloadSpec::closed(1, 2).with_mix(vec![(TaskKind::Select, 1)]);
        let adm = AdmissionPolicy::default();
        let dl = DeadlinePolicy::default();
        assert!(probe_workload(&sim, &w, adm, dl).is_none());
        let fresh = sim.run_workload(&w, adm, dl);
        insert_workload(&sim, &w, adm, dl, &fresh);
        // run_workload now serves the externally inserted report.
        assert_eq!(run_workload(&sim, &w, adm, dl), fresh);
        assert_eq!(stats().hits, 1);
    }

    #[test]
    fn faulted_report_round_trips_through_disk_tier() {
        let _guard = fresh_cache();
        let dir =
            std::env::temp_dir().join(format!("howsim-simcache-faults-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        set_disk_dir(Some(dir.clone()));
        let arch = Architecture::active_disks(4);
        let plan = plan_task(TaskKind::Sort, &arch);
        let sim = Simulation::new(arch)
            .with_seed(7)
            .with_fault_plan(FaultPlan::parse_spec("disk:2@0.1s").unwrap());
        let cold = run_sim(&sim, &plan);
        assert!(cold.faults_injected > 0);
        assert!(cold.recovery_time > simcore::Duration::ZERO);

        // Drop the memory tier: the fault fields must survive the disk
        // round trip bit-for-bit.
        clear();
        let warm = run_sim(&sim, &plan);
        assert_eq!(warm, cold);
        let s = stats();
        assert_eq!((s.hits, s.disk_hits), (1, 1));

        set_disk_dir(None);
        let _ = fs::remove_dir_all(&dir);
    }
}
