//! The discrete-event executor: runs a task's phase plans on a machine.

use std::collections::{BTreeMap, VecDeque};

use arch::Architecture;
use simcore::span::{SpanArena, SpanId, SpanKind, FRONT_END_NODE};
use simcore::state::{StateError, StateReader, StateWriter};
use simcore::{Duration, EventQueue, QueueBackend, QueueSnapshot, SimTime, SplitMix64};
use tasks::plan::{CpuWork, PhasePlan, TaskPlan};
use tasks::{plan_task, TaskKind};

use crate::faults::{
    FaultEvent, FaultKind, FaultPlan, RecoveryPolicy, DETECT_TIMEOUT, RETRY_TIMEOUT,
};
use crate::machine::Machine;
use crate::metrics::{MetricsBuilder, Resource, ResourceUsage, RunMetrics};
use crate::profile::{PhaseSpans, SpanTrace};
use crate::report::{PhaseReport, Report};
use crate::trace::{NodeId, Trace, TraceEvent, TraceKind};
use crate::BATCH_BYTES;

/// Synthetic critical-path resource for phase-boundary barriers.
pub(crate) const BARRIER_RESOURCE: &str = "barrier";
/// Synthetic critical-path resource for out-of-band disk positioning at
/// phase end (merge run switches).
pub(crate) const POSITIONING_RESOURCE: &str = "disk_positioning";

/// A configured simulation: one architecture, ready to run tasks.
///
/// # Example
///
/// ```
/// use arch::Architecture;
/// use howsim::Simulation;
/// use tasks::TaskKind;
///
/// let sim = Simulation::new(Architecture::cluster(16));
/// let report = sim.run(TaskKind::Aggregate);
/// assert_eq!(report.architecture, "Cluster");
/// ```
#[derive(Debug, Clone)]
pub struct Simulation {
    arch: Architecture,
    degraded: Vec<(usize, u64)>,
    queue_backend: QueueBackend,
    seed: u64,
    faults: FaultPlan,
    recovery: RecoveryPolicy,
}

/// Events of the phase executor. The `span` on each work event is the
/// span that completes when the event fires ([`SpanId::NONE`] unless the
/// run is profiled) — the causal parent of whatever the handler does
/// next. The `query` field attributes every work event to the query it
/// belongs to: single-query runs use lane 0, the multi-query executor
/// ([`crate::mqexec`]) interleaves many lanes on one queue. Payload
/// fields never affect the `(time, seq)` pop order, so threading the
/// query id leaves single-query reports byte-identical.
#[derive(Debug, Clone)]
pub(crate) enum Ev {
    /// A batch finished reading from disk at a node.
    BatchRead {
        node: usize,
        bytes: u64,
        span: SpanId,
        query: u32,
    },
    /// A node's CPU finished processing a scanned batch.
    BatchProcessed {
        node: usize,
        bytes: u64,
        span: SpanId,
        query: u32,
    },
    /// A repartitioned batch arrived at a peer.
    PeerArrive {
        src: usize,
        dst: usize,
        bytes: u64,
        span: SpanId,
        query: u32,
    },
    /// A peer finished its receive-side CPU work on a batch.
    RecvProcessed {
        node: usize,
        bytes: u64,
        span: SpanId,
        query: u32,
    },
    /// Data arrived at the front-end.
    FeArrive {
        bytes: u64,
        span: SpanId,
        query: u32,
    },
    /// The failure of `node` is detected (its request timeouts expired):
    /// recovery of its remaining partition begins for `query`.
    RecoveryKick { node: usize, query: u32 },
    /// Control events of the multi-query executor (never seen by the
    /// single-query phase loop): a query arrives at the admission
    /// controller.
    Admit { query: u32 },
    /// A query's phase barrier completed; start its next phase (or
    /// finish). Tagged with the attempt so stale barriers of a cancelled
    /// attempt are ignored.
    PhaseStart { query: u32, attempt: u32 },
    /// A query attempt's deadline expired.
    Deadline { query: u32, attempt: u32 },
    /// A cancelled query's backoff elapsed; restart when its in-flight
    /// events have drained.
    Retry { query: u32 },
}

impl Ev {
    /// The query a *work* event belongs to (None for control events —
    /// they carry no machine work and are not counted as outstanding).
    #[inline]
    pub(crate) fn work_query(&self) -> Option<u32> {
        match *self {
            Ev::BatchRead { query, .. }
            | Ev::BatchProcessed { query, .. }
            | Ev::PeerArrive { query, .. }
            | Ev::RecvProcessed { query, .. }
            | Ev::FeArrive { query, .. }
            | Ev::RecoveryKick { query, .. } => Some(query),
            Ev::Admit { .. } | Ev::PhaseStart { .. } | Ev::Deadline { .. } | Ev::Retry { .. } => {
                None
            }
        }
    }
}

/// Push sink over the event queue that optionally counts each query's
/// outstanding work events (the multi-query executor's phase-completion
/// signal). The single-query path passes `counts: None` — one `Option`
/// check per push, the same off-cost pattern as tracing and metrics.
pub(crate) struct EvQ<'a> {
    pub(crate) q: &'a mut EventQueue<Ev>,
    pub(crate) counts: Option<&'a mut Vec<u64>>,
}

impl EvQ<'_> {
    #[inline]
    pub(crate) fn push(&mut self, t: SimTime, ev: Ev) {
        if let Some(c) = self.counts.as_deref_mut() {
            if let Some(q) = ev.work_query() {
                c[q as usize] += 1;
            }
        }
        self.q.push(t, ev);
    }
}

/// Span-recording runtime of one profiled run: the arena plus the
/// last-ending span of the current phase (the critical-path anchor).
/// The multi-query executor swaps `last`/`last_end` per query around
/// each event so every query keeps its own anchor chain.
#[derive(Clone)]
pub(crate) struct SpanRt {
    pub(crate) arena: SpanArena,
    /// Last-ending retained span of the current phase; later records at
    /// the same end time win, which is deterministic because record
    /// order follows the (backend-invariant) event pop order.
    pub(crate) last: SpanId,
    pub(crate) last_end: SimTime,
    pub(crate) phases: Vec<PhaseSpans>,
}

impl SpanRt {
    pub(crate) fn new() -> Self {
        SpanRt {
            arena: SpanArena::enabled(),
            last: SpanId::NONE,
            last_end: SimTime::ZERO,
            phases: Vec::new(),
        }
    }

    #[allow(clippy::too_many_arguments)]
    pub(crate) fn record(
        &mut self,
        parent: SpanId,
        resource: &'static str,
        kind: SpanKind,
        node: u32,
        start: SimTime,
        end: SimTime,
        bytes: u64,
    ) -> SpanId {
        let id = self
            .arena
            .record(parent, resource, kind, node, start, end, bytes);
        if id.is_some() && end >= self.last_end {
            self.last = id;
            self.last_end = end;
        }
        id
    }
}

/// Records a span if profiling is enabled — one `Option` check per site
/// when it is not.
#[allow(clippy::too_many_arguments)]
#[inline]
pub(crate) fn span(
    spans: &mut Option<&mut SpanRt>,
    parent: SpanId,
    resource: &'static str,
    kind: SpanKind,
    node: u32,
    start: SimTime,
    end: SimTime,
    bytes: u64,
) -> SpanId {
    match spans {
        Some(s) => s.record(parent, resource, kind, node, start, end, bytes),
        None => SpanId::NONE,
    }
}

/// Shard key for the sharded scheduler backend: the node an event fires
/// *on* (receiver side for transfers), so each shard's events are one
/// node group's and cross-shard traffic pays interconnect latency —
/// matching the lookahead bound. Front-end arrivals and the multi-query
/// control plane ride shard 0. Placement never affects the pop order
/// (the cross-shard merge is an exact `(time, seq)` argmin), so reports
/// are identical for any key.
pub(crate) fn shard_of_ev(ev: &Ev) -> usize {
    match *ev {
        Ev::BatchRead { node, .. }
        | Ev::BatchProcessed { node, .. }
        | Ev::RecvProcessed { node, .. }
        | Ev::RecoveryKick { node, .. } => node,
        Ev::PeerArrive { dst, .. } => dst,
        Ev::FeArrive { .. }
        | Ev::Admit { .. }
        | Ev::PhaseStart { .. }
        | Ev::Deadline { .. }
        | Ev::Retry { .. } => 0,
    }
}

/// Costs that are identical for every full-sized batch of a phase,
/// computed once at phase start instead of per event. Almost every batch
/// the executor handles is exactly [`BATCH_BYTES`], so the hot loop reads
/// these precomputed durations and only falls back to the float math for
/// odd-sized tail batches. The cached values are produced by the *same*
/// expressions as the fallback path, so results are bit-identical.
#[derive(Clone)]
pub(crate) struct PhaseCosts {
    /// OS issue+complete+dispatch per batch, already scaled by CPU perf.
    os_batch: Duration,
    /// Per-work-item CPU cost of scanning one full batch (`read_cpu`).
    read_batch: Vec<Duration>,
    /// Per-work-item CPU cost of receiving one full batch (`recv_cpu`).
    recv_batch: Vec<Duration>,
    /// Messaging-library CPU cost of sending one full batch.
    msg_batch: Duration,
    /// Front-end CPU cost of absorbing one full batch.
    fe_batch: Duration,
    /// Node CPU relative performance.
    perf: f64,
    /// Front-end CPU relative performance.
    fe_perf: f64,
}

impl PhaseCosts {
    pub(crate) fn new(m: &Machine, phase: &PhasePlan) -> Self {
        let perf = m.node_cpu().relative_perf;
        let fe_perf = m.fe_cpu_spec().relative_perf;
        let os_per_batch = m.os().io_issue() + m.os().io_complete() + diskos::DISPATCH_OVERHEAD;
        let batch_cost = |work: &[CpuWork]| -> Vec<Duration> {
            work.iter()
                .map(|w| cpu_cost(w.ns_per_byte, BATCH_BYTES, perf))
                .collect()
        };
        PhaseCosts {
            os_batch: os_per_batch.scale(1.0 / perf),
            read_batch: batch_cost(&phase.read_cpu),
            recv_batch: batch_cost(&phase.recv_cpu),
            msg_batch: m.msg_cost(BATCH_BYTES).scale(1.0 / perf),
            fe_batch: cpu_cost(phase.frontend_cpu_ns_per_byte, BATCH_BYTES, fe_perf),
            perf,
            fe_perf,
        }
    }

    /// Messaging CPU cost for `bytes`, cached for full batches.
    fn msg_cost(&self, m: &Machine, bytes: u64) -> Duration {
        if bytes == BATCH_BYTES {
            self.msg_batch
        } else {
            m.msg_cost(bytes).scale(1.0 / self.perf)
        }
    }
}

/// CPU time to process `bytes` at `ns_per_byte` on a CPU of relative
/// performance `perf`. The single source of the executor's cost formula:
/// cached batch costs and the odd-size fallback both call this.
pub(crate) fn cpu_cost(ns_per_byte: f64, bytes: u64, perf: f64) -> Duration {
    Duration::from_secs_f64(ns_per_byte * bytes as f64 / 1e9 / perf)
}

/// Per-node executor state within one phase.
#[derive(Debug, Clone)]
pub(crate) struct NodeState {
    /// Bytes this node reads in the phase (the plan total split across
    /// nodes, remainder distributed so no byte is dropped).
    pub(crate) bytes_total: u64,
    pub(crate) batches_total: u64,
    /// Batches served from this node's own disk; `batches_total` exceeds
    /// this when recovery work for a failed peer has been assigned here.
    pub(crate) own_batches: u64,
    pub(crate) issued: u64,
    pub(crate) issued_bytes: u64,
    pub(crate) processed: u64,
    pub(crate) last_batch_bytes: u64,
    /// Batch sizes of recovery work (a failed peer's partition) assigned
    /// to this node, read via the surviving disks.
    pub(crate) recovery_pending: VecDeque<u64>,
    /// The node's disk has fail-stopped: it issues no reads, loses
    /// in-flight work, and drops arriving messages.
    pub(crate) dead: bool,
    /// The final front-end/reduction message has been sent (guards
    /// against re-sending when recovery work re-arms `finished`).
    pub(crate) fe_sent: bool,
    pub(crate) next_dst: usize,
    /// Weighted-fair destination credits when the phase shuffles with
    /// skewed weights (None = uniform round robin).
    pub(crate) dst_credits: Option<Vec<f64>>,
    pub(crate) write_credit: f64,
    pub(crate) shuffle_credit: f64,
    pub(crate) frontend_credit: f64,
}

impl NodeState {
    /// Picks the next shuffle destination: uniform round robin, or the
    /// most-credited destination under weighted-fair dispatch.
    fn pick_dst(&mut self, weights: Option<&[f64]>, n: usize) -> usize {
        match (&mut self.dst_credits, weights) {
            (Some(credits), Some(w)) => {
                let total: f64 = w.iter().sum();
                for (c, wi) in credits.iter_mut().zip(w) {
                    *c += wi / total;
                }
                let dst = credits
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite credits"))
                    .map(|(i, _)| i)
                    .expect("at least one destination");
                credits[dst] -= 1.0;
                dst
            }
            _ => {
                let dst = self.next_dst;
                self.next_dst = (self.next_dst + 1) % n;
                dst
            }
        }
    }
}

/// Fault-injection runtime: persists across phases of one run, applying
/// scheduled faults as simulated time reaches them and steering recovery.
/// The multi-query executor keeps one *global* `FaultRt` for the shared
/// fault schedule and machine effects, plus one empty-schedule `FaultRt`
/// per query carrying that query's recovery bookkeeping (pool, detection
/// view, round-robin cursor).
#[derive(Clone)]
pub(crate) struct FaultRt {
    /// Scheduled faults in chronological order (absolute offsets).
    pub(crate) events: Vec<FaultEvent>,
    /// Index of the first not-yet-applied fault.
    pub(crate) next: usize,
    pub(crate) policy: RecoveryPolicy,
    /// Whether a node's fail-stop has been *detected* (request timeouts
    /// expired); until then peers keep sending to it and pay retries.
    pub(crate) detected: Vec<bool>,
    /// Lost batches awaiting reassignment, as `(origin node, bytes)`.
    /// Entries stay pooled until the origin's failure is detected.
    pub(crate) pool: Vec<(usize, u64)>,
    /// Round-robin cursor spreading recovery batches over survivors.
    pub(crate) rr: usize,
    pub(crate) rng: SplitMix64,
    pub(crate) injected: u64,
    /// Fail-stop policy: the run aborts when the clock reaches this.
    pub(crate) abort_at: Option<SimTime>,
    /// Fast-path guard: true once any disk has fail-stopped.
    pub(crate) any_dead: bool,
}

impl FaultRt {
    pub(crate) fn new(plan: &FaultPlan, policy: RecoveryPolicy, seed: u64, nodes: usize) -> Self {
        FaultRt {
            events: plan.events().to_vec(),
            next: 0,
            policy,
            detected: vec![false; nodes],
            pool: Vec::new(),
            rr: 0,
            rng: SplitMix64::new(seed),
            injected: 0,
            abort_at: None,
            any_dead: false,
        }
    }

    /// Whether any scheduled fault has not been applied yet.
    #[inline]
    pub(crate) fn pending(&self) -> bool {
        self.next < self.events.len()
    }

    /// Applies machine-level effects of one fault at its due time `t`.
    /// Returns the failed node index for fail-stops so the caller can do
    /// the executor-side bookkeeping (which differs at phase start vs
    /// mid-phase).
    pub(crate) fn apply_machine(
        &mut self,
        m: &mut Machine,
        ev: FaultEvent,
        t: SimTime,
    ) -> Option<usize> {
        match ev.kind {
            FaultKind::DiskFailStop { node } => {
                if node >= m.nodes() || m.disk_failed(node) {
                    return None;
                }
                m.fail_disk(node, t);
                self.any_dead = true;
                self.injected += 1;
                if self.policy == RecoveryPolicy::FailStop {
                    let abort = t + DETECT_TIMEOUT;
                    self.abort_at = Some(self.abort_at.map_or(abort, |prev| prev.min(abort)));
                }
                Some(node)
            }
            FaultKind::MediaBurst { node, defects } => {
                if node < m.nodes() && !m.disk_failed(node) {
                    m.degrade_disk_seeded(node, defects as u64, &mut self.rng);
                    self.injected += 1;
                }
                None
            }
            FaultKind::LinkFault { node, severity } => {
                if node < m.nodes() {
                    m.interconnect_fault(node, severity);
                    self.injected += 1;
                }
                None
            }
        }
    }

    /// Applies every fault due at or before `start` (the phase boundary is
    /// a synchronization point, so failures surfacing in the barrier gap
    /// are already *detected* when the next phase begins).
    fn apply_phase_start(&mut self, m: &mut Machine, start: SimTime) {
        while self.pending() {
            let ev = self.events[self.next];
            let t = SimTime::ZERO + ev.at;
            if t > start {
                break;
            }
            self.next += 1;
            if let Some(node) = self.apply_machine(m, ev, t) {
                self.detected[node] = true;
            }
        }
    }

    /// Reassigns every pooled batch whose origin's failure is detected,
    /// round-robin over survivors. Returns the indices of survivors that
    /// received work (empty when nothing was assignable). Sets the abort
    /// clock if no survivor remains.
    pub(crate) fn assign_detected(&mut self, nodes: &mut [NodeState], now: SimTime) -> Vec<usize> {
        let mut touched = Vec::new();
        let healthy: Vec<usize> = (0..nodes.len()).filter(|&i| !nodes[i].dead).collect();
        let mut i = 0;
        while i < self.pool.len() {
            let (origin, bytes) = self.pool[i];
            if !self.detected[origin] {
                i += 1;
                continue;
            }
            if healthy.is_empty() {
                self.abort_at = Some(self.abort_at.map_or(now, |a| a.min(now)));
                return touched;
            }
            self.pool.remove(i);
            let target = healthy[self.rr % healthy.len()];
            self.rr += 1;
            nodes[target].batches_total += 1;
            nodes[target].recovery_pending.push_back(bytes);
            if !touched.contains(&target) {
                touched.push(target);
            }
        }
        touched
    }

    /// Applies every fault due at or before `now` mid-phase. A fail-stop
    /// pools the node's unissued work and (under a recovering policy)
    /// schedules its detection; in-flight work is lost lazily as its
    /// events pop.
    fn apply_due(
        &mut self,
        m: &mut Machine,
        q: &mut EventQueue<Ev>,
        nodes: &mut [NodeState],
        now: SimTime,
    ) {
        while self.pending() {
            let ev = self.events[self.next];
            let t = SimTime::ZERO + ev.at;
            if t > now {
                break;
            }
            self.next += 1;
            if let Some(node) = self.apply_machine(m, ev, t) {
                let st = &mut nodes[node];
                st.dead = true;
                // Its unissued own partition must be re-read elsewhere.
                for j in st.issued..st.own_batches {
                    let bytes = if j == st.own_batches - 1 {
                        st.last_batch_bytes
                    } else {
                        BATCH_BYTES
                    };
                    self.pool.push((node, bytes));
                }
                st.batches_total = st.issued;
                st.own_batches = st.issued;
                // Recovery work it had been assigned goes back too.
                while let Some(bytes) = st.recovery_pending.pop_front() {
                    self.pool.push((node, bytes));
                }
                if self.policy != RecoveryPolicy::FailStop {
                    q.push(
                        (t + DETECT_TIMEOUT).max(now),
                        Ev::RecoveryKick { node, query: 0 },
                    );
                }
            }
        }
    }
}

/// The first surviving node after `from` (wrapping), if any.
fn next_healthy(nodes: &[NodeState], from: usize) -> Option<usize> {
    let n = nodes.len();
    (1..=n).map(|k| (from + k) % n).find(|&i| !nodes[i].dead)
}

/// Tops survivors' pipelines back up to the read window after recovery
/// work lands on them (their own pipeline may already have drained, in
/// which case no `BatchProcessed` event would ever re-prime them).
#[allow(clippy::too_many_arguments)]
fn refill(
    m: &mut Machine,
    q: &mut EvQ,
    nodes: &mut [NodeState],
    touched: &[usize],
    now: SimTime,
    window: u64,
    region: usize,
    phase_writes: bool,
    policy: RecoveryPolicy,
    spans: &mut Option<&mut SpanRt>,
    qid: u32,
) {
    for &node in touched {
        while !nodes[node].dead
            && nodes[node].issued < nodes[node].batches_total
            && nodes[node].issued.saturating_sub(nodes[node].processed) < window
        {
            // Recovery-driven refills are rooted at the detection event,
            // not a prior span; the walker surfaces any gap they leave as
            // "unattributed".
            issue_read(
                m,
                q,
                nodes,
                node,
                now,
                region,
                phase_writes,
                policy,
                spans,
                SpanId::NONE,
                qid,
            );
        }
    }
}

impl Simulation {
    /// Creates a simulation of `arch`.
    pub fn new(arch: Architecture) -> Self {
        Simulation {
            arch,
            degraded: Vec::new(),
            queue_backend: QueueBackend::default(),
            seed: 0,
            faults: FaultPlan::default(),
            recovery: RecoveryPolicy::default(),
        }
    }

    /// Seeds the simulation's random streams (today: media-burst defect
    /// placement). Part of a run's cache identity.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Schedules deterministic fault injection for every run of this
    /// simulation. Fault times are absolute simulated-time offsets.
    #[must_use]
    pub fn with_fault_plan(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Selects how the system reacts when a disk fail-stops mid-run.
    #[must_use]
    pub fn with_recovery(mut self, policy: RecoveryPolicy) -> Self {
        self.recovery = policy;
        self
    }

    /// The configured RNG seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The configured fault plan.
    pub fn fault_plan(&self) -> &FaultPlan {
        &self.faults
    }

    /// The configured recovery policy.
    pub fn recovery_policy(&self) -> RecoveryPolicy {
        self.recovery
    }

    /// Selects the event-scheduler backend (differential testing and
    /// benchmarking; every backend produces byte-identical reports).
    #[must_use]
    pub fn with_queue_backend(mut self, backend: QueueBackend) -> Self {
        self.queue_backend = backend;
        self
    }

    /// Injects `grown_defects` remapped sectors into `node`'s drive before
    /// each run (straggler studies: one sick drive in a healthy farm).
    #[must_use]
    pub fn with_degraded_disk(mut self, node: usize, grown_defects: u64) -> Self {
        self.degraded.push((node, grown_defects));
        self
    }

    /// The architecture being simulated.
    pub fn architecture(&self) -> &Architecture {
        &self.arch
    }

    /// The configured event-scheduler backend.
    pub(crate) fn queue_backend(&self) -> QueueBackend {
        self.queue_backend
    }

    /// The injected per-node drive degradations, as `(node, grown_defects)`
    /// pairs in injection order (part of a run's cache identity).
    pub fn degraded_disks(&self) -> &[(usize, u64)] {
        &self.degraded
    }

    /// Plans and runs one of the eight workload tasks.
    pub fn run(&self, task: TaskKind) -> Report {
        let plan = plan_task(task, &self.arch);
        self.run_plan(&plan)
    }

    /// Runs an explicit phase plan (for custom workloads).
    ///
    /// # Panics
    ///
    /// Panics if the plan fails validation.
    pub fn run_plan(&self, plan: &TaskPlan) -> Report {
        self.run_plan_core(plan, None, None, false).0
    }

    /// Starts a pausable, forkable run of `plan` (see [`ExecRun`]): the
    /// copy-on-fork entry point. The run advances only when driven via
    /// [`ExecRun::run_until`] / [`ExecRun::finish`]; a run driven
    /// straight to completion produces a report bit-identical to
    /// [`Simulation::run_plan`].
    ///
    /// # Panics
    ///
    /// Panics if the plan fails validation.
    pub fn start<'p>(&self, plan: &'p TaskPlan) -> ExecRun<'p> {
        ExecRun::start_inner(self, plan, false)
    }

    /// Starts a pausable run with causal span profiling enabled; finish
    /// it with [`ExecRun::finish_profiled`]. Forks carry the prefix's
    /// span arena, so a forked continuation's critical path is identical
    /// to a from-scratch profiled run.
    ///
    /// # Panics
    ///
    /// Panics if the plan fails validation.
    pub fn start_profiled<'p>(&self, plan: &'p TaskPlan) -> ExecRun<'p> {
        ExecRun::start_inner(self, plan, true)
    }

    /// Plans and runs a task with causal span profiling enabled.
    pub fn run_profiled(&self, task: TaskKind) -> (Report, SpanTrace) {
        let plan = plan_task(task, &self.arch);
        self.run_plan_profiled(&plan)
    }

    /// Runs an explicit phase plan with causal span profiling enabled:
    /// the returned [`SpanTrace`] supports critical-path analysis
    /// ([`SpanTrace::critical_path`]) and Chrome-trace export
    /// ([`SpanTrace::chrome_trace_json`]). The report is bit-identical
    /// to an unprofiled run.
    ///
    /// # Panics
    ///
    /// Panics if the plan fails validation.
    pub fn run_plan_profiled(&self, plan: &TaskPlan) -> (Report, SpanTrace) {
        let (report, spans) = self.run_plan_core(plan, None, None, true);
        (report, spans.expect("profiled run returns a span trace"))
    }

    /// Plans and runs a task with event tracing enabled.
    pub fn run_traced(&self, task: TaskKind) -> (Report, Trace) {
        let plan = plan_task(task, &self.arch);
        self.run_plan_traced(&plan)
    }

    /// Runs an explicit phase plan with event tracing enabled.
    ///
    /// # Panics
    ///
    /// Panics if the plan fails validation.
    pub fn run_plan_traced(&self, plan: &TaskPlan) -> (Report, Trace) {
        let mut trace = Trace::new();
        let report = self.run_plan_core(plan, Some(&mut trace), None, false).0;
        (report, trace)
    }

    /// Plans and runs a task with time-series metrics sampling enabled
    /// (default sampling interval; see
    /// [`MetricsBuilder::DEFAULT_INTERVAL`]).
    pub fn run_with_metrics(&self, task: TaskKind) -> (Report, RunMetrics) {
        let plan = plan_task(task, &self.arch);
        self.run_plan_with_metrics(&plan)
    }

    /// Runs an explicit phase plan with metrics sampling enabled.
    ///
    /// # Panics
    ///
    /// Panics if the plan fails validation.
    pub fn run_plan_with_metrics(&self, plan: &TaskPlan) -> (Report, RunMetrics) {
        let mut metrics = MetricsBuilder::new();
        let report = self.run_plan_core(plan, None, Some(&mut metrics), false).0;
        let events = report.events;
        (report, metrics.finish(events))
    }

    /// Runs a plan with any combination of tracing and metrics sampling.
    /// The report is bit-identical whatever instrumentation is attached.
    ///
    /// # Panics
    ///
    /// Panics if the plan fails validation.
    pub fn run_plan_instrumented(
        &self,
        plan: &TaskPlan,
        trace: Option<&mut Trace>,
        metrics: Option<&mut MetricsBuilder>,
    ) -> Report {
        self.run_plan_core(plan, trace, metrics, false).0
    }

    /// Runs a plan with any combination of event tracing, metrics
    /// sampling, and (when `profiled`) span recording, in a single
    /// simulation pass. The report is bit-identical whatever
    /// instrumentation is attached.
    ///
    /// # Panics
    ///
    /// Panics if the plan fails validation.
    pub fn run_plan_observed(
        &self,
        plan: &TaskPlan,
        trace: Option<&mut Trace>,
        metrics: Option<&mut MetricsBuilder>,
        profiled: bool,
    ) -> (Report, Option<SpanTrace>) {
        self.run_plan_core(plan, trace, metrics, profiled)
    }

    /// All non-pausable run entry points funnel here: drive an
    /// [`ExecRun`] straight to completion. From-scratch runs and forked
    /// continuations therefore share one event loop by construction.
    fn run_plan_core(
        &self,
        plan: &TaskPlan,
        mut trace: Option<&mut Trace>,
        mut metrics: Option<&mut MetricsBuilder>,
        profiled: bool,
    ) -> (Report, Option<SpanTrace>) {
        let mut run = ExecRun::start_inner(self, plan, profiled);
        run.step(None, &mut trace, &mut metrics);
        run.into_parts()
    }
}

/// Records a trace event if tracing is enabled.
fn record(
    trace: &mut Option<&mut Trace>,
    time: SimTime,
    phase: usize,
    node: NodeId,
    kind: TraceKind,
    bytes: u64,
) {
    if let Some(t) = trace {
        t.record(TraceEvent {
            time,
            phase,
            node,
            kind,
            bytes,
        });
    }
}

/// Snapshot of cumulative machine counters, for per-phase deltas.
#[derive(Clone)]
struct PhaseSnapshot {
    cpu_by_tag: BTreeMap<&'static str, Duration>,
    cpu_total: Duration,
    disk_total: Duration,
    interconnect: u64,
    frontend: u64,
    resources: Vec<ResourceUsage>,
}

impl PhaseSnapshot {
    fn take(m: &Machine) -> Self {
        PhaseSnapshot {
            cpu_by_tag: m.cpu_busy_by_tag(),
            cpu_total: m.cpu_busy_total(),
            disk_total: m.disk_busy_total(),
            interconnect: m.interconnect_bytes(),
            frontend: m.frontend_bytes(),
            resources: m.resource_usage(),
        }
    }

    fn delta(
        &self,
        after: &PhaseSnapshot,
        name: &'static str,
        elapsed: Duration,
        nodes: usize,
    ) -> PhaseReport {
        let mut tags = BTreeMap::new();
        for (&tag, &busy) in &after.cpu_by_tag {
            let before = self.cpu_by_tag.get(tag).copied().unwrap_or(Duration::ZERO);
            let d = busy.saturating_sub(before);
            if !d.is_zero() {
                tags.insert(tag, d);
            }
        }
        let resources = after
            .resources
            .iter()
            .zip(&self.resources)
            .map(|(a, b)| {
                debug_assert_eq!(a.resource, b.resource);
                ResourceUsage {
                    resource: a.resource,
                    busy: a.busy.saturating_sub(b.busy),
                    wait: a.wait.saturating_sub(b.wait),
                    lanes: a.lanes,
                }
            })
            .collect();
        PhaseReport {
            name,
            elapsed,
            cpu_busy_by_tag: tags,
            cpu_busy_total: after.cpu_total.saturating_sub(self.cpu_total),
            disk_busy_total: after.disk_total.saturating_sub(self.disk_total),
            interconnect_bytes: after.interconnect - self.interconnect,
            frontend_bytes: after.frontend - self.frontend,
            nodes,
            resources,
        }
    }
}

/// Charges `prefix` (the OS or messaging toll) followed by a list of
/// tagged CPU work items for `bytes` to a node's CPU, as one fused
/// queueing round; returns the completion time of the run. Full batches
/// use the phase's precomputed costs; tail batches pay the float math.
#[allow(clippy::too_many_arguments)]
fn charge_cpu(
    m: &mut Machine,
    node: usize,
    now: SimTime,
    prefix: (Duration, &'static str),
    bytes: u64,
    work: &[CpuWork],
    batch_cost: &[Duration],
    perf: f64,
) -> SimTime {
    let head = std::iter::once(prefix);
    if bytes == BATCH_BYTES {
        m.node_cpu_run(
            node,
            now,
            head.chain(work.iter().zip(batch_cost).map(|(w, &cost)| (cost, w.tag))),
        )
    } else {
        m.node_cpu_run(
            node,
            now,
            head.chain(
                work.iter()
                    .map(|w| (cpu_cost(w.ns_per_byte, bytes, perf), w.tag)),
            ),
        )
    }
}

/// The read-allocator region of a phase: base data or the intermediate
/// runs written by a previous phase.
#[inline]
pub(crate) fn phase_region(phase: &PhasePlan) -> usize {
    usize::from(phase.reads_intermediate)
}

/// Whether the phase carries a substantial write stream — disk-group
/// separation (SMP, NOW-sort style) only pays off when it does.
#[inline]
pub(crate) fn phase_writes(phase: &PhasePlan) -> bool {
    phase.local_write_factor >= 0.25 || phase.write_received
}

/// Builds the per-node executor state for a phase starting at `start`:
/// splits the plan's read bytes across nodes (survivors only for
/// intermediate data), pools a dead node's fixed-placement share as
/// recovery work, and reassigns whatever failure is already detected.
/// Also returns the abort clock when no survivor remains to take the
/// pooled work.
pub(crate) fn init_phase_nodes(
    m: &Machine,
    phase: &PhasePlan,
    fr: &mut FaultRt,
    start: SimTime,
) -> (Vec<NodeState>, Option<SimTime>) {
    let n = m.nodes();
    // Split the plan's read bytes across nodes without dropping the
    // division remainder: the first `remainder` nodes read one extra byte.
    // Intermediate data (runs written in a previous phase) lives on the
    // surviving disks, so those phases split across survivors only; base
    // data has fixed placement, so a dead node's share becomes recovery
    // work pooled for the survivors below.
    let failed_now = m.failed_count();
    let healthy_split = failed_now > 0 && phase.reads_intermediate;
    let split_n = if healthy_split { n - failed_now } else { n } as u64;
    let base_per_node = phase.read_bytes_total / split_n;
    let remainder = (phase.read_bytes_total % split_n) as usize;
    let mut rank = 0usize;
    let mut nodes: Vec<NodeState> = (0..n)
        .map(|i| {
            let dead = failed_now > 0 && m.disk_failed(i);
            let bytes_total = if healthy_split && dead {
                0
            } else {
                let r = if healthy_split {
                    let r = rank;
                    rank += 1;
                    r
                } else {
                    i
                };
                base_per_node + u64::from(r < remainder)
            };
            let batches = if bytes_total == 0 {
                0
            } else {
                bytes_total.div_ceil(BATCH_BYTES)
            };
            let last = if batches == 0 {
                0
            } else {
                bytes_total - (batches - 1) * BATCH_BYTES.min(bytes_total)
            };
            NodeState {
                bytes_total,
                batches_total: batches,
                own_batches: batches,
                issued: 0,
                issued_bytes: 0,
                processed: 0,
                last_batch_bytes: last,
                recovery_pending: VecDeque::new(),
                dead,
                fe_sent: false,
                next_dst: (i + 1) % n,
                dst_credits: phase.shuffle_weights.as_ref().map(|w| {
                    assert_eq!(w.len(), n, "shuffle weights must cover every node");
                    vec![0.0; n]
                }),
                write_credit: 0.0,
                shuffle_credit: 0.0,
                frontend_credit: 0.0,
            }
        })
        .collect();

    // A dead node's fixed-placement share becomes pooled recovery work.
    if failed_now > 0 && !healthy_split {
        for (i, st) in nodes.iter_mut().enumerate() {
            if st.dead && st.bytes_total > 0 {
                for j in 0..st.batches_total {
                    let bytes = if j == st.batches_total - 1 {
                        st.last_batch_bytes
                    } else {
                        BATCH_BYTES
                    };
                    fr.pool.push((i, bytes));
                }
                st.bytes_total = 0;
                st.batches_total = 0;
                st.own_batches = 0;
                st.last_batch_bytes = 0;
            }
        }
        fr.assign_detected(&mut nodes, start);
        if let Some(abort) = fr.abort_at {
            let abort = abort.max(start);
            return (nodes, Some(abort));
        }
    }
    (nodes, None)
}

/// Mid-phase executor state of a paused [`ExecRun`]: the live event
/// queue, per-node progress, and the phase-start counter snapshot.
#[derive(Clone)]
struct PhaseRun {
    /// Precomputed per-batch costs — a pure function of the machine
    /// configuration and the phase plan, recomputed (never serialized)
    /// on checkpoint restore.
    costs: PhaseCosts,
    q: EventQueue<Ev>,
    /// An event popped but not yet processed: `run_until` pauses
    /// *before* processing the first event at or past the limit, and
    /// the event (already sequenced by its pop) waits here so every
    /// continuation replays the exact pop order.
    pending: Option<(SimTime, Ev)>,
    nodes: Vec<NodeState>,
    horizon: SimTime,
    before: PhaseSnapshot,
}

/// How one phase's event loop ended.
enum EventsOutcome {
    /// The time limit struck; the run is paused at an event boundary.
    Paused,
    /// The phase completed (queue drained, or the run aborted) at `end`.
    PhaseDone { end: SimTime, aborted: bool },
}

/// How starting a phase went.
enum PhaseStart {
    /// The phase is live; the mid-phase state is installed.
    Running,
    /// The phase ended before its first event (fault abort at or before
    /// the phase barrier).
    Aborted { before: PhaseSnapshot, end: SimTime },
}

/// A pausable, forkable, serializable execution of one plan on one
/// [`Simulation`]: the copy-on-fork checkpointing engine. Create one
/// with [`Simulation::start`], advance it with [`run_until`]
/// (processing every event strictly before the limit), branch what-if
/// continuations with [`fork`] / [`fork_with_faults`] — each fork
/// shares the simulated prefix instead of re-running it — and complete
/// any branch with [`finish`]. Reports from forked continuations are
/// field-identical to from-scratch runs: both paths drive this same
/// stepper.
///
/// [`run_until`]: ExecRun::run_until
/// [`fork`]: ExecRun::fork
/// [`fork_with_faults`]: ExecRun::fork_with_faults
/// [`finish`]: ExecRun::finish
///
/// # Example
///
/// ```
/// use arch::Architecture;
/// use howsim::Simulation;
/// use simcore::SimTime;
/// use tasks::{plan_task, TaskKind};
///
/// let sim = Simulation::new(Architecture::active_disks(4));
/// let plan = plan_task(TaskKind::Select, sim.architecture());
/// let scratch = sim.run_plan(&plan);
///
/// // Pause after the first simulated millisecond, fork, finish both.
/// let mut prefix = sim.start(&plan);
/// prefix.run_until(SimTime::from_nanos(1_000_000));
/// let forked = prefix.fork().finish();
/// assert_eq!(forked, scratch);
/// assert_eq!(prefix.finish(), scratch);
/// ```
#[derive(Clone)]
pub struct ExecRun<'p> {
    sim: Simulation,
    plan: &'p TaskPlan,
    machine: Machine,
    fr: FaultRt,
    phases: Vec<PhaseReport>,
    clock: SimTime,
    events: u64,
    aborted: bool,
    phase_ix: usize,
    cur: Option<PhaseRun>,
    done: bool,
    spans: Option<SpanRt>,
}

impl<'p> ExecRun<'p> {
    fn start_inner(sim: &Simulation, plan: &'p TaskPlan, profiled: bool) -> Self {
        plan.validate().expect("invalid task plan");
        let mut machine = Machine::new(&sim.arch);
        for &(node, count) in &sim.degraded {
            machine.degrade_disk(node, count);
        }
        let fr = FaultRt::new(&sim.faults, sim.recovery, sim.seed, machine.nodes());
        ExecRun {
            sim: sim.clone(),
            plan,
            machine,
            fr,
            phases: Vec::with_capacity(plan.phases.len()),
            clock: SimTime::ZERO,
            events: 0,
            aborted: false,
            phase_ix: 0,
            cur: None,
            done: false,
            spans: if profiled { Some(SpanRt::new()) } else { None },
        }
    }

    /// Advances the run until the simulation clock reaches `t`:
    /// processes every event firing strictly before `t` and every phase
    /// boundary falling before `t`, then pauses at an exact event
    /// boundary. Pausing and resuming never changes the final report.
    pub fn run_until(&mut self, t: SimTime) {
        self.step(Some(t), &mut None, &mut None);
    }

    /// Whether the run has completed (its report is final).
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// The simulation clock at the current pause point: the stashed
    /// event's pop time when paused mid-phase (everything strictly
    /// before it is simulated), else the last phase boundary.
    pub fn paused_at(&self) -> SimTime {
        match &self.cur {
            Some(cur) => match &cur.pending {
                Some((t, _)) => *t,
                None => cur.horizon.max(self.clock),
            },
            None => self.clock,
        }
    }

    /// Events processed so far (the report's `events` once done),
    /// including the in-flight phase.
    pub fn events_so_far(&self) -> u64 {
        self.events + self.cur.as_ref().map_or(0, |c| c.q.popped())
    }

    /// Forks the run at the current pause point: an independent
    /// continuation sharing the already-simulated prefix.
    #[must_use]
    pub fn fork(&self) -> ExecRun<'p> {
        self.clone()
    }

    /// Forks the run and swaps in a fresh fault schedule and recovery
    /// policy for the continuation: the fork-at-fault-time primitive.
    /// The healthy prefix is simulated once; each fault scenario replays
    /// only its suffix.
    ///
    /// # Panics
    ///
    /// Panics if the prefix already consumed fault state (a fault was
    /// applied or the schedule cursor moved) — a continuation under a
    /// different schedule would then diverge from a from-scratch run.
    #[must_use]
    pub fn fork_with_faults(&self, faults: FaultPlan, recovery: RecoveryPolicy) -> ExecRun<'p> {
        assert!(
            self.fr.injected == 0 && self.fr.next == 0,
            "cannot swap fault plans: the prefix already consumed fault state"
        );
        debug_assert!(self.fr.pool.is_empty() && self.fr.abort_at.is_none());
        let mut run = self.clone();
        run.fr = FaultRt::new(&faults, recovery, run.sim.seed, run.machine.nodes());
        run.sim.faults = faults;
        run.sim.recovery = recovery;
        run
    }

    /// Runs to completion and returns the report — field-identical to
    /// [`Simulation::run_plan`] on the same configuration.
    pub fn finish(mut self) -> Report {
        self.step(None, &mut None, &mut None);
        self.into_parts().0
    }

    /// Runs to completion and returns the report plus the span trace.
    ///
    /// # Panics
    ///
    /// Panics if the run was not started with profiling
    /// ([`Simulation::start_profiled`]).
    pub fn finish_profiled(mut self) -> (Report, SpanTrace) {
        self.step(None, &mut None, &mut None);
        let (report, spans) = self.into_parts();
        (report, spans.expect("run was started without profiling"))
    }

    /// The single event loop shared by from-scratch runs, paused runs,
    /// and forked continuations. `limit = None` runs to completion.
    fn step(
        &mut self,
        limit: Option<SimTime>,
        trace: &mut Option<&mut Trace>,
        metrics: &mut Option<&mut MetricsBuilder>,
    ) {
        while !self.done {
            if self.cur.is_none() {
                if self.phase_ix >= self.plan.phases.len() {
                    self.done = true;
                    break;
                }
                // Pause before starting a phase whose barrier-start
                // clock has reached the limit.
                if limit.is_some_and(|l| self.clock >= l) {
                    return;
                }
                if let PhaseStart::Aborted { before, end } = self.start_phase() {
                    self.finish_phase(before, end, 0, true);
                    continue;
                }
            }
            match self.run_events(limit, trace, metrics) {
                EventsOutcome::Paused => return,
                EventsOutcome::PhaseDone { end, aborted } => {
                    let cur = self.cur.take().expect("phase state present");
                    self.finish_phase(cur.before, end, cur.q.popped(), aborted);
                }
            }
        }
    }

    /// Opens the phase at `phase_ix`: applies barrier-due faults, builds
    /// the queue and per-node state, and primes every read pipeline.
    fn start_phase(&mut self) -> PhaseStart {
        let plan = self.plan;
        let phase = &plan.phases[self.phase_ix];
        let start = self.clock;
        let region = phase_region(phase);
        self.machine.begin_phase(region);
        if let Some(rt) = self.spans.as_mut() {
            rt.last = SpanId::NONE;
            rt.last_end = start;
        }
        let before = PhaseSnapshot::take(&self.machine);
        let m = &mut self.machine;
        let fr = &mut self.fr;
        let n = m.nodes();
        // Faults due at or before the barrier strike before any work starts.
        if fr.pending() {
            fr.apply_phase_start(m, start);
        }
        if let Some(abort) = fr.abort_at {
            if abort <= start || m.failed_count() == n {
                return PhaseStart::Aborted {
                    before,
                    end: abort.max(start),
                };
            }
        }
        if m.failed_count() == n {
            return PhaseStart::Aborted { before, end: start };
        }
        // Disk-group separation (SMP, NOW-sort style) only pays off when
        // the write stream is substantial.
        let phase_writes = phase_writes(phase);
        let costs = PhaseCosts::new(m, phase);

        let window = m.window() as u64;
        // Steady state holds `window` in-flight reads per node plus the
        // messages they fan out into; pre-size the queue to that depth.
        let mut q: EventQueue<Ev> =
            EventQueue::with_backend_capacity(self.sim.queue_backend, n * (window as usize + 4));
        q.set_shard_fn(shard_of_ev);
        q.set_lookahead(m.lookahead_bound());
        let (mut nodes, init_abort) = init_phase_nodes(m, phase, fr, start);
        if let Some(abort) = init_abort {
            return PhaseStart::Aborted { before, end: abort };
        }

        // Prime each node's pipeline: the phase fan-out schedules every
        // node's full read window in one batched push (same event order
        // as pushing one by one, so sequence numbers — and reports — are
        // unchanged).
        let mut spans = self.spans.as_mut();
        let mut primed: Vec<(SimTime, Ev)> = Vec::with_capacity(n * window as usize);
        for node in 0..n {
            let to_issue = window.min(nodes[node].batches_total);
            for _ in 0..to_issue {
                if let Some(ev) = prepare_read(
                    m,
                    &mut nodes,
                    node,
                    start,
                    region,
                    phase_writes,
                    fr.policy,
                    &mut spans,
                    SpanId::NONE,
                    0,
                ) {
                    primed.push(ev);
                }
            }
        }
        q.push_many(primed);
        self.cur = Some(PhaseRun {
            costs,
            q,
            pending: None,
            nodes,
            horizon: start,
            before,
        });
        PhaseStart::Running
    }

    /// Pops and dispatches events of the current phase until the queue
    /// drains, the run aborts, or the limit strikes.
    fn run_events(
        &mut self,
        limit: Option<SimTime>,
        trace: &mut Option<&mut Trace>,
        metrics: &mut Option<&mut MetricsBuilder>,
    ) -> EventsOutcome {
        let plan = self.plan;
        let phase = &plan.phases[self.phase_ix];
        let phase_ix = self.phase_ix;
        let region = phase_region(phase);
        let phase_writes = phase_writes(phase);
        let cur = self.cur.as_mut().expect("phase state present");
        let m = &mut self.machine;
        let fr = &mut self.fr;
        let mut spans = self.spans.as_mut();
        let window = m.window() as u64;
        loop {
            let (now, ev) = match cur.pending.take() {
                Some(next) => next,
                None => match cur.q.pop() {
                    Some(next) => next,
                    None => break,
                },
            };
            if limit.is_some_and(|l| now >= l) {
                // Pause *before* processing: the event keeps its pop
                // sequencing and waits in the pending slot.
                cur.pending = Some((now, ev));
                return EventsOutcome::Paused;
            }
            cur.horizon = cur.horizon.max(now);
            // Faults-off cost: one bounds check per event.
            if fr.pending() {
                fr.apply_due(m, &mut cur.q, &mut cur.nodes, now);
            }
            if let Some(abort) = fr.abort_at {
                if now >= abort {
                    return EventsOutcome::PhaseDone {
                        end: abort,
                        aborted: true,
                    };
                }
            }
            // Metrics-off cost: one `Option` discriminant check per event.
            if let Some(mb) = metrics.as_deref_mut() {
                if mb.due(now) {
                    mb.sample(now, &m.resource_usage(), cur.q.len());
                }
            }
            handle_ev(
                m,
                &mut EvQ {
                    q: &mut cur.q,
                    counts: None,
                },
                &mut PhaseCtx {
                    phase,
                    costs: &cur.costs,
                    nodes: &mut cur.nodes,
                    horizon: &mut cur.horizon,
                    region,
                    phase_writes,
                    phase_ix,
                    window,
                    qid: 0,
                },
                fr,
                trace,
                &mut spans,
                now,
                ev,
            );
        }

        // Fail-stop policy with the abort clock beyond the last event:
        // the survivors drained their queues, but the failed partition
        // was never re-read — the run still aborts at the detection time.
        if let Some(abort) = fr.abort_at {
            return EventsOutcome::PhaseDone {
                end: abort,
                aborted: true,
            };
        }

        // Byte conservation: the nodes together must have issued exactly
        // the plan's read bytes — the per-node split drops nothing, and
        // recovery re-issues every batch a failed node left behind.
        let issued: u64 = cur.nodes.iter().map(|s| s.issued_bytes).sum();
        assert_eq!(
            issued, phase.read_bytes_total,
            "phase '{}' issued {issued} B of {} B planned",
            phase.name, phase.read_bytes_total
        );

        // Out-of-band disk positioning penalty (e.g. merge run switches):
        // per-node and overlapped across nodes, so it extends the phase once.
        let end = cur.horizon + phase.extra_disk_busy_per_node;
        if phase.extra_disk_busy_per_node > simcore::Duration::ZERO {
            if let Some(rt) = spans {
                let parent = rt.last;
                rt.record(
                    parent,
                    POSITIONING_RESOURCE,
                    SpanKind::Positioning,
                    FRONT_END_NODE,
                    cur.horizon,
                    end,
                    0,
                );
            }
        }
        EventsOutcome::PhaseDone {
            end,
            aborted: false,
        }
    }

    /// Closes the phase at `phase_ix`: the barrier, the phase report,
    /// and the clock advance.
    fn finish_phase(
        &mut self,
        before: PhaseSnapshot,
        end: SimTime,
        phase_events: u64,
        phase_aborted: bool,
    ) {
        let plan = self.plan;
        let phase = &plan.phases[self.phase_ix];
        self.events += phase_events;
        let after = PhaseSnapshot::take(&self.machine);
        // Every phase boundary is a global barrier (no node starts the
        // next phase before all have finished this one). An aborted
        // phase ends at the abort clock: there is no barrier because
        // there is no next phase.
        let pre_barrier = end;
        let end = if phase_aborted {
            end
        } else {
            end + self.machine.barrier_costs().barrier(self.machine.nodes())
        };
        if let Some(rt) = self.spans.as_mut() {
            if !phase_aborted {
                // The barrier span chains onto the phase's last span
                // (which ends exactly at `pre_barrier` on healthy runs),
                // making it the critical-path anchor.
                let parent = rt.last;
                rt.record(
                    parent,
                    BARRIER_RESOURCE,
                    SpanKind::Barrier,
                    FRONT_END_NODE,
                    pre_barrier,
                    end,
                    0,
                );
            }
            rt.phases.push(PhaseSpans {
                name: phase.name,
                start: self.clock,
                end,
                anchor: rt.last,
            });
        }
        self.phases.push(before.delta(
            &after,
            phase.name,
            end.since(self.clock),
            self.machine.nodes(),
        ));
        self.clock = end;
        self.phase_ix += 1;
        if phase_aborted {
            self.aborted = true;
            self.done = true;
        }
    }

    /// Builds the final report (and span trace, when profiled) from a
    /// completed run.
    fn into_parts(self) -> (Report, Option<SpanTrace>) {
        debug_assert!(self.done, "into_parts on an unfinished run");
        let report = Report {
            task: self.plan.task,
            architecture: self.sim.arch.short_name(),
            disks: self.machine.nodes(),
            phases: self.phases,
            disk_service: self.machine.disk_service_histogram(),
            events: self.events,
            faults_injected: self.fr.injected,
            recovery_time: self.machine.recovery_busy(),
            work_redistributed: self.machine.work_redistributed(),
            aborted: self.aborted,
            downtime: self.machine.disk_downtime(self.clock),
        };
        let spans = self.spans.map(|rt| SpanTrace {
            arena: rt.arena,
            phases: rt.phases,
        });
        (report, spans)
    }
}

impl ExecRun<'_> {
    /// Serializes the paused run — clock, machine, fault runtime,
    /// finished-phase reports, and (mid-phase) the live event queue,
    /// pending event, per-node progress, and phase-start counter
    /// snapshot — in the exact-integer state codec. Per-batch costs and
    /// queue configuration are recomputed on load, never stored.
    ///
    /// # Panics
    ///
    /// Panics if the run is profiled: the span arena is not captured on
    /// disk (fork in memory to keep profiling across a branch point).
    pub fn save_state(&self, w: &mut StateWriter) {
        assert!(
            self.spans.is_none(),
            "profiled runs cannot be checkpointed to disk"
        );
        w.field("clock_ns", self.clock.as_nanos());
        w.field("events", self.events);
        w.field("aborted", u8::from(self.aborted));
        w.field("phase_ix", self.phase_ix);
        w.field("done", u8::from(self.done));
        self.machine.save_state(w);
        self.fr.save_state(w);
        w.field("phases_done", self.phases.len());
        for p in &self.phases {
            save_phase_report(p, w);
        }
        w.field("midphase", u8::from(self.cur.is_some()));
        if let Some(cur) = &self.cur {
            match &cur.pending {
                Some((t, ev)) => {
                    w.field("pending", 1u8);
                    w.str_field("pending_ev", &format!("{} {}", t.as_nanos(), encode_ev(ev)));
                }
                None => w.field("pending", 0u8),
            }
            let snap = cur.q.snapshot();
            w.field("q_popped", snap.popped);
            w.field("q_last_ns", snap.last_popped.as_nanos());
            w.field("q_len", snap.events.len());
            for (t, ev) in &snap.events {
                w.str_field("qe", &format!("{} {}", t.as_nanos(), encode_ev(ev)));
            }
            w.field("horizon_ns", cur.horizon.as_nanos());
            w.field("nodes_n", cur.nodes.len());
            for st in &cur.nodes {
                save_node_state(st, w);
            }
            cur.before.save_state(w);
        }
    }
}

impl<'p> ExecRun<'p> {
    /// Rebuilds a paused run from [`ExecRun::save_state`] output. `sim`
    /// and `plan` must be the configuration the state was saved under
    /// (the checkpoint cache key guarantees this; a mismatched machine
    /// shape is also caught here as an error). The restored queue is
    /// freshly built for `sim`'s backend and replays the saved pop
    /// order exactly, so a checkpoint taken under one backend resumes
    /// bit-identically under any other.
    pub fn load_state(
        sim: &Simulation,
        plan: &'p TaskPlan,
        r: &mut StateReader<'_>,
    ) -> Result<Self, StateError> {
        if plan.validate().is_err() {
            return Err(StateError::new("invalid task plan"));
        }
        let mut run = ExecRun::start_inner(sim, plan, false);
        run.clock = SimTime::from_nanos(r.num("clock_ns")?);
        run.events = r.num("events")?;
        run.aborted = r.num::<u8>("aborted")? != 0;
        run.phase_ix = r.num("phase_ix")?;
        run.done = r.num::<u8>("done")? != 0;
        if run.phase_ix > plan.phases.len() {
            return Err(StateError::new("phase cursor out of range"));
        }
        run.machine.load_state(r)?;
        run.fr.load_state(r)?;
        let nphases: usize = r.num("phases_done")?;
        if nphases > plan.phases.len() {
            return Err(StateError::new("finished-phase count out of range"));
        }
        run.phases.clear();
        for _ in 0..nphases {
            run.phases.push(load_phase_report(r)?);
        }
        let midphase = r.num::<u8>("midphase")? != 0;
        if midphase {
            if run.phase_ix >= plan.phases.len() {
                return Err(StateError::new("mid-phase state past the last phase"));
            }
            let phase = &plan.phases[run.phase_ix];
            let pending = match r.num::<u8>("pending")? {
                0 => None,
                1 => Some(parse_timed_ev(r.field("pending_ev")?)?),
                _ => return Err(StateError::new("pending: expected 0 or 1")),
            };
            let popped: u64 = r.num("q_popped")?;
            let last_popped = SimTime::from_nanos(r.num("q_last_ns")?);
            let qlen: usize = r.num("q_len")?;
            let mut events = Vec::with_capacity(qlen);
            for _ in 0..qlen {
                events.push(parse_timed_ev(r.field("qe")?)?);
            }
            let n = run.machine.nodes();
            let window = run.machine.window() as u64;
            let mut q: EventQueue<Ev> =
                EventQueue::with_backend_capacity(sim.queue_backend, n * (window as usize + 4));
            q.set_shard_fn(shard_of_ev);
            q.set_lookahead(run.machine.lookahead_bound());
            q.load_snapshot(QueueSnapshot {
                events,
                popped,
                last_popped,
            });
            let horizon = SimTime::from_nanos(r.num("horizon_ns")?);
            let nodes_n: usize = r.num("nodes_n")?;
            if nodes_n != n {
                return Err(StateError::new("node-state count mismatch"));
            }
            let mut nodes = Vec::with_capacity(n);
            for _ in 0..n {
                nodes.push(load_node_state(r)?);
            }
            let before = PhaseSnapshot::load_state(r)?;
            let costs = PhaseCosts::new(&run.machine, phase);
            run.cur = Some(PhaseRun {
                costs,
                q,
                pending,
                nodes,
                horizon,
                before,
            });
        }
        Ok(run)
    }
}

impl FaultRt {
    /// Serializes the runtime state (not the schedule, which is rebuilt
    /// from the fault plan on load).
    fn save_state(&self, w: &mut StateWriter) {
        w.field("fr_next", self.next);
        w.list("fr_detected", self.detected.iter().map(|&b| u8::from(b)));
        w.field("fr_pool", self.pool.len());
        for &(origin, bytes) in &self.pool {
            w.list("fr_poolent", [origin as u64, bytes]);
        }
        w.field("fr_rr", self.rr);
        w.field("fr_rng", self.rng.state());
        w.field("fr_injected", self.injected);
        w.field("fr_abort_set", u8::from(self.abort_at.is_some()));
        w.field(
            "fr_abort_ns",
            self.abort_at.unwrap_or(SimTime::ZERO).as_nanos(),
        );
        w.field("fr_any_dead", u8::from(self.any_dead));
    }

    /// Restores runtime state into a `FaultRt` freshly built from the
    /// same plan, policy, seed, and node count.
    fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), StateError> {
        let next: usize = r.num("fr_next")?;
        if next > self.events.len() {
            return Err(StateError::new("fault cursor out of range"));
        }
        self.next = next;
        let det: Vec<u8> = r.nums("fr_detected")?;
        if det.len() != self.detected.len() {
            return Err(StateError::new("detected-flag count mismatch"));
        }
        self.detected = det.iter().map(|&b| b != 0).collect();
        let npool: usize = r.num("fr_pool")?;
        self.pool.clear();
        for _ in 0..npool {
            let ent: Vec<u64> = r.nums("fr_poolent")?;
            if ent.len() != 2 {
                return Err(StateError::new("fr_poolent: expected `<origin> <bytes>`"));
            }
            self.pool.push((ent[0] as usize, ent[1]));
        }
        self.rr = r.num("fr_rr")?;
        self.rng = SplitMix64::new(r.num("fr_rng")?);
        self.injected = r.num("fr_injected")?;
        let abort_set = r.num::<u8>("fr_abort_set")? != 0;
        let abort_ns: u64 = r.num("fr_abort_ns")?;
        self.abort_at = abort_set.then(|| SimTime::from_nanos(abort_ns));
        self.any_dead = r.num::<u8>("fr_any_dead")? != 0;
        Ok(())
    }
}

impl PhaseSnapshot {
    fn save_state(&self, w: &mut StateWriter) {
        save_tag_map(&self.cpu_by_tag, w);
        w.field("cpu_total_ns", self.cpu_total.as_nanos());
        w.field("disk_total_ns", self.disk_total.as_nanos());
        w.field("interconnect", self.interconnect);
        w.field("frontend", self.frontend);
        save_resources(&self.resources, w);
    }

    fn load_state(r: &mut StateReader<'_>) -> Result<Self, StateError> {
        let cpu_by_tag = load_tag_map(r)?;
        let cpu_total = Duration::from_nanos(r.num("cpu_total_ns")?);
        let disk_total = Duration::from_nanos(r.num("disk_total_ns")?);
        let interconnect: u64 = r.num("interconnect")?;
        let frontend: u64 = r.num("frontend")?;
        let resources = load_resources(r)?;
        Ok(PhaseSnapshot {
            cpu_by_tag,
            cpu_total,
            disk_total,
            interconnect,
            frontend,
            resources,
        })
    }
}

/// Encodes one executor event (without its span — checkpoints capture
/// unprofiled runs, where every span is [`SpanId::NONE`]).
fn encode_ev(ev: &Ev) -> String {
    match *ev {
        Ev::BatchRead {
            node, bytes, query, ..
        } => format!("br {node} {bytes} {query}"),
        Ev::BatchProcessed {
            node, bytes, query, ..
        } => format!("bp {node} {bytes} {query}"),
        Ev::PeerArrive {
            src,
            dst,
            bytes,
            query,
            ..
        } => format!("pa {src} {dst} {bytes} {query}"),
        Ev::RecvProcessed {
            node, bytes, query, ..
        } => format!("rp {node} {bytes} {query}"),
        Ev::FeArrive { bytes, query, .. } => format!("fe {bytes} {query}"),
        Ev::RecoveryKick { node, query } => format!("rk {node} {query}"),
        Ev::Admit { query } => format!("ad {query}"),
        Ev::PhaseStart { query, attempt } => format!("ps {query} {attempt}"),
        Ev::Deadline { query, attempt } => format!("dl {query} {attempt}"),
        Ev::Retry { query } => format!("rt {query}"),
    }
}

/// Parses [`encode_ev`] output.
fn decode_ev(s: &str) -> Result<Ev, StateError> {
    fn num(
        it: &mut std::str::SplitWhitespace<'_>,
        tag: &str,
        what: &str,
    ) -> Result<u64, StateError> {
        it.next()
            .ok_or_else(|| StateError::new(format!("event `{tag}`: missing {what}")))?
            .parse()
            .map_err(|_| StateError::new(format!("event `{tag}`: bad {what}")))
    }
    let mut it = s.split_whitespace();
    let tag = it.next().ok_or_else(|| StateError::new("empty event"))?;
    let ev = match tag {
        "br" => Ev::BatchRead {
            node: num(&mut it, tag, "node")? as usize,
            bytes: num(&mut it, tag, "bytes")?,
            span: SpanId::NONE,
            query: num(&mut it, tag, "query")? as u32,
        },
        "bp" => Ev::BatchProcessed {
            node: num(&mut it, tag, "node")? as usize,
            bytes: num(&mut it, tag, "bytes")?,
            span: SpanId::NONE,
            query: num(&mut it, tag, "query")? as u32,
        },
        "pa" => Ev::PeerArrive {
            src: num(&mut it, tag, "src")? as usize,
            dst: num(&mut it, tag, "dst")? as usize,
            bytes: num(&mut it, tag, "bytes")?,
            span: SpanId::NONE,
            query: num(&mut it, tag, "query")? as u32,
        },
        "rp" => Ev::RecvProcessed {
            node: num(&mut it, tag, "node")? as usize,
            bytes: num(&mut it, tag, "bytes")?,
            span: SpanId::NONE,
            query: num(&mut it, tag, "query")? as u32,
        },
        "fe" => Ev::FeArrive {
            bytes: num(&mut it, tag, "bytes")?,
            span: SpanId::NONE,
            query: num(&mut it, tag, "query")? as u32,
        },
        "rk" => Ev::RecoveryKick {
            node: num(&mut it, tag, "node")? as usize,
            query: num(&mut it, tag, "query")? as u32,
        },
        "ad" => Ev::Admit {
            query: num(&mut it, tag, "query")? as u32,
        },
        "ps" => Ev::PhaseStart {
            query: num(&mut it, tag, "query")? as u32,
            attempt: num(&mut it, tag, "attempt")? as u32,
        },
        "dl" => Ev::Deadline {
            query: num(&mut it, tag, "query")? as u32,
            attempt: num(&mut it, tag, "attempt")? as u32,
        },
        "rt" => Ev::Retry {
            query: num(&mut it, tag, "query")? as u32,
        },
        other => return Err(StateError::new(format!("unknown event tag `{other}`"))),
    };
    if it.next().is_some() {
        return Err(StateError::new(format!("event `{tag}`: trailing fields")));
    }
    Ok(ev)
}

/// Parses a `<nanos> <event>` line.
fn parse_timed_ev(s: &str) -> Result<(SimTime, Ev), StateError> {
    let (t, rest) = s
        .split_once(' ')
        .ok_or_else(|| StateError::new("event: expected `<ns> <event>`"))?;
    let ns: u64 = t
        .parse()
        .map_err(|_| StateError::new("event: bad timestamp"))?;
    Ok((SimTime::from_nanos(ns), decode_ev(rest)?))
}

fn save_node_state(st: &NodeState, w: &mut StateWriter) {
    w.list(
        "nstate",
        [
            st.bytes_total,
            st.batches_total,
            st.own_batches,
            st.issued,
            st.issued_bytes,
            st.processed,
            st.last_batch_bytes,
            u64::from(st.dead),
            u64::from(st.fe_sent),
            st.next_dst as u64,
        ],
    );
    w.list("recovery_pending", st.recovery_pending.iter().copied());
    w.list(
        "credits",
        [
            st.write_credit.to_bits(),
            st.shuffle_credit.to_bits(),
            st.frontend_credit.to_bits(),
        ],
    );
    w.field("has_dst_credits", u8::from(st.dst_credits.is_some()));
    if let Some(c) = &st.dst_credits {
        w.list("dst_credits", c.iter().map(|f| f.to_bits()));
    }
}

fn load_node_state(r: &mut StateReader<'_>) -> Result<NodeState, StateError> {
    let v: Vec<u64> = r.nums("nstate")?;
    if v.len() != 10 {
        return Err(StateError::new("nstate: expected 10 fields"));
    }
    let recovery_pending: Vec<u64> = r.nums("recovery_pending")?;
    let credits: Vec<u64> = r.nums("credits")?;
    if credits.len() != 3 {
        return Err(StateError::new("credits: expected 3 fields"));
    }
    let dst_credits = match r.num::<u8>("has_dst_credits")? {
        0 => None,
        1 => Some(
            r.nums::<u64>("dst_credits")?
                .into_iter()
                .map(f64::from_bits)
                .collect(),
        ),
        _ => return Err(StateError::new("has_dst_credits: expected 0 or 1")),
    };
    Ok(NodeState {
        bytes_total: v[0],
        batches_total: v[1],
        own_batches: v[2],
        issued: v[3],
        issued_bytes: v[4],
        processed: v[5],
        last_batch_bytes: v[6],
        recovery_pending: recovery_pending.into(),
        dead: v[7] != 0,
        fe_sent: v[8] != 0,
        next_dst: v[9] as usize,
        dst_credits,
        write_credit: f64::from_bits(credits[0]),
        shuffle_credit: f64::from_bits(credits[1]),
        frontend_credit: f64::from_bits(credits[2]),
    })
}

fn save_tag_map(map: &BTreeMap<&'static str, Duration>, w: &mut StateWriter) {
    w.field("tags", map.len());
    for (tag, d) in map {
        // Nanoseconds first: the tag is the rest of the line, so names
        // with spaces survive the round trip.
        w.str_field("tag", &format!("{} {}", d.as_nanos(), tag));
    }
}

fn load_tag_map(r: &mut StateReader<'_>) -> Result<BTreeMap<&'static str, Duration>, StateError> {
    let ntags: usize = r.num("tags")?;
    let mut map = BTreeMap::new();
    for _ in 0..ntags {
        let rest = r.field("tag")?;
        let (ns, tag) = rest
            .split_once(' ')
            .ok_or_else(|| StateError::new("tag: expected `<ns> <name>`"))?;
        let ns: u64 = ns
            .parse()
            .map_err(|_| StateError::new("tag: bad nanoseconds"))?;
        map.insert(crate::manifest::intern(tag), Duration::from_nanos(ns));
    }
    Ok(map)
}

fn save_resources(resources: &[ResourceUsage], w: &mut StateWriter) {
    w.field("resources", resources.len());
    for u in resources {
        w.str_field(
            "res",
            &format!(
                "{} {} {} {}",
                u.resource.key(),
                u.busy.as_nanos(),
                u.wait.as_nanos(),
                u.lanes
            ),
        );
    }
}

fn load_resources(r: &mut StateReader<'_>) -> Result<Vec<ResourceUsage>, StateError> {
    let nres: usize = r.num("resources")?;
    let mut resources = Vec::with_capacity(nres);
    for _ in 0..nres {
        let rest = r.field("res")?;
        let mut parts = rest.split_whitespace();
        let key = parts
            .next()
            .ok_or_else(|| StateError::new("res: missing resource key"))?;
        let resource = Resource::from_key(key)
            .ok_or_else(|| StateError::new(format!("res: unknown resource `{key}`")))?;
        let mut num = |what: &str| -> Result<u64, StateError> {
            parts
                .next()
                .ok_or_else(|| StateError::new(format!("res: missing {what}")))?
                .parse()
                .map_err(|_| StateError::new(format!("res: bad {what}")))
        };
        let busy = Duration::from_nanos(num("busy time")?);
        let wait = Duration::from_nanos(num("wait time")?);
        let lanes = num("lanes")? as u32;
        resources.push(ResourceUsage {
            resource,
            busy,
            wait,
            lanes,
        });
    }
    Ok(resources)
}

fn save_phase_report(p: &PhaseReport, w: &mut StateWriter) {
    w.str_field("phase", p.name);
    w.field("elapsed_ns", p.elapsed.as_nanos());
    w.field("cpu_busy_ns", p.cpu_busy_total.as_nanos());
    w.field("disk_busy_ns", p.disk_busy_total.as_nanos());
    w.field("interconnect_bytes", p.interconnect_bytes);
    w.field("frontend_bytes", p.frontend_bytes);
    w.field("nodes", p.nodes);
    save_tag_map(&p.cpu_busy_by_tag, w);
    save_resources(&p.resources, w);
}

fn load_phase_report(r: &mut StateReader<'_>) -> Result<PhaseReport, StateError> {
    let name = crate::manifest::intern(r.field("phase")?);
    let elapsed = Duration::from_nanos(r.num("elapsed_ns")?);
    let cpu_busy_total = Duration::from_nanos(r.num("cpu_busy_ns")?);
    let disk_busy_total = Duration::from_nanos(r.num("disk_busy_ns")?);
    let interconnect_bytes: u64 = r.num("interconnect_bytes")?;
    let frontend_bytes: u64 = r.num("frontend_bytes")?;
    let nodes: usize = r.num("nodes")?;
    let cpu_busy_by_tag = load_tag_map(r)?;
    let resources = load_resources(r)?;
    Ok(PhaseReport {
        name,
        elapsed,
        cpu_busy_by_tag,
        cpu_busy_total,
        disk_busy_total,
        interconnect_bytes,
        frontend_bytes,
        nodes,
        resources,
    })
}

/// Per-phase execution context threaded into [`handle_ev`]: the plan,
/// its precomputed costs, per-node progress, and the phase cursors. The
/// single-query loop materializes one per pop over its locals; the
/// multi-query executor materializes one per event from the owning
/// query's state.
pub(crate) struct PhaseCtx<'a> {
    pub(crate) phase: &'a PhasePlan,
    pub(crate) costs: &'a PhaseCosts,
    pub(crate) nodes: &'a mut Vec<NodeState>,
    pub(crate) horizon: &'a mut SimTime,
    pub(crate) region: usize,
    pub(crate) phase_writes: bool,
    pub(crate) phase_ix: usize,
    pub(crate) window: u64,
    pub(crate) qid: u32,
}

/// Dispatches one popped *work* event against the machine: the phase
/// executor's single state machine, shared verbatim by [`run_phase`]
/// and the multi-query executor so one query's machine effects are
/// identical in both. Control events are dispatched before this point
/// and never reach here.
#[allow(clippy::too_many_arguments)]
pub(crate) fn handle_ev(
    m: &mut Machine,
    q: &mut EvQ,
    ctx: &mut PhaseCtx,
    fr: &mut FaultRt,
    trace: &mut Option<&mut Trace>,
    spans: &mut Option<&mut SpanRt>,
    now: SimTime,
    ev: Ev,
) {
    let PhaseCtx {
        phase,
        costs,
        nodes,
        horizon,
        region,
        phase_writes,
        phase_ix,
        window,
        qid,
    } = ctx;
    let (phase, costs) = (*phase, *costs);
    let nodes = &mut **nodes;
    let horizon = &mut **horizon;
    let (region, phase_writes, phase_ix, window, qid) =
        (*region, *phase_writes, *phase_ix, *window, *qid);
    match ev {
        Ev::BatchRead {
            node,
            bytes,
            span: ev_span,
            ..
        } => {
            if fr.any_dead && nodes[node].dead {
                // The batch died with its node: un-issue and pool it.
                nodes[node].issued_bytes -= bytes;
                fr.pool.push((node, bytes));
                if fr.detected[node] {
                    let touched = fr.assign_detected(nodes, now);
                    refill(
                        m,
                        q,
                        nodes,
                        &touched,
                        now,
                        window,
                        region,
                        phase_writes,
                        fr.policy,
                        spans,
                        qid,
                    );
                }
                return;
            }
            record(
                trace,
                now,
                phase_ix,
                NodeId::Node(node),
                TraceKind::ReadDone,
                bytes,
            );
            let done = charge_cpu(
                m,
                node,
                now,
                (costs.os_batch, "os"),
                bytes,
                &phase.read_cpu,
                &costs.read_batch,
                costs.perf,
            );
            let cpu_span = span(
                spans,
                ev_span,
                Resource::WorkerCpu.key(),
                SpanKind::Cpu,
                node as u32,
                now,
                done.max(now),
                bytes,
            );
            q.push(
                done.max(now),
                Ev::BatchProcessed {
                    node,
                    bytes,
                    span: cpu_span,
                    query: qid,
                },
            );
        }
        Ev::BatchProcessed {
            node,
            bytes,
            span: ev_span,
            ..
        } => {
            if fr.any_dead && nodes[node].dead {
                // Processed output lost with the node: a survivor
                // must re-read the underlying batch.
                nodes[node].issued_bytes -= bytes;
                fr.pool.push((node, bytes));
                if fr.detected[node] {
                    let touched = fr.assign_detected(nodes, now);
                    refill(
                        m,
                        q,
                        nodes,
                        &touched,
                        now,
                        window,
                        region,
                        phase_writes,
                        fr.policy,
                        spans,
                        qid,
                    );
                }
                return;
            }
            record(
                trace,
                now,
                phase_ix,
                NodeId::Node(node),
                TraceKind::BatchProcessed,
                bytes,
            );
            nodes[node].processed += 1;
            *horizon = (*horizon).max(now);
            // Keep the pipeline full.
            if nodes[node].issued < nodes[node].batches_total {
                issue_read(
                    m,
                    q,
                    nodes,
                    node,
                    now,
                    region,
                    phase_writes,
                    fr.policy,
                    spans,
                    ev_span,
                    qid,
                );
            }
            // Route the outputs.
            nodes[node].shuffle_credit += bytes as f64 * phase.shuffle_factor;
            nodes[node].frontend_credit += bytes as f64 * phase.frontend_factor;
            nodes[node].write_credit += bytes as f64 * phase.local_write_factor;
            let finished = nodes[node].processed == nodes[node].batches_total;
            drain_outputs(
                m,
                q,
                nodes,
                costs,
                fr,
                node,
                now,
                finished,
                horizon,
                region,
                phase_writes,
                phase.shuffle_weights.as_deref(),
                spans,
                ev_span,
                qid,
            );
            if finished && phase.frontend_bytes_per_node > 0 && !nodes[node].fe_sent {
                nodes[node].fe_sent = true;
                if phase.frontend_combinable && node != 0 && !m.restricted_peer_routing() {
                    // Combinable partials flow up a reduction tree
                    // (the messaging library's global reduce) instead
                    // of funnelling every node's copy into the
                    // front-end link.
                    let mut parent = (node - 1) / 2;
                    if fr.any_dead {
                        // Route around dead ancestors; if the root is
                        // gone, go straight to the front-end.
                        while parent != 0 && nodes[parent].dead {
                            parent = (parent - 1) / 2;
                        }
                    }
                    if fr.any_dead && nodes[parent].dead {
                        send_frontend(
                            m,
                            q,
                            costs,
                            node,
                            now,
                            phase.frontend_bytes_per_node,
                            spans,
                            ev_span,
                            qid,
                        );
                    } else {
                        send_peer(
                            m,
                            q,
                            costs,
                            node,
                            parent,
                            now,
                            phase.frontend_bytes_per_node,
                            spans,
                            ev_span,
                            qid,
                        );
                    }
                } else {
                    send_frontend(
                        m,
                        q,
                        costs,
                        node,
                        now,
                        phase.frontend_bytes_per_node,
                        spans,
                        ev_span,
                        qid,
                    );
                }
            }
        }
        Ev::PeerArrive {
            src,
            dst,
            bytes,
            span: ev_span,
            ..
        } => {
            if fr.any_dead && nodes[dst].dead {
                // Receiver gone: the sender times out and re-sends to
                // the next survivor (unless it has since died too).
                if !nodes[src].dead {
                    if let Some(dst2) = next_healthy(nodes, dst) {
                        let arrival = m.peer_transfer(now + RETRY_TIMEOUT, src, dst2, bytes);
                        // The retry span covers the timeout plus the
                        // re-shipment so the causal chain stays gapless.
                        let retry_span = span(
                            spans,
                            ev_span,
                            Resource::Interconnect.key(),
                            SpanKind::Transfer,
                            dst2 as u32,
                            now,
                            arrival.max(now),
                            bytes,
                        );
                        q.push(
                            arrival.max(now),
                            Ev::PeerArrive {
                                src,
                                dst: dst2,
                                bytes,
                                span: retry_span,
                                query: qid,
                            },
                        );
                    }
                }
                return;
            }
            record(
                trace,
                now,
                phase_ix,
                NodeId::Node(dst),
                TraceKind::PeerArrive,
                bytes,
            );
            let msg_cost = costs.msg_cost(m, bytes);
            let done = charge_cpu(
                m,
                dst,
                now,
                (msg_cost, "net-recv"),
                bytes,
                &phase.recv_cpu,
                &costs.recv_batch,
                costs.perf,
            );
            let recv_span = span(
                spans,
                ev_span,
                Resource::WorkerCpu.key(),
                SpanKind::Cpu,
                dst as u32,
                now,
                done.max(now),
                bytes,
            );
            q.push(
                done.max(now),
                Ev::RecvProcessed {
                    node: dst,
                    bytes,
                    span: recv_span,
                    query: qid,
                },
            );
        }
        Ev::RecvProcessed {
            node,
            bytes,
            span: ev_span,
            ..
        } => {
            if fr.any_dead && nodes[node].dead {
                return;
            }
            record(
                trace,
                now,
                phase_ix,
                NodeId::Node(node),
                TraceKind::RecvProcessed,
                bytes,
            );
            *horizon = (*horizon).max(now);
            if phase.write_received {
                let aligned = align_sectors(bytes);
                let done = m.write(node, now, aligned, region, phase_writes);
                record(
                    trace,
                    done,
                    phase_ix,
                    NodeId::Node(node),
                    TraceKind::WriteDone,
                    aligned,
                );
                span(
                    spans,
                    ev_span,
                    Resource::DiskMedia.key(),
                    SpanKind::DiskWrite,
                    node as u32,
                    now,
                    done,
                    aligned,
                );
                *horizon = (*horizon).max(done);
            }
        }
        Ev::FeArrive {
            bytes,
            span: ev_span,
            ..
        } => {
            record(
                trace,
                now,
                phase_ix,
                NodeId::FrontEnd,
                TraceKind::FeArrive,
                bytes,
            );
            let cost = if bytes == BATCH_BYTES {
                costs.fe_batch
            } else {
                cpu_cost(phase.frontend_cpu_ns_per_byte, bytes, costs.fe_perf)
            };
            let done = m.fe_cpu_work(now, cost, "frontend");
            span(
                spans,
                ev_span,
                Resource::FrontEndCpu.key(),
                SpanKind::FrontEnd,
                FRONT_END_NODE,
                now,
                done,
                bytes,
            );
            *horizon = (*horizon).max(done);
        }
        Ev::RecoveryKick { node, .. } => {
            // Request timeouts on the failed node expired: its loss
            // is now globally known and its partition is reassigned.
            fr.detected[node] = true;
            let touched = fr.assign_detected(nodes, now);
            refill(
                m,
                q,
                nodes,
                &touched,
                now,
                window,
                region,
                phase_writes,
                fr.policy,
                spans,
                qid,
            );
        }
        Ev::Admit { .. } | Ev::PhaseStart { .. } | Ev::Deadline { .. } | Ev::Retry { .. } => {
            unreachable!("control events never reach the phase executor")
        }
    }
}

/// Charges one batch read against the machine and returns the completion
/// event to schedule, or `None` if the node has nothing left to read.
/// Callers either push immediately ([`issue_read`]) or collect a batch
/// for [`EventQueue::push_many`] (phase priming).
#[allow(clippy::too_many_arguments)]
pub(crate) fn prepare_read(
    m: &mut Machine,
    nodes: &mut [NodeState],
    node: usize,
    now: SimTime,
    region: usize,
    phase_writes: bool,
    policy: RecoveryPolicy,
    spans: &mut Option<&mut SpanRt>,
    parent: SpanId,
    qid: u32,
) -> Option<(SimTime, Ev)> {
    let st = &mut nodes[node];
    if st.dead {
        return None;
    }
    if st.bytes_total > 0 && st.issued < st.own_batches {
        let is_last = st.issued == st.own_batches - 1;
        let bytes = if is_last {
            st.last_batch_bytes
        } else {
            BATCH_BYTES
        };
        st.issued += 1;
        st.issued_bytes += bytes;
        let aligned = align_sectors(bytes);
        let ready = m.read(node, now, aligned, region, phase_writes);
        let read_span = span(
            spans,
            parent,
            Resource::DiskMedia.key(),
            SpanKind::DiskRead,
            node as u32,
            now,
            ready.max(now),
            aligned,
        );
        Some((
            ready.max(now),
            Ev::BatchRead {
                node,
                bytes,
                span: read_span,
                query: qid,
            },
        ))
    } else if let Some(bytes) = st.recovery_pending.pop_front() {
        // A failed peer's batch: re-read it from the surviving disks
        // (mirror or parity reconstruction) and ship it here.
        st.issued += 1;
        st.issued_bytes += bytes;
        let aligned = align_sectors(bytes);
        let ready = m.recovery_read(policy, node, now, aligned, region, phase_writes);
        let read_span = span(
            spans,
            parent,
            Resource::Recovery.key(),
            SpanKind::DiskRead,
            node as u32,
            now,
            ready.max(now),
            aligned,
        );
        Some((
            ready.max(now),
            Ev::BatchRead {
                node,
                bytes,
                span: read_span,
                query: qid,
            },
        ))
    } else {
        None
    }
}

#[allow(clippy::too_many_arguments)]
fn issue_read(
    m: &mut Machine,
    q: &mut EvQ,
    nodes: &mut [NodeState],
    node: usize,
    now: SimTime,
    region: usize,
    phase_writes: bool,
    policy: RecoveryPolicy,
    spans: &mut Option<&mut SpanRt>,
    parent: SpanId,
    qid: u32,
) {
    if let Some((t, ev)) = prepare_read(
        m,
        nodes,
        node,
        now,
        region,
        phase_writes,
        policy,
        spans,
        parent,
        qid,
    ) {
        q.push(t, ev);
    }
}

#[allow(clippy::too_many_arguments)]
fn drain_outputs(
    m: &mut Machine,
    q: &mut EvQ,
    nodes: &mut [NodeState],
    costs: &PhaseCosts,
    fr: &FaultRt,
    node: usize,
    now: SimTime,
    flush: bool,
    horizon: &mut SimTime,
    region: usize,
    phase_writes: bool,
    phase_weights: Option<&[f64]>,
    spans: &mut Option<&mut SpanRt>,
    parent: SpanId,
    qid: u32,
) {
    let n = nodes.len();
    // Shuffle: emit batch-sized messages round-robin over peers. Once a
    // peer's failure is detected, senders skip it; before detection they
    // still send and pay the retry at arrival.
    loop {
        let st = &mut nodes[node];
        let emit = if st.shuffle_credit >= BATCH_BYTES as f64 {
            BATCH_BYTES
        } else if flush && st.shuffle_credit >= 1.0 {
            st.shuffle_credit as u64
        } else {
            break;
        };
        st.shuffle_credit -= emit as f64;
        let mut dst = st.pick_dst(phase_weights, n);
        if fr.any_dead && nodes[dst].dead && fr.detected[dst] {
            match next_healthy(nodes, dst) {
                Some(d) => dst = d,
                None => continue,
            }
        }
        send_peer(m, q, costs, node, dst, now, emit, spans, parent, qid);
    }
    // Front-end stream.
    loop {
        let st = &mut nodes[node];
        let emit = if st.frontend_credit >= BATCH_BYTES as f64 {
            BATCH_BYTES
        } else if flush && st.frontend_credit >= 1.0 {
            st.frontend_credit as u64
        } else {
            break;
        };
        st.frontend_credit -= emit as f64;
        send_frontend(m, q, costs, node, now, emit, spans, parent, qid);
    }
    // Local writes.
    loop {
        let st = &mut nodes[node];
        let emit = if st.write_credit >= BATCH_BYTES as f64 {
            BATCH_BYTES
        } else if flush && st.write_credit >= 1.0 {
            st.write_credit as u64
        } else {
            break;
        };
        st.write_credit -= emit as f64;
        let aligned = align_sectors(emit);
        let done = m.write(node, now, aligned, region, phase_writes);
        span(
            spans,
            parent,
            Resource::DiskMedia.key(),
            SpanKind::DiskWrite,
            node as u32,
            now,
            done,
            aligned,
        );
        *horizon = (*horizon).max(done);
    }
}

#[allow(clippy::too_many_arguments)]
fn send_peer(
    m: &mut Machine,
    q: &mut EvQ,
    costs: &PhaseCosts,
    src: usize,
    dst: usize,
    now: SimTime,
    bytes: u64,
    spans: &mut Option<&mut SpanRt>,
    parent: SpanId,
    qid: u32,
) {
    let msg_cost = costs.msg_cost(m, bytes);
    let send_done = m.node_cpu_work(src, now, msg_cost, "net-send");
    let arrival = m.peer_transfer(send_done, src, dst, bytes);
    let send_span = span(
        spans,
        parent,
        Resource::WorkerCpu.key(),
        SpanKind::Cpu,
        src as u32,
        now,
        send_done,
        bytes,
    );
    let wire_span = span(
        spans,
        send_span,
        Resource::Interconnect.key(),
        SpanKind::Transfer,
        dst as u32,
        send_done,
        arrival.max(now),
        bytes,
    );
    q.push(
        arrival.max(now),
        Ev::PeerArrive {
            src,
            dst,
            bytes,
            span: wire_span,
            query: qid,
        },
    );
}

#[allow(clippy::too_many_arguments)]
fn send_frontend(
    m: &mut Machine,
    q: &mut EvQ,
    costs: &PhaseCosts,
    src: usize,
    now: SimTime,
    bytes: u64,
    spans: &mut Option<&mut SpanRt>,
    parent: SpanId,
    qid: u32,
) {
    let msg_cost = costs.msg_cost(m, bytes);
    let send_done = m.node_cpu_work(src, now, msg_cost, "net-send");
    let arrival = m.fe_transfer(send_done, src, bytes);
    let send_span = span(
        spans,
        parent,
        Resource::WorkerCpu.key(),
        SpanKind::Cpu,
        src as u32,
        now,
        send_done,
        bytes,
    );
    let wire_span = span(
        spans,
        send_span,
        Resource::FrontEndLink.key(),
        SpanKind::Transfer,
        FRONT_END_NODE,
        send_done,
        arrival.max(now),
        bytes,
    );
    q.push(
        arrival.max(now),
        Ev::FeArrive {
            bytes,
            span: wire_span,
            query: qid,
        },
    );
}

/// Rounds a byte count up to whole sectors (disk requests must be
/// sector-aligned).
fn align_sectors(bytes: u64) -> u64 {
    bytes.div_ceil(512).max(1) * 512
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Any well-formed random plan executes on every architecture with
        /// the core invariants intact: positive elapsed time, CPU busy
        /// bounded by capacity, and bit-for-bit determinism.
        #[test]
        fn prop_random_plans_hold_invariants(
            read_mb in 1u64..256,
            shuffle_pct in 0u32..=100,
            fe_pct in 0u32..=20,
            write_pct in 0u32..=100,
            cpu_ns in 0.0f64..40.0,
            nodes in 1usize..10,
            arch_ix in 0usize..3,
        ) {
            let mut phase = PhasePlan::new("random", read_mb << 20);
            phase.read_cpu = vec![CpuWork { tag: "work", ns_per_byte: cpu_ns }];
            phase.shuffle_factor = shuffle_pct as f64 / 100.0;
            phase.frontend_factor = fe_pct as f64 / 100.0;
            phase.local_write_factor = write_pct as f64 / 100.0;
            if phase.shuffle_factor > 0.0 {
                phase.recv_cpu = vec![CpuWork { tag: "recv", ns_per_byte: cpu_ns / 2.0 }];
                phase.write_received = write_pct.is_multiple_of(2);
            }
            let plan = TaskPlan { task: "random", phases: vec![phase] };
            let arch = match arch_ix {
                0 => Architecture::active_disks(nodes),
                1 => Architecture::cluster(nodes),
                _ => Architecture::smp(nodes),
            };
            let sim = Simulation::new(arch);
            let a = sim.run_plan(&plan);
            let b = sim.run_plan(&plan);
            prop_assert_eq!(&a, &b, "determinism");
            prop_assert!(a.elapsed().as_nanos() > 0);
            for p in &a.phases {
                let capacity = p.elapsed * p.nodes as u64;
                prop_assert!(p.cpu_busy_total <= capacity);
            }
        }

        /// Doubling the dataset at fixed hardware never speeds a plan up.
        #[test]
        fn prop_more_data_is_never_faster(read_mb in 1u64..128, nodes in 1usize..8) {
            let build = |mb: u64| {
                let mut phase = PhasePlan::new("scan", mb << 20);
                phase.read_cpu = vec![CpuWork { tag: "w", ns_per_byte: 5.0 }];
                TaskPlan { task: "scan", phases: vec![phase] }
            };
            let sim = Simulation::new(Architecture::active_disks(nodes));
            let small = sim.run_plan(&build(read_mb)).elapsed();
            let large = sim.run_plan(&build(read_mb * 2)).elapsed();
            prop_assert!(large >= small);
        }
    }

    #[test]
    fn align_rounds_up() {
        assert_eq!(align_sectors(1), 512);
        assert_eq!(align_sectors(512), 512);
        assert_eq!(align_sectors(513), 1024);
    }

    #[test]
    fn aggregate_runs_and_is_deterministic() {
        let sim = Simulation::new(Architecture::active_disks(4));
        let a = sim.run(TaskKind::Aggregate);
        let b = sim.run(TaskKind::Aggregate);
        assert_eq!(a.elapsed(), b.elapsed(), "simulation is deterministic");
        assert!(a.elapsed().as_secs_f64() > 1.0);
    }

    #[test]
    fn wheel_and_heap_backends_produce_identical_reports() {
        use simcore::QueueBackend;
        let cases = [
            (Architecture::active_disks(8), TaskKind::Sort),
            (Architecture::cluster(4), TaskKind::Join),
            (Architecture::smp(4), TaskKind::DataMine),
        ];
        let backends = [
            QueueBackend::BinaryHeap,
            QueueBackend::ShardedWheel { shards: 1 },
            QueueBackend::ShardedWheel { shards: 4 },
        ];
        for (arch, task) in cases {
            let wheel = Simulation::new(arch.clone())
                .with_queue_backend(QueueBackend::CalendarWheel)
                .run(task);
            for backend in backends {
                let other = Simulation::new(arch.clone())
                    .with_queue_backend(backend)
                    .run(task);
                assert_eq!(
                    wheel, other,
                    "{task:?}/{backend:?}: backends must agree field-for-field"
                );
            }
        }
    }

    #[test]
    fn select_scales_with_disks() {
        let t16 = Simulation::new(Architecture::active_disks(16))
            .run(TaskKind::Select)
            .elapsed();
        let t64 = Simulation::new(Architecture::active_disks(64))
            .run(TaskKind::Select)
            .elapsed();
        let speedup = t16.as_secs_f64() / t64.as_secs_f64();
        assert!(
            (2.5..4.5).contains(&speedup),
            "4× disks give near-linear speedup, got {speedup}"
        );
    }

    #[test]
    fn sort_has_two_phases_with_breakdown() {
        let r = Simulation::new(Architecture::active_disks(16)).run(TaskKind::Sort);
        assert_eq!(r.phases.len(), 2);
        let p1 = &r.phases[0];
        assert!(p1.cpu_busy_by_tag.contains_key("partitioner"));
        assert!(p1.cpu_busy_by_tag.contains_key("sort"));
        let p2 = &r.phases[1];
        assert!(p2.cpu_busy_by_tag.contains_key("merge"));
    }

    #[test]
    fn traced_run_matches_untraced_run() {
        let sim = Simulation::new(Architecture::active_disks(8));
        let plain = sim.run(TaskKind::GroupBy);
        let (traced, trace) = sim.run_traced(TaskKind::GroupBy);
        assert_eq!(plain, traced, "tracing must not perturb the simulation");
        assert!(trace.total() > 0);
        // Every read produced a processed event.
        assert_eq!(
            trace.count(crate::trace::TraceKind::ReadDone),
            trace.count(crate::trace::TraceKind::BatchProcessed)
        );
        // Events fire in nondecreasing time order per the event loop.
        let evs = trace.events();
        assert!(evs.windows(2).all(|w| w[0].phase < w[1].phase
            || w[0].time <= w[1].time
            || w[1].kind == crate::trace::TraceKind::WriteDone));
    }

    #[test]
    fn trace_counts_shuffle_arrivals() {
        let sim = Simulation::new(Architecture::active_disks(8));
        let (_, trace) = sim.run_traced(TaskKind::Sort);
        // Sort repartitions everything: arrivals ~= 16 GB / 256 KB.
        let arrivals = trace.count(crate::trace::TraceKind::PeerArrive);
        let expected = 16_000_000_000 / super::BATCH_BYTES;
        let err = (arrivals as f64 - expected as f64).abs() / expected as f64;
        assert!(err < 0.05, "arrivals {arrivals} vs expected ~{expected}");
        assert!(trace.count(crate::trace::TraceKind::WriteDone) > 0);
    }

    #[test]
    fn degraded_disk_creates_a_straggler() {
        let healthy = Simulation::new(Architecture::active_disks(8)).run(TaskKind::Select);
        let degraded = Simulation::new(Architecture::active_disks(8))
            .with_degraded_disk(0, 1_000)
            .run(TaskKind::Select);
        // The whole phase waits for the sick drive.
        assert!(
            degraded.elapsed().as_secs_f64() > healthy.elapsed().as_secs_f64() * 1.03,
            "healthy {}, degraded {}",
            healthy.elapsed(),
            degraded.elapsed()
        );
        // The tail shows in the service-time distribution.
        assert!(degraded.disk_service.max() >= healthy.disk_service.max());
    }

    #[test]
    fn skewed_shuffle_slows_the_task() {
        use tasks::planner::apply_shuffle_skew;
        let arch = Architecture::active_disks(8);
        let uniform = Simulation::new(arch.clone()).run(TaskKind::Sort);
        let mut skewed_plan = tasks::plan_task(TaskKind::Sort, &arch);
        // One node receives half of everything.
        let mut w = vec![0.5 / 7.0; 8];
        w[0] = 0.5;
        apply_shuffle_skew(&mut skewed_plan, w);
        let skewed = Simulation::new(arch).run_plan(&skewed_plan);
        assert!(
            skewed.elapsed().as_secs_f64() > uniform.elapsed().as_secs_f64() * 1.3,
            "hot receiver must slow the sort: uniform {}, skewed {}",
            uniform.elapsed(),
            skewed.elapsed()
        );
    }

    #[test]
    fn smp_moves_everything_over_the_loop() {
        let r = Simulation::new(Architecture::smp(16)).run(TaskKind::Select);
        // Reads cross the I/O interconnect on an SMP.
        assert!(
            r.phases[0].interconnect_bytes >= TaskKind::Select.dataset().total_bytes,
            "got {}",
            r.phases[0].interconnect_bytes
        );
        // Active Disks filter at the disk: only results move.
        let a = Simulation::new(Architecture::active_disks(16)).run(TaskKind::Select);
        assert!(a.frontend_bytes() < r.phases[0].interconnect_bytes / 10);
    }
}
