//! Seeded workload generation and robustness policies for loaded runs.
//!
//! A [`WorkloadSpec`] describes a stream of queries over the eight DSS
//! tasks: an arrival process (open-loop Poisson or closed-loop), a task
//! mix, a query count, and a seed. Generation is fully deterministic —
//! the same spec always yields the same task sequence and arrival times,
//! which is what lets loaded runs stay byte-identical across `--jobs`,
//! queue backends, and cache states (the spec is part of the cache key).
//!
//! [`AdmissionPolicy`] bounds concurrency with an explicit wait queue
//! (overflow is *counted* load shedding, never a silent drop) and
//! [`DeadlinePolicy`] gives each query a deadline with seeded
//! exponential backoff and bounded retries.

use simcore::{Duration, SimTime, SplitMix64};
use tasks::TaskKind;

/// How queries arrive at the system.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalProcess {
    /// Open loop: exponentially distributed inter-arrival times at
    /// `qps` queries per second, independent of completions.
    Poisson {
        /// Mean arrival rate in queries per second (must be positive).
        qps: f64,
    },
    /// Closed loop: `clients` queries are in flight from time zero; each
    /// completion immediately admits the next query in the sequence.
    Closed {
        /// Number of concurrent clients (must be positive).
        clients: u32,
    },
}

/// A deterministic query workload: arrival process, task mix, count, seed.
///
/// # Example
///
/// ```
/// use howsim::workload::WorkloadSpec;
///
/// let w = WorkloadSpec::parse_spec("poisson:0.5:24@7", "select:2,join:1").unwrap();
/// assert_eq!(w.queries, 24);
/// assert_eq!(w.summary(), "poisson:0.5:24@7 mix=select:2,join:1");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSpec {
    /// The arrival process.
    pub arrival: ArrivalProcess,
    /// Task mix as `(task, weight)` pairs (weights need not sum to
    /// anything in particular; zero-weight entries are rejected).
    pub mix: Vec<(TaskKind, u32)>,
    /// Total number of queries generated.
    pub queries: u32,
    /// Seed of the generator streams (task draws, inter-arrival times).
    pub seed: u64,
}

/// Parses a task name as used in mix specs (`select`, `join`, ...).
fn parse_task(name: &str) -> Result<TaskKind, String> {
    TaskKind::ALL
        .into_iter()
        .find(|t| t.name() == name)
        .ok_or_else(|| {
            let names: Vec<&str> = TaskKind::ALL.iter().map(|t| t.name()).collect();
            format!(
                "unknown task '{name}' (expected one of {})",
                names.join(", ")
            )
        })
}

/// Parses a duration literal: `<n>ns`, `<n>us`, `<n>ms`, or `<x>s`.
pub fn parse_duration(s: &str) -> Result<Duration, String> {
    let err = || format!("bad duration '{s}' (expected e.g. 120s, 250ms, 10us, 500ns)");
    if let Some(v) = s.strip_suffix("ns") {
        return v
            .parse::<u64>()
            .map(Duration::from_nanos)
            .map_err(|_| err());
    }
    if let Some(v) = s.strip_suffix("us") {
        return v
            .parse::<u64>()
            .map(Duration::from_micros)
            .map_err(|_| err());
    }
    if let Some(v) = s.strip_suffix("ms") {
        return v
            .parse::<u64>()
            .map(Duration::from_millis)
            .map_err(|_| err());
    }
    if let Some(v) = s.strip_suffix('s') {
        let secs: f64 = v.parse().map_err(|_| err())?;
        if !(secs >= 0.0 && secs.is_finite()) {
            return Err(err());
        }
        return Ok(Duration::from_secs_f64(secs));
    }
    Err(err())
}

/// Renders a duration the way specs write them (integer nanoseconds
/// folded up to the coarsest exact unit), so summaries round-trip.
pub(crate) fn duration_spec(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns == 0 {
        return "0s".into();
    }
    if ns.is_multiple_of(1_000_000_000) {
        format!("{}s", ns / 1_000_000_000)
    } else if ns.is_multiple_of(1_000_000) {
        format!("{}ms", ns / 1_000_000)
    } else if ns.is_multiple_of(1_000) {
        format!("{}us", ns / 1_000)
    } else {
        format!("{ns}ns")
    }
}

impl WorkloadSpec {
    /// An open-loop Poisson workload of `queries` single-task queries.
    pub fn poisson(qps: f64, queries: u32) -> Self {
        WorkloadSpec {
            arrival: ArrivalProcess::Poisson { qps },
            mix: vec![(TaskKind::Select, 1)],
            queries,
            seed: 0,
        }
    }

    /// A closed-loop workload of `queries` queries from `clients`
    /// concurrent clients.
    pub fn closed(clients: u32, queries: u32) -> Self {
        WorkloadSpec {
            arrival: ArrivalProcess::Closed { clients },
            mix: vec![(TaskKind::Select, 1)],
            queries,
            seed: 0,
        }
    }

    /// Replaces the task mix.
    #[must_use]
    pub fn with_mix(mut self, mix: Vec<(TaskKind, u32)>) -> Self {
        self.mix = mix;
        self
    }

    /// Replaces the generator seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Parses the CLI form: `--load` is
    /// `poisson:<qps>:<queries>[@seed]` or `closed:<clients>:<queries>[@seed]`,
    /// and `--mix` is `all`, a comma list of task names, or weighted
    /// entries `name:weight` (e.g. `select:2,join:1`).
    pub fn parse_spec(load: &str, mix: &str) -> Result<Self, String> {
        let (head, seed) = match load.split_once('@') {
            Some((h, s)) => (
                h,
                s.parse::<u64>()
                    .map_err(|_| format!("bad seed in load spec '{load}'"))?,
            ),
            None => (load, 0),
        };
        let parts: Vec<&str> = head.split(':').collect();
        let arrival = match parts.as_slice() {
            ["poisson", qps, _] => {
                let qps: f64 = qps
                    .parse()
                    .map_err(|_| format!("bad rate in load spec '{load}'"))?;
                if !(qps > 0.0 && qps.is_finite()) {
                    return Err(format!("arrival rate must be positive, got {qps}"));
                }
                ArrivalProcess::Poisson { qps }
            }
            ["closed", clients, _] => {
                let clients: u32 = clients
                    .parse()
                    .map_err(|_| format!("bad client count in load spec '{load}'"))?;
                if clients == 0 {
                    return Err("closed-loop workload needs at least one client".into());
                }
                ArrivalProcess::Closed { clients }
            }
            _ => {
                return Err(format!(
                    "bad load spec '{load}' (expected poisson:<qps>:<queries>[@seed] \
                     or closed:<clients>:<queries>[@seed])"
                ))
            }
        };
        let queries: u32 = parts[2]
            .parse()
            .map_err(|_| format!("bad query count in load spec '{load}'"))?;
        if queries == 0 {
            return Err("workload needs at least one query".into());
        }
        let mix = Self::parse_mix(mix)?;
        Ok(WorkloadSpec {
            arrival,
            mix,
            queries,
            seed,
        })
    }

    /// Parses a `--mix` string (see [`WorkloadSpec::parse_spec`]).
    pub fn parse_mix(mix: &str) -> Result<Vec<(TaskKind, u32)>, String> {
        if mix == "all" {
            return Ok(TaskKind::ALL.into_iter().map(|t| (t, 1)).collect());
        }
        let mut out = Vec::new();
        for entry in mix.split(',') {
            let (name, weight) = match entry.split_once(':') {
                Some((n, w)) => (
                    n,
                    w.parse::<u32>()
                        .map_err(|_| format!("bad weight in mix entry '{entry}'"))?,
                ),
                None => (entry, 1),
            };
            if weight == 0 {
                return Err(format!("mix entry '{entry}' has zero weight"));
            }
            out.push((parse_task(name)?, weight));
        }
        if out.is_empty() {
            return Err("empty task mix".into());
        }
        Ok(out)
    }

    /// Canonical one-line form; `parse_spec` round-trips it (the part
    /// before `mix=` is the `--load` argument, the part after is
    /// `--mix`). Also the workload's contribution to the cache key.
    pub fn summary(&self) -> String {
        let head = match self.arrival {
            ArrivalProcess::Poisson { qps } => format!("poisson:{qps}:{}", self.queries),
            ArrivalProcess::Closed { clients } => format!("closed:{clients}:{}", self.queries),
        };
        let mix = self
            .mix
            .iter()
            .map(|(t, w)| format!("{}:{w}", t.name()))
            .collect::<Vec<_>>()
            .join(",");
        format!("{head}@{} mix={mix}", self.seed)
    }

    /// The deterministic task sequence: one seeded draw from the mix per
    /// query.
    pub fn tasks(&self) -> Vec<TaskKind> {
        let mut rng = SplitMix64::new(self.seed);
        let total: u64 = self.mix.iter().map(|&(_, w)| u64::from(w)).sum();
        (0..self.queries)
            .map(|_| {
                let mut pick = rng.next_below(total);
                for &(task, w) in &self.mix {
                    if pick < u64::from(w) {
                        return task;
                    }
                    pick -= u64::from(w);
                }
                self.mix.last().expect("non-empty mix").0
            })
            .collect()
    }

    /// The deterministic arrival times. Poisson workloads draw seeded
    /// exponential inter-arrival gaps (inverse CDF); closed-loop
    /// workloads arrive at time zero — the executor gates them on
    /// completions instead.
    pub fn arrival_times(&self) -> Vec<SimTime> {
        match self.arrival {
            ArrivalProcess::Poisson { qps } => {
                // Independent stream from the task draws, so changing the
                // mix never reshuffles arrival times.
                let mut rng = SplitMix64::new(self.seed).split();
                let mut clock = 0.0f64;
                (0..self.queries)
                    .map(|_| {
                        let u = rng.next_f64();
                        clock += -(1.0 - u).ln() / qps;
                        SimTime::ZERO + Duration::from_secs_f64(clock)
                    })
                    .collect()
            }
            ArrivalProcess::Closed { .. } => vec![SimTime::ZERO; self.queries as usize],
        }
    }
}

/// Bounded-concurrency admission control. Queries beyond
/// `max_concurrent` wait in a FIFO queue of depth `queue_limit`; a query
/// arriving when the queue is full is *shed* — rejected immediately,
/// counted in the load report, never silently dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionPolicy {
    /// Queries executing concurrently on the machine.
    pub max_concurrent: usize,
    /// Admitted queries waiting for an execution slot.
    pub queue_limit: usize,
}

impl Default for AdmissionPolicy {
    fn default() -> Self {
        AdmissionPolicy {
            max_concurrent: 4,
            queue_limit: 16,
        }
    }
}

impl AdmissionPolicy {
    /// Parses the CLI form `<max_concurrent>:<queue_limit>`.
    pub fn parse_spec(s: &str) -> Result<Self, String> {
        let err = || format!("bad admission spec '{s}' (expected <max_concurrent>:<queue_limit>)");
        let (c, q) = s.split_once(':').ok_or_else(err)?;
        let max_concurrent: usize = c.parse().map_err(|_| err())?;
        let queue_limit: usize = q.parse().map_err(|_| err())?;
        if max_concurrent == 0 {
            return Err("admission control needs max_concurrent >= 1".into());
        }
        Ok(AdmissionPolicy {
            max_concurrent,
            queue_limit,
        })
    }

    /// Canonical form; `parse_spec` round-trips it.
    pub fn summary(&self) -> String {
        format!("{}:{}", self.max_concurrent, self.queue_limit)
    }
}

/// Per-query deadline, retry, and backoff policy. A query that misses
/// its deadline is cancelled; if retries remain it restarts after a
/// seeded exponential backoff, otherwise it aborts with a partial
/// report (completed phases are kept).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeadlinePolicy {
    /// Deadline per attempt (`None` disables timeouts entirely). The
    /// first attempt's clock starts at arrival (queue wait counts);
    /// retries get a fresh full deadline from their restart.
    pub deadline: Option<Duration>,
    /// Retries after the first attempt times out.
    pub max_retries: u32,
    /// Base backoff; attempt `k` waits `backoff * 2^k` plus seeded
    /// jitter of up to 50%.
    pub backoff: Duration,
}

impl Default for DeadlinePolicy {
    fn default() -> Self {
        DeadlinePolicy {
            deadline: None,
            max_retries: 0,
            backoff: Duration::from_secs(10),
        }
    }
}

impl DeadlinePolicy {
    /// Parses the CLI form: `none`, `<deadline>`, or
    /// `<deadline>:<retries>:<backoff>` (e.g. `120s:2:5s`).
    pub fn parse_spec(s: &str) -> Result<Self, String> {
        if s == "none" {
            return Ok(DeadlinePolicy {
                deadline: None,
                ..DeadlinePolicy::default()
            });
        }
        let parts: Vec<&str> = s.split(':').collect();
        match parts.as_slice() {
            [d] => Ok(DeadlinePolicy {
                deadline: Some(parse_duration(d)?),
                ..DeadlinePolicy::default()
            }),
            [d, r, b] => Ok(DeadlinePolicy {
                deadline: Some(parse_duration(d)?),
                max_retries: r
                    .parse()
                    .map_err(|_| format!("bad retry count in deadline spec '{s}'"))?,
                backoff: parse_duration(b)?,
            }),
            _ => Err(format!(
                "bad deadline spec '{s}' (expected none, <deadline>, or \
                 <deadline>:<retries>:<backoff>)"
            )),
        }
    }

    /// Canonical form; `parse_spec` round-trips it.
    pub fn summary(&self) -> String {
        match self.deadline {
            None => "none".into(),
            Some(d) => format!(
                "{}:{}:{}",
                duration_spec(d),
                self.max_retries,
                duration_spec(self.backoff)
            ),
        }
    }

    /// The seeded backoff before retry attempt `attempt` (1-based):
    /// `backoff * 2^(attempt-1)` plus up to 50% jitter drawn from `rng`.
    pub(crate) fn backoff_for(&self, attempt: u32, rng: &mut SplitMix64) -> Duration {
        let doubled = self.backoff * (1u64 << (attempt - 1).min(20));
        doubled + doubled.scale(0.5 * rng.next_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_spec_round_trips() {
        for (load, mix) in [
            ("poisson:0.5:24@7", "select:2,join:1"),
            ("closed:4:100@0", "sort:1"),
            ("poisson:12:3@999", "select:1,aggregate:3,dmine:2"),
        ] {
            let w = WorkloadSpec::parse_spec(load, mix).expect("parses");
            let summary = w.summary();
            let (l2, m2) = summary.split_once(" mix=").expect("has mix");
            let again = WorkloadSpec::parse_spec(l2, m2).expect("round-trips");
            assert_eq!(w, again, "{summary}");
        }
    }

    #[test]
    fn mix_all_and_unweighted_entries() {
        let all = WorkloadSpec::parse_mix("all").unwrap();
        assert_eq!(all.len(), TaskKind::ALL.len());
        let pair = WorkloadSpec::parse_mix("select,join").unwrap();
        assert_eq!(pair, vec![(TaskKind::Select, 1), (TaskKind::Join, 1)]);
    }

    #[test]
    fn bad_specs_are_rejected_eagerly() {
        assert!(WorkloadSpec::parse_spec("poisson:0:4", "all").is_err());
        assert!(WorkloadSpec::parse_spec("poisson:1:0", "all").is_err());
        assert!(WorkloadSpec::parse_spec("open:1:4", "all").is_err());
        assert!(WorkloadSpec::parse_spec("closed:0:4", "all").is_err());
        assert!(WorkloadSpec::parse_spec("poisson:1:4", "warble").is_err());
        assert!(WorkloadSpec::parse_spec("poisson:1:4", "select:0").is_err());
        assert!(AdmissionPolicy::parse_spec("0:4").is_err());
        assert!(AdmissionPolicy::parse_spec("four").is_err());
        assert!(DeadlinePolicy::parse_spec("120q").is_err());
        assert!(DeadlinePolicy::parse_spec("120s:x:5s").is_err());
    }

    #[test]
    fn same_seed_same_sequence_different_seed_differs() {
        let w = WorkloadSpec::poisson(0.5, 64)
            .with_mix(WorkloadSpec::parse_mix("all").unwrap())
            .with_seed(42);
        assert_eq!(w.tasks(), w.tasks(), "task draws are deterministic");
        assert_eq!(
            w.arrival_times(),
            w.arrival_times(),
            "arrival times are deterministic"
        );
        let other = w.clone().with_seed(43);
        assert_ne!(w.tasks(), other.tasks());
        assert_ne!(w.arrival_times(), other.arrival_times());
    }

    #[test]
    fn poisson_arrivals_are_increasing_at_roughly_the_rate() {
        let w = WorkloadSpec::poisson(2.0, 500).with_seed(1);
        let at = w.arrival_times();
        assert!(at.windows(2).all(|p| p[0] <= p[1]), "nondecreasing");
        let span = at.last().unwrap().since(at[0]).as_secs_f64();
        let rate = 499.0 / span;
        assert!((1.5..2.5).contains(&rate), "measured rate {rate}");
    }

    #[test]
    fn mix_change_does_not_reshuffle_arrivals() {
        let a = WorkloadSpec::poisson(1.0, 16).with_seed(5);
        let b = a
            .clone()
            .with_mix(WorkloadSpec::parse_mix("sort:3,join:1").unwrap());
        assert_eq!(a.arrival_times(), b.arrival_times());
        assert_ne!(a.tasks(), b.tasks());
    }

    #[test]
    fn closed_arrivals_are_all_zero() {
        let w = WorkloadSpec::closed(4, 10);
        assert!(w.arrival_times().iter().all(|&t| t == SimTime::ZERO));
    }

    #[test]
    fn admission_and_deadline_round_trip() {
        let a = AdmissionPolicy::parse_spec("8:32").unwrap();
        assert_eq!(AdmissionPolicy::parse_spec(&a.summary()).unwrap(), a);
        for s in ["none", "120s:2:5s", "250ms:0:10s"] {
            let d = DeadlinePolicy::parse_spec(s).unwrap();
            assert_eq!(DeadlinePolicy::parse_spec(&d.summary()).unwrap(), d);
        }
        assert_eq!(
            DeadlinePolicy::parse_spec("90s").unwrap().summary(),
            "90s:0:10s"
        );
    }

    #[test]
    fn backoff_doubles_with_bounded_jitter() {
        let dl = DeadlinePolicy::parse_spec("10s:3:2s").unwrap();
        let mut rng = SplitMix64::new(9);
        for attempt in 1..=3u32 {
            let base = Duration::from_secs(2) * (1u64 << (attempt - 1));
            let b = dl.backoff_for(attempt, &mut rng);
            assert!(
                b >= base && b <= base + base.scale(0.5),
                "attempt {attempt}: {b}"
            );
        }
    }

    #[test]
    fn duration_literals_parse_and_render() {
        assert_eq!(parse_duration("120s").unwrap(), Duration::from_secs(120));
        assert_eq!(parse_duration("250ms").unwrap(), Duration::from_millis(250));
        assert_eq!(
            parse_duration("1.5s").unwrap(),
            Duration::from_secs_f64(1.5)
        );
        assert_eq!(duration_spec(Duration::from_millis(1500)), "1500ms");
        assert_eq!(duration_spec(Duration::from_secs(3)), "3s");
    }
}
