//! Multi-query executor: many task plans interleaved deterministically on
//! one shared [`Machine`], wrapped in an overload-robustness control plane.
//!
//! The phase executor itself is the single-query state machine from
//! [`crate::exec`] (`handle_ev`, `prepare_read`, `init_phase_nodes`) —
//! this module adds the control plane around it:
//!
//! - **Admission control** ([`AdmissionPolicy`]): at most `max_concurrent`
//!   queries execute at once; up to `queue_limit` wait in FIFO order; any
//!   further arrival is *shed* — counted in its [`QueryOutcome`], never
//!   silently dropped.
//! - **Deadlines with bounded retry** ([`DeadlinePolicy`]): a query that
//!   misses its deadline (measured from admission for the first attempt,
//!   from the restart for retries) is torn down, waits a seeded
//!   exponential backoff, and restarts from its first phase; after
//!   `max_retries` timeouts it finishes as [`QueryStatus::TimedOut`] with
//!   the phases it completed preserved as a partial report.
//! - **Fault interaction**: one global fault schedule drives the shared
//!   machine; each running query observes a failure through its own
//!   per-query recovery state, so a mid-load disk fault triggers the
//!   PR 5 recovery policies for every query it touches without
//!   corrupting the others.
//!
//! # Determinism
//!
//! Everything is driven by one event queue ordered by exact
//! `(time, sequence)` — control events (admission, deadlines, retries)
//! ride the same queue as disk and network completions, so the full
//! interleaving is a pure function of the workload spec and seed. The
//! report is byte-identical across `--jobs`, all four queue backends,
//! and cache states.
//!
//! # Simplifications (documented, deliberate)
//!
//! - The machine's per-phase extent allocators are shared: every query
//!   phase start calls `begin_phase`, resetting the layout cursors
//!   exactly as the single-query path does. Concurrent queries therefore
//!   contend for disk arms, CPU, and links but not for disk capacity
//!   layout; a one-query workload is bit-identical to `run_plan`.
//! - A query in backoff keeps its admission slot until it finishes: its
//!   stale in-flight events must drain from the shared machine before the
//!   retry restarts, and modelling the slot as released mid-drain would
//!   let the admission gate overcommit the machine.
//! - Fault detection under load is clock-based (`DETECT_TIMEOUT` after
//!   injection) for every query, whereas an idle single-query run may
//!   observe a pre-phase fault at its barrier; faulted loaded runs are
//!   deterministic but not required to match a faulted solo run.

use std::collections::VecDeque;

use simcore::span::{SpanId, SpanKind, FRONT_END_NODE};
use simcore::{Duration, EventQueue, SimTime, SplitMix64};
use tasks::plan::TaskPlan;
use tasks::{plan_task, TaskKind};

use crate::exec::{
    handle_ev, init_phase_nodes, phase_region, phase_writes, prepare_read, shard_of_ev, Ev, EvQ,
    FaultRt, NodeState, PhaseCosts, PhaseCtx, Simulation, SpanRt, BARRIER_RESOURCE,
    POSITIONING_RESOURCE,
};
use crate::faults::{FaultPlan, RecoveryPolicy, DETECT_TIMEOUT};
use crate::machine::Machine;
use crate::metrics::MetricsBuilder;
use crate::profile::{LoadSpanTrace, PhaseSpans, QuerySpans};
use crate::workload::{AdmissionPolicy, ArrivalProcess, DeadlinePolicy, WorkloadSpec};

/// Terminal status of one query in a loaded run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryStatus {
    /// Ran to completion (possibly after retries).
    Completed,
    /// Rejected at admission: the wait queue was already full.
    Shed,
    /// Missed its deadline with no retries left, or timed out while
    /// still waiting for an execution slot.
    TimedOut,
    /// Killed by the fail-stop recovery policy or by losing every node.
    Aborted,
}

impl QueryStatus {
    /// Stable lower-case name for manifests and tables.
    pub fn name(self) -> &'static str {
        match self {
            QueryStatus::Completed => "completed",
            QueryStatus::Shed => "shed",
            QueryStatus::TimedOut => "timed_out",
            QueryStatus::Aborted => "aborted",
        }
    }

    /// Inverse of [`QueryStatus::name`].
    pub fn parse(name: &str) -> Option<Self> {
        match name {
            "completed" => Some(QueryStatus::Completed),
            "shed" => Some(QueryStatus::Shed),
            "timed_out" => Some(QueryStatus::TimedOut),
            "aborted" => Some(QueryStatus::Aborted),
            _ => None,
        }
    }
}

/// One completed phase of a query's final attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryPhase {
    /// Phase name (paper spelling).
    pub name: &'static str,
    /// Wall time from the phase start to its barrier completion.
    pub elapsed: Duration,
}

/// The per-query record of a loaded run.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryOutcome {
    /// Index in arrival order (the span arena's query lane).
    pub query: u32,
    /// The DSS task this query ran.
    pub task: TaskKind,
    /// When the query arrived at the admission gate.
    pub arrival: SimTime,
    /// When its first attempt began executing (`None` if shed or timed
    /// out while still queued).
    pub started: Option<SimTime>,
    /// When the query reached its terminal status.
    pub finished: SimTime,
    /// Terminal status.
    pub status: QueryStatus,
    /// Retries consumed (timeouts that led to a restart).
    pub retries: u32,
    /// Deadline expirations observed (retried or terminal).
    pub timeouts: u32,
    /// Phases the final attempt completed — partial when the query
    /// timed out or aborted mid-plan.
    pub phases: Vec<QueryPhase>,
    /// Work events attributed to this query (all attempts).
    pub events: u64,
}

impl QueryOutcome {
    /// Arrival-to-finish latency (includes queueing and backoff).
    pub fn latency(&self) -> Duration {
        self.finished.since(self.arrival)
    }
}

/// Report of one loaded multi-query run.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadReport {
    /// Architecture short name ("Active", "Cluster", "SMP").
    pub architecture: &'static str,
    /// Node/disk count.
    pub disks: usize,
    /// Workload spec summary (round-trips through the cache).
    pub workload: String,
    /// Admission policy summary.
    pub admission: String,
    /// Deadline policy summary.
    pub deadline: String,
    /// Per-query outcomes in arrival order.
    pub outcomes: Vec<QueryOutcome>,
    /// Makespan: the latest query finish time.
    pub elapsed: Duration,
    /// Total discrete events processed (work + control).
    pub events: u64,
    /// Faults injected by the global schedule.
    pub faults_injected: u64,
    /// Batches re-read by survivors under recovery.
    pub work_redistributed: u64,
    /// Aggregate failed-disk downtime over the run.
    pub downtime: Duration,
}

impl LoadReport {
    /// Number of queries with the given terminal status.
    pub fn count(&self, status: QueryStatus) -> usize {
        self.outcomes.iter().filter(|o| o.status == status).count()
    }

    /// Queries that completed.
    pub fn completed(&self) -> usize {
        self.count(QueryStatus::Completed)
    }

    /// Queries shed at admission.
    pub fn shed(&self) -> usize {
        self.count(QueryStatus::Shed)
    }

    /// Queries that timed out terminally.
    pub fn timed_out(&self) -> usize {
        self.count(QueryStatus::TimedOut)
    }

    /// Queries aborted by fault recovery.
    pub fn aborted(&self) -> usize {
        self.count(QueryStatus::Aborted)
    }

    /// Total retries consumed across all queries.
    pub fn retries(&self) -> u64 {
        self.outcomes.iter().map(|o| u64::from(o.retries)).sum()
    }

    /// Total deadline expirations across all queries.
    pub fn timeouts(&self) -> u64 {
        self.outcomes.iter().map(|o| u64::from(o.timeouts)).sum()
    }

    /// Sorted arrival-to-finish latencies of the completed queries.
    pub fn completed_latencies(&self) -> Vec<Duration> {
        let mut v: Vec<Duration> = self
            .outcomes
            .iter()
            .filter(|o| o.status == QueryStatus::Completed)
            .map(QueryOutcome::latency)
            .collect();
        v.sort();
        v
    }

    /// Nearest-rank percentile (`p` in 0..=100) of completed-query
    /// latency; `None` when nothing completed. Exact integer selection —
    /// no interpolation — so the value is a latency that actually
    /// occurred and is bit-stable.
    pub fn latency_percentile(&self, p: f64) -> Option<Duration> {
        let lats = self.completed_latencies();
        if lats.is_empty() {
            return None;
        }
        let rank = ((p / 100.0) * lats.len() as f64).ceil() as usize;
        Some(lats[rank.clamp(1, lats.len()) - 1])
    }

    /// Completed queries per second of makespan.
    pub fn goodput_qps(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.completed() as f64 / secs
    }
}

/// Control-plane state of one query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum QState {
    /// Arrival event not yet popped.
    Pending,
    /// Admitted to the wait queue, no execution slot yet.
    Waiting,
    /// Executing phases on the machine.
    Running,
    /// Timed out; waiting for backoff to elapse and stale in-flight
    /// events to drain before restarting.
    AwaitRetry,
    /// Terminal.
    Done,
}

/// Per-query executor state: the single-query locals of `run_phase`,
/// lifted into a struct so many queries can hold a phase open at once.
#[derive(Clone)]
struct QueryRun {
    task: TaskKind,
    plan_ix: usize,
    arrival: SimTime,
    started: Option<SimTime>,
    attempt: u32,
    phase_ix: usize,
    nodes: Vec<NodeState>,
    costs: Option<PhaseCosts>,
    /// Per-query recovery view (empty fault schedule; the global
    /// schedule in [`Mq::fs`] drives the shared machine).
    fr: FaultRt,
    horizon: SimTime,
    phase_start: SimTime,
    state: QState,
    status: QueryStatus,
    retry_armed: bool,
    retries: u32,
    timeouts: u32,
    finished: SimTime,
    events: u64,
    phases_done: Vec<QueryPhase>,
    /// Saved span-chain anchors, swapped into the shared [`SpanRt`]
    /// whenever this query's events are handled.
    span_last: SpanId,
    span_last_end: SimTime,
    phase_spans: Vec<PhaseSpans>,
}

/// The multi-query driver: one shared machine, one event queue, N query
/// state machines. `Clone` is the fork primitive: a warm prefix is
/// cloned once per what-if continuation (see [`WarmStart`]).
#[derive(Clone)]
struct Mq {
    machine: Machine,
    q: EventQueue<Ev>,
    runs: Vec<QueryRun>,
    plans: Vec<TaskPlan>,
    /// Task kind of each entry in `plans`, so [`WarmStart::extend`] can
    /// reuse plans for kinds the warmup already planned.
    kinds: Vec<TaskKind>,
    /// In-flight work events per query — the phase-completion gate.
    outstanding: Vec<u64>,
    /// Global fault schedule driving the shared machine.
    fs: FaultRt,
    /// Per-node detection clock (fault time + `DETECT_TIMEOUT`).
    detect_at: Vec<Option<SimTime>>,
    adm: AdmissionPolicy,
    dl: DeadlinePolicy,
    running: usize,
    waiting: VecDeque<u32>,
    /// Next query a closed-loop client issues when one finishes.
    next_closed: usize,
    closed: bool,
    backoff_rng: SplitMix64,
    spans: Option<SpanRt>,
    /// Popped-but-unprocessed event stashed by a paused [`Mq::step`]
    /// (already counted by `q.popped()`, so resumed event totals match
    /// an uninterrupted run).
    pending: Option<(SimTime, Ev)>,
    /// Time of the last processed event — the fork origin.
    clock: SimTime,
    /// Set by a global fail-stop abort: every query is terminal and the
    /// remaining queue contents are stale, so `step` must not resume.
    halted: bool,
}

impl Mq {
    fn run_loop(&mut self, metrics: &mut Option<&mut MetricsBuilder>) {
        self.step(None, metrics);
    }

    /// Processes events strictly before `limit` (all of them when
    /// `limit` is `None`). Returns `false` when paused at the limit with
    /// the boundary event stashed in `self.pending`, `true` when the
    /// queue drained.
    fn step(&mut self, limit: Option<SimTime>, metrics: &mut Option<&mut MetricsBuilder>) -> bool {
        if self.halted {
            return true;
        }
        while let Some((now, ev)) = self.pending.take().or_else(|| self.q.pop()) {
            if let Some(l) = limit {
                if now >= l {
                    self.pending = Some((now, ev));
                    return false;
                }
            }
            self.clock = now;
            if self.fs.pending() {
                self.apply_global_faults(now);
            }
            if let Some(abort) = self.fs.abort_at {
                if now >= abort {
                    self.abort_all(abort);
                    return true;
                }
            }
            if let Some(mb) = metrics.as_deref_mut() {
                if mb.due(now) {
                    mb.sample(now, &self.machine.resource_usage(), self.q.len());
                }
            }
            match ev {
                Ev::Admit { query } => self.on_admit(query as usize, now),
                Ev::PhaseStart { query, attempt } => {
                    self.on_phase_start(query as usize, attempt, now)
                }
                Ev::Deadline { query, attempt } => self.on_deadline(query as usize, attempt, now),
                Ev::Retry { query } => self.on_retry(query as usize, now),
                ev => self.on_work(now, ev),
            }
        }
        // Fail-stop abort clock beyond the last event: the queue drained
        // before the detection fired, but the run still aborts there.
        if let Some(abort) = self.fs.abort_at {
            self.abort_all(abort);
        }
        debug_assert!(
            self.runs.iter().all(|r| r.state == QState::Done),
            "event queue drained with live queries"
        );
        true
    }

    /// Applies globally-scheduled faults due at or before `now` to the
    /// shared machine, then fans the damage out to every running query's
    /// recovery view.
    fn apply_global_faults(&mut self, now: SimTime) {
        while self.fs.next < self.fs.events.len() {
            let ev = self.fs.events[self.fs.next];
            let t = SimTime::ZERO + ev.at;
            if t > now {
                break;
            }
            self.fs.next += 1;
            let Some(node) = self.fs.apply_machine(&mut self.machine, ev, t) else {
                continue;
            };
            // A whole-disk loss: survivors detect it DETECT_TIMEOUT after
            // injection, for every query alike.
            let detect = t + DETECT_TIMEOUT;
            self.detect_at[node] = Some(detect);
            for qid in 0..self.runs.len() {
                let run = &mut self.runs[qid];
                if run.state != QState::Running {
                    continue;
                }
                run.fr.any_dead = true;
                let st = &mut run.nodes[node];
                if st.dead {
                    continue;
                }
                st.dead = true;
                // Pool the batches the dead node had not issued yet plus
                // any recovery work it had been assigned — exactly the
                // single-query mid-phase teardown.
                for j in st.issued..st.own_batches {
                    let bytes = if j == st.own_batches - 1 {
                        st.last_batch_bytes
                    } else {
                        crate::BATCH_BYTES
                    };
                    run.fr.pool.push((node, bytes));
                }
                while let Some(bytes) = st.recovery_pending.pop_front() {
                    run.fr.pool.push((node, bytes));
                }
                st.batches_total = st.issued;
                st.own_batches = st.issued;
                if run.fr.policy != RecoveryPolicy::FailStop {
                    self.outstanding[qid] += 1;
                    self.q.push(
                        detect.max(now),
                        Ev::RecoveryKick {
                            node,
                            query: qid as u32,
                        },
                    );
                }
            }
        }
    }

    /// Terminates every live query at the global fail-stop abort clock.
    fn abort_all(&mut self, abort: SimTime) {
        self.halted = true;
        for run in &mut self.runs {
            if run.state != QState::Done {
                run.state = QState::Done;
                run.status = QueryStatus::Aborted;
                run.finished = abort.max(run.arrival);
            }
        }
    }

    fn on_admit(&mut self, qid: usize, now: SimTime) {
        debug_assert_eq!(self.runs[qid].state, QState::Pending);
        if self.running < self.adm.max_concurrent {
            if let Some(d) = self.dl.deadline {
                self.q.push(
                    now + d,
                    Ev::Deadline {
                        query: qid as u32,
                        attempt: 0,
                    },
                );
            }
            self.running += 1;
            self.start_attempt(qid, now);
        } else if self.waiting.len() < self.adm.queue_limit {
            // The first attempt's deadline runs from admission, so time
            // spent waiting for a slot counts against it.
            if let Some(d) = self.dl.deadline {
                self.q.push(
                    now + d,
                    Ev::Deadline {
                        query: qid as u32,
                        attempt: 0,
                    },
                );
            }
            self.runs[qid].state = QState::Waiting;
            self.waiting.push_back(qid as u32);
        } else {
            // Shed: counted, never silent.
            self.finalize(qid, QueryStatus::Shed, now);
        }
    }

    /// Begins attempt `runs[qid].attempt` at `at`: fresh plan cursor,
    /// fresh deadline for retries (attempt 0 was armed at admission).
    fn start_attempt(&mut self, qid: usize, at: SimTime) {
        let run = &mut self.runs[qid];
        run.state = QState::Running;
        run.started = run.started.or(Some(at));
        run.phase_ix = 0;
        run.phases_done.clear();
        run.phase_spans.clear();
        if run.attempt > 0 {
            if let Some(d) = self.dl.deadline {
                self.q.push(
                    at + d,
                    Ev::Deadline {
                        query: qid as u32,
                        attempt: run.attempt,
                    },
                );
            }
        }
        self.start_phase(qid, at);
    }

    /// Opens phase `runs[qid].phase_ix` on the shared machine and primes
    /// its read pipeline — the phase-setup half of `run_phase`.
    fn start_phase(&mut self, qid: usize, at: SimTime) {
        let n = self.machine.nodes();
        if self.machine.failed_count() == n {
            self.finalize(qid, QueryStatus::Aborted, at);
            return;
        }
        let run = &mut self.runs[qid];
        let phase = &self.plans[run.plan_ix].phases[run.phase_ix];
        let region = phase_region(phase);
        let writes = phase_writes(phase);
        self.machine.begin_phase(region);
        run.phase_start = at;
        run.horizon = at;
        // Sync this query's failure view with the shared machine: a
        // failure is detected here once its detection clock has passed
        // (phase starts are per-query sync points, like barriers in the
        // single-query path).
        run.fr.any_dead = self.machine.failed_count() > 0;
        for i in 0..n {
            run.fr.detected[i] =
                self.machine.disk_failed(i) && self.detect_at[i].is_some_and(|t| t <= at);
        }
        let (nodes, abort) = init_phase_nodes(&self.machine, phase, &mut run.fr, at);
        run.nodes = nodes;
        if let Some(t) = abort {
            self.finalize(qid, QueryStatus::Aborted, t);
            return;
        }
        run.costs = Some(PhaseCosts::new(&self.machine, phase));
        if let Some(rt) = self.spans.as_mut() {
            rt.last = SpanId::NONE;
            rt.last_end = at;
            rt.arena.set_query(qid as u32);
        }
        let window = self.machine.window() as u64;
        let policy = run.fr.policy;
        let mut sp = self.spans.as_mut();
        {
            let mut evq = EvQ {
                q: &mut self.q,
                counts: Some(&mut self.outstanding),
            };
            for node in 0..n {
                let to_issue = window.min(run.nodes[node].batches_total);
                for _ in 0..to_issue {
                    if let Some((t, ev)) = prepare_read(
                        &mut self.machine,
                        &mut run.nodes,
                        node,
                        at,
                        region,
                        writes,
                        policy,
                        &mut sp,
                        SpanId::NONE,
                        qid as u32,
                    ) {
                        evq.push(t, ev);
                    }
                }
            }
            // Failures not yet detected at this phase's start get their
            // recovery kick at the detection clock.
            if run.fr.any_dead && policy != RecoveryPolicy::FailStop {
                for i in 0..n {
                    if self.machine.disk_failed(i) && !run.fr.detected[i] {
                        if let Some(t) = self.detect_at[i] {
                            evq.push(
                                t.max(at),
                                Ev::RecoveryKick {
                                    node: i,
                                    query: qid as u32,
                                },
                            );
                        }
                    }
                }
            }
        }
        if let Some(rt) = sp {
            run.span_last = rt.last;
            run.span_last_end = rt.last_end;
        }
        if self.outstanding[qid] == 0 {
            // Degenerate phase (nothing to read): complete immediately.
            self.complete_phase(qid, at);
        }
    }

    /// Handles one popped work event for its owning query.
    fn on_work(&mut self, now: SimTime, ev: Ev) {
        let qid = ev.work_query().expect("work event carries a query") as usize;
        self.outstanding[qid] -= 1;
        let run = &mut self.runs[qid];
        run.events += 1;
        match run.state {
            QState::Running => {
                run.horizon = run.horizon.max(now);
                if let Some(rt) = self.spans.as_mut() {
                    rt.last = run.span_last;
                    rt.last_end = run.span_last_end;
                    rt.arena.set_query(qid as u32);
                }
                let phase = &self.plans[run.plan_ix].phases[run.phase_ix];
                let window = self.machine.window() as u64;
                let mut ctx = PhaseCtx {
                    phase,
                    costs: run.costs.as_ref().expect("phase opened"),
                    nodes: &mut run.nodes,
                    horizon: &mut run.horizon,
                    region: phase_region(phase),
                    phase_writes: phase_writes(phase),
                    phase_ix: run.phase_ix,
                    window,
                    qid: qid as u32,
                };
                let mut sp = self.spans.as_mut();
                handle_ev(
                    &mut self.machine,
                    &mut EvQ {
                        q: &mut self.q,
                        counts: Some(&mut self.outstanding),
                    },
                    &mut ctx,
                    &mut run.fr,
                    &mut None,
                    &mut sp,
                    now,
                    ev,
                );
                if let Some(rt) = sp {
                    run.span_last = rt.last;
                    run.span_last_end = rt.last_end;
                }
                if self.outstanding[qid] == 0 {
                    self.complete_phase(qid, now);
                }
            }
            QState::AwaitRetry => {
                // Stale drain from the torn-down attempt; machine charges
                // already accrued (wasted work is real under overload).
                if self.outstanding[qid] == 0 && run.retry_armed {
                    run.attempt += 1;
                    run.retry_armed = false;
                    self.start_attempt(qid, now);
                }
            }
            QState::Done => {
                // Stale drain past a terminal timeout/abort: dropped.
            }
            QState::Pending | QState::Waiting => {
                unreachable!("work event for a query that never started")
            }
        }
    }

    /// Closes the current phase: positioning tail, barrier, and the
    /// `PhaseStart` control event that opens the next phase (or finishes
    /// the plan) — the phase-teardown half of `run_phase`.
    fn complete_phase(&mut self, qid: usize, _now: SimTime) {
        let run = &mut self.runs[qid];
        let phase = &self.plans[run.plan_ix].phases[run.phase_ix];
        // Byte conservation per query, exactly as in the solo path.
        let issued: u64 = run.nodes.iter().map(|s| s.issued_bytes).sum();
        assert_eq!(
            issued, phase.read_bytes_total,
            "query {qid} phase '{}' issued {issued} B of {} B planned",
            phase.name, phase.read_bytes_total
        );
        let end = run.horizon + phase.extra_disk_busy_per_node;
        let barrier_end = end + self.machine.barrier_costs().barrier(self.machine.nodes());
        if let Some(rt) = self.spans.as_mut() {
            rt.last = run.span_last;
            rt.last_end = run.span_last_end;
            rt.arena.set_query(qid as u32);
            if phase.extra_disk_busy_per_node > Duration::ZERO {
                let parent = rt.last;
                rt.record(
                    parent,
                    POSITIONING_RESOURCE,
                    SpanKind::Positioning,
                    FRONT_END_NODE,
                    run.horizon,
                    end,
                    0,
                );
            }
            let parent = rt.last;
            rt.record(
                parent,
                BARRIER_RESOURCE,
                SpanKind::Barrier,
                FRONT_END_NODE,
                end,
                barrier_end,
                0,
            );
            run.phase_spans.push(PhaseSpans {
                name: phase.name,
                start: run.phase_start,
                end: barrier_end,
                anchor: rt.last,
            });
            run.span_last = rt.last;
            run.span_last_end = rt.last_end;
        }
        run.phases_done.push(QueryPhase {
            name: phase.name,
            elapsed: barrier_end.since(run.phase_start),
        });
        run.phase_ix += 1;
        let attempt = run.attempt;
        self.q.push(
            barrier_end,
            Ev::PhaseStart {
                query: qid as u32,
                attempt,
            },
        );
    }

    fn on_phase_start(&mut self, qid: usize, attempt: u32, now: SimTime) {
        let run = &self.runs[qid];
        // Stale barrier from a torn-down attempt.
        if run.state != QState::Running || run.attempt != attempt {
            return;
        }
        if run.phase_ix == self.plans[run.plan_ix].phases.len() {
            self.finalize(qid, QueryStatus::Completed, now);
        } else {
            self.start_phase(qid, now);
        }
    }

    fn on_deadline(&mut self, qid: usize, attempt: u32, now: SimTime) {
        let run = &mut self.runs[qid];
        match run.state {
            QState::Waiting if attempt == 0 => {
                // Deadline expired before a slot ever freed.
                run.timeouts += 1;
                if let Some(pos) = self.waiting.iter().position(|&x| x as usize == qid) {
                    self.waiting.remove(pos);
                }
                self.finalize(qid, QueryStatus::TimedOut, now);
            }
            QState::Running if run.attempt == attempt => {
                run.timeouts += 1;
                if run.attempt < self.dl.max_retries {
                    run.retries += 1;
                    run.state = QState::AwaitRetry;
                    run.retry_armed = false;
                    let wait = self.dl.backoff_for(run.attempt + 1, &mut self.backoff_rng);
                    self.q.push(now + wait, Ev::Retry { query: qid as u32 });
                } else {
                    // Retry budget exhausted: finish with the partial
                    // phase report intact.
                    self.finalize(qid, QueryStatus::TimedOut, now);
                }
            }
            // Stale deadline (attempt already retired) — ignore.
            _ => {}
        }
    }

    fn on_retry(&mut self, qid: usize, now: SimTime) {
        let run = &mut self.runs[qid];
        if run.state != QState::AwaitRetry {
            return;
        }
        if self.outstanding[qid] == 0 {
            run.attempt += 1;
            run.retry_armed = false;
            self.start_attempt(qid, now);
        } else {
            // Stale in-flight events still draining; the last drain pop
            // (necessarily at or after this clock) restarts the attempt.
            run.retry_armed = true;
        }
    }

    /// Retires a query, frees its admission slot, promotes the next
    /// waiter, and — in closed-loop mode — issues the client's next
    /// query.
    fn finalize(&mut self, qid: usize, status: QueryStatus, at: SimTime) {
        let run = &mut self.runs[qid];
        let held_slot = matches!(run.state, QState::Running | QState::AwaitRetry);
        run.state = QState::Done;
        run.status = status;
        run.finished = at;
        if held_slot {
            self.running -= 1;
            if let Some(next) = self.waiting.pop_front() {
                self.running += 1;
                // Its attempt-0 deadline was armed at admission.
                self.start_attempt(next as usize, at);
            }
        }
        if self.closed && self.next_closed < self.runs.len() {
            let nq = self.next_closed;
            self.next_closed += 1;
            self.runs[nq].arrival = at;
            self.q.push(at, Ev::Admit { query: nq as u32 });
        }
    }
}

impl Simulation {
    /// Runs a multi-query workload under the given admission and
    /// deadline policies. Deterministic: the report is a pure function
    /// of the simulation config and the workload spec.
    pub fn run_workload(
        &self,
        workload: &WorkloadSpec,
        admission: AdmissionPolicy,
        deadline: DeadlinePolicy,
    ) -> LoadReport {
        self.run_workload_observed(workload, admission, deadline, None, false)
            .0
    }

    /// Like [`Simulation::run_workload`], also collecting the causal
    /// span trace with per-query lanes.
    pub fn run_workload_profiled(
        &self,
        workload: &WorkloadSpec,
        admission: AdmissionPolicy,
        deadline: DeadlinePolicy,
    ) -> (LoadReport, LoadSpanTrace) {
        let (report, trace) = self.run_workload_observed(workload, admission, deadline, None, true);
        (report, trace.expect("profiled run returns a span trace"))
    }

    /// Full-control loaded run: optional metrics sampling and optional
    /// span profiling in one pass.
    pub fn run_workload_observed(
        &self,
        workload: &WorkloadSpec,
        admission: AdmissionPolicy,
        deadline: DeadlinePolicy,
        mut metrics: Option<&mut MetricsBuilder>,
        profiled: bool,
    ) -> (LoadReport, Option<LoadSpanTrace>) {
        let mut mq = self.mq_setup(workload, admission, deadline, profiled);
        mq.run_loop(&mut metrics);
        self.collect_load(mq, workload.summary(), admission, deadline)
    }

    /// Builds the multi-query driver with `workload`'s arrivals queued
    /// but nothing processed.
    fn mq_setup(
        &self,
        workload: &WorkloadSpec,
        admission: AdmissionPolicy,
        deadline: DeadlinePolicy,
        profiled: bool,
    ) -> Mq {
        assert!(workload.queries > 0, "workload needs at least one query");
        let tasks = workload.tasks();
        let arrivals = workload.arrival_times();
        let mut machine = Machine::new(self.architecture());
        for &(node, count) in self.degraded_disks() {
            machine.degrade_disk(node, count);
        }
        let n = machine.nodes();
        let fs = FaultRt::new(self.fault_plan(), self.recovery_policy(), self.seed(), n);

        // One plan per distinct task kind; queries index into it.
        let mut plans: Vec<TaskPlan> = Vec::new();
        let mut kinds: Vec<TaskKind> = Vec::new();
        let plan_of: Vec<usize> = tasks
            .iter()
            .map(|&t| {
                kinds.iter().position(|&k| k == t).unwrap_or_else(|| {
                    let plan = plan_task(t, self.architecture());
                    plan.validate().expect("invalid task plan");
                    plans.push(plan);
                    kinds.push(t);
                    kinds.len() - 1
                })
            })
            .collect();

        let window = machine.window();
        // Steady state: every running query holds a full read window per
        // node plus its fan-out, and each query owns at most one control
        // event of each kind.
        let cap = admission.max_concurrent * n * (window + 4) + 2 * tasks.len() + 64;
        let mut q: EventQueue<Ev> = EventQueue::with_backend_capacity(self.queue_backend(), cap);
        q.set_shard_fn(shard_of_ev);
        q.set_lookahead(machine.lookahead_bound());

        let runs: Vec<QueryRun> = tasks
            .iter()
            .zip(&arrivals)
            .enumerate()
            .map(|(i, (&task, &arrival))| QueryRun {
                task,
                plan_ix: plan_of[i],
                arrival,
                started: None,
                attempt: 0,
                phase_ix: 0,
                nodes: Vec::new(),
                costs: None,
                fr: FaultRt::new(&FaultPlan::new(), self.recovery_policy(), self.seed(), n),
                horizon: SimTime::ZERO,
                phase_start: SimTime::ZERO,
                state: QState::Pending,
                status: QueryStatus::Completed,
                retry_armed: false,
                retries: 0,
                timeouts: 0,
                finished: SimTime::ZERO,
                events: 0,
                phases_done: Vec::new(),
                span_last: SpanId::NONE,
                span_last_end: SimTime::ZERO,
                phase_spans: Vec::new(),
            })
            .collect();

        let closed = matches!(workload.arrival, ArrivalProcess::Closed { .. });
        let queries = runs.len();
        let mut mq = Mq {
            machine,
            q,
            runs,
            plans,
            kinds,
            outstanding: vec![0; queries],
            fs,
            detect_at: vec![None; n],
            adm: admission,
            dl: deadline,
            running: 0,
            waiting: VecDeque::new(),
            next_closed: queries,
            closed,
            // Decorrelate the backoff jitter stream from the machine's
            // seeded models without a second seed knob.
            backoff_rng: SplitMix64::new(self.seed() ^ 0x9E37_79B9_7F4A_7C15),
            spans: profiled.then(SpanRt::new),
            pending: None,
            clock: SimTime::ZERO,
            halted: false,
        };
        match workload.arrival {
            ArrivalProcess::Poisson { .. } => {
                for (i, &at) in arrivals.iter().enumerate() {
                    mq.q.push(at, Ev::Admit { query: i as u32 });
                }
            }
            ArrivalProcess::Closed { clients } => {
                let first = (clients as usize).min(queries);
                for i in 0..first {
                    mq.q.push(SimTime::ZERO, Ev::Admit { query: i as u32 });
                }
                mq.next_closed = first;
            }
        }
        mq
    }

    /// Turns a drained driver into its report (and span trace, when
    /// profiled).
    fn collect_load(
        &self,
        mq: Mq,
        workload_summary: String,
        admission: AdmissionPolicy,
        deadline: DeadlinePolicy,
    ) -> (LoadReport, Option<LoadSpanTrace>) {
        let n = mq.machine.nodes();
        let end = mq
            .runs
            .iter()
            .map(|r| r.finished)
            .max()
            .unwrap_or(SimTime::ZERO);
        let outcomes = mq
            .runs
            .iter()
            .enumerate()
            .map(|(i, r)| QueryOutcome {
                query: i as u32,
                task: r.task,
                arrival: r.arrival,
                started: r.started,
                finished: r.finished,
                status: r.status,
                retries: r.retries,
                timeouts: r.timeouts,
                phases: r.phases_done.clone(),
                events: r.events,
            })
            .collect();
        let report = LoadReport {
            architecture: self.architecture().short_name(),
            disks: n,
            workload: workload_summary,
            admission: admission.summary(),
            deadline: deadline.summary(),
            outcomes,
            elapsed: end.since(SimTime::ZERO),
            events: mq.q.popped(),
            faults_injected: mq.fs.injected,
            work_redistributed: mq.machine.work_redistributed(),
            downtime: mq.machine.disk_downtime(end),
        };
        let trace = mq.spans.map(|rt| LoadSpanTrace {
            arena: rt.arena,
            queries: mq
                .runs
                .iter()
                .enumerate()
                .map(|(i, r)| QuerySpans {
                    query: i as u32,
                    task: r.task,
                    phases: r.phase_spans.clone(),
                })
                .collect(),
        });
        (report, trace)
    }
}

impl Simulation {
    /// Starts a loaded run with `warmup`'s arrivals queued but nothing
    /// simulated, returning a forkable [`WarmStart`]. Drive the warmup
    /// with [`WarmStart::run_to_idle`], then [`WarmStart::fork`] once
    /// per what-if continuation and [`WarmStart::extend`] each fork with
    /// its measured workload — the warm prefix is simulated exactly
    /// once, and every continuation's report is field-identical to a
    /// from-scratch run of the same warmup + extension.
    pub fn start_workload(
        &self,
        warmup: &WorkloadSpec,
        admission: AdmissionPolicy,
        deadline: DeadlinePolicy,
    ) -> WarmStart {
        WarmStart {
            mq: self.mq_setup(warmup, admission, deadline, false),
            sim: self.clone(),
            workload: warmup.summary(),
            admission,
            deadline,
            measured_from: warmup.queries as usize,
        }
    }
}

/// A loaded run paused after its warmup segment, cheap to fork.
///
/// The warmup's machine state, event history, and admission bookkeeping
/// are shared by every fork (a fork is one `Clone`), so a rate ladder
/// pays for its common ramp-up once instead of once per point.
#[derive(Clone)]
pub struct WarmStart {
    sim: Simulation,
    mq: Mq,
    workload: String,
    admission: AdmissionPolicy,
    deadline: DeadlinePolicy,
    measured_from: usize,
}

impl WarmStart {
    /// Drains every queued arrival and its consequences — the warmup
    /// segment runs to completion and the clock parks at its last event.
    pub fn run_to_idle(&mut self) {
        self.mq.step(None, &mut None);
    }

    /// The fork origin: the time of the last processed event. Extended
    /// arrivals land strictly after it.
    pub fn origin(&self) -> SimTime {
        self.mq.clock
    }

    /// Forks the paused run: an independent continuation sharing this
    /// prefix's full state.
    pub fn fork(&self) -> WarmStart {
        self.clone()
    }

    /// Queries in the warmup segment (the measured slice of the final
    /// report's outcomes starts here).
    pub fn measured_from(&self) -> usize {
        self.measured_from
    }

    /// Appends `spec`'s queries to the run, their arrival clocks shifted
    /// to land strictly after [`WarmStart::origin`] (each arrival moves
    /// by `origin + 1ns`). Because the warmup queue is idle at the
    /// origin, the continuation's event interleaving is identical
    /// whether the prefix was simulated in this process or forked.
    pub fn extend(&mut self, spec: &WorkloadSpec) {
        assert!(spec.queries > 0, "extension needs at least one query");
        let origin = self.mq.clock;
        let shift = origin.since(SimTime::ZERO) + Duration::from_nanos(1);
        let tasks = spec.tasks();
        let arrivals: Vec<SimTime> = spec
            .arrival_times()
            .into_iter()
            .map(|at| at + shift)
            .collect();
        let base = self.mq.runs.len();
        let n = self.mq.machine.nodes();
        for (&task, &arrival) in tasks.iter().zip(&arrivals) {
            let plan_ix = self
                .mq
                .kinds
                .iter()
                .position(|&k| k == task)
                .unwrap_or_else(|| {
                    let plan = plan_task(task, self.sim.architecture());
                    plan.validate().expect("invalid task plan");
                    self.mq.plans.push(plan);
                    self.mq.kinds.push(task);
                    self.mq.kinds.len() - 1
                });
            self.mq.runs.push(QueryRun {
                task,
                plan_ix,
                arrival,
                started: None,
                attempt: 0,
                phase_ix: 0,
                nodes: Vec::new(),
                costs: None,
                fr: FaultRt::new(
                    &FaultPlan::new(),
                    self.sim.recovery_policy(),
                    self.sim.seed(),
                    n,
                ),
                horizon: SimTime::ZERO,
                phase_start: SimTime::ZERO,
                state: QState::Pending,
                status: QueryStatus::Completed,
                retry_armed: false,
                retries: 0,
                timeouts: 0,
                finished: SimTime::ZERO,
                events: 0,
                phases_done: Vec::new(),
                span_last: SpanId::NONE,
                span_last_end: SimTime::ZERO,
                phase_spans: Vec::new(),
            });
            self.mq.outstanding.push(0);
        }
        match spec.arrival {
            ArrivalProcess::Poisson { .. } => {
                for (i, &at) in arrivals.iter().enumerate() {
                    self.mq.q.push(
                        at,
                        Ev::Admit {
                            query: (base + i) as u32,
                        },
                    );
                }
                // Closed-loop issuance (if the warmup was closed) must
                // not re-admit the Poisson extension.
                self.mq.next_closed = self.mq.runs.len();
                self.mq.closed = false;
            }
            ArrivalProcess::Closed { clients } => {
                let first = (clients as usize).min(tasks.len());
                for (i, &at) in arrivals.iter().take(first).enumerate() {
                    self.mq.q.push(
                        at,
                        Ev::Admit {
                            query: (base + i) as u32,
                        },
                    );
                }
                self.mq.next_closed = base + first;
                self.mq.closed = true;
            }
        }
        self.workload = format!("{} + {}", self.workload, spec.summary());
    }

    /// Runs the continuation to completion and returns its report
    /// (warmup and extended queries both included, in arrival order —
    /// slice `outcomes` at [`WarmStart::measured_from`] for the measured
    /// segment).
    pub fn finish(mut self) -> LoadReport {
        self.mq.step(None, &mut None);
        let (report, _) =
            self.sim
                .collect_load(self.mq, self.workload, self.admission, self.deadline);
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arch::Architecture;

    fn one_query(task: TaskKind) -> WorkloadSpec {
        WorkloadSpec::closed(1, 1).with_mix(vec![(task, 1)])
    }

    #[test]
    fn one_query_workload_matches_solo_run() {
        for arch in [
            Architecture::active_disks(4),
            Architecture::cluster(4),
            Architecture::smp(4),
        ] {
            let sim = Simulation::new(arch);
            let solo = sim.run(TaskKind::Aggregate);
            let load = sim.run_workload(
                &one_query(TaskKind::Aggregate),
                AdmissionPolicy::default(),
                DeadlinePolicy::default(),
            );
            assert_eq!(load.outcomes.len(), 1);
            let q = &load.outcomes[0];
            assert_eq!(q.status, QueryStatus::Completed);
            assert_eq!(q.latency(), solo.elapsed(), "loaded 1-query elapsed drifts");
            assert_eq!(q.phases.len(), solo.phases.len());
            for (qp, sp) in q.phases.iter().zip(&solo.phases) {
                assert_eq!(qp.name, sp.name);
            }
        }
    }

    #[test]
    fn shed_at_full_queue_is_counted() {
        // 1 slot, zero-length wait queue: with 3 simultaneous closed-loop
        // clients, two arrivals shed at time zero.
        let sim = Simulation::new(Architecture::active_disks(2));
        let w = WorkloadSpec::closed(3, 3).with_mix(vec![(TaskKind::Select, 1)]);
        let adm = AdmissionPolicy {
            max_concurrent: 1,
            queue_limit: 0,
        };
        let report = sim.run_workload(&w, adm, DeadlinePolicy::default());
        assert_eq!(report.shed(), 2);
        assert_eq!(report.completed(), 1);
        for o in &report.outcomes {
            if o.status == QueryStatus::Shed {
                assert_eq!(o.finished, o.arrival, "shed is decided at admission");
                assert!(o.started.is_none());
                assert!(o.phases.is_empty());
            }
        }
    }

    #[test]
    fn deadline_expires_while_still_queued() {
        // Two clients, one slot, deep queue: the second query's deadline
        // (shorter than the first query's runtime) fires while it waits.
        let sim = Simulation::new(Architecture::active_disks(2));
        let w = WorkloadSpec::closed(2, 2).with_mix(vec![(TaskKind::Select, 1)]);
        let adm = AdmissionPolicy {
            max_concurrent: 1,
            queue_limit: 8,
        };
        let dl = DeadlinePolicy {
            deadline: Some(Duration::from_millis(1)),
            max_retries: 3,
            backoff: Duration::from_millis(1),
        };
        let report = sim.run_workload(&w, adm, dl);
        let timed_out: Vec<_> = report
            .outcomes
            .iter()
            .filter(|o| o.status == QueryStatus::TimedOut && o.started.is_none())
            .collect();
        assert_eq!(
            timed_out.len(),
            1,
            "queued query must time out without starting: {report:?}"
        );
        assert!(timed_out[0].phases.is_empty());
        // No retries for a query that never got a slot.
        assert_eq!(timed_out[0].retries, 0);
        assert_eq!(timed_out[0].timeouts, 1);
    }

    #[test]
    fn retry_exhaustion_keeps_partial_phases() {
        // A deadline long enough to finish sort's first phase but not the
        // whole task: every attempt times out mid-plan, retries exhaust,
        // and the partial phase report survives.
        let sim = Simulation::new(Architecture::active_disks(2));
        let solo = sim.run(TaskKind::Sort);
        let first_phase = solo.phases[0].elapsed;
        let w = one_query(TaskKind::Sort);
        let dl = DeadlinePolicy {
            deadline: Some(first_phase + Duration::from_millis(10)),
            max_retries: 2,
            backoff: Duration::from_millis(5),
        };
        let report = sim.run_workload(&w, AdmissionPolicy::default(), dl);
        let q = &report.outcomes[0];
        assert_eq!(q.status, QueryStatus::TimedOut);
        assert_eq!(q.retries, 2, "both retries consumed");
        assert_eq!(q.timeouts, 3, "initial attempt + 2 retries all timed out");
        assert_eq!(q.phases.len(), 1, "first phase completed on final attempt");
        assert_eq!(q.phases[0].name, solo.phases[0].name);
        assert!(report.completed_latencies().is_empty());
        assert_eq!(report.latency_percentile(50.0), None);
    }

    #[test]
    fn backoff_schedule_is_seeded_and_deterministic() {
        let sim = Simulation::new(Architecture::cluster(2)).with_seed(7);
        let w = WorkloadSpec::poisson(0.05, 6)
            .with_mix(vec![(TaskKind::Select, 1), (TaskKind::Aggregate, 1)])
            .with_seed(11);
        let dl = DeadlinePolicy {
            deadline: Some(Duration::from_secs(5)),
            max_retries: 2,
            backoff: Duration::from_secs(1),
        };
        let a = sim.run_workload(&w, AdmissionPolicy::default(), dl);
        let b = sim.run_workload(&w, AdmissionPolicy::default(), dl);
        assert_eq!(a, b, "same seed must reproduce the identical report");
    }

    #[test]
    fn forked_continuations_match_from_scratch_runs() {
        // One warm prefix, three what-if continuations (a rate ladder
        // plus a closed point): each fork's report must be
        // field-identical to re-simulating warmup + extension from
        // scratch, including under a different queue backend.
        let sim = Simulation::new(Architecture::active_disks(4)).with_seed(3);
        let adm = AdmissionPolicy {
            max_concurrent: 2,
            queue_limit: 8,
        };
        let dl = DeadlinePolicy::default();
        let mix = vec![(TaskKind::Select, 1), (TaskKind::Aggregate, 1)];
        let warmup = WorkloadSpec::closed(2, 3)
            .with_mix(mix.clone())
            .with_seed(7);
        let mut prefix = sim.start_workload(&warmup, adm, dl);
        prefix.run_to_idle();
        let origin = prefix.origin();
        assert!(origin > SimTime::ZERO);

        let extensions = [
            WorkloadSpec::poisson(0.05, 4)
                .with_mix(mix.clone())
                .with_seed(11),
            WorkloadSpec::poisson(0.2, 4)
                .with_mix(mix.clone())
                .with_seed(11),
            WorkloadSpec::closed(2, 4)
                .with_mix(mix.clone())
                .with_seed(11),
        ];
        for spec in &extensions {
            let mut fork = prefix.fork();
            fork.extend(spec);
            assert_eq!(fork.measured_from(), 3);
            let warm = fork.finish();

            let scratch_sim = sim
                .clone()
                .with_queue_backend(simcore::QueueBackend::BinaryHeap);
            let mut scratch = scratch_sim.start_workload(&warmup, adm, dl);
            scratch.run_to_idle();
            assert_eq!(scratch.origin(), origin, "shared prefix drifts");
            scratch.extend(spec);
            assert_eq!(
                warm,
                scratch.finish(),
                "fork vs scratch: {}",
                spec.summary()
            );
        }
        // The un-extended prefix itself still finishes to the plain
        // warmup report.
        let solo = sim.run_workload(&warmup, adm, dl);
        assert_eq!(prefix.finish(), solo);
    }

    #[test]
    fn goodput_and_percentiles_reflect_completions() {
        let sim = Simulation::new(Architecture::active_disks(4));
        let w = WorkloadSpec::poisson(0.02, 5).with_mix(vec![(TaskKind::Select, 1)]);
        let report = sim.run_workload(&w, AdmissionPolicy::default(), DeadlinePolicy::default());
        assert_eq!(report.completed(), 5);
        let p50 = report.latency_percentile(50.0).unwrap();
        let p99 = report.latency_percentile(99.0).unwrap();
        assert!(p50 <= p99);
        let lats = report.completed_latencies();
        assert_eq!(p99, *lats.last().unwrap());
        assert!(report.goodput_qps() > 0.0);
    }
}
