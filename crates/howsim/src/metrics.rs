//! Resource-level observability: per-resource utilization and bottleneck
//! attribution.
//!
//! The paper's analysis method is utilization accounting: a configuration
//! is bound by whichever resource — disk media, embedded/host CPUs, the
//! interconnect, or the front-end — runs out of headroom first. This
//! module makes that reasoning a first-class artifact. Two tiers:
//!
//! * **Always on.** Every [`crate::PhaseReport`] carries the per-phase
//!   busy-time delta of each [`Resource`] (a handful of counter reads per
//!   phase, no event-loop cost). [`Attribution`] reduces those deltas to
//!   a per-resource peak/overall utilization table and names the
//!   bottleneck.
//! * **Opt in.** A [`MetricsBuilder`] threaded through the executor
//!   samples busy-fraction time-series and event-queue depth on a
//!   simulated-time interval, yielding [`RunMetrics`]. Costs one branch
//!   per event when enabled, one `Option` check when not.

use simcore::{Duration, GaugeSeries, SimTime, UtilizationSampler};

use crate::report::Report;

/// A contended resource class of a simulated machine.
///
/// Not every architecture has every resource: the SMP has a memory fabric
/// and no front-end link; Active Disk and cluster machines have the
/// reverse. [`crate::machine::Machine::resource_usage`] reports only the
/// resources its fabric actually owns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Resource {
    /// Disk media: heads, seeks, rotation — the drives themselves.
    DiskMedia,
    /// The per-node processors (embedded disk CPUs on Active Disks,
    /// host CPUs elsewhere).
    WorkerCpu,
    /// The front-end processor.
    FrontEndCpu,
    /// The peer interconnect (FC loop/switch lanes, worker NICs, or the
    /// SMP FC I/O loop).
    Interconnect,
    /// The front-end's attachment (its FC port or NIC pair).
    FrontEndLink,
    /// The SMP inter-board memory fabric (block-transfer engines).
    MemoryFabric,
    /// Fault-recovery work: surviving disks and interconnect time spent
    /// re-reading and re-shipping a failed node's partition.
    Recovery,
}

impl Resource {
    /// All resource classes, in stable report order.
    pub const ALL: [Resource; 7] = [
        Resource::DiskMedia,
        Resource::WorkerCpu,
        Resource::FrontEndCpu,
        Resource::Interconnect,
        Resource::FrontEndLink,
        Resource::MemoryFabric,
        Resource::Recovery,
    ];

    /// Stable machine-readable key used in manifests and JSON output.
    pub fn key(self) -> &'static str {
        match self {
            Resource::DiskMedia => "disk_media",
            Resource::WorkerCpu => "worker_cpu",
            Resource::FrontEndCpu => "front_end_cpu",
            Resource::Interconnect => "interconnect",
            Resource::FrontEndLink => "front_end_link",
            Resource::MemoryFabric => "memory_fabric",
            Resource::Recovery => "recovery",
        }
    }

    /// The inverse of [`Resource::key`]; `None` for unknown keys.
    pub fn from_key(key: &str) -> Option<Resource> {
        Resource::ALL.into_iter().find(|r| r.key() == key)
    }

    /// Human-readable label; worker CPUs are "disk CPU" on the Active
    /// Disk architecture and "host CPU" elsewhere.
    pub fn label(self, architecture: &str) -> &'static str {
        match self {
            Resource::DiskMedia => "disk media",
            Resource::WorkerCpu => {
                if architecture == "Active" {
                    "disk CPU"
                } else {
                    "host CPU"
                }
            }
            Resource::FrontEndCpu => "front-end CPU",
            Resource::Interconnect => "interconnect",
            Resource::FrontEndLink => "front-end link",
            Resource::MemoryFabric => "memory fabric",
            Resource::Recovery => "recovery",
        }
    }
}

/// Busy time of one resource over some window, with the lane count that
/// normalizes it into a utilization.
///
/// In a [`crate::PhaseReport`] the busy time is the *delta* accumulated
/// during that phase; from
/// [`crate::machine::Machine::resource_usage`] it is cumulative since
/// machine construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResourceUsage {
    /// Which resource.
    pub resource: Resource,
    /// Busy time summed across the resource's lanes.
    pub busy: Duration,
    /// Time requests spent queued at the resource before service began
    /// (enqueue→dequeue), summed across lanes. Together with `busy` this
    /// decomposes per-request latency: latency = wait + service.
    pub wait: Duration,
    /// Parallel lanes (drives, CPUs, loops, NIC directions...).
    pub lanes: u32,
}

impl ResourceUsage {
    /// Busy fraction over `elapsed`: `busy / (elapsed × lanes)`, clamped
    /// to 1 (FIFO servers book service past the sample instant).
    pub fn utilization(&self, elapsed: Duration) -> f64 {
        if elapsed.is_zero() {
            return 0.0;
        }
        (self.busy.as_secs_f64() / (elapsed.as_secs_f64() * f64::from(self.lanes))).min(1.0)
    }
}

/// One resource's utilization summary across a whole run.
#[derive(Debug, Clone, PartialEq)]
pub struct ResourceAttribution {
    /// Which resource.
    pub resource: Resource,
    /// Lane count.
    pub lanes: u32,
    /// Whole-run busy time.
    pub busy: Duration,
    /// Whole-run queueing time (see [`ResourceUsage::wait`]).
    pub wait: Duration,
    /// Time-weighted busy fraction over the whole run.
    pub overall_utilization: f64,
    /// Highest single-phase busy fraction.
    pub peak_utilization: f64,
    /// The phase where the peak occurred.
    pub peak_phase: &'static str,
}

/// Per-resource utilization rollup with bottleneck attribution.
///
/// # Example
///
/// ```
/// use arch::Architecture;
/// use howsim::{Attribution, Simulation};
/// use tasks::TaskKind;
///
/// let report = Simulation::new(Architecture::smp(16)).run(TaskKind::Select);
/// let attr = Attribution::from_report(&report);
/// let b = attr.bottleneck().expect("phases ran");
/// assert!(b.peak_utilization > 0.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Attribution {
    /// Per-resource summaries, in the machine's stable resource order.
    pub resources: Vec<ResourceAttribution>,
}

impl Attribution {
    /// Rolls up the per-phase resource deltas of `report`.
    pub fn from_report(report: &Report) -> Self {
        let total_elapsed = report.elapsed();
        let Some(first) = report.phases.first() else {
            return Attribution {
                resources: Vec::new(),
            };
        };
        let resources = first
            .resources
            .iter()
            .enumerate()
            .map(|(ix, u0)| {
                let mut busy = Duration::ZERO;
                let mut wait = Duration::ZERO;
                let mut peak = 0.0f64;
                let mut peak_phase = first.name;
                for phase in &report.phases {
                    let u = phase.resources[ix];
                    debug_assert_eq!(u.resource, u0.resource);
                    busy += u.busy;
                    wait += u.wait;
                    let util = u.utilization(phase.elapsed);
                    if util > peak {
                        peak = util;
                        peak_phase = phase.name;
                    }
                }
                let overall = ResourceUsage {
                    resource: u0.resource,
                    busy,
                    wait,
                    lanes: u0.lanes,
                }
                .utilization(total_elapsed);
                ResourceAttribution {
                    resource: u0.resource,
                    lanes: u0.lanes,
                    busy,
                    wait,
                    overall_utilization: overall,
                    peak_utilization: peak,
                    peak_phase,
                }
            })
            .collect();
        Attribution { resources }
    }

    /// The resource with the highest peak-phase utilization — the one
    /// that saturates first. `None` only for an empty report.
    pub fn bottleneck(&self) -> Option<&ResourceAttribution> {
        self.resources.iter().max_by(|a, b| {
            a.peak_utilization
                .partial_cmp(&b.peak_utilization)
                .expect("utilizations are finite")
                // Deterministic tie-break on the stable resource order.
                .then(b.resource.cmp(&a.resource))
        })
    }

    /// Looks up one resource's summary.
    pub fn get(&self, resource: Resource) -> Option<&ResourceAttribution> {
        self.resources.iter().find(|r| r.resource == resource)
    }
}

/// Sampled time-series collected during an instrumented run.
#[derive(Debug, Clone)]
pub struct RunMetrics {
    /// Simulated-time spacing between samples.
    pub sample_interval: Duration,
    /// Per-resource busy-fraction series `(resource, lanes, series)`.
    pub utilization: Vec<(Resource, u32, GaugeSeries)>,
    /// Event-queue depth at each sample instant.
    pub queue_depth: GaugeSeries,
    /// Total simulator events processed by the run.
    pub events: u64,
}

/// Accumulates [`RunMetrics`] as the executor hands it sample points.
///
/// The executor checks [`MetricsBuilder::due`] on every popped event (one
/// comparison) and calls [`MetricsBuilder::sample`] only when the
/// sampling interval has elapsed in simulated time, so the cost of
/// collection is independent of the event rate.
#[derive(Debug)]
pub struct MetricsBuilder {
    interval: Duration,
    next_due: SimTime,
    samplers: Vec<(Resource, UtilizationSampler)>,
    queue_depth: GaugeSeries,
}

impl Default for MetricsBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl MetricsBuilder {
    /// Default sampling interval in simulated time.
    pub const DEFAULT_INTERVAL: Duration = Duration::from_millis(250);

    /// A builder with the default interval and series capacity.
    pub fn new() -> Self {
        Self::with_interval(Self::DEFAULT_INTERVAL)
    }

    /// A builder sampling every `interval` of simulated time.
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero.
    pub fn with_interval(interval: Duration) -> Self {
        assert!(!interval.is_zero(), "sampling interval must be positive");
        MetricsBuilder {
            interval,
            next_due: SimTime::ZERO + interval,
            samplers: Vec::new(),
            queue_depth: GaugeSeries::new(GaugeSeries::DEFAULT_CAPACITY),
        }
    }

    /// True when the next sample instant has been reached.
    #[inline]
    pub fn due(&self, now: SimTime) -> bool {
        now >= self.next_due
    }

    /// Records one sample point: the machine's cumulative resource usage
    /// (differenced internally into busy fractions) and the event-queue
    /// depth.
    pub fn sample(&mut self, now: SimTime, usage: &[ResourceUsage], queue_len: usize) {
        if self.samplers.is_empty() {
            self.samplers = usage
                .iter()
                .map(|u| {
                    (
                        u.resource,
                        UtilizationSampler::new(u.lanes, GaugeSeries::DEFAULT_CAPACITY),
                    )
                })
                .collect();
        }
        for ((resource, sampler), u) in self.samplers.iter_mut().zip(usage) {
            debug_assert_eq!(*resource, u.resource, "resource order must be stable");
            sampler.sample(now, u.busy);
        }
        self.queue_depth.record(now, queue_len as f64);
        self.next_due = now + self.interval;
    }

    /// Finalizes into [`RunMetrics`]; `events` is the run's total
    /// processed-event count (see [`crate::Report::events`]).
    pub fn finish(self, events: u64) -> RunMetrics {
        RunMetrics {
            sample_interval: self.interval,
            utilization: self
                .samplers
                .into_iter()
                .map(|(r, s)| (r, s.lanes(), s.series().clone()))
                .collect(),
            queue_depth: self.queue_depth,
            events,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::PhaseReport;
    use simcore::Histogram;
    use std::collections::BTreeMap;

    fn phase(name: &'static str, secs: u64, busy: &[(Resource, u64, u32)]) -> PhaseReport {
        PhaseReport {
            name,
            elapsed: Duration::from_secs(secs),
            cpu_busy_by_tag: BTreeMap::new(),
            cpu_busy_total: Duration::ZERO,
            disk_busy_total: Duration::ZERO,
            interconnect_bytes: 0,
            frontend_bytes: 0,
            nodes: 1,
            resources: busy
                .iter()
                .map(|&(resource, s, lanes)| ResourceUsage {
                    resource,
                    busy: Duration::from_secs(s),
                    wait: Duration::ZERO,
                    lanes,
                })
                .collect(),
        }
    }

    fn report(phases: Vec<PhaseReport>) -> Report {
        Report {
            task: "t",
            architecture: "Active",
            disks: 1,
            phases,
            disk_service: Histogram::new(),
            events: 0,
            faults_injected: 0,
            recovery_time: Duration::ZERO,
            work_redistributed: 0,
            aborted: false,
            downtime: Duration::ZERO,
        }
    }

    #[test]
    fn utilization_normalizes_by_lanes_and_clamps() {
        let u = ResourceUsage {
            resource: Resource::Interconnect,
            busy: Duration::from_secs(10),
            wait: Duration::ZERO,
            lanes: 2,
        };
        assert!((u.utilization(Duration::from_secs(10)) - 0.5).abs() < 1e-12);
        assert_eq!(u.utilization(Duration::from_secs(1)), 1.0, "clamped");
        assert_eq!(u.utilization(Duration::ZERO), 0.0);
    }

    #[test]
    fn attribution_finds_peak_phase_and_bottleneck() {
        let r = report(vec![
            phase(
                "scan",
                10,
                &[(Resource::DiskMedia, 9, 1), (Resource::Interconnect, 2, 1)],
            ),
            phase(
                "shuffle",
                10,
                &[(Resource::DiskMedia, 3, 1), (Resource::Interconnect, 10, 1)],
            ),
        ]);
        let attr = Attribution::from_report(&r);
        let disk = attr.get(Resource::DiskMedia).unwrap();
        assert!((disk.peak_utilization - 0.9).abs() < 1e-12);
        assert_eq!(disk.peak_phase, "scan");
        assert!((disk.overall_utilization - 0.6).abs() < 1e-12);
        let b = attr.bottleneck().unwrap();
        assert_eq!(b.resource, Resource::Interconnect);
        assert_eq!(b.peak_phase, "shuffle");
        assert!((b.peak_utilization - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_report_has_no_bottleneck() {
        let attr = Attribution::from_report(&report(Vec::new()));
        assert!(attr.bottleneck().is_none());
        assert!(attr.resources.is_empty());
    }

    #[test]
    fn builder_samples_on_interval() {
        let mut mb = MetricsBuilder::with_interval(Duration::from_millis(10));
        assert!(!mb.due(SimTime::from_nanos(1)));
        let t1 = SimTime::ZERO + Duration::from_millis(10);
        assert!(mb.due(t1));
        let usage = [ResourceUsage {
            resource: Resource::DiskMedia,
            busy: Duration::from_millis(5),
            wait: Duration::ZERO,
            lanes: 1,
        }];
        mb.sample(t1, &usage, 7);
        assert!(!mb.due(t1), "next sample a full interval later");
        let t2 = t1 + Duration::from_millis(10);
        mb.sample(
            t2,
            &[ResourceUsage {
                resource: Resource::DiskMedia,
                busy: Duration::from_millis(15),
                wait: Duration::ZERO,
                lanes: 1,
            }],
            3,
        );
        let m = mb.finish(42);
        assert_eq!(m.events, 42);
        assert_eq!(m.queue_depth.samples(), &[(t1, 7.0), (t2, 3.0)]);
        let (resource, lanes, series) = &m.utilization[0];
        assert_eq!(*resource, Resource::DiskMedia);
        assert_eq!(*lanes, 1);
        // First window: 5 ms busy / 10 ms = 0.5; second: 10/10 = 1.0.
        assert!((series.samples()[0].1 - 0.5).abs() < 1e-12);
        assert!((series.samples()[1].1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn keys_and_labels_are_stable() {
        assert_eq!(Resource::Interconnect.key(), "interconnect");
        assert_eq!(Resource::WorkerCpu.label("Active"), "disk CPU");
        assert_eq!(Resource::WorkerCpu.label("Cluster"), "host CPU");
        assert_eq!(Resource::Recovery.key(), "recovery");
        assert_eq!(Resource::ALL.len(), 7);
    }

    #[test]
    fn from_key_inverts_key() {
        for r in Resource::ALL {
            assert_eq!(Resource::from_key(r.key()), Some(r));
        }
        assert_eq!(Resource::from_key("floppy"), None);
    }

    #[test]
    #[should_panic(expected = "interval")]
    fn zero_interval_rejected() {
        MetricsBuilder::with_interval(Duration::ZERO);
    }
}
