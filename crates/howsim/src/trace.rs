//! Event tracing: a per-event record of a simulation run.
//!
//! The original Howsim consumed traces; this reproduction *produces* them
//! too, so that runs can be inspected, diffed, and post-processed (e.g.
//! building time-series of loop occupancy or per-node progress). Tracing
//! is off by default — it costs memory, not accuracy — and is bounded so
//! a 128-disk join cannot exhaust memory.

use simcore::SimTime;

/// The kind of a traced event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TraceKind {
    /// A batch finished reading from disk.
    ReadDone,
    /// A node's CPU finished processing a scanned batch.
    BatchProcessed,
    /// A repartitioned batch arrived at a peer.
    PeerArrive,
    /// A peer finished receive-side work.
    RecvProcessed,
    /// Data arrived at the front-end.
    FeArrive,
    /// A local write reached media.
    WriteDone,
}

impl TraceKind {
    /// All kinds, for summary iteration.
    pub const ALL: [TraceKind; 6] = [
        TraceKind::ReadDone,
        TraceKind::BatchProcessed,
        TraceKind::PeerArrive,
        TraceKind::RecvProcessed,
        TraceKind::FeArrive,
        TraceKind::WriteDone,
    ];
}

/// One traced event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Simulated time of the event.
    pub time: SimTime,
    /// Phase index within the task.
    pub phase: usize,
    /// Node involved (front-end events use `usize::MAX`).
    pub node: usize,
    /// Event kind.
    pub kind: TraceKind,
    /// Bytes involved.
    pub bytes: u64,
}

/// A bounded event trace with total counts.
///
/// # Example
///
/// ```
/// use arch::Architecture;
/// use howsim::{Simulation, TraceKind};
/// use tasks::TaskKind;
///
/// let (report, trace) = Simulation::new(Architecture::active_disks(4))
///     .run_traced(TaskKind::Aggregate);
/// assert!(trace.count(TraceKind::ReadDone) > 0);
/// assert!(report.elapsed().as_secs_f64() > 0.0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Trace {
    events: Vec<TraceEvent>,
    dropped: u64,
    counts: [u64; 6],
    capacity: usize,
}

impl Trace {
    /// Default event capacity (enough for a 16-disk task end to end).
    pub const DEFAULT_CAPACITY: usize = 1 << 20;

    /// Creates a trace with the default capacity.
    pub fn new() -> Self {
        Self::with_capacity(Self::DEFAULT_CAPACITY)
    }

    /// Creates a trace retaining at most `capacity` events (counts keep
    /// accumulating past the cap; the event list stops growing).
    pub fn with_capacity(capacity: usize) -> Self {
        Trace {
            // Traced runs almost always fill the buffer, so allocate it up
            // front (capped so a huge requested capacity doesn't reserve
            // gigabytes before the first event).
            events: Vec::with_capacity(capacity.min(Self::DEFAULT_CAPACITY)),
            dropped: 0,
            counts: [0; 6],
            capacity,
        }
    }

    pub(crate) fn record(&mut self, ev: TraceEvent) {
        self.counts[ev.kind as usize] += 1;
        if self.events.len() < self.capacity {
            self.events.push(ev);
        } else {
            self.dropped += 1;
        }
    }

    /// The retained events, in the order they fired.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Events counted but not retained (capacity overflow).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Total events of `kind`, including dropped ones.
    pub fn count(&self, kind: TraceKind) -> u64 {
        self.counts[kind as usize]
    }

    /// Total events observed, including dropped ones.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Serializes the retained events as CSV
    /// (`time_ns,phase,node,kind,bytes` with a header row).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("time_ns,phase,node,kind,bytes\n");
        for e in &self.events {
            out.push_str(&format!(
                "{},{},{},{:?},{}\n",
                e.time.as_nanos(),
                e.phase,
                e.node,
                e.kind,
                e.bytes
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t: u64, kind: TraceKind) -> TraceEvent {
        TraceEvent {
            time: SimTime::from_nanos(t),
            phase: 0,
            node: 1,
            kind,
            bytes: 64,
        }
    }

    #[test]
    fn records_and_counts() {
        let mut tr = Trace::new();
        tr.record(ev(1, TraceKind::ReadDone));
        tr.record(ev(2, TraceKind::ReadDone));
        tr.record(ev(3, TraceKind::FeArrive));
        assert_eq!(tr.count(TraceKind::ReadDone), 2);
        assert_eq!(tr.count(TraceKind::FeArrive), 1);
        assert_eq!(tr.count(TraceKind::WriteDone), 0);
        assert_eq!(tr.total(), 3);
        assert_eq!(tr.events().len(), 3);
        assert_eq!(tr.dropped(), 0);
    }

    #[test]
    fn capacity_bounds_retention_not_counts() {
        let mut tr = Trace::with_capacity(2);
        for i in 0..5 {
            tr.record(ev(i, TraceKind::PeerArrive));
        }
        assert_eq!(tr.events().len(), 2);
        assert_eq!(tr.dropped(), 3);
        assert_eq!(tr.count(TraceKind::PeerArrive), 5);
    }

    #[test]
    fn csv_has_header_and_rows() {
        let mut tr = Trace::new();
        tr.record(ev(42, TraceKind::WriteDone));
        let csv = tr.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "time_ns,phase,node,kind,bytes");
        assert!(lines[1].starts_with("42,0,1,WriteDone,64"));
    }
}
