//! Event tracing: a per-event record of a simulation run.
//!
//! The original Howsim consumed traces; this reproduction *produces* them
//! too, so that runs can be inspected, diffed, and post-processed (e.g.
//! building time-series of loop occupancy or per-node progress). Tracing
//! is off by default — it costs memory, not accuracy — and is bounded so
//! a 128-disk join cannot exhaust memory; the bound is surfaced (never a
//! silent cap) via [`Trace::truncated`] and [`Trace::dropped`].

use std::fmt;

use simcore::SimTime;

/// The kind of a traced event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TraceKind {
    /// A batch finished reading from disk.
    ReadDone,
    /// A node's CPU finished processing a scanned batch.
    BatchProcessed,
    /// A repartitioned batch arrived at a peer.
    PeerArrive,
    /// A peer finished receive-side work.
    RecvProcessed,
    /// Data arrived at the front-end.
    FeArrive,
    /// A local write reached media.
    WriteDone,
}

impl TraceKind {
    /// All kinds, for summary iteration.
    pub const ALL: [TraceKind; 6] = [
        TraceKind::ReadDone,
        TraceKind::BatchProcessed,
        TraceKind::PeerArrive,
        TraceKind::RecvProcessed,
        TraceKind::FeArrive,
        TraceKind::WriteDone,
    ];

    /// Stable name, used in CSV/JSONL output.
    pub fn name(self) -> &'static str {
        match self {
            TraceKind::ReadDone => "ReadDone",
            TraceKind::BatchProcessed => "BatchProcessed",
            TraceKind::PeerArrive => "PeerArrive",
            TraceKind::RecvProcessed => "RecvProcessed",
            TraceKind::FeArrive => "FeArrive",
            TraceKind::WriteDone => "WriteDone",
        }
    }
}

/// The participant of a traced event: a worker node or the front-end.
///
/// Replaces the old `usize::MAX` front-end sentinel with a real type, so
/// nothing downstream can mistake the front-end for node 2^64-1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeId {
    /// Worker node by index.
    Node(usize),
    /// The front-end host.
    FrontEnd,
}

impl NodeId {
    /// The worker index, or `None` for the front-end.
    pub fn index(self) -> Option<usize> {
        match self {
            NodeId::Node(i) => Some(i),
            NodeId::FrontEnd => None,
        }
    }

    /// True for the front-end.
    pub fn is_front_end(self) -> bool {
        matches!(self, NodeId::FrontEnd)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeId::Node(i) => write!(f, "{i}"),
            NodeId::FrontEnd => write!(f, "fe"),
        }
    }
}

/// One traced event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Simulated time of the event.
    pub time: SimTime,
    /// Phase index within the task.
    pub phase: usize,
    /// Node involved (or the front-end).
    pub node: NodeId,
    /// Event kind.
    pub kind: TraceKind,
    /// Bytes involved.
    pub bytes: u64,
}

/// Aggregate statistics of a trace: totals, retention, and per-kind
/// counts (all counts include events dropped past the capacity bound).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceSummary {
    /// Events observed, including dropped ones.
    pub total: u64,
    /// Events retained in the buffer.
    pub retained: usize,
    /// Events counted but not retained.
    pub dropped: u64,
    /// True when the capacity bound dropped at least one event.
    pub truncated: bool,
    /// Per-kind totals, indexed like [`TraceKind::ALL`].
    pub counts: [u64; 6],
}

impl fmt::Display for TraceSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} events ({} retained, {} dropped{})",
            self.total,
            self.retained,
            self.dropped,
            if self.truncated { ", TRUNCATED" } else { "" }
        )
    }
}

/// A bounded event trace with total counts.
///
/// # Example
///
/// ```
/// use arch::Architecture;
/// use howsim::{Simulation, TraceKind};
/// use tasks::TaskKind;
///
/// let (report, trace) = Simulation::new(Architecture::active_disks(4))
///     .run_traced(TaskKind::Aggregate);
/// assert!(trace.count(TraceKind::ReadDone) > 0);
/// assert!(!trace.truncated());
/// assert!(report.elapsed().as_secs_f64() > 0.0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Trace {
    events: Vec<TraceEvent>,
    dropped: u64,
    counts: [u64; 6],
    capacity: usize,
}

impl Trace {
    /// Default event capacity (enough for a 16-disk task end to end).
    pub const DEFAULT_CAPACITY: usize = 1 << 20;

    /// Creates a trace with the default capacity.
    pub fn new() -> Self {
        Self::with_capacity(Self::DEFAULT_CAPACITY)
    }

    /// Creates a trace retaining at most `capacity` events (counts keep
    /// accumulating past the cap; the event list stops growing).
    pub fn with_capacity(capacity: usize) -> Self {
        Trace {
            // Traced runs almost always fill the buffer, so allocate it up
            // front (capped so a huge requested capacity doesn't reserve
            // gigabytes before the first event).
            events: Vec::with_capacity(capacity.min(Self::DEFAULT_CAPACITY)),
            dropped: 0,
            counts: [0; 6],
            capacity,
        }
    }

    pub(crate) fn record(&mut self, ev: TraceEvent) {
        self.counts[ev.kind as usize] += 1;
        if self.events.len() < self.capacity {
            self.events.push(ev);
        } else {
            self.dropped += 1;
        }
    }

    /// The retained events, in the order they fired.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Events counted but not retained (capacity overflow).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// True when the capacity bound dropped at least one event — the
    /// retained buffer is then a prefix of the run, not the whole run.
    pub fn truncated(&self) -> bool {
        self.dropped > 0
    }

    /// Total events of `kind`, including dropped ones.
    pub fn count(&self, kind: TraceKind) -> u64 {
        self.counts[kind as usize]
    }

    /// Total events observed, including dropped ones.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Aggregate statistics (totals, retention, truncation, per-kind
    /// counts).
    pub fn summary(&self) -> TraceSummary {
        TraceSummary {
            total: self.total(),
            retained: self.events.len(),
            dropped: self.dropped,
            truncated: self.truncated(),
            counts: self.counts,
        }
    }

    /// Serializes the retained events as CSV
    /// (`time_ns,phase,node,kind,bytes` with a header row; the front-end
    /// appears as node `fe`).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("time_ns,phase,node,kind,bytes\n");
        for e in &self.events {
            out.push_str(&format!(
                "{},{},{},{},{}\n",
                e.time.as_nanos(),
                e.phase,
                e.node,
                e.kind.name(),
                e.bytes
            ));
        }
        out
    }

    /// Serializes as JSON Lines: a summary object first, then one object
    /// per retained event. The summary line carries the truncation state,
    /// so consumers of a bounded trace know they got a prefix.
    pub fn to_jsonl(&self) -> String {
        let s = self.summary();
        let mut out = String::with_capacity(64 + 96 * self.events.len());
        out.push_str(&format!(
            "{{\"type\":\"summary\",\"total\":{},\"retained\":{},\"dropped\":{},\"truncated\":{}",
            s.total, s.retained, s.dropped, s.truncated
        ));
        out.push_str(",\"counts\":{");
        for (i, kind) in TraceKind::ALL.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{}", kind.name(), s.counts[i]));
        }
        out.push_str("}}\n");
        for e in &self.events {
            let node = match e.node {
                NodeId::Node(i) => i.to_string(),
                NodeId::FrontEnd => "\"fe\"".to_string(),
            };
            out.push_str(&format!(
                "{{\"type\":\"event\",\"time_ns\":{},\"phase\":{},\"node\":{},\"kind\":\"{}\",\"bytes\":{}}}\n",
                e.time.as_nanos(),
                e.phase,
                node,
                e.kind.name(),
                e.bytes
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t: u64, kind: TraceKind) -> TraceEvent {
        TraceEvent {
            time: SimTime::from_nanos(t),
            phase: 0,
            node: NodeId::Node(1),
            kind,
            bytes: 64,
        }
    }

    #[test]
    fn records_and_counts() {
        let mut tr = Trace::new();
        tr.record(ev(1, TraceKind::ReadDone));
        tr.record(ev(2, TraceKind::ReadDone));
        tr.record(ev(3, TraceKind::FeArrive));
        assert_eq!(tr.count(TraceKind::ReadDone), 2);
        assert_eq!(tr.count(TraceKind::FeArrive), 1);
        assert_eq!(tr.count(TraceKind::WriteDone), 0);
        assert_eq!(tr.total(), 3);
        assert_eq!(tr.events().len(), 3);
        assert_eq!(tr.dropped(), 0);
        assert!(!tr.truncated());
    }

    #[test]
    fn capacity_bounds_retention_not_counts() {
        let mut tr = Trace::with_capacity(2);
        for i in 0..5 {
            tr.record(ev(i, TraceKind::PeerArrive));
        }
        assert_eq!(tr.events().len(), 2);
        assert_eq!(tr.dropped(), 3);
        assert!(tr.truncated());
        assert_eq!(tr.count(TraceKind::PeerArrive), 5);
        let s = tr.summary();
        assert_eq!(s.total, 5);
        assert_eq!(s.retained, 2);
        assert_eq!(s.dropped, 3);
        assert!(s.truncated);
        assert_eq!(s.counts[TraceKind::PeerArrive as usize], 5);
        assert!(format!("{s}").contains("TRUNCATED"));
    }

    #[test]
    fn node_id_distinguishes_front_end() {
        assert_eq!(NodeId::Node(7).index(), Some(7));
        assert_eq!(NodeId::FrontEnd.index(), None);
        assert!(NodeId::FrontEnd.is_front_end());
        assert_eq!(format!("{}", NodeId::Node(7)), "7");
        assert_eq!(format!("{}", NodeId::FrontEnd), "fe");
    }

    #[test]
    fn csv_has_header_and_rows() {
        let mut tr = Trace::new();
        tr.record(ev(42, TraceKind::WriteDone));
        tr.record(TraceEvent {
            node: NodeId::FrontEnd,
            ..ev(43, TraceKind::FeArrive)
        });
        let csv = tr.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "time_ns,phase,node,kind,bytes");
        assert!(lines[1].starts_with("42,0,1,WriteDone,64"));
        assert!(lines[2].starts_with("43,0,fe,FeArrive,64"));
    }

    #[test]
    fn jsonl_has_summary_line_then_events() {
        let mut tr = Trace::with_capacity(1);
        tr.record(ev(5, TraceKind::ReadDone));
        tr.record(TraceEvent {
            node: NodeId::FrontEnd,
            ..ev(6, TraceKind::FeArrive)
        });
        let jsonl = tr.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2, "summary + one retained event");
        assert!(lines[0].contains("\"type\":\"summary\""));
        assert!(lines[0].contains("\"truncated\":true"));
        assert!(lines[0].contains("\"ReadDone\":1"));
        assert!(lines[0].contains("\"FeArrive\":1"));
        assert!(lines[1].contains("\"type\":\"event\""));
        assert!(lines[1].contains("\"node\":1"));
        assert!(lines[1].contains("\"kind\":\"ReadDone\""));
    }
}
