//! On-disk checkpoint tier (`.ckpt`): paused [`ExecRun`] state,
//! addressed and integrity-checked like the result cache
//! ([`crate::cache`]).
//!
//! A checkpoint captures a run at an exact event boundary — machine
//! state, fault runtime, finished-phase reports, and the live event
//! queue — so a later process can resume it (under *any* queue
//! backend) instead of re-simulating the prefix. Files carry the
//! simcache v3 armor: a schema line, an FNV-1a checksum over the
//! payload, and the full key material stored verbatim, so a truncated,
//! bit-flipped, or mismatched entry is a clean miss, never a panic.
//! Publication is atomic (write to a temp file, then rename).
//!
//! The checkpoint key deliberately excludes the queue backend: restored
//! queue state is renumbered into whatever backend the resuming
//! simulation configures, and the continuation's report is
//! field-identical either way. Everything else the paused state depends
//! on — architecture, plan, degraded disks, seed, fault plan, recovery
//! policy, and the pause boundary — is in the key, so two fault
//! scenarios forked from one prefix never alias.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use simcore::{SimTime, StateReader, StateWriter};
use tasks::plan::TaskPlan;

use crate::exec::{ExecRun, Simulation};
use crate::manifest::fnv1a64;

/// Checkpoint schema identifier, bumped on breaking layout changes.
pub const SCHEMA: &str = "howsim-ckpt/v1";

/// The configuration part of a checkpoint key: every input the paused
/// state depends on except the pause boundary. The queue backend is
/// deliberately absent (see the module docs).
pub fn config_key(sim: &Simulation, plan: &TaskPlan) -> String {
    format!(
        "ckpt | arch={:?} | plan={:?} | degraded={:?} | seed={} | faults={} | recovery={}",
        sim.architecture(),
        plan,
        sim.degraded_disks(),
        sim.seed(),
        sim.fault_plan().summary(),
        sim.recovery_policy().name(),
    )
}

/// The full checkpoint key: the configuration plus the pause boundary.
pub fn checkpoint_key(sim: &Simulation, plan: &TaskPlan, at: SimTime) -> String {
    format!("{} | at={}", config_key(sim, plan), at.as_nanos())
}

/// The on-disk path of the checkpoint for `key` inside `dir`.
pub fn entry_path(dir: &Path, key: &str) -> PathBuf {
    dir.join(format!("{:016x}.ckpt", fnv1a64(key.as_bytes())))
}

/// Serializes a paused run into the checkpoint file format.
///
/// # Panics
///
/// Panics if the run is profiled (see [`ExecRun::save_state`]).
pub fn encode(run: &ExecRun<'_>, key: &str) -> String {
    let mut w = StateWriter::new();
    run.save_state(&mut w);
    let payload = format!("key {key}\n{}", w.finish());
    let sum = fnv1a64(payload.as_bytes());
    format!("{SCHEMA}\nsum {sum:016x}\n{payload}")
}

/// Verifies a checkpoint file's schema and checksum; returns the stored
/// key and state body. Any corruption is `None`.
fn parse(text: &str) -> Option<(&str, &str)> {
    let mut sections = text.splitn(3, '\n');
    if sections.next()? != SCHEMA {
        return None;
    }
    let sum = u64::from_str_radix(sections.next()?.strip_prefix("sum ")?, 16).ok()?;
    let payload = sections.next()?;
    if fnv1a64(payload.as_bytes()) != sum {
        return None; // truncated or bit-flipped entry
    }
    let (key_line, body) = payload.split_once('\n')?;
    Some((key_line.strip_prefix("key ")?, body))
}

/// Decodes verified state text into a paused run. Codec errors (a
/// structurally valid file whose body does not describe `sim`/`plan`)
/// are a clean miss.
fn decode_body<'p>(body: &str, sim: &Simulation, plan: &'p TaskPlan) -> Option<ExecRun<'p>> {
    let mut r = StateReader::new(body);
    let run = ExecRun::load_state(sim, plan, &mut r).ok()?;
    r.expect_done().ok()?;
    Some(run)
}

/// Atomically writes the checkpoint file for a paused run to `path`.
///
/// # Panics
///
/// Panics if the run is profiled (see [`ExecRun::save_state`]).
pub fn write_file(
    path: &Path,
    sim: &Simulation,
    plan: &TaskPlan,
    at: SimTime,
    run: &ExecRun<'_>,
) -> io::Result<()> {
    let key = checkpoint_key(sim, plan, at);
    let text = encode(run, &key);
    let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
    if let Some(dir) = dir {
        fs::create_dir_all(dir)?;
    }
    let tmp = path.with_extension(format!("tmp-{}", std::process::id()));
    fs::write(&tmp, text)?;
    fs::rename(&tmp, path)
}

/// Reads a checkpoint file written by [`write_file`], verifying it was
/// saved under this `sim`/`plan` configuration (the pause boundary in
/// the stored key is accepted as-is: the resumer does not need to know
/// it, the state body carries the clock). Corrupt or mismatched files
/// are a clean miss.
pub fn read_file<'p>(path: &Path, sim: &Simulation, plan: &'p TaskPlan) -> Option<ExecRun<'p>> {
    let text = fs::read_to_string(path).ok()?;
    let (key, body) = parse(&text)?;
    let config = config_key(sim, plan);
    let (stored_config, at) = key.rsplit_once(" | at=")?;
    if stored_config != config || at.parse::<u64>().is_err() {
        return None; // saved under a different configuration
    }
    decode_body(body, sim, plan)
}

/// Stores a paused run in the keyed checkpoint tier under `dir`;
/// returns the entry path.
///
/// # Panics
///
/// Panics if the run is profiled (see [`ExecRun::save_state`]).
pub fn store(
    dir: &Path,
    sim: &Simulation,
    plan: &TaskPlan,
    at: SimTime,
    run: &ExecRun<'_>,
) -> io::Result<PathBuf> {
    let key = checkpoint_key(sim, plan, at);
    let path = entry_path(dir, &key);
    fs::create_dir_all(dir)?;
    let tmp = dir.join(format!(
        ".tmp-{:016x}-{}",
        fnv1a64(key.as_bytes()),
        std::process::id()
    ));
    fs::write(&tmp, encode(run, &key))?;
    fs::rename(&tmp, &path)?;
    Ok(path)
}

/// Looks up the checkpoint for `(sim, plan, at)` in `dir` and rebuilds
/// the paused run under `sim`'s queue backend. Missing, truncated,
/// bit-flipped, or colliding entries are a clean miss.
pub fn probe<'p>(
    dir: &Path,
    sim: &Simulation,
    plan: &'p TaskPlan,
    at: SimTime,
) -> Option<ExecRun<'p>> {
    let key = checkpoint_key(sim, plan, at);
    let text = fs::read_to_string(entry_path(dir, &key)).ok()?;
    let (stored_key, body) = parse(&text)?;
    if stored_key != key {
        return None; // hash collision with a different config
    }
    decode_body(body, sim, plan)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::{FaultPlan, RecoveryPolicy};
    use arch::Architecture;
    use simcore::QueueBackend;
    use tasks::{plan_task, TaskKind};

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("howsim-ckpt-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn mid_run_pause(sim: &Simulation, plan: &TaskPlan) -> SimTime {
        // Pause mid-run: halfway through the full elapsed time.
        let full = sim.run_plan(plan);
        SimTime::ZERO + simcore::Duration::from_nanos(full.elapsed().as_nanos() / 2)
    }

    #[test]
    fn key_varies_with_every_input_but_not_queue_backend() {
        let arch = Architecture::active_disks(4);
        let plan = plan_task(TaskKind::Select, &arch);
        let sim = Simulation::new(arch.clone()).with_seed(7);
        let at = SimTime::from_nanos(1_000_000);
        let base = checkpoint_key(&sim, &plan, at);

        // The backend never participates: a checkpoint taken under the
        // wheel must be found by a heap-backed resumer.
        let heap = sim.clone().with_queue_backend(QueueBackend::BinaryHeap);
        assert_eq!(base, checkpoint_key(&heap, &plan, at));

        // Every real input does.
        let other_arch = Simulation::new(Architecture::cluster(4)).with_seed(7);
        assert_ne!(base, checkpoint_key(&other_arch, &plan, at));
        let other_plan = plan_task(TaskKind::Aggregate, &arch);
        assert_ne!(base, checkpoint_key(&sim, &other_plan, at));
        let other_seed = sim.clone().with_seed(8);
        assert_ne!(base, checkpoint_key(&other_seed, &plan, at));
        let degraded = sim.clone().with_degraded_disk(0, 50);
        assert_ne!(base, checkpoint_key(&degraded, &plan, at));
        let failstop = sim.clone().with_recovery(RecoveryPolicy::FailStop);
        assert_ne!(base, checkpoint_key(&failstop, &plan, at));
        assert_ne!(
            base,
            checkpoint_key(&sim, &plan, SimTime::from_nanos(2_000_000))
        );
    }

    #[test]
    fn two_fault_plans_forked_from_one_prefix_do_not_alias() {
        let arch = Architecture::active_disks(4);
        let plan = plan_task(TaskKind::Select, &arch);
        let healthy = Simulation::new(arch);
        let at = mid_run_pause(&healthy, &plan);
        let a = healthy
            .clone()
            .with_fault_plan(FaultPlan::parse_spec("disk:0@1s").unwrap());
        let b = healthy
            .clone()
            .with_fault_plan(FaultPlan::parse_spec("disk:1@1s").unwrap());
        let ka = checkpoint_key(&a, &plan, at);
        let kb = checkpoint_key(&b, &plan, at);
        assert_ne!(ka, kb);
        let dir = tmp_dir("alias");
        assert_ne!(entry_path(&dir, &ka), entry_path(&dir, &kb));
    }

    #[test]
    fn store_probe_round_trip_resumes_identically_across_backends() {
        let arch = Architecture::active_disks(4);
        let plan = plan_task(TaskKind::Select, &arch);
        let sim = Simulation::new(arch).with_seed(3);
        let scratch = sim.run_plan(&plan);
        let at = mid_run_pause(&sim, &plan);

        let mut run = sim.start(&plan);
        run.run_until(at);
        let dir = tmp_dir("roundtrip");
        store(&dir, &sim, &plan, at, &run).expect("store checkpoint");

        for backend in [
            QueueBackend::CalendarWheel,
            QueueBackend::BinaryHeap,
            QueueBackend::ShardedWheel { shards: 1 },
            QueueBackend::ShardedWheel { shards: 4 },
        ] {
            let resumer = sim.clone().with_queue_backend(backend);
            let restored =
                probe(&dir, &resumer, &plan, at).expect("checkpoint hit under any backend");
            assert_eq!(restored.finish(), scratch, "backend {backend:?}");
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_checkpoints_are_clean_misses() {
        let arch = Architecture::active_disks(2);
        let plan = plan_task(TaskKind::Aggregate, &arch);
        let sim = Simulation::new(arch);
        let at = mid_run_pause(&sim, &plan);
        let mut run = sim.start(&plan);
        run.run_until(at);
        let dir = tmp_dir("corrupt");
        let path = store(&dir, &sim, &plan, at, &run).expect("store checkpoint");
        assert!(probe(&dir, &sim, &plan, at).is_some(), "sanity: intact hit");

        // Truncation: lop off the tail.
        let intact = fs::read_to_string(&path).expect("read entry");
        fs::write(&path, &intact[..intact.len() / 2]).expect("truncate");
        assert!(probe(&dir, &sim, &plan, at).is_none(), "truncated → miss");

        // Single bit flip in the body.
        let mut flipped = intact.clone().into_bytes();
        let ix = flipped.len() - 20;
        flipped[ix] ^= 0x01;
        fs::write(&path, flipped).expect("bit flip");
        assert!(probe(&dir, &sim, &plan, at).is_none(), "bit flip → miss");

        // Wrong schema line.
        fs::write(&path, intact.replace(SCHEMA, "howsim-ckpt/v0")).expect("schema");
        assert!(probe(&dir, &sim, &plan, at).is_none(), "bad schema → miss");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn file_round_trip_checks_the_configuration() {
        let arch = Architecture::cluster(4);
        let plan = plan_task(TaskKind::Join, &arch);
        let sim = Simulation::new(arch);
        let at = mid_run_pause(&sim, &plan);
        let mut run = sim.start(&plan);
        run.run_until(at);
        let dir = tmp_dir("file");
        let path = dir.join("pause.ckpt");
        write_file(&path, &sim, &plan, at, &run).expect("write checkpoint");

        let restored = read_file(&path, &sim, &plan).expect("resume from file");
        assert_eq!(restored.finish(), sim.run_plan(&plan));

        // A different seed is a different configuration: miss.
        let other = sim.clone().with_seed(99);
        assert!(read_file(&path, &other, &plan).is_none());
        let _ = fs::remove_dir_all(&dir);
    }
}
