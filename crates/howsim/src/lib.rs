//! Howsim: the simulator that executes a workload phase plan on one of the
//! three architecture models.
//!
//! This is the reproduction of the paper's simulator of the same name:
//! "Howsim contains detailed models for disks, networks and the associated
//! libraries and device drivers; it contains coarse-grain models of
//! processors and I/O interconnects." The detailed models live in
//! `diskmodel` and `netmodel`; the coarse CPU model scales per-operator
//! reference costs by processor speed (`arch::ProcessorSpec`); this crate
//! wires them together with a discrete-event loop.
//!
//! # Example
//!
//! ```
//! use arch::Architecture;
//! use howsim::Simulation;
//! use tasks::TaskKind;
//!
//! let report = Simulation::new(Architecture::active_disks(16)).run(TaskKind::Select);
//! println!("select on 16 Active Disks: {}", report.elapsed());
//! assert!(report.elapsed().as_secs_f64() > 1.0);
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod checkpoint;
pub mod exec;
pub mod faults;
pub mod machine;
pub mod manifest;
pub mod metrics;
pub mod mqexec;
pub mod profile;
pub mod report;
pub mod sweep;
pub mod trace;
pub mod workload;

pub use cache::CacheStats;
pub use exec::{ExecRun, Simulation};
pub use faults::{FaultEvent, FaultKind, FaultPlan, RecoveryPolicy};
pub use manifest::RunManifest;
pub use metrics::{Attribution, MetricsBuilder, Resource, ResourceUsage, RunMetrics};
pub use mqexec::{LoadReport, QueryOutcome, QueryPhase, QueryStatus, WarmStart};
pub use profile::{CriticalPath, LoadSpanTrace, PathSegment, QuerySpans, SpanTrace};
pub use report::{PhaseReport, Report};
pub use trace::{NodeId, Trace, TraceEvent, TraceKind, TraceSummary};
pub use workload::{parse_duration, AdmissionPolicy, ArrivalProcess, DeadlinePolicy, WorkloadSpec};

/// The stream batch size every architecture uses for bulk I/O and
/// communication (the paper's 256 KB large-request discipline).
pub const BATCH_BYTES: u64 = 256 * 1024;
