//! Zoned disk geometry: LBA → physical location mapping.
//!
//! Full zone tables are not published in drive manuals, so — as DiskSim
//! configurations of this era did — the zone table is synthesized: sectors
//! per track are interpolated linearly between the published innermost and
//! outermost media rates, with cylinders divided evenly among zones. Zone 0
//! is the outermost (fastest) zone, matching the convention that LBA 0 is on
//! the outer edge.

use simcore::{Bandwidth, Duration};

use crate::spec::DiskSpec;

/// Bytes per sector (512 B, universal for drives of this era).
pub const SECTOR_BYTES: u64 = 512;

/// One recording zone.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Zone {
    /// First cylinder of the zone.
    pub first_cylinder: u32,
    /// Number of cylinders in the zone.
    pub cylinders: u32,
    /// Sectors on each track of the zone.
    pub sectors_per_track: u32,
    /// First LBA of the zone.
    pub first_lba: u64,
    /// Total sectors in the zone.
    pub sectors: u64,
    /// Time for one sector to pass under the head (`revolution /
    /// sectors_per_track`, precomputed — this division sits on the
    /// per-request media-transfer path).
    pub sector_time: Duration,
}

/// A physical disk location.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Location {
    /// Zone index (0 = outermost).
    pub zone: u32,
    /// Absolute cylinder number.
    pub cylinder: u32,
    /// Surface (head) number.
    pub head: u32,
    /// Sector within the track.
    pub sector: u32,
}

/// The synthesized zoned geometry of a drive.
///
/// # Example
///
/// ```
/// use diskmodel::{DiskSpec, Geometry};
/// let geo = Geometry::from_spec(&DiskSpec::cheetah_9lp());
/// let loc = geo.locate(0).expect("LBA 0 exists");
/// assert_eq!(loc.zone, 0);
/// assert_eq!(loc.cylinder, 0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Geometry {
    zones: Vec<Zone>,
    /// Per-zone media-rate constants, parallel to `zones`; precomputed
    /// because the cache's read-ahead model evaluates them per request.
    zone_rates: Vec<ZoneRate>,
    heads: u32,
    revolution: Duration,
    total_sectors: u64,
}

/// Precomputed media-rate constants for one zone.
#[derive(Debug, Clone, PartialEq)]
struct ZoneRate {
    /// Media rate in bytes per second (`bytes_per_rev / revolution`).
    bps: f64,
    /// Seconds for one sector to stream past the head (`SECTOR_BYTES / bps`).
    sector_secs: f64,
}

impl Geometry {
    /// Synthesizes the zone table from a drive spec.
    ///
    /// # Panics
    ///
    /// Panics if the spec fails [`DiskSpec::validate`].
    pub fn from_spec(spec: &DiskSpec) -> Self {
        spec.validate().expect("invalid disk spec");
        let rev_secs = spec.revolution().as_secs_f64();
        let z = spec.zones;
        let base_cyls = spec.cylinders / z;
        let extra = spec.cylinders % z;
        let mut zones = Vec::with_capacity(z as usize);
        let mut first_cylinder = 0u32;
        let mut first_lba = 0u64;
        for i in 0..z {
            // Zone 0 (outermost) gets media_rate_max; the innermost gets min.
            let frac = if z == 1 {
                0.0
            } else {
                i as f64 / (z - 1) as f64
            };
            let rate = spec.media_rate_max.bytes_per_sec()
                - frac
                    * (spec.media_rate_max.bytes_per_sec() - spec.media_rate_min.bytes_per_sec());
            let spt = ((rate * rev_secs) / SECTOR_BYTES as f64).floor() as u32;
            let cylinders = base_cyls + u32::from(i < extra);
            let sectors = u64::from(cylinders) * u64::from(spec.heads) * u64::from(spt);
            zones.push(Zone {
                first_cylinder,
                cylinders,
                sectors_per_track: spt,
                first_lba,
                sectors,
                sector_time: spec.revolution() / u64::from(spt),
            });
            first_cylinder += cylinders;
            first_lba += sectors;
        }
        let revolution = spec.revolution();
        let zone_rates = zones
            .iter()
            .map(|zn| {
                let bytes_per_rev = u64::from(zn.sectors_per_track) * SECTOR_BYTES;
                let bps = bytes_per_rev as f64 / revolution.as_secs_f64();
                ZoneRate {
                    bps,
                    sector_secs: SECTOR_BYTES as f64 / bps,
                }
            })
            .collect();
        Geometry {
            zones,
            zone_rates,
            heads: spec.heads,
            revolution,
            total_sectors: first_lba,
        }
    }

    /// Index of the zone containing `lba` (caller guarantees range).
    fn zone_index(&self, lba: u64) -> usize {
        match self.zones.binary_search_by(|zn| zn.first_lba.cmp(&lba)) {
            Ok(i) => i,
            Err(i) => i - 1,
        }
    }

    /// The zone table (outermost first).
    pub fn zones(&self) -> &[Zone] {
        &self.zones
    }

    /// Usable capacity in bytes implied by the synthesized zone table.
    pub fn capacity_bytes(&self) -> u64 {
        self.total_sectors * SECTOR_BYTES
    }

    /// Total number of sectors.
    pub fn total_sectors(&self) -> u64 {
        self.total_sectors
    }

    /// Number of cylinders.
    pub fn cylinders(&self) -> u32 {
        self.zones
            .last()
            .map(|zn| zn.first_cylinder + zn.cylinders)
            .unwrap_or(0)
    }

    /// Maps an LBA to its physical location, or `None` if out of range.
    pub fn locate(&self, lba: u64) -> Option<Location> {
        if lba >= self.total_sectors {
            return None;
        }
        let zi = self.zone_index(lba);
        let zone = &self.zones[zi];
        let off = lba - zone.first_lba;
        let spt = u64::from(zone.sectors_per_track);
        let track = off / spt;
        let sector = (off % spt) as u32;
        let cylinder = zone.first_cylinder + (track / u64::from(self.heads)) as u32;
        let head = (track % u64::from(self.heads)) as u32;
        Some(Location {
            zone: zi as u32,
            cylinder,
            head,
            sector,
        })
    }

    /// The media rate at an LBA (zone-dependent).
    ///
    /// # Panics
    ///
    /// Panics if `lba` is out of range.
    pub fn media_rate_at(&self, lba: u64) -> Bandwidth {
        assert!(lba < self.total_sectors, "LBA {lba} out of range");
        Bandwidth::from_bytes_per_sec(self.zone_rates[self.zone_index(lba)].bps)
    }

    /// The zone window containing `lba`: `(first_lba, first_lba + sectors,
    /// bytes/s, seconds/sector)`. Callers that track a sequential stream
    /// memoize this and revalidate with two compares instead of repeating
    /// the binary search per request (caller guarantees range).
    pub(crate) fn zone_window(&self, lba: u64) -> (u64, u64, f64, f64) {
        let zi = self.zone_index(lba);
        let zn = &self.zones[zi];
        let zr = &self.zone_rates[zi];
        (
            zn.first_lba,
            zn.first_lba + zn.sectors,
            zr.bps,
            zr.sector_secs,
        )
    }

    /// Time to read/write `sectors` sectors starting at `lba`, including
    /// head and cylinder switches crossed mid-transfer (the components of
    /// sustained — as opposed to instantaneous — media rate).
    ///
    /// # Panics
    ///
    /// Panics if the transfer extends past the end of the disk.
    pub fn media_transfer(
        &self,
        lba: u64,
        sectors: u64,
        head_switch: Duration,
        cylinder_switch: Duration,
    ) -> Duration {
        assert!(
            lba + sectors <= self.total_sectors,
            "transfer [{}..{}) past end of disk ({})",
            lba,
            lba + sectors,
            self.total_sectors
        );
        let mut remaining = sectors;
        let mut at = lba;
        let mut total = Duration::ZERO;
        while remaining > 0 {
            let loc = self.locate(at).expect("in range by the assert above");
            let zone = &self.zones[loc.zone as usize];
            let spt = u64::from(zone.sectors_per_track);
            let sector_time = zone.sector_time;
            let left_on_track = spt - u64::from(loc.sector);
            let chunk = remaining.min(left_on_track);
            total += sector_time * chunk;
            remaining -= chunk;
            at += chunk;
            if remaining > 0 {
                // Crossing to the next track: head switch, or cylinder
                // switch when wrapping to the next cylinder.
                let next = self.locate(at).expect("in range");
                total += if next.cylinder != loc.cylinder {
                    cylinder_switch
                } else {
                    head_switch
                };
            }
        }
        total
    }

    /// Duration of one revolution.
    pub fn revolution(&self) -> Duration {
        self.revolution
    }

    /// Number of heads (surfaces).
    pub fn heads(&self) -> u32 {
        self.heads
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn geo() -> Geometry {
        Geometry::from_spec(&DiskSpec::cheetah_9lp())
    }

    #[test]
    fn capacity_close_to_nominal() {
        let spec = DiskSpec::cheetah_9lp();
        let g = Geometry::from_spec(&spec);
        let ratio = g.capacity_bytes() as f64 / spec.capacity_bytes as f64;
        assert!(
            (0.8..1.25).contains(&ratio),
            "synthesized capacity {} vs nominal {} (ratio {ratio})",
            g.capacity_bytes(),
            spec.capacity_bytes
        );
    }

    #[test]
    fn zones_cover_all_cylinders_exactly_once() {
        let spec = DiskSpec::cheetah_9lp();
        let g = Geometry::from_spec(&spec);
        let mut next = 0u32;
        for zn in g.zones() {
            assert_eq!(zn.first_cylinder, next);
            next += zn.cylinders;
        }
        assert_eq!(next, spec.cylinders);
    }

    #[test]
    fn outer_zone_is_fastest() {
        let g = geo();
        let first = g.zones().first().unwrap().sectors_per_track;
        let last = g.zones().last().unwrap().sectors_per_track;
        assert!(first > last, "outer {first} should exceed inner {last}");
        // Monotone non-increasing across the table.
        let spts: Vec<u32> = g.zones().iter().map(|z| z.sectors_per_track).collect();
        assert!(spts.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn media_rates_match_spec_envelope() {
        let spec = DiskSpec::cheetah_9lp();
        let g = Geometry::from_spec(&spec);
        let outer = g.media_rate_at(0).mb_per_sec();
        let inner = g.media_rate_at(g.total_sectors() - 1).mb_per_sec();
        // Floor rounding of sectors-per-track loses < 1 sector per track.
        assert!((outer - 21.3).abs() < 0.2, "outer rate {outer}");
        assert!((inner - 14.5).abs() < 0.2, "inner rate {inner}");
    }

    #[test]
    fn locate_first_and_last() {
        let g = geo();
        let first = g.locate(0).unwrap();
        assert_eq!(
            first,
            Location {
                zone: 0,
                cylinder: 0,
                head: 0,
                sector: 0
            }
        );
        let last = g.locate(g.total_sectors() - 1).unwrap();
        assert_eq!(last.cylinder, g.cylinders() - 1);
        assert!(g.locate(g.total_sectors()).is_none());
    }

    #[test]
    fn sequential_lbas_advance_sector_then_head_then_cylinder() {
        let g = geo();
        let spt = u64::from(g.zones()[0].sectors_per_track);
        // Last sector of track 0 → first sector of head 1.
        let a = g.locate(spt - 1).unwrap();
        let b = g.locate(spt).unwrap();
        assert_eq!(a.head, 0);
        assert_eq!(b.head, 1);
        assert_eq!(b.sector, 0);
        assert_eq!(a.cylinder, b.cylinder);
        // Last head wraps to next cylinder.
        let c = g.locate(spt * u64::from(g.heads())).unwrap();
        assert_eq!(c.cylinder, 1);
        assert_eq!(c.head, 0);
    }

    #[test]
    fn media_transfer_single_sector_matches_rotation() {
        let g = geo();
        let spt = u64::from(g.zones()[0].sectors_per_track);
        let t = g.media_transfer(0, 1, Duration::ZERO, Duration::ZERO);
        assert_eq!(t, g.revolution() / spt);
    }

    #[test]
    fn media_transfer_full_track_plus_switch() {
        let g = geo();
        let spt = u64::from(g.zones()[0].sectors_per_track);
        let hs = Duration::from_micros(800);
        let t = g.media_transfer(0, spt + 1, hs, Duration::ZERO);
        // Per-sector time is quantized to integer nanoseconds, so a full
        // track is spt * (rev / spt), not exactly one revolution.
        let sector_time = g.revolution() / spt;
        let expected = sector_time * spt + hs + sector_time;
        assert_eq!(t, expected);
    }

    #[test]
    #[should_panic(expected = "past end")]
    fn media_transfer_rejects_overrun() {
        let g = geo();
        g.media_transfer(g.total_sectors(), 1, Duration::ZERO, Duration::ZERO);
    }

    #[test]
    fn effective_rate_near_media_rate_for_large_transfers() {
        let g = geo();
        let spec = DiskSpec::cheetah_9lp();
        // 1 MB sequential at the outer zone.
        let sectors = 1_048_576 / SECTOR_BYTES;
        let t = g.media_transfer(0, sectors, spec.head_switch, spec.cylinder_switch);
        let rate = 1_048_576.0 / t.as_secs_f64() / 1e6;
        // Sustained rate is below instantaneous (switch overheads) but close.
        assert!(
            rate < 21.3 && rate > 17.0,
            "sustained outer rate {rate} MB/s"
        );
    }

    proptest! {
        /// locate() is consistent: mapping is monotone in cylinder and the
        /// zone's LBA bounds contain the input.
        #[test]
        fn prop_locate_in_zone_bounds(lba in 0u64..17_000_000) {
            let g = geo();
            prop_assume!(lba < g.total_sectors());
            let loc = g.locate(lba).unwrap();
            let zone = &g.zones()[loc.zone as usize];
            prop_assert!(lba >= zone.first_lba);
            prop_assert!(lba < zone.first_lba + zone.sectors);
            prop_assert!(loc.head < g.heads());
            prop_assert!(loc.sector < zone.sectors_per_track);
            prop_assert!(loc.cylinder >= zone.first_cylinder);
            prop_assert!(loc.cylinder < zone.first_cylinder + zone.cylinders);
        }

        /// Transfer time is additive: t(a..a+n) + t(a+n..a+n+m) differs from
        /// t(a..a+n+m) by at most one track-crossing overhead.
        #[test]
        fn prop_transfer_additive(start in 0u64..1_000_000, n in 1u64..500, m in 1u64..500) {
            let g = geo();
            let hs = Duration::from_micros(800);
            let cs = Duration::from_micros(1_100);
            prop_assume!(start + n + m <= g.total_sectors());
            let whole = g.media_transfer(start, n + m, hs, cs);
            let parts = g.media_transfer(start, n, hs, cs)
                + g.media_transfer(start + n, m, hs, cs);
            let diff = whole.as_nanos().abs_diff(parts.as_nanos());
            prop_assert!(diff <= cs.as_nanos(), "diff {diff} ns");
        }
    }
}
