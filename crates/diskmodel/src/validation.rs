//! Model validation against published drive characteristics.
//!
//! DiskSim "has been validated against several disk drives using the
//! published disk specifications and SCSI logic analyzers". We cannot
//! attach a logic analyzer to a 1998 drive, but the published
//! specifications imply measurable aggregates that the model must
//! reproduce: sustained sequential transfer rates per zone, average
//! random-access service time, and the IOPS envelope. This module
//! computes those aggregates from a simulated workload so tests (and
//! users with their own `DiskSpec`s) can check the model's fidelity.

use simcore::{SimTime, SplitMix64};

use crate::disk::{Disk, Request};
use crate::geometry::SECTOR_BYTES;
use crate::spec::DiskSpec;

/// Validation aggregates for one drive model.
#[derive(Debug, Clone, PartialEq)]
pub struct ValidationReport {
    /// Sustained sequential read rate at the outermost zone (MB/s).
    pub seq_outer_mb_s: f64,
    /// Sustained sequential read rate at the innermost zone (MB/s).
    pub seq_inner_mb_s: f64,
    /// Mean service time of small random reads (ms).
    pub random_read_ms: f64,
    /// Small-random-read throughput (IOPS).
    pub random_iops: f64,
}

/// Measures the validation aggregates by driving a fresh drive instance
/// with canonical micro-workloads (sequential scans at both edges of the
/// surface, and a uniform random 4 KB read stream).
pub fn validate(spec: &DiskSpec) -> ValidationReport {
    let seq_outer_mb_s = sustained_rate(spec, 0);
    let inner_start = {
        let d = Disk::new(spec.clone());
        (d.geometry().total_sectors() - 300_000) * SECTOR_BYTES
    };
    let seq_inner_mb_s = sustained_rate(spec, inner_start);

    // Random 4 KB reads over the whole surface.
    let mut d = Disk::new(spec.clone());
    let mut rng = SplitMix64::new(0xD15C);
    let span = d.geometry().total_sectors() - 8;
    let n = 2_000u64;
    let mut t = SimTime::ZERO;
    for _ in 0..n {
        let lba = rng.next_below(span);
        t = d.submit(t, Request::read(lba * SECTOR_BYTES, 4_096)).end;
    }
    let total_s = t.as_secs_f64();
    ValidationReport {
        seq_outer_mb_s,
        seq_inner_mb_s,
        random_read_ms: total_s * 1e3 / n as f64,
        random_iops: n as f64 / total_s,
    }
}

/// Steady-state sequential rate starting at `offset` (MB/s), excluding the
/// cold first request.
fn sustained_rate(spec: &DiskSpec, offset: u64) -> f64 {
    let mut d = Disk::new(spec.clone());
    let block = 256 * 1024u64;
    let mut t = SimTime::ZERO;
    let n = 128u64;
    let mut measured_from = SimTime::ZERO;
    for i in 0..n {
        let c = d.submit(t, Request::read(offset + i * block, block));
        if i == 0 {
            measured_from = c.end;
        }
        t = c.end;
    }
    let bytes = (n - 1) * block;
    bytes as f64 / t.since(measured_from).as_secs_f64() / 1e6
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cheetah_sequential_rates_track_the_spec() {
        let spec = DiskSpec::cheetah_9lp();
        let report = validate(&spec);
        // Sustained rates sit within the published media-rate envelope,
        // below instantaneous (head/cylinder switches) but within 20%.
        assert!(
            report.seq_outer_mb_s <= 21.3 && report.seq_outer_mb_s > 21.3 * 0.8,
            "outer sustained {:.1} MB/s vs spec 21.3",
            report.seq_outer_mb_s
        );
        assert!(
            report.seq_inner_mb_s <= 14.5 && report.seq_inner_mb_s > 14.5 * 0.8,
            "inner sustained {:.1} MB/s vs spec 14.5",
            report.seq_inner_mb_s
        );
        assert!(report.seq_outer_mb_s > report.seq_inner_mb_s);
    }

    #[test]
    fn cheetah_random_access_time_is_physical() {
        let spec = DiskSpec::cheetah_9lp();
        let report = validate(&spec);
        // Average random read = avg seek (5.4 ms) + avg rotation (3.0 ms)
        // + small transfer + overheads ≈ 8–10 ms → 100–125 IOPS, the
        // canonical figure for a 10k RPM drive of this era.
        assert!(
            (8.0..11.0).contains(&report.random_read_ms),
            "random read {:.2} ms",
            report.random_read_ms
        );
        assert!(
            (90.0..130.0).contains(&report.random_iops),
            "IOPS {:.0}",
            report.random_iops
        );
    }

    #[test]
    fn hitachi_beats_cheetah_on_every_aggregate() {
        let c = validate(&DiskSpec::cheetah_9lp());
        let h = validate(&DiskSpec::hitachi_dk3e1t_91());
        assert!(h.seq_outer_mb_s > c.seq_outer_mb_s);
        assert!(h.seq_inner_mb_s > c.seq_inner_mb_s);
        assert!(h.random_read_ms < c.random_read_ms);
        assert!(h.random_iops > c.random_iops);
    }
}
