//! Disk drive specifications.
//!
//! Parameters come from the published product manuals the paper cites:
//! the Seagate Cheetah 9LP family (ST39102) used in *every* configuration,
//! and the Hitachi DK3E1T-91 used for the "Fast Disk" variant in Figure 3.

use simcore::{Bandwidth, Duration};

/// Published parameters of a disk drive model.
///
/// # Example
///
/// ```
/// use diskmodel::DiskSpec;
/// let spec = DiskSpec::cheetah_9lp();
/// assert_eq!(spec.rpm, 10_025.0);
/// assert!(spec.media_rate_min.mb_per_sec() < spec.media_rate_max.mb_per_sec());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DiskSpec {
    /// Marketing name, e.g. `"Seagate ST39102 (Cheetah 9LP)"`.
    pub name: &'static str,
    /// Formatted capacity in bytes.
    pub capacity_bytes: u64,
    /// Spindle speed in revolutions per minute.
    pub rpm: f64,
    /// Media transfer rate of the innermost zone.
    pub media_rate_min: Bandwidth,
    /// Media transfer rate of the outermost zone.
    pub media_rate_max: Bandwidth,
    /// Single-track (track-to-track) seek time, reads.
    pub seek_track_read: Duration,
    /// Average seek time, reads.
    pub seek_avg_read: Duration,
    /// Full-stroke seek time, reads.
    pub seek_max_read: Duration,
    /// Single-track seek time, writes.
    pub seek_track_write: Duration,
    /// Average seek time, writes.
    pub seek_avg_write: Duration,
    /// Full-stroke seek time, writes.
    pub seek_max_write: Duration,
    /// Number of recording surfaces (heads).
    pub heads: u32,
    /// Number of cylinders.
    pub cylinders: u32,
    /// Number of recording zones.
    pub zones: u32,
    /// On-drive cache size in bytes.
    pub cache_bytes: u64,
    /// Number of cache segments.
    pub cache_segments: u32,
    /// Per-command controller overhead.
    pub controller_overhead: Duration,
    /// Interface (bus) bandwidth: Ultra2 SCSI / dual-loop FC per-port rate.
    pub bus_rate: Bandwidth,
    /// Head-switch time (same cylinder, next surface).
    pub head_switch: Duration,
    /// Cylinder-switch time during sequential transfer.
    pub cylinder_switch: Duration,
}

impl DiskSpec {
    /// The Seagate ST39102 (Cheetah 9LP family): the drive assumed for all
    /// configurations in the paper (Section 2.1).
    ///
    /// 10,025 RPM; 14.5–21.3 MB/s formatted media rate; 5.4 ms / 6.2 ms
    /// average seek (read/write); 12.2 ms / 13.2 ms maximum seek; Ultra2
    /// SCSI and dual-loop Fibre Channel interfaces.
    pub fn cheetah_9lp() -> Self {
        DiskSpec {
            name: "Seagate ST39102 (Cheetah 9LP)",
            capacity_bytes: 9_100_000_000,
            rpm: 10_025.0,
            media_rate_min: Bandwidth::from_mb_per_sec(14.5),
            media_rate_max: Bandwidth::from_mb_per_sec(21.3),
            seek_track_read: Duration::from_micros(980),
            seek_avg_read: Duration::from_micros(5_400),
            seek_max_read: Duration::from_micros(12_200),
            seek_track_write: Duration::from_micros(1_240),
            seek_avg_write: Duration::from_micros(6_200),
            seek_max_write: Duration::from_micros(13_200),
            heads: 12,
            cylinders: 6_962,
            zones: 8,
            cache_bytes: 1_024 * 1_024,
            cache_segments: 16,
            controller_overhead: Duration::from_micros(300),
            bus_rate: Bandwidth::from_mb_per_sec(80.0),
            head_switch: Duration::from_micros(800),
            cylinder_switch: Duration::from_micros(1_100),
        }
    }

    /// The Hitachi DK3E1T-91: the upgraded drive for the "Fast Disk" bars
    /// of Figure 3.
    ///
    /// 12,030 RPM; 18.3–27.3 MB/s media rate; 5 ms / 6 ms average seek;
    /// 10.5 ms / 11.5 ms maximum seek.
    pub fn hitachi_dk3e1t_91() -> Self {
        DiskSpec {
            name: "Hitachi DK3E1T-91",
            capacity_bytes: 9_200_000_000,
            rpm: 12_030.0,
            media_rate_min: Bandwidth::from_mb_per_sec(18.3),
            media_rate_max: Bandwidth::from_mb_per_sec(27.3),
            seek_track_read: Duration::from_micros(900),
            seek_avg_read: Duration::from_micros(5_000),
            seek_max_read: Duration::from_micros(10_500),
            seek_track_write: Duration::from_micros(1_100),
            seek_avg_write: Duration::from_micros(6_000),
            seek_max_write: Duration::from_micros(11_500),
            heads: 12,
            cylinders: 6_720,
            zones: 8,
            cache_bytes: 1_024 * 1_024,
            cache_segments: 16,
            controller_overhead: Duration::from_micros(300),
            bus_rate: Bandwidth::from_mb_per_sec(80.0),
            head_switch: Duration::from_micros(750),
            cylinder_switch: Duration::from_micros(1_000),
        }
    }

    /// Duration of one platter revolution.
    pub fn revolution(&self) -> Duration {
        Duration::from_secs_f64(60.0 / self.rpm)
    }

    /// Average rotational latency (half a revolution).
    pub fn avg_rotational_latency(&self) -> Duration {
        self.revolution() / 2
    }

    /// Mean of the innermost and outermost media rates — a convenient
    /// summary for capacity planning (not used for service times, which are
    /// zone-accurate).
    pub fn media_rate_mean(&self) -> Bandwidth {
        Bandwidth::from_bytes_per_sec(
            (self.media_rate_min.bytes_per_sec() + self.media_rate_max.bytes_per_sec()) / 2.0,
        )
    }

    /// Validates internal consistency (rates ordered, seeks ordered).
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.media_rate_min > self.media_rate_max {
            return Err(format!("{}: media rate min > max", self.name));
        }
        if !(self.seek_track_read <= self.seek_avg_read && self.seek_avg_read <= self.seek_max_read)
        {
            return Err(format!("{}: read seek times not ordered", self.name));
        }
        if !(self.seek_track_write <= self.seek_avg_write
            && self.seek_avg_write <= self.seek_max_write)
        {
            return Err(format!("{}: write seek times not ordered", self.name));
        }
        if self.heads == 0 || self.cylinders == 0 || self.zones == 0 {
            return Err(format!("{}: zero geometry component", self.name));
        }
        if self.zones > self.cylinders {
            return Err(format!("{}: more zones than cylinders", self.name));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cheetah_matches_paper_figures() {
        let s = DiskSpec::cheetah_9lp();
        assert_eq!(s.rpm, 10_025.0);
        assert!((s.media_rate_min.mb_per_sec() - 14.5).abs() < 1e-9);
        assert!((s.media_rate_max.mb_per_sec() - 21.3).abs() < 1e-9);
        assert_eq!(s.seek_avg_read, Duration::from_micros(5_400));
        assert_eq!(s.seek_avg_write, Duration::from_micros(6_200));
        assert_eq!(s.seek_max_read, Duration::from_micros(12_200));
        s.validate().expect("cheetah spec is internally consistent");
    }

    #[test]
    fn hitachi_matches_paper_figures() {
        let s = DiskSpec::hitachi_dk3e1t_91();
        assert_eq!(s.rpm, 12_030.0);
        assert!((s.media_rate_min.mb_per_sec() - 18.3).abs() < 1e-9);
        assert!((s.media_rate_max.mb_per_sec() - 27.3).abs() < 1e-9);
        assert_eq!(s.seek_max_read, Duration::from_micros(10_500));
        s.validate().expect("hitachi spec is internally consistent");
    }

    #[test]
    fn hitachi_is_strictly_faster() {
        let c = DiskSpec::cheetah_9lp();
        let h = DiskSpec::hitachi_dk3e1t_91();
        assert!(h.rpm > c.rpm);
        assert!(h.media_rate_max > c.media_rate_max);
        assert!(h.seek_avg_read < c.seek_avg_read);
    }

    #[test]
    fn revolution_time_from_rpm() {
        let s = DiskSpec::cheetah_9lp();
        // 10,025 RPM → 5.985 ms per revolution.
        let rev_ms = s.revolution().as_secs_f64() * 1e3;
        assert!((rev_ms - 5.985).abs() < 0.01, "rev = {rev_ms} ms");
        assert_eq!(s.avg_rotational_latency(), s.revolution() / 2);
    }

    #[test]
    fn mean_media_rate_is_between_extremes() {
        let s = DiskSpec::cheetah_9lp();
        let mean = s.media_rate_mean();
        assert!(mean > s.media_rate_min && mean < s.media_rate_max);
    }

    #[test]
    fn validate_detects_bad_ordering() {
        let mut s = DiskSpec::cheetah_9lp();
        s.seek_avg_read = Duration::from_micros(20_000);
        assert!(s.validate().is_err());
    }

    #[test]
    fn validate_detects_zero_geometry() {
        let mut s = DiskSpec::cheetah_9lp();
        s.heads = 0;
        assert!(s.validate().is_err());
    }
}
