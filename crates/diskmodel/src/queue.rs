//! Request-queue scheduling: FCFS and elevator (SCAN) disciplines.
//!
//! DiskSim models queue scheduling in the controller/driver; the paper
//! leans on it indirectly — the SMP configurations keep shared queues of
//! blocks "in the order they appear on disk", so "the overall sequence of
//! requests roughly follows the order in which data has been laid out on
//! disk. This technique reduces the seek costs". [`RequestQueue`] provides
//! that mechanism: requests accumulate while the drive is busy and are
//! dispatched either in arrival order (FCFS) or in arm-sweep order
//! (elevator/SCAN).

use std::collections::VecDeque;

use crate::disk::Request;
use crate::geometry::SECTOR_BYTES;

/// Queue scheduling discipline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Discipline {
    /// First-come, first-served.
    Fcfs,
    /// Elevator (SCAN): serve the nearest request in the current sweep
    /// direction, reversing at the ends.
    Elevator,
}

/// A pending-request queue with a pluggable discipline.
///
/// # Example
///
/// ```
/// use diskmodel::queue::{Discipline, RequestQueue};
/// use diskmodel::Request;
///
/// let mut q = RequestQueue::new(Discipline::Elevator);
/// q.push(Request::read(10_000 * 512, 512));
/// q.push(Request::read(100 * 512, 512));
/// q.push(Request::read(5_000 * 512, 512));
/// // From LBA 0 sweeping upward: 100, then 5000, then 10000.
/// assert_eq!(q.pop(0).unwrap().offset, 100 * 512);
/// assert_eq!(q.pop(100).unwrap().offset, 5_000 * 512);
/// assert_eq!(q.pop(5_000).unwrap().offset, 10_000 * 512);
/// ```
#[derive(Debug, Clone)]
pub struct RequestQueue {
    discipline: Discipline,
    pending: VecDeque<Request>,
    sweeping_up: bool,
}

impl RequestQueue {
    /// Creates an empty queue with the given discipline.
    pub fn new(discipline: Discipline) -> Self {
        RequestQueue {
            discipline,
            pending: VecDeque::new(),
            sweeping_up: true,
        }
    }

    /// The queue's discipline.
    pub fn discipline(&self) -> Discipline {
        self.discipline
    }

    /// Enqueues a request.
    pub fn push(&mut self, req: Request) {
        self.pending.push_back(req);
    }

    /// Number of pending requests.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// True if nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Removes and returns the next request to serve, given the arm's
    /// current LBA position.
    pub fn pop(&mut self, arm_lba: u64) -> Option<Request> {
        if self.pending.is_empty() {
            return None;
        }
        let ix = match self.discipline {
            Discipline::Fcfs => 0,
            Discipline::Elevator => self.elevator_pick(arm_lba),
        };
        self.pending.remove(ix)
    }

    fn elevator_pick(&mut self, arm_lba: u64) -> usize {
        let lba_of = |r: &Request| r.offset / SECTOR_BYTES;
        // Nearest request at-or-beyond the arm in the sweep direction;
        // reverse the sweep if none remain on this side.
        for _ in 0..2 {
            let candidate = self
                .pending
                .iter()
                .enumerate()
                .filter(|(_, r)| {
                    if self.sweeping_up {
                        lba_of(r) >= arm_lba
                    } else {
                        lba_of(r) <= arm_lba
                    }
                })
                .min_by_key(|(_, r)| lba_of(r).abs_diff(arm_lba));
            if let Some((ix, _)) = candidate {
                return ix;
            }
            self.sweeping_up = !self.sweeping_up;
        }
        unreachable!("non-empty queue always has a candidate after reversal");
    }

    /// Total seek distance (in LBAs, as a proxy) a drain of the queue
    /// would travel from `arm_lba` under the current discipline —
    /// a cheap comparative measure used in tests and tuning.
    pub fn drain_travel(&self, arm_lba: u64) -> u64 {
        let mut q = self.clone();
        let mut pos = arm_lba;
        let mut travel = 0;
        while let Some(r) = q.pop(pos) {
            let lba = r.offset / SECTOR_BYTES;
            travel += lba.abs_diff(pos);
            pos = lba;
        }
        travel
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use simcore::SplitMix64;

    fn random_requests(n: usize, seed: u64) -> Vec<Request> {
        let mut rng = SplitMix64::new(seed);
        (0..n)
            .map(|_| Request::read(rng.next_below(1 << 24) * SECTOR_BYTES, SECTOR_BYTES))
            .collect()
    }

    #[test]
    fn fcfs_preserves_arrival_order() {
        let mut q = RequestQueue::new(Discipline::Fcfs);
        let reqs = random_requests(10, 1);
        for r in &reqs {
            q.push(*r);
        }
        for r in &reqs {
            assert_eq!(q.pop(0).unwrap(), *r);
        }
        assert!(q.is_empty());
    }

    #[test]
    fn elevator_sweeps_up_then_down() {
        let mut q = RequestQueue::new(Discipline::Elevator);
        for lba in [500u64, 100, 900, 300] {
            q.push(Request::read(lba * SECTOR_BYTES, SECTOR_BYTES));
        }
        // Arm at 200 sweeping up: 300, 500, 900; then down: 100.
        let mut order = Vec::new();
        let mut pos = 200;
        while let Some(r) = q.pop(pos) {
            pos = r.offset / SECTOR_BYTES;
            order.push(pos);
        }
        assert_eq!(order, vec![300, 500, 900, 100]);
    }

    #[test]
    fn elevator_travels_less_than_fcfs() {
        let reqs = random_requests(64, 9);
        let mut fcfs = RequestQueue::new(Discipline::Fcfs);
        let mut scan = RequestQueue::new(Discipline::Elevator);
        for r in &reqs {
            fcfs.push(*r);
            scan.push(*r);
        }
        let f = fcfs.drain_travel(0);
        let s = scan.drain_travel(0);
        assert!(
            s < f / 4,
            "elevator travel {s} should be far below FCFS travel {f}"
        );
    }

    #[test]
    fn empty_queue_pops_none() {
        assert!(RequestQueue::new(Discipline::Elevator).pop(0).is_none());
    }

    proptest! {
        /// Both disciplines serve every request exactly once.
        #[test]
        fn prop_conservation(n in 1usize..60, seed in 0u64..100, fcfs in proptest::bool::ANY) {
            let disc = if fcfs { Discipline::Fcfs } else { Discipline::Elevator };
            let reqs = random_requests(n, seed);
            let mut q = RequestQueue::new(disc);
            for r in &reqs {
                q.push(*r);
            }
            let mut seen = Vec::new();
            let mut pos = 0;
            while let Some(r) = q.pop(pos) {
                pos = r.offset / SECTOR_BYTES;
                seen.push(r);
            }
            prop_assert_eq!(seen.len(), reqs.len());
            let canon = |mut v: Vec<Request>| {
                v.sort_by_key(|r| r.offset);
                v
            };
            prop_assert_eq!(canon(seen), canon(reqs));
        }

        /// Elevator never does worse than 2x the optimal one-way sweep.
        #[test]
        fn prop_elevator_bounded(n in 2usize..40, seed in 0u64..50) {
            let reqs = random_requests(n, seed);
            let mut q = RequestQueue::new(Discipline::Elevator);
            for r in &reqs {
                q.push(*r);
            }
            let max_lba = reqs.iter().map(|r| r.offset / SECTOR_BYTES).max().unwrap();
            let travel = q.drain_travel(0);
            prop_assert!(travel <= 2 * max_lba, "travel {travel} vs span {max_lba}");
        }
    }
}
