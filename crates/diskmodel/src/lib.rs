//! Disk drive model for the Howsim Active Disk simulator.
//!
//! This crate is the reproduction's analog of **DiskSim** (Ganger et al.),
//! which the paper's Howsim simulator used "for modeling the behavior of
//! disk drives, controllers and device drivers". It models:
//!
//! * **Zoned recording** — outer zones hold more sectors per track, so the
//!   media rate varies across the surface (14.5–21.3 MB/s for the Seagate
//!   Cheetah 9LP used in every configuration of the paper).
//! * **Seek time** — a square-root + linear curve fitted to the published
//!   single-track, average, and full-stroke seek times (separately for
//!   reads and writes).
//! * **Rotational latency** — the arrival angle of the target sector given
//!   the absolute simulated time and spindle speed.
//! * **A segmented cache with sequential prefetch** — streams detected as
//!   sequential are served at media rate without re-paying seek+rotation,
//!   the dominant regime for decision-support scans.
//! * **Controller and bus overheads**.
//!
//! # Example
//!
//! ```
//! use diskmodel::{Disk, DiskSpec, Request};
//! use simcore::SimTime;
//!
//! let mut disk = Disk::new(DiskSpec::cheetah_9lp());
//! let first = disk.submit(SimTime::ZERO, Request::read(0, 256 * 1024));
//! // A second, sequential read streams from the prefetch buffer and is
//! // cheaper than the first (no seek / rotational latency).
//! let second = disk.submit(first.end, Request::read(256 * 1024, 256 * 1024));
//! assert!(second.service() < first.service());
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod defects;
pub mod disk;
pub mod geometry;
pub mod queue;
pub mod seek;
pub mod spec;
pub mod validation;

pub use defects::DefectMap;
pub use disk::{Completion, Disk, Request, RequestKind};
pub use geometry::{Geometry, Location};
pub use queue::{Discipline, RequestQueue};
pub use seek::SeekCurve;
pub use spec::DiskSpec;
pub use validation::{validate, ValidationReport};
