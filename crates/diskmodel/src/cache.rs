//! Segmented drive cache with sequential read-ahead.
//!
//! Drives of the Cheetah era used a cache split into segments, each tracking
//! one sequential stream. After serving a read the drive keeps reading
//! ("prefetch") into the stream's segment, so the *next* sequential request
//! is served from buffer — at media rate rather than seek+rotation cost.
//! This is the mechanism that lets decision-support table scans run at the
//! zone media rate, which the paper's results depend on.
//!
//! The model tracks, per segment, the media read-ahead position as a
//! function of time: a segment installed at time `t0` with the head at LBA
//! `p0` has prefetched up to `p0 + rate·(t − t0)` by time `t`, capped by the
//! segment capacity ahead of the last consumed LBA.

use simcore::state::{StateError, StateReader, StateWriter};
use simcore::{Duration, SimTime};

use crate::geometry::{Geometry, SECTOR_BYTES};

/// Outcome of a cache lookup for a read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lookup {
    /// The request continues a tracked sequential stream; the final byte is
    /// (or will be) in the buffer at `data_ready`.
    Hit {
        /// When the last sector of the request has arrived in the buffer.
        data_ready: SimTime,
    },
    /// Mechanical access required.
    Miss,
}

#[derive(Debug, Clone)]
struct Segment {
    /// Next LBA the host will consume (stream position).
    next_lba: u64,
    /// Media read-ahead position at `as_of`.
    media_pos: u64,
    /// Time at which `media_pos` was observed.
    as_of: SimTime,
    /// LRU stamp.
    last_use: u64,
    /// Memoized zone window `[zone_lo, zone_hi)` with its media-rate
    /// constants: a sequential stream stays inside one zone for ~10^6
    /// sectors, so revalidating with two compares replaces the per-request
    /// zone binary search. Initialized empty (`lo > hi`) to force a fetch.
    zone_lo: u64,
    zone_hi: u64,
    /// Media rate of the memoized zone in bytes per second.
    bps: f64,
    /// Seconds per sector at `bps` (`SECTOR_BYTES / bps`, precomputed).
    sector_secs: f64,
}

impl Segment {
    /// Media-rate constants `(bytes/s, seconds/sector)` at `pos`, served
    /// from the memoized zone window when `pos` is still inside it.
    fn rate_at(&mut self, pos: u64, geo: &Geometry) -> (f64, f64) {
        if !(self.zone_lo <= pos && pos < self.zone_hi) {
            let (lo, hi, bps, sector_secs) = geo.zone_window(pos);
            self.zone_lo = lo;
            self.zone_hi = hi;
            self.bps = bps;
            self.sector_secs = sector_secs;
        }
        (self.bps, self.sector_secs)
    }
}

/// A segmented read cache with sequential prefetch.
///
/// # Example
///
/// ```
/// use diskmodel::cache::{SegmentedCache, Lookup};
/// use diskmodel::{DiskSpec, Geometry};
/// use simcore::SimTime;
///
/// let spec = DiskSpec::cheetah_9lp();
/// let geo = Geometry::from_spec(&spec);
/// let mut cache = SegmentedCache::new(&spec);
/// // Nothing cached yet: miss.
/// assert_eq!(cache.lookup(SimTime::ZERO, 0, 64, &geo), Lookup::Miss);
/// ```
#[derive(Debug, Clone)]
pub struct SegmentedCache {
    segments: Vec<Segment>,
    max_segments: usize,
    capacity_sectors: u64,
    clock: u64,
}

impl SegmentedCache {
    /// Creates a cache sized from a drive spec.
    pub fn new(spec: &crate::spec::DiskSpec) -> Self {
        let total_sectors = spec.cache_bytes / SECTOR_BYTES;
        let max_segments = spec.cache_segments.max(1) as usize;
        SegmentedCache {
            segments: Vec::with_capacity(max_segments),
            max_segments,
            capacity_sectors: (total_sectors / max_segments as u64).max(1),
            clock: 0,
        }
    }

    /// Sectors of read-ahead one segment can hold.
    pub fn segment_capacity_sectors(&self) -> u64 {
        self.capacity_sectors
    }

    fn tick(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    /// Media read-ahead position of `seg` at time `now`, capped by segment
    /// capacity ahead of the stream position.
    fn media_pos_at(seg: &mut Segment, now: SimTime, geo: &Geometry, cap: u64) -> u64 {
        let elapsed = now.saturating_since(seg.as_of);
        if seg.media_pos >= geo.total_sectors() {
            return geo.total_sectors();
        }
        let pos = seg.media_pos.min(geo.total_sectors() - 1);
        let (_, sector_secs) = seg.rate_at(pos, geo);
        let advanced = (elapsed.as_secs_f64() / sector_secs) as u64;
        (seg.media_pos + advanced)
            .min(seg.next_lba + cap)
            .min(geo.total_sectors())
    }

    /// Looks up a read of `sectors` at `lba`. On a hit, returns when the
    /// data is fully buffered; the caller adds bus transfer.
    pub fn lookup(&mut self, now: SimTime, lba: u64, sectors: u64, geo: &Geometry) -> Lookup {
        let cap = self.capacity_sectors;
        let stamp = self.tick();
        let Some(seg) = self
            .segments
            .iter_mut()
            .find(|s| lba == s.next_lba || (lba >= s.next_lba && lba < s.next_lba + cap))
        else {
            return Lookup::Miss;
        };
        let end = lba + sectors;
        let total = geo.total_sectors();
        // Inlined [`Self::media_pos_at`]: the stream's media-rate constants
        // are shared with the post-hit position update below, so the zone
        // memo is consulted once and the advance divide runs at most twice
        // per hit.
        let (at_end, sector_secs, advanced) = if seg.media_pos >= total {
            (true, 0.0, 0)
        } else {
            let (_, ss) = seg.rate_at(seg.media_pos.min(total - 1), geo);
            let elapsed = now.saturating_since(seg.as_of);
            (false, ss, (elapsed.as_secs_f64() / ss) as u64)
        };
        let pos_now = if at_end {
            total
        } else {
            (seg.media_pos + advanced)
                .min(seg.next_lba + cap)
                .min(total)
        };
        if lba > pos_now {
            // Skipped ahead of the read-ahead head: treat as a miss.
            return Lookup::Miss;
        }
        let data_ready = if end <= pos_now {
            now
        } else {
            let remaining = end - pos_now;
            if end > total {
                return Lookup::Miss;
            }
            let (bps, _) = seg.rate_at(pos_now.min(total - 1), geo);
            let t = Duration::from_secs_f64(remaining as f64 * SECTOR_BYTES as f64 / bps);
            now + t
        };
        // Advance the stream: prefetch continues from max(end, pos at ready).
        let pos_ready = if at_end {
            total
        } else if data_ready == now {
            (seg.media_pos + advanced).min(end + cap).min(total)
        } else {
            let elapsed = data_ready.saturating_since(seg.as_of);
            let advanced = (elapsed.as_secs_f64() / sector_secs) as u64;
            (seg.media_pos + advanced).min(end + cap).min(total)
        };
        seg.next_lba = end;
        seg.media_pos = end.max(pos_ready);
        seg.as_of = data_ready;
        seg.last_use = stamp;
        Lookup::Hit { data_ready }
    }

    /// Installs (or refreshes) a segment after a mechanical read of
    /// `sectors` at `lba` completing at `done`: read-ahead continues from
    /// the end of the transfer.
    pub fn install(&mut self, done: SimTime, lba: u64, sectors: u64) {
        let stamp = self.tick();
        let end = lba + sectors;
        // Reuse a segment for the same stream if one exists.
        if let Some(seg) = self
            .segments
            .iter_mut()
            .find(|s| s.next_lba == lba || s.next_lba == end)
        {
            seg.next_lba = end;
            seg.media_pos = end;
            seg.as_of = done;
            seg.last_use = stamp;
            return;
        }
        let seg = Segment {
            next_lba: end,
            media_pos: end,
            as_of: done,
            last_use: stamp,
            zone_lo: 1,
            zone_hi: 0,
            bps: 0.0,
            sector_secs: 0.0,
        };
        if self.segments.len() < self.max_segments {
            self.segments.push(seg);
        } else {
            let victim = self
                .segments
                .iter_mut()
                .min_by_key(|s| s.last_use)
                .expect("max_segments >= 1");
            *victim = seg;
        }
    }

    /// Invalidates any segment overlapping a written extent (write-through,
    /// no write caching — the paper's tasks use raw-disk writes).
    pub fn invalidate(&mut self, lba: u64, sectors: u64) {
        let end = lba + sectors;
        self.segments.retain(|s| {
            s.next_lba + self.capacity_sectors <= lba
                || s.next_lba.saturating_sub(self.capacity_sectors) >= end
        });
    }

    /// Number of active segments.
    pub fn active_segments(&self) -> usize {
        self.segments.len()
    }

    /// Pauses read-ahead across an arm excursion `[from, until]`: each
    /// segment's prefetch position is frozen at its `from` value, since
    /// the head is elsewhere and cannot feed the buffers.
    pub fn pause(&mut self, from: SimTime, until: SimTime, geo: &Geometry) {
        let cap = self.capacity_sectors;
        for seg in &mut self.segments {
            let pos = Self::media_pos_at(seg, from, geo, cap);
            seg.media_pos = pos;
            seg.as_of = seg.as_of.max(until);
        }
    }

    /// Serializes the cache's mutable state for checkpointing. The zone
    /// memo (floating-point rate constants) is deliberately excluded: it
    /// is a pure function of geometry and position and is refetched on
    /// first use after restore, reproducing the same values bit-exactly.
    pub fn save_state(&self, w: &mut StateWriter) {
        w.field("cache_clock", self.clock);
        w.field("segments", self.segments.len());
        for s in &self.segments {
            w.list(
                "seg",
                [s.next_lba, s.media_pos, s.as_of.as_nanos(), s.last_use],
            );
        }
    }

    /// Restores mutable state into a cache freshly built from the same
    /// spec ([`SegmentedCache::new`] supplies the configuration).
    ///
    /// # Errors
    ///
    /// Returns [`StateError`] on malformed input.
    pub fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), StateError> {
        self.clock = r.num("cache_clock")?;
        let n: usize = r.num("segments")?;
        if n > self.max_segments {
            return Err(StateError::new("more segments than the spec allows"));
        }
        self.segments.clear();
        for _ in 0..n {
            let vals: Vec<u64> = r.nums("seg")?;
            let [next_lba, media_pos, as_of, last_use] = vals[..] else {
                return Err(StateError::new("segment line needs 4 values"));
            };
            self.segments.push(Segment {
                next_lba,
                media_pos,
                as_of: SimTime::from_nanos(as_of),
                last_use,
                // Empty memo window forces a refetch on first use.
                zone_lo: 1,
                zone_hi: 0,
                bps: 0.0,
                sector_secs: 0.0,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::DiskSpec;

    fn setup() -> (SegmentedCache, Geometry) {
        let spec = DiskSpec::cheetah_9lp();
        (SegmentedCache::new(&spec), Geometry::from_spec(&spec))
    }

    #[test]
    fn cold_cache_misses() {
        let (mut c, geo) = setup();
        assert_eq!(c.lookup(SimTime::ZERO, 0, 8, &geo), Lookup::Miss);
        assert_eq!(c.active_segments(), 0);
    }

    #[test]
    fn sequential_read_hits_after_install() {
        let (mut c, geo) = setup();
        let t0 = SimTime::from_nanos(1_000_000);
        c.install(t0, 0, 512);
        match c.lookup(t0, 512, 64, &geo) {
            Lookup::Hit { data_ready } => {
                // Data arrives after t0 (media still reading ahead).
                assert!(data_ready >= t0);
            }
            Lookup::Miss => panic!("sequential continuation should hit"),
        }
    }

    #[test]
    fn hit_after_long_idle_is_fully_buffered() {
        let (mut c, geo) = setup();
        let t0 = SimTime::ZERO;
        c.install(t0, 0, 64);
        // Wait long enough for the prefetch to fill the segment.
        let later = t0 + Duration::from_millis(100);
        match c.lookup(later, 64, 64, &geo) {
            Lookup::Hit { data_ready } => assert_eq!(data_ready, later),
            Lookup::Miss => panic!("should hit"),
        }
    }

    #[test]
    fn far_random_read_misses() {
        let (mut c, geo) = setup();
        c.install(SimTime::ZERO, 0, 512);
        assert_eq!(
            c.lookup(SimTime::ZERO, 5_000_000, 64, &geo),
            Lookup::Miss,
            "a distant LBA is not covered by the stream segment"
        );
    }

    #[test]
    fn prefetch_is_capped_by_segment_capacity() {
        let (mut c, geo) = setup();
        c.install(SimTime::ZERO, 0, 64);
        let cap = c.segment_capacity_sectors();
        // Even after a very long idle, read-ahead cannot exceed capacity.
        let much_later = SimTime::ZERO + Duration::from_secs(10);
        let beyond = 64 + cap + 1;
        assert_eq!(c.lookup(much_later, beyond, 8, &geo), Lookup::Miss);
    }

    #[test]
    fn lru_eviction_bounds_segments() {
        let (mut c, _geo) = setup();
        for i in 0..100 {
            c.install(SimTime::ZERO, i * 1_000_000, 64);
        }
        assert!(c.active_segments() <= 16);
    }

    #[test]
    fn write_invalidates_overlapping_stream() {
        let (mut c, geo) = setup();
        c.install(SimTime::ZERO, 0, 512);
        c.invalidate(256, 512);
        assert_eq!(c.lookup(SimTime::ZERO, 512, 64, &geo), Lookup::Miss);
    }

    #[test]
    fn two_interleaved_streams_both_hit() {
        let (mut c, geo) = setup();
        let a = 0u64;
        let b = 8_000_000u64;
        c.install(SimTime::ZERO, a, 512);
        c.install(SimTime::ZERO, b, 512);
        let later = SimTime::ZERO + Duration::from_millis(50);
        assert!(matches!(
            c.lookup(later, a + 512, 64, &geo),
            Lookup::Hit { .. }
        ));
        assert!(matches!(
            c.lookup(later, b + 512, 64, &geo),
            Lookup::Hit { .. }
        ));
    }
}
