//! The disk drive service model: combines geometry, seek curve, spindle
//! position, cache, and controller/bus overheads into per-request service
//! times.

use simcore::state::{StateError, StateReader, StateWriter};
use simcore::{Duration, Histogram, SimTime};

use crate::cache::{Lookup, SegmentedCache};
use crate::defects::{DefectMap, SpareExhausted};
use crate::geometry::{Geometry, SECTOR_BYTES};
use crate::seek::SeekCurve;
use crate::spec::DiskSpec;

/// Read or write.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RequestKind {
    /// Media or cache read.
    Read,
    /// Media write (write-through; no write caching).
    Write,
}

/// A disk request: a byte extent, sector-aligned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Request {
    /// Read or write.
    pub kind: RequestKind,
    /// Starting byte offset (must be sector-aligned).
    pub offset: u64,
    /// Length in bytes (must be a positive multiple of the sector size).
    pub bytes: u64,
}

impl Request {
    /// A read of `bytes` at byte `offset`.
    pub fn read(offset: u64, bytes: u64) -> Self {
        Request {
            kind: RequestKind::Read,
            offset,
            bytes,
        }
    }

    /// A write of `bytes` at byte `offset`.
    pub fn write(offset: u64, bytes: u64) -> Self {
        Request {
            kind: RequestKind::Write,
            offset,
            bytes,
        }
    }
}

/// The scheduling of one serviced request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    /// When the drive began working on the request (>= submit time).
    pub start: SimTime,
    /// When the data transfer completed.
    pub end: SimTime,
    /// Whether the request needed mechanical positioning (seek/rotation).
    pub mechanical: bool,
}

impl Completion {
    /// Service time (start to end).
    pub fn service(&self) -> Duration {
        self.end.since(self.start)
    }
}

/// A disk drive instance with its own arm, spindle, and cache state.
///
/// Requests are served FIFO: each request begins when the drive becomes
/// free. Submission times must be non-decreasing (the simulator's event
/// loop guarantees this).
///
/// # Example
///
/// ```
/// use diskmodel::{Disk, DiskSpec, Request};
/// use simcore::SimTime;
///
/// let mut disk = Disk::new(DiskSpec::cheetah_9lp());
/// let c = disk.submit(SimTime::ZERO, Request::read(0, 64 * 1024));
/// assert!(c.mechanical, "cold cache: mechanical access");
/// assert!(c.service().as_micros() > 0);
/// ```
#[derive(Debug, Clone)]
pub struct Disk {
    spec: DiskSpec,
    geometry: Geometry,
    read_seek: SeekCurve,
    write_seek: SeekCurve,
    cache: SegmentedCache,
    cylinder: u32,
    free_at: SimTime,
    busy: Duration,
    /// Cumulative time requests spent queued behind the arm
    /// (submit→start-of-service) before the drive began serving them.
    wait: Duration,
    /// End LBA and cylinder of the most recent write stream (write-behind
    /// cache state): continuation is only free while the arm is still
    /// parked on the stream.
    write_stream_end: Option<(u64, u32)>,
    /// Grown-defect remapping (empty on a healthy drive).
    defects: DefectMap,
    /// Per-request service-time distribution.
    service_hist: Histogram,
    reads: u64,
    writes: u64,
    bytes_read: u64,
    bytes_written: u64,
    cache_hits: u64,
    /// Memoized `(sectors, bus_rate.transfer_time(sectors * SECTOR_BYTES))`
    /// of the last cache-hit read. Scan workloads hit with one fixed
    /// batch size, so this skips the float division on the hot path; the
    /// memo reproduces the same expression, keeping results bit-identical.
    bus_memo: Option<(u64, Duration)>,
}

impl Disk {
    /// Creates a drive from a spec with the arm at cylinder 0.
    pub fn new(spec: DiskSpec) -> Self {
        let geometry = Geometry::from_spec(&spec);
        let read_seek = SeekCurve::reads(&spec);
        let write_seek = SeekCurve::writes(&spec);
        let cache = SegmentedCache::new(&spec);
        // The spare region occupies the last 1,024 sectors of the surface.
        let total = geometry.total_sectors();
        let defects = DefectMap::new(total - 1_024, 1_024);
        Disk {
            spec,
            geometry,
            read_seek,
            write_seek,
            cache,
            cylinder: 0,
            free_at: SimTime::ZERO,
            busy: Duration::ZERO,
            wait: Duration::ZERO,
            write_stream_end: None,
            defects,
            service_hist: Histogram::new(),
            reads: 0,
            writes: 0,
            bytes_read: 0,
            bytes_written: 0,
            cache_hits: 0,
            bus_memo: None,
        }
    }

    /// The drive's spec.
    pub fn spec(&self) -> &DiskSpec {
        &self.spec
    }

    /// The drive's synthesized geometry.
    pub fn geometry(&self) -> &Geometry {
        &self.geometry
    }

    /// Usable capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.geometry.capacity_bytes()
    }

    /// Submits a request at `now`; returns its scheduling.
    ///
    /// # Panics
    ///
    /// Panics if the extent is not sector-aligned, empty, or out of range.
    pub fn submit(&mut self, now: SimTime, req: Request) -> Completion {
        assert!(req.bytes > 0, "empty request");
        assert_eq!(req.offset % SECTOR_BYTES, 0, "offset not sector-aligned");
        assert_eq!(req.bytes % SECTOR_BYTES, 0, "length not sector-aligned");
        let lba = req.offset / SECTOR_BYTES;
        let sectors = req.bytes / SECTOR_BYTES;
        assert!(
            lba + sectors <= self.geometry.total_sectors(),
            "request [{}, {}) beyond disk capacity {} bytes",
            req.offset,
            req.offset + req.bytes,
            self.capacity_bytes()
        );

        let start = now.max(self.free_at);
        let completion = if self.defects.grown() == 0 {
            match req.kind {
                RequestKind::Read => self.serve_read(start, lba, sectors),
                RequestKind::Write => self.serve_write(start, lba, sectors),
            }
        } else {
            // A remapped sector splits the transfer into physical
            // fragments served back to back (spare-region detours). Spare
            // fragments bypass the cache entirely: drives do not read
            // ahead in the spare region, and the detour costs the full
            // mechanical excursion there and back.
            let spare_start = self.geometry.total_sectors() - 1_024;
            let mut at = start;
            let mut mechanical = false;
            for (plba, psec) in self.defects.translate(lba, sectors) {
                if plba >= spare_start {
                    let end = self.mechanical_access(
                        at + self.spec.controller_overhead,
                        plba,
                        psec,
                        req.kind,
                    );
                    self.cache.pause(at, end, &self.geometry);
                    mechanical = true;
                    at = end;
                } else {
                    let frag = match req.kind {
                        RequestKind::Read => self.serve_read(at, plba, psec),
                        RequestKind::Write => self.serve_write(at, plba, psec),
                    };
                    mechanical |= frag.mechanical;
                    at = frag.end;
                }
            }
            Completion {
                start,
                end: at,
                mechanical,
            }
        };
        self.free_at = completion.end;
        self.busy += completion.service();
        self.wait += start.since(now);
        self.service_hist.record(completion.service());
        match req.kind {
            RequestKind::Read => {
                self.reads += 1;
                self.bytes_read += req.bytes;
            }
            RequestKind::Write => {
                self.writes += 1;
                self.bytes_written += req.bytes;
            }
        }
        completion
    }

    fn serve_read(&mut self, start: SimTime, lba: u64, sectors: u64) -> Completion {
        let overhead = self.spec.controller_overhead;
        match self
            .cache
            .lookup(start + overhead, lba, sectors, &self.geometry)
        {
            Lookup::Hit { data_ready } => {
                self.cache_hits += 1;
                // Bus transfer streams behind the data; completion is
                // data-availability plus the bus time of the final burst.
                let bus = match self.bus_memo {
                    Some((s, d)) if s == sectors => d,
                    _ => {
                        let d = self.spec.bus_rate.transfer_time(sectors * SECTOR_BYTES);
                        self.bus_memo = Some((sectors, d));
                        d
                    }
                };
                let end = data_ready.max(start + overhead + bus);
                Completion {
                    start,
                    end,
                    mechanical: false,
                }
            }
            Lookup::Miss => {
                let end = self.mechanical_access(start + overhead, lba, sectors, RequestKind::Read);
                // The arm left any streams it was feeding: freeze their
                // read-ahead across the excursion (positions as of its
                // start, no progress until its end).
                self.cache.pause(start, end, &self.geometry);
                self.cache.install(end, lba, sectors);
                Completion {
                    start,
                    end,
                    mechanical: true,
                }
            }
        }
    }

    fn serve_write(&mut self, start: SimTime, lba: u64, sectors: u64) -> Completion {
        self.cache.invalidate(lba, sectors);
        // Write-behind caching: a write continuing the current write
        // stream is accepted into the drive's buffer and flushed where the
        // head already is, paying media time but no fresh seek/rotation.
        // If the arm serviced a read elsewhere in between, the flush pays
        // the full mechanical cost again (read/write interleaving thrash,
        // the reason NOW-sort separates read and write disk groups).
        if matches!(self.write_stream_end, Some((end, cyl)) if end == lba && cyl == self.cylinder) {
            let media = self.geometry.media_transfer(
                lba,
                sectors,
                self.spec.head_switch,
                self.spec.cylinder_switch,
            );
            let end = start + self.spec.controller_overhead + media;
            let end_loc = self
                .geometry
                .locate(lba + sectors - 1)
                .expect("bounds checked in submit");
            self.cylinder = end_loc.cylinder;
            self.write_stream_end = Some((lba + sectors, end_loc.cylinder));
            return Completion {
                start,
                end,
                mechanical: false,
            };
        }
        let end = self.mechanical_access(
            start + self.spec.controller_overhead,
            lba,
            sectors,
            RequestKind::Write,
        );
        self.write_stream_end = Some((lba + sectors, self.cylinder));
        Completion {
            start,
            end,
            mechanical: true,
        }
    }

    /// Seek + rotational latency + media transfer, starting at `t`.
    fn mechanical_access(
        &mut self,
        t: SimTime,
        lba: u64,
        sectors: u64,
        kind: RequestKind,
    ) -> SimTime {
        let loc = self.geometry.locate(lba).expect("bounds checked in submit");
        let distance = self.cylinder.abs_diff(loc.cylinder);
        let curve = match kind {
            RequestKind::Read => &self.read_seek,
            RequestKind::Write => &self.write_seek,
        };
        let seek = curve.time(distance);
        let after_seek = t + seek;

        // Rotational wait: the spindle angle is a global function of time.
        let zone = &self.geometry.zones()[loc.zone as usize];
        let rev = self.geometry.revolution();
        let sector_time = zone.sector_time;
        let target_angle_ns = u64::from(loc.sector) * sector_time.as_nanos();
        let now_angle_ns = after_seek.as_nanos() % rev.as_nanos();
        let wait_ns = (target_angle_ns + rev.as_nanos() - now_angle_ns) % rev.as_nanos();
        let after_rotation = after_seek + Duration::from_nanos(wait_ns);

        let media = self.geometry.media_transfer(
            lba,
            sectors,
            self.spec.head_switch,
            self.spec.cylinder_switch,
        );
        // Arm ends where the transfer ends.
        let end_loc = self
            .geometry
            .locate(lba + sectors - 1)
            .expect("bounds checked");
        self.cylinder = end_loc.cylinder;
        after_rotation + media
    }

    /// The earliest time a new request could begin service.
    pub fn free_at(&self) -> SimTime {
        self.free_at
    }

    /// Total time the drive has been busy.
    pub fn busy_total(&self) -> Duration {
        self.busy
    }

    /// Cumulative time requests spent queued (submit→start-of-service).
    pub fn wait_total(&self) -> Duration {
        self.wait
    }

    /// Reads served.
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Writes served.
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// Bytes read.
    pub fn bytes_read(&self) -> u64 {
        self.bytes_read
    }

    /// Bytes written.
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written
    }

    /// Reads served from the cache/prefetch stream.
    pub fn cache_hits(&self) -> u64 {
        self.cache_hits
    }

    /// Marks `lba` as a grown defect, remapping it to the spare region
    /// (subsequent transfers over it detour there).
    ///
    /// # Errors
    ///
    /// Returns [`SpareExhausted`] when no spare sectors remain.
    pub fn grow_defect(&mut self, lba: u64) -> Result<(), SpareExhausted> {
        self.defects.grow_defect(lba)
    }

    /// Number of grown defects on this drive.
    pub fn grown_defects(&self) -> usize {
        self.defects.grown()
    }

    /// The distribution of per-request service times.
    pub fn service_histogram(&self) -> &Histogram {
        &self.service_hist
    }

    /// Serializes the drive's mutable state (arm position, cache streams,
    /// defect table, accounting) for checkpointing. Configuration —
    /// spec, geometry, seek curves — is not captured: restores apply to
    /// a drive freshly built from the same spec.
    pub fn save_state(&self, w: &mut StateWriter) {
        self.cache.save_state(w);
        w.field("cylinder", self.cylinder);
        w.field("free_at", self.free_at.as_nanos());
        w.field("busy", self.busy.as_nanos());
        w.field("wait", self.wait.as_nanos());
        match self.write_stream_end {
            Some((lba, cyl)) => w.list("write_stream", [lba, u64::from(cyl)]),
            None => w.list("write_stream", std::iter::empty::<u64>()),
        }
        self.defects.save_state(w);
        w.list("hist_buckets", self.service_hist.bucket_counts().iter());
        w.field("hist_total", self.service_hist.total().as_nanos());
        w.field("hist_max", self.service_hist.max().as_nanos());
        w.field("reads", self.reads);
        w.field("writes", self.writes);
        w.field("bytes_read", self.bytes_read);
        w.field("bytes_written", self.bytes_written);
        w.field("cache_hits", self.cache_hits);
    }

    /// Restores mutable state into a drive freshly built from the same
    /// spec ([`Disk::new`]). The bus-transfer memo is reset — it is a
    /// pure cache over a deterministic expression, so the first hit after
    /// restore recomputes the identical value.
    ///
    /// # Errors
    ///
    /// Returns [`StateError`] on malformed input.
    pub fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), StateError> {
        self.cache.load_state(r)?;
        self.cylinder = r.num("cylinder")?;
        if u64::from(self.cylinder) >= u64::from(self.geometry.cylinders()) {
            return Err(StateError::new("cylinder out of range for geometry"));
        }
        self.free_at = SimTime::from_nanos(r.num("free_at")?);
        self.busy = Duration::from_nanos(r.num("busy")?);
        self.wait = Duration::from_nanos(r.num("wait")?);
        let ws: Vec<u64> = r.nums("write_stream")?;
        self.write_stream_end = match ws[..] {
            [] => None,
            [lba, cyl] => Some((
                lba,
                u32::try_from(cyl).map_err(|_| StateError::new("write-stream cylinder"))?,
            )),
            _ => return Err(StateError::new("write_stream needs 0 or 2 values")),
        };
        self.defects.load_state(r)?;
        let raw: Vec<u64> = r.nums("hist_buckets")?;
        let buckets: [u64; 64] = raw
            .try_into()
            .map_err(|_| StateError::new("histogram needs 64 buckets"))?;
        let total = Duration::from_nanos(r.num("hist_total")?);
        let max = Duration::from_nanos(r.num("hist_max")?);
        self.service_hist = Histogram::from_raw(buckets, total, max);
        self.reads = r.num("reads")?;
        self.writes = r.num("writes")?;
        self.bytes_read = r.num("bytes_read")?;
        self.bytes_written = r.num("bytes_written")?;
        self.cache_hits = r.num("cache_hits")?;
        self.bus_memo = None;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    const KB: u64 = 1024;

    fn disk() -> Disk {
        Disk::new(DiskSpec::cheetah_9lp())
    }

    #[test]
    fn cold_read_pays_mechanical_costs() {
        let mut d = disk();
        let c = d.submit(
            SimTime::ZERO,
            Request::read(1_000_000 * SECTOR_BYTES, 256 * KB),
        );
        assert!(c.mechanical);
        // Must include at least the media transfer time at max rate.
        let min_media = d.spec().media_rate_max.transfer_time(256 * KB);
        assert!(c.service() >= min_media);
    }

    #[test]
    fn sequential_scan_converges_to_media_rate() {
        let mut d = disk();
        let block = 256 * KB;
        let mut t = SimTime::ZERO;
        let mut total = Duration::ZERO;
        let n = 64u64;
        for i in 0..n {
            let c = d.submit(t, Request::read(i * block, block));
            t = c.end;
            if i > 0 {
                total += c.service();
            }
        }
        let bytes = (n - 1) * block;
        let rate_mb = bytes as f64 / total.as_secs_f64() / 1e6;
        // Outer zone media rate is 21.3 MB/s; sustained (with head/cyl
        // switches and bus) should land between 15 and 21.3.
        assert!(
            (15.0..=21.4).contains(&rate_mb),
            "sustained scan rate {rate_mb} MB/s"
        );
        assert!(d.cache_hits() >= n - 2, "steady-state reads hit prefetch");
    }

    #[test]
    fn random_reads_are_much_slower_than_sequential() {
        let mut seq = disk();
        let mut rnd = disk();
        let block = 64 * KB;
        let mut t_seq = SimTime::ZERO;
        let mut t_rnd = SimTime::ZERO;
        let mut rng = simcore::SplitMix64::new(42);
        let span = seq.geometry().total_sectors() - block / SECTOR_BYTES;
        for i in 0..50u64 {
            let c = seq.submit(t_seq, Request::read(i * block, block));
            t_seq = c.end;
            let lba = rng.next_below(span);
            let c = rnd.submit(t_rnd, Request::read(lba * SECTOR_BYTES, block));
            t_rnd = c.end;
        }
        assert!(
            t_rnd.as_nanos() > 2 * t_seq.as_nanos(),
            "random {t_rnd} should be much slower than sequential {t_seq}"
        );
    }

    #[test]
    fn writes_are_mechanical_and_slower_on_average() {
        let mut d = disk();
        let c = d.submit(SimTime::ZERO, Request::write(0, 256 * KB));
        assert!(c.mechanical);
        assert_eq!(d.writes(), 1);
        assert_eq!(d.bytes_written(), 256 * KB);
    }

    #[test]
    fn write_invalidates_read_stream() {
        let mut d = disk();
        let c1 = d.submit(SimTime::ZERO, Request::read(0, 256 * KB));
        let c2 = d.submit(c1.end, Request::write(0, 256 * KB));
        let c3 = d.submit(c2.end, Request::read(256 * KB, 256 * KB));
        assert!(c3.mechanical, "stream was invalidated by the write");
    }

    #[test]
    fn fifo_queueing_orders_requests() {
        let mut d = disk();
        let a = d.submit(SimTime::ZERO, Request::read(0, 64 * KB));
        let b = d.submit(
            SimTime::ZERO,
            Request::read(1_000_000 * SECTOR_BYTES, 64 * KB),
        );
        assert_eq!(b.start, a.end, "second request waits for the first");
    }

    #[test]
    fn faster_disk_scans_faster() {
        let mut slow = Disk::new(DiskSpec::cheetah_9lp());
        let mut fast = Disk::new(DiskSpec::hitachi_dk3e1t_91());
        let block = 256 * KB;
        let (mut ts, mut tf) = (SimTime::ZERO, SimTime::ZERO);
        for i in 0..32u64 {
            ts = slow.submit(ts, Request::read(i * block, block)).end;
            tf = fast.submit(tf, Request::read(i * block, block)).end;
        }
        assert!(tf < ts, "Hitachi should outpace Cheetah on scans");
    }

    #[test]
    fn service_histogram_shows_the_prefetch_bimodality() {
        let mut d = disk();
        let mut t = SimTime::ZERO;
        for i in 0..64u64 {
            t = d.submit(t, Request::read(i * 256 * KB, 256 * KB)).end;
        }
        let h = d.service_histogram();
        assert_eq!(h.count(), 64);
        // Steady-state hits are pure media (~12–14 ms); the cold first
        // request paid seek + rotation on top.
        assert!(h.max() > h.quantile(0.5), "cold start is the tail");
    }

    #[test]
    fn accounting_totals() {
        let mut d = disk();
        let c1 = d.submit(SimTime::ZERO, Request::read(0, 64 * KB));
        let _c2 = d.submit(c1.end, Request::read(64 * KB, 64 * KB));
        assert_eq!(d.reads(), 2);
        assert_eq!(d.bytes_read(), 128 * KB);
        assert!(d.busy_total() > Duration::ZERO);
        assert!(d.free_at() > SimTime::ZERO);
    }

    #[test]
    fn grown_defects_slow_the_scan() {
        let mut healthy = disk();
        let mut degraded = disk();
        // Sprinkle defects through the scanned extent.
        for lba in (0..20_000u64).step_by(997) {
            degraded.grow_defect(lba).expect("spares available");
        }
        assert!(degraded.grown_defects() > 10);
        let block = 256 * KB;
        let (mut th, mut td) = (SimTime::ZERO, SimTime::ZERO);
        for i in 0..32u64 {
            th = healthy.submit(th, Request::read(i * block, block)).end;
            td = degraded.submit(td, Request::read(i * block, block)).end;
        }
        // Each affected block pays a spare-region excursion; with the
        // drive's read-ahead hiding part of the cost, the net penalty on
        // this scan is several percent.
        assert!(
            td.as_nanos() > th.as_nanos() * 105 / 100,
            "spare-region detours must hurt: healthy {th}, degraded {td}"
        );
    }

    #[test]
    fn defect_free_path_is_unchanged() {
        let mut a = disk();
        let mut b = disk();
        // Defects far outside the scanned extent change nothing.
        b.grow_defect(10_000_000).expect("spare available");
        let ca = a.submit(SimTime::ZERO, Request::read(0, 256 * KB));
        let cb = b.submit(SimTime::ZERO, Request::read(0, 256 * KB));
        assert_eq!(ca.end, cb.end);
    }

    #[test]
    fn spare_region_exhaustion_is_reported() {
        let mut d = disk();
        let mut grown = 0u64;
        let result = loop {
            match d.grow_defect(grown) {
                Ok(()) => grown += 1,
                Err(e) => break e,
            }
        };
        assert_eq!(grown, 1_024, "spare region holds 1,024 sectors");
        assert!(!result.to_string().is_empty());
    }

    #[test]
    fn state_round_trip_continues_bit_identically() {
        // Build interesting state: a read stream, a write stream, grown
        // defects, and accumulated accounting.
        let mut d = disk();
        let mut t = SimTime::ZERO;
        for i in 0..8u64 {
            t = d.submit(t, Request::read(i * 256 * KB, 256 * KB)).end;
        }
        t = d.submit(t, Request::write(40 * 256 * KB, 256 * KB)).end;
        d.grow_defect(30_000).unwrap();
        d.grow_defect(30_001).unwrap();

        let mut w = simcore::StateWriter::new();
        d.save_state(&mut w);
        let text = w.finish();
        let mut restored = disk();
        let mut r = simcore::StateReader::new(&text);
        restored.load_state(&mut r).unwrap();
        assert!(r.done());

        assert_eq!(restored.free_at(), d.free_at());
        assert_eq!(restored.busy_total(), d.busy_total());
        assert_eq!(restored.cache_hits(), d.cache_hits());
        assert_eq!(restored.grown_defects(), d.grown_defects());
        assert_eq!(restored.service_histogram(), d.service_histogram());

        // Continuation: cache-hit read, stream-continuing write, and a
        // read over the defects must schedule identically.
        for req in [
            Request::read(8 * 256 * KB, 256 * KB),
            Request::write(41 * 256 * KB, 256 * KB),
            Request::read(30_000 * SECTOR_BYTES - 64 * KB, 256 * KB),
        ] {
            let a = d.submit(t, req);
            let b = restored.submit(t, req);
            assert_eq!(a, b, "{req:?}");
            t = a.end;
        }
        assert_eq!(restored.busy_total(), d.busy_total());
        assert_eq!(restored.cache_hits(), d.cache_hits());
    }

    #[test]
    fn corrupt_state_is_an_error_not_a_panic() {
        let mut d = disk();
        d.submit(SimTime::ZERO, Request::read(0, 256 * KB));
        let mut w = simcore::StateWriter::new();
        d.save_state(&mut w);
        let text = w.finish();
        // Truncation and token corruption both surface as errors.
        let truncated = &text[..text.len() / 2];
        assert!(disk()
            .load_state(&mut simcore::StateReader::new(truncated))
            .is_err());
        let flipped = text.replace("cylinder", "cylindex");
        assert!(disk()
            .load_state(&mut simcore::StateReader::new(&flipped))
            .is_err());
    }

    #[test]
    #[should_panic(expected = "beyond disk capacity")]
    fn rejects_out_of_range() {
        let mut d = disk();
        let cap = d.capacity_bytes();
        d.submit(SimTime::ZERO, Request::read(cap, 64 * KB));
    }

    #[test]
    #[should_panic(expected = "sector-aligned")]
    fn rejects_unaligned() {
        disk().submit(SimTime::ZERO, Request::read(100, 512));
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn rejects_empty() {
        disk().submit(SimTime::ZERO, Request::read(0, 0));
    }

    proptest! {
        /// Service time bounds: at least the best-case media transfer, at
        /// most overheads + full seek + full rotation + worst-case media.
        #[test]
        fn prop_service_bounds(lba_k in 0u64..1_000, sectors in 1u64..2_048) {
            let mut d = disk();
            let lba = lba_k * 1_000;
            prop_assume!(lba + sectors <= d.geometry().total_sectors());
            let c = d.submit(SimTime::ZERO, Request::read(lba * SECTOR_BYTES, sectors * SECTOR_BYTES));
            let bytes = sectors * SECTOR_BYTES;
            let floor = d.spec().media_rate_max.transfer_time(bytes);
            let ceil = d.spec().controller_overhead
                + d.spec().seek_max_read
                + d.geometry().revolution()
                + d.spec().media_rate_min.transfer_time(bytes)
                + d.spec().cylinder_switch * (sectors / 100 + 2)
                + d.spec().bus_rate.transfer_time(bytes);
            prop_assert!(c.service() >= floor, "service {} < floor {}", c.service(), floor);
            prop_assert!(c.service() <= ceil, "service {} > ceil {}", c.service(), ceil);
        }

        /// The drive never travels backwards in time and busy time is
        /// conserved across a batch of requests.
        #[test]
        fn prop_monotone_completions(blocks in proptest::collection::vec(0u64..5_000, 1..40)) {
            let mut d = disk();
            let mut t = SimTime::ZERO;
            let mut busy = Duration::ZERO;
            for b in blocks {
                let c = d.submit(t, Request::read(b * 64 * KB, 64 * KB));
                prop_assert!(c.end >= c.start);
                prop_assert!(c.start >= t);
                busy += c.service();
                t = c.end;
            }
            prop_assert_eq!(busy, d.busy_total());
        }
    }
}
