//! Defect management: grown defects remapped to a spare region.
//!
//! DiskSim (which the paper's Howsim embeds) models "zoned disks, spare
//! regions, defect management...". Drives reserve spare sectors; when a
//! sector grows a defect it is remapped there, so a logically sequential
//! transfer that crosses a remapped sector physically detours to the spare
//! region and back — turning one smooth transfer into several fragments
//! with seeks in between. [`DefectMap`] tracks the remapping and splits
//! logical extents into physical fragments.

use std::collections::BTreeMap;

use simcore::state::{StateError, StateReader, StateWriter};

/// A drive's grown-defect table and spare-region allocator.
///
/// # Example
///
/// ```
/// use diskmodel::defects::DefectMap;
///
/// let mut defects = DefectMap::new(1_000_000, 1_024);
/// defects.grow_defect(500).expect("spare available");
/// // A 4-sector read over the defect splits into three fragments:
/// // [498,500), the remapped sector, and [501,502).
/// let frags = defects.translate(498, 4);
/// assert_eq!(frags.len(), 3);
/// assert_eq!(frags[0], (498, 2));
/// assert_eq!(frags[1], (1_000_000, 1));
/// assert_eq!(frags[2], (501, 1));
/// ```
#[derive(Debug, Clone, Default)]
pub struct DefectMap {
    /// Defective LBA → spare-region LBA.
    remapped: BTreeMap<u64, u64>,
    spare_start: u64,
    spare_len: u64,
    spare_used: u64,
}

/// The spare region is exhausted; the drive would be failed in the field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpareExhausted;

impl std::fmt::Display for SpareExhausted {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "spare region exhausted")
    }
}

impl std::error::Error for SpareExhausted {}

impl DefectMap {
    /// Creates a defect map with a spare region of `spare_len` sectors
    /// starting at `spare_start`.
    pub fn new(spare_start: u64, spare_len: u64) -> Self {
        DefectMap {
            remapped: BTreeMap::new(),
            spare_start,
            spare_len,
            spare_used: 0,
        }
    }

    /// Marks `lba` defective, remapping it to the next spare sector.
    /// Re-growing an already remapped sector is a no-op.
    ///
    /// # Errors
    ///
    /// Returns [`SpareExhausted`] if no spare sectors remain.
    pub fn grow_defect(&mut self, lba: u64) -> Result<(), SpareExhausted> {
        if self.remapped.contains_key(&lba) {
            return Ok(());
        }
        if self.spare_used >= self.spare_len {
            return Err(SpareExhausted);
        }
        let spare = self.spare_start + self.spare_used;
        self.spare_used += 1;
        self.remapped.insert(lba, spare);
        Ok(())
    }

    /// Number of remapped sectors.
    pub fn grown(&self) -> usize {
        self.remapped.len()
    }

    /// Spare sectors still available.
    pub fn spare_remaining(&self) -> u64 {
        self.spare_len - self.spare_used
    }

    /// Splits a logical extent `[lba, lba+sectors)` into physical
    /// fragments `(physical_lba, sectors)` in logical order, detouring
    /// through the spare region for each remapped sector.
    ///
    /// # Panics
    ///
    /// Panics if `sectors` is zero.
    pub fn translate(&self, lba: u64, sectors: u64) -> Vec<(u64, u64)> {
        assert!(sectors > 0, "empty extent");
        let end = lba + sectors;
        let mut frags: Vec<(u64, u64)> = Vec::new();
        let mut at = lba;
        for (&bad, &spare) in self.remapped.range(lba..end) {
            if bad > at {
                frags.push((at, bad - at));
            }
            frags.push((spare, 1));
            at = bad + 1;
        }
        if at < end {
            frags.push((at, end - at));
        }
        // Merge adjacent physical fragments (consecutive spares).
        let mut merged: Vec<(u64, u64)> = Vec::with_capacity(frags.len());
        for (p, n) in frags {
            match merged.last_mut() {
                Some((lp, ln)) if *lp + *ln == p => *ln += n,
                _ => merged.push((p, n)),
            }
        }
        merged
    }

    /// Serializes the grown-defect table for checkpointing.
    pub fn save_state(&self, w: &mut StateWriter) {
        w.field("spare_used", self.spare_used);
        w.field("defects", self.remapped.len());
        for (&bad, &spare) in &self.remapped {
            w.list("remap", [bad, spare]);
        }
    }

    /// Restores the grown-defect table into a map freshly built with the
    /// same spare-region configuration ([`DefectMap::new`]).
    ///
    /// # Errors
    ///
    /// Returns [`StateError`] on malformed input or an out-of-range
    /// spare count.
    pub fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), StateError> {
        let spare_used: u64 = r.num("spare_used")?;
        if spare_used > self.spare_len {
            return Err(StateError::new("spare_used exceeds spare region"));
        }
        let n: usize = r.num("defects")?;
        self.remapped.clear();
        for _ in 0..n {
            let vals: Vec<u64> = r.nums("remap")?;
            let [bad, spare] = vals[..] else {
                return Err(StateError::new("remap line needs 2 values"));
            };
            self.remapped.insert(bad, spare);
        }
        self.spare_used = spare_used;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn clean_extent_is_one_fragment() {
        let d = DefectMap::new(1_000, 16);
        assert_eq!(d.translate(0, 100), vec![(0, 100)]);
    }

    #[test]
    fn defect_splits_extent() {
        let mut d = DefectMap::new(1_000, 16);
        d.grow_defect(50).unwrap();
        let frags = d.translate(40, 20);
        assert_eq!(frags, vec![(40, 10), (1_000, 1), (51, 9)]);
    }

    #[test]
    fn defect_at_extent_edges() {
        let mut d = DefectMap::new(1_000, 16);
        d.grow_defect(10).unwrap();
        d.grow_defect(19).unwrap();
        let frags = d.translate(10, 10);
        assert_eq!(frags, vec![(1_000, 1), (11, 8), (1_001, 1)]);
    }

    #[test]
    fn adjacent_spares_merge() {
        let mut d = DefectMap::new(1_000, 16);
        d.grow_defect(5).unwrap();
        d.grow_defect(6).unwrap();
        // Two consecutive bad sectors remap to consecutive spares: one
        // physical fragment.
        let frags = d.translate(5, 2);
        assert_eq!(frags, vec![(1_000, 2)]);
    }

    #[test]
    fn regrowing_is_idempotent() {
        let mut d = DefectMap::new(1_000, 2);
        d.grow_defect(7).unwrap();
        d.grow_defect(7).unwrap();
        assert_eq!(d.grown(), 1);
        assert_eq!(d.spare_remaining(), 1);
    }

    #[test]
    fn spares_exhaust() {
        let mut d = DefectMap::new(1_000, 2);
        d.grow_defect(1).unwrap();
        d.grow_defect(2).unwrap();
        assert_eq!(d.grow_defect(3), Err(SpareExhausted));
        assert!(!SpareExhausted.to_string().is_empty());
    }

    #[test]
    fn regrowing_keeps_the_original_spare_mapping() {
        let mut d = DefectMap::new(1_000, 16);
        d.grow_defect(7).unwrap();
        let first = d.translate(7, 1);
        d.grow_defect(8).unwrap();
        // Re-growing 7 must not move it to a new spare sector.
        d.grow_defect(7).unwrap();
        assert_eq!(d.translate(7, 1), first);
        assert_eq!(first, vec![(1_000, 1)]);
        assert_eq!(d.translate(8, 1), vec![(1_001, 1)]);
    }

    #[test]
    fn translate_spans_multiple_scattered_remaps() {
        let mut d = DefectMap::new(1_000, 16);
        // Non-adjacent defects inside one extent: each forces its own
        // detour to a spare sector that is NOT adjacent to the previous
        // fragment, so nothing merges.
        d.grow_defect(12).unwrap();
        d.grow_defect(15).unwrap();
        d.grow_defect(19).unwrap();
        let frags = d.translate(10, 12);
        assert_eq!(
            frags,
            vec![
                (10, 2),
                (1_000, 1),
                (13, 2),
                (1_001, 1),
                (16, 3),
                (1_002, 1),
                (20, 2),
            ]
        );
        let total: u64 = frags.iter().map(|&(_, n)| n).sum();
        assert_eq!(total, 12, "translation conserves the extent");
    }

    #[test]
    fn exhausted_map_still_translates_and_tolerates_regrowth() {
        let mut d = DefectMap::new(1_000, 2);
        d.grow_defect(4).unwrap();
        d.grow_defect(9).unwrap();
        assert_eq!(d.grow_defect(5), Err(SpareExhausted));
        // The failed growth must not corrupt the table: existing remaps
        // hold, the rejected LBA stays un-remapped, and re-growing an
        // already-remapped sector is still the documented no-op even
        // with zero spares left.
        assert_eq!(d.grown(), 2);
        assert_eq!(d.spare_remaining(), 0);
        assert_eq!(d.grow_defect(4), Ok(()));
        assert_eq!(d.translate(4, 1), vec![(1_000, 1)]);
        assert_eq!(d.translate(5, 1), vec![(5, 1)]);
        assert_eq!(
            d.translate(3, 8),
            vec![(3, 1), (1_000, 1), (5, 4), (1_001, 1), (10, 1)]
        );
        // A second exhausted growth keeps failing deterministically.
        assert_eq!(d.grow_defect(6), Err(SpareExhausted));
        assert_eq!(d.grown(), 2);
    }

    proptest! {
        /// Translation conserves sector count and never emits the
        /// defective LBAs themselves.
        #[test]
        fn prop_translation_conserves(
            defects in proptest::collection::btree_set(0u64..500, 0..30),
            start in 0u64..400,
            len in 1u64..100,
        ) {
            let mut d = DefectMap::new(10_000, 64);
            for &bad in &defects {
                d.grow_defect(bad).unwrap();
            }
            let frags = d.translate(start, len);
            let total: u64 = frags.iter().map(|&(_, n)| n).sum();
            prop_assert_eq!(total, len);
            for &(p, n) in &frags {
                for s in p..p + n {
                    if s < 10_000 {
                        prop_assert!(!defects.contains(&s), "emitted bad sector {s}");
                    }
                }
            }
        }

        /// Fragments appear in logical order and cover the extent exactly
        /// once (no physical overlap within the data region).
        #[test]
        fn prop_fragments_tile(start in 0u64..1_000, len in 1u64..200) {
            let mut d = DefectMap::new(100_000, 64);
            for bad in (start..start + len).step_by(7) {
                d.grow_defect(bad).unwrap();
            }
            let frags = d.translate(start, len);
            let total: u64 = frags.iter().map(|&(_, n)| n).sum();
            prop_assert_eq!(total, len);
            prop_assert!(!frags.is_empty());
        }
    }
}
