//! Seek-time model.
//!
//! Drive manuals publish three seek numbers: single-track, average, and
//! full-stroke. Following the classic Ruemmler & Wilkes / DiskSim approach,
//! we fit a curve that is square-root-shaped for short seeks (arm
//! acceleration-limited) and linear for long seeks (coast-limited):
//!
//! * `t(0) = 0` (no movement),
//! * `t(d) = track + b·(√d − 1)` for `1 ≤ d ≤ knee`,
//! * linear from `t(knee) = avg` to `t(full) = max`,
//!
//! with the knee at one-third of the stroke, the distance whose seek time
//! approximates the published "average seek" (the mean seek distance over
//! uniformly random request pairs is ~C/3).

use simcore::Duration;

use crate::spec::DiskSpec;

/// A fitted seek-time curve for one access direction (read or write).
///
/// # Example
///
/// ```
/// use diskmodel::{DiskSpec, SeekCurve};
/// let spec = DiskSpec::cheetah_9lp();
/// let curve = SeekCurve::reads(&spec);
/// assert!(curve.time(1) >= spec.seek_track_read);
/// assert_eq!(curve.time(0).as_nanos(), 0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SeekCurve {
    track: Duration,
    avg: Duration,
    max: Duration,
    knee: u32,
    full: u32,
    sqrt_coeff: f64, // nanoseconds per sqrt(cylinder)
    lin_coeff: f64,  // nanoseconds per cylinder beyond the knee
}

impl SeekCurve {
    /// Fits a curve to three anchor seek times over a `cylinders`-wide stroke.
    ///
    /// # Panics
    ///
    /// Panics if the anchors are not ordered `track ≤ avg ≤ max` or if
    /// `cylinders < 4`.
    pub fn fit(track: Duration, avg: Duration, max: Duration, cylinders: u32) -> Self {
        assert!(track <= avg && avg <= max, "seek anchors must be ordered");
        assert!(cylinders >= 4, "need at least 4 cylinders to fit");
        let full = cylinders - 1;
        let knee = (full / 3).max(2);
        let sqrt_coeff =
            (avg.as_nanos() as f64 - track.as_nanos() as f64) / ((knee as f64).sqrt() - 1.0);
        let lin_coeff = (max.as_nanos() as f64 - avg.as_nanos() as f64) / (full - knee) as f64;
        SeekCurve {
            track,
            avg,
            max,
            knee,
            full,
            sqrt_coeff,
            lin_coeff,
        }
    }

    /// The read-seek curve for a drive spec.
    pub fn reads(spec: &DiskSpec) -> Self {
        Self::fit(
            spec.seek_track_read,
            spec.seek_avg_read,
            spec.seek_max_read,
            spec.cylinders,
        )
    }

    /// The write-seek curve for a drive spec.
    pub fn writes(spec: &DiskSpec) -> Self {
        Self::fit(
            spec.seek_track_write,
            spec.seek_avg_write,
            spec.seek_max_write,
            spec.cylinders,
        )
    }

    /// Seek time for a move of `distance` cylinders.
    ///
    /// Distances beyond the fitted stroke are clamped to the full-stroke
    /// time (they cannot occur on a well-formed geometry).
    pub fn time(&self, distance: u32) -> Duration {
        if distance == 0 {
            return Duration::ZERO;
        }
        if distance >= self.full {
            return self.max;
        }
        if distance <= self.knee {
            let ns =
                self.track.as_nanos() as f64 + self.sqrt_coeff * ((distance as f64).sqrt() - 1.0);
            Duration::from_nanos(ns.round() as u64)
        } else {
            let ns = self.avg.as_nanos() as f64 + self.lin_coeff * (distance - self.knee) as f64;
            Duration::from_nanos(ns.round() as u64)
        }
    }

    /// The published average seek this curve was fitted to.
    pub fn average(&self) -> Duration {
        self.avg
    }

    /// The published full-stroke seek this curve was fitted to.
    pub fn full_stroke(&self) -> Duration {
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn curve() -> SeekCurve {
        SeekCurve::reads(&DiskSpec::cheetah_9lp())
    }

    #[test]
    fn anchors_are_reproduced() {
        let spec = DiskSpec::cheetah_9lp();
        let c = SeekCurve::reads(&spec);
        assert_eq!(c.time(0), Duration::ZERO);
        assert_eq!(c.time(1), spec.seek_track_read);
        assert_eq!(c.time(spec.cylinders / 3), spec.seek_avg_read);
        assert_eq!(c.time(spec.cylinders - 1), spec.seek_max_read);
        assert_eq!(c.average(), spec.seek_avg_read);
        assert_eq!(c.full_stroke(), spec.seek_max_read);
    }

    #[test]
    fn write_curve_is_slower() {
        let spec = DiskSpec::cheetah_9lp();
        let r = SeekCurve::reads(&spec);
        let w = SeekCurve::writes(&spec);
        for d in [1, 10, 100, 1_000, 6_000] {
            assert!(w.time(d) >= r.time(d), "write seek slower at d={d}");
        }
    }

    #[test]
    fn clamped_beyond_full_stroke() {
        let spec = DiskSpec::cheetah_9lp();
        let c = SeekCurve::reads(&spec);
        assert_eq!(c.time(u32::MAX), spec.seek_max_read);
    }

    #[test]
    #[should_panic(expected = "ordered")]
    fn rejects_unordered_anchors() {
        SeekCurve::fit(
            Duration::from_micros(10_000),
            Duration::from_micros(5_000),
            Duration::from_micros(12_000),
            100,
        );
    }

    #[test]
    fn short_seeks_are_sublinear() {
        let c = curve();
        // sqrt regime: doubling distance less than doubles time.
        let t100 = c.time(100).as_nanos() as f64;
        let t400 = c.time(400).as_nanos() as f64;
        assert!(
            t400 < 2.0 * t100,
            "t(400)={t400} vs 2*t(100)={}",
            2.0 * t100
        );
    }

    proptest! {
        /// Seek time is monotone non-decreasing in distance.
        #[test]
        fn prop_monotone(d1 in 0u32..7_000, d2 in 0u32..7_000) {
            let c = curve();
            let (lo, hi) = if d1 <= d2 { (d1, d2) } else { (d2, d1) };
            prop_assert!(c.time(lo) <= c.time(hi));
        }

        /// Seek time is bounded by [0, full-stroke].
        #[test]
        fn prop_bounded(d in 0u32..100_000) {
            let c = curve();
            prop_assert!(c.time(d) <= c.full_stroke());
        }
    }
}
