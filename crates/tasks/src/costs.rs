//! CPU cost calibration.
//!
//! The paper acquired per-task processing times by running each algorithm
//! on a DEC Alpha 2100 4/275 and scaling by processor speed. This
//! reproduction expresses each operator's cost in **nanoseconds per tuple
//! on the 300 MHz Pentium II reference** and scales by
//! [`arch::ProcessorSpec::relative_perf`]. The constants below were
//! calibrated so the simulator reproduces the paper's anchor observations:
//!
//! 1. At 16 disks the three architectures are comparable (Figure 1a) —
//!    light scans are media-bound on Active Disks, and the slow embedded
//!    Cyrix does not dominate.
//! 2. At 128 disks SMPs are 3–9.5× slower, worst for select/aggregate
//!    (the dual FC loop carries the whole dataset), and 4–6× for the
//!    repartitioning tasks (Figure 1d).
//! 3. Sort's phase breakdown is compute-balanced up to 64 disks and
//!    idle-dominated at 128 (Figure 3).
//!
//! All costs include per-tuple parsing/copying, which is why they are
//! larger than a bare comparison or hash probe.

/// select: evaluate the predicate and copy matches (64 B tuples).
pub const SELECT_NS_PER_TUPLE: f64 = 1_000.0;

/// aggregate: parse and accumulate (64 B tuples).
pub const AGGREGATE_NS_PER_TUPLE: f64 = 800.0;

/// groupby: hash, probe, update (64 B tuples).
pub const GROUPBY_NS_PER_TUPLE: f64 = 2_000.0;

/// Bytes per group-by result row shipped to the front-end (packed group
/// key + aggregate).
pub const GROUPBY_RESULT_BYTES: u64 = 24;

/// sort phase 1: range-partition a 100 B tuple (key extraction, bucket
/// computation, and the send-side staging the traced implementation pays).
pub const SORT_PARTITION_NS_PER_TUPLE: f64 = 1_500.0;

/// sort phase 1: append a received tuple into the current run buffer
/// (receive-side staging + copy).
pub const SORT_APPEND_NS_PER_TUPLE: f64 = 1_500.0;

/// sort phase 1: sort a tuple into its run. NOW-sort-style partial-key
/// bucket sort is O(n), so the per-tuple cost does not grow with run
/// length — which is why the paper measured *less* CPU with longer runs
/// (the merge side wins, nothing is lost here).
pub const SORT_SORT_NS_PER_TUPLE: f64 = 6_000.0;

/// sort phase 2: merge cost per tuple per log2(run count), plus fixed
/// per-tuple output handling.
pub const SORT_MERGE_NS_PER_TUPLE_PER_LOG: f64 = 225.0;
/// sort phase 2: fixed per-tuple output handling.
pub const SORT_OUTPUT_NS_PER_TUPLE: f64 = 450.0;

/// join phase 1: project 64 B → 32 B and hash-partition.
pub const JOIN_PARTITION_NS_PER_TUPLE: f64 = 700.0;

/// join phase 2: build/probe per 32 B projected tuple.
pub const JOIN_BUILD_PROBE_NS_PER_TUPLE: f64 = 1_500.0;

/// dmine: candidate counting per transaction, per pass (averaged over
/// passes; pass 2's 2-itemset counting is the heaviest).
pub const DMINE_NS_PER_TXN_PER_PASS: f64 = 2_500.0;

/// dmine: number of Apriori passes over the dataset for the paper's
/// parameters (1 M items, 0.1% support, avg 4 items: frequent itemsets
/// up to 3 items).
pub const DMINE_PASSES: usize = 3;

/// dcube: hash-pipeline cost per 32 B input tuple per scan.
pub const DCUBE_NS_PER_TUPLE: f64 = 1_000.0;

/// mview: route a 32 B delta to its owner.
pub const MVIEW_ROUTE_NS_PER_TUPLE: f64 = 500.0;

/// mview: merge a delta into the derived relation (per derived tuple
/// scanned).
pub const MVIEW_MERGE_NS_PER_TUPLE: f64 = 1_000.0;

/// Front-end cost per byte received when it must assemble/merge results
/// (one staging copy at memory speed on the reference processor).
pub const FRONTEND_NS_PER_BYTE: f64 = 5.5;

/// The fraction of aggregate disk/host memory usable for task hash tables
/// and sort buffers after OS, code, and stream pools.
pub const MEMORY_USABLE_FRACTION: f64 = 0.78;

/// The paper's measured per-disk counter residency for dmine.
pub const DMINE_COUNTER_BYTES_PER_DISK: u64 = 5_400_000;

/// The paper's measured hash-table size for the largest dcube group-by.
pub const DCUBE_LARGEST_TABLE_BYTES: u64 = 695 << 20;

/// The paper's measured total for the other 14 dcube group-bys ("14
/// group-bys can be merged into a single scan if a total of 2.3 GB is
/// available at the disks").
pub const DCUBE_REMAINING_TABLES_BYTES: u64 = 2_300 << 20;

/// The 15 dcube group-by hash-table sizes implied by the paper's
/// statements: one 695 MB table plus 14 tables totalling 2.3 GB.
///
/// The paper's exact per-group-by sizes come from its (unavailable)
/// dataset; the two published aggregates pin everything the pass planner
/// needs.
pub fn dcube_table_sizes() -> Vec<u64> {
    let mut sizes = vec![DCUBE_LARGEST_TABLE_BYTES];
    sizes.extend(std::iter::repeat_n(DCUBE_REMAINING_TABLES_BYTES / 14, 14));
    sizes
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dcube_sizes_match_paper_aggregates() {
        let sizes = dcube_table_sizes();
        assert_eq!(sizes.len(), 15);
        assert_eq!(sizes[0], 695 << 20);
        let rest: u64 = sizes[1..].iter().sum();
        let err = (rest as f64 - (2_300u64 << 20) as f64).abs() / (2_300u64 << 20) as f64;
        assert!(err < 0.01, "14-table total within 1% of 2.3 GB");
    }

    #[test]
    fn scan_tasks_are_media_bound_on_active_disks() {
        // The calibration invariant behind Figure 1a: a Cyrix processes a
        // 64 B tuple in ~1.8 µs (select), i.e. scans at ~36 MB/s — faster
        // than the ~18 MB/s media rate, so light scans stay media-bound.
        let cyrix = arch::ProcessorSpec::cyrix_6x86_200();
        let scan_rate_mb = 64.0 / (SELECT_NS_PER_TUPLE / cyrix.relative_perf) * 1e3;
        assert!(
            scan_rate_mb > 21.3,
            "select on Cyrix ({scan_rate_mb} MB/s) outruns the media"
        );
    }

    #[test]
    fn sort_is_compute_heavier_than_select() {
        let sort_total =
            SORT_PARTITION_NS_PER_TUPLE + SORT_APPEND_NS_PER_TUPLE + SORT_SORT_NS_PER_TUPLE;
        assert!(sort_total > 2.0 * SELECT_NS_PER_TUPLE);
    }

    #[test]
    fn memory_fraction_is_a_fraction() {
        assert!((0.0..=1.0).contains(&MEMORY_USABLE_FRACTION));
    }
}
