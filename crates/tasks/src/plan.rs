//! The phase-plan intermediate representation consumed by the simulator.

use simcore::Duration;

/// A CPU cost component, tagged for the execution-time breakdown
/// (Figure 3 uses tags like `"partitioner"`, `"append"`, `"sort"`,
/// `"merge"`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuWork {
    /// Operator label for busy-time accounting.
    pub tag: &'static str,
    /// Nanoseconds of work per byte handled, on the reference processor
    /// (300 MHz Pentium II).
    pub ns_per_byte: f64,
}

impl CpuWork {
    /// A cost expressed per tuple, converted to per byte.
    ///
    /// # Panics
    ///
    /// Panics if `tuple_bytes` is zero.
    pub fn per_tuple(tag: &'static str, ns_per_tuple: f64, tuple_bytes: u64) -> Self {
        assert!(tuple_bytes > 0, "tuple size must be positive");
        CpuWork {
            tag,
            ns_per_byte: ns_per_tuple / tuple_bytes as f64,
        }
    }
}

/// One phase of a task: what every worker node does, and how its output is
/// routed. All nodes are symmetric (the paper partitions each dataset
/// evenly); per-node amounts are the totals divided by the node count.
#[derive(Debug, Clone, PartialEq)]
pub struct PhasePlan {
    /// Phase label (e.g. `"sort"`, `"merge"`).
    pub name: &'static str,
    /// Total bytes scanned from disk in this phase, across all nodes.
    pub read_bytes_total: u64,
    /// CPU work per *scanned* byte (applied at the scanning node).
    pub read_cpu: Vec<CpuWork>,
    /// CPU work per *received* byte (applied at the receiving peer).
    pub recv_cpu: Vec<CpuWork>,
    /// Bytes sent to peer nodes (repartition) per scanned byte. A factor
    /// of 1.0 means the whole dataset is reshuffled; 0.5 means it is
    /// projected to half size first (the paper's join).
    pub shuffle_factor: f64,
    /// Optional per-destination shuffle weights (length = node count).
    /// `None` means the uniform all-to-all of the paper's datasets;
    /// skewed weights model hash-partitioning heavy-tailed keys (see the
    /// skew-sensitivity extension experiment).
    pub shuffle_weights: Option<Vec<f64>>,
    /// Bytes sent to the front-end per scanned byte (e.g. select output,
    /// group-by result tables).
    pub frontend_factor: f64,
    /// Additional fixed bytes each node sends to the front-end (e.g.
    /// dmine's per-disk counter tables).
    pub frontend_bytes_per_node: u64,
    /// Whether the per-node front-end bytes are *combinable* partial
    /// results (counters, accumulators): architectures with a global
    /// reduction primitive (the MPI-like library, SMP remote queues)
    /// merge them along a tree instead of funnelling every node's copy
    /// into the front-end link.
    pub frontend_combinable: bool,
    /// Bytes written to the scanning node's own disk per scanned byte.
    pub local_write_factor: f64,
    /// Whether bytes received from peers are written to the receiver's
    /// disk (true for sort/join repartition phases).
    pub write_received: bool,
    /// Whether this phase scans intermediate data produced by an earlier
    /// phase (run files, partitions, parent group-bys) rather than the
    /// base dataset. Determines the on-disk region the scan reads from.
    pub reads_intermediate: bool,
    /// Extra per-node disk busy time not captured by the request stream
    /// (e.g. run-switch seeks during a multiway merge).
    pub extra_disk_busy_per_node: Duration,
    /// Front-end CPU nanoseconds per byte it receives (reference
    /// processor) — result assembly, partial-table merging.
    pub frontend_cpu_ns_per_byte: f64,
}

impl PhasePlan {
    /// A quiescent phase template; builders override the relevant fields.
    pub fn new(name: &'static str, read_bytes_total: u64) -> Self {
        PhasePlan {
            name,
            read_bytes_total,
            read_cpu: Vec::new(),
            recv_cpu: Vec::new(),
            shuffle_factor: 0.0,
            shuffle_weights: None,
            frontend_factor: 0.0,
            frontend_bytes_per_node: 0,
            frontend_combinable: false,
            local_write_factor: 0.0,
            write_received: false,
            reads_intermediate: false,
            extra_disk_busy_per_node: Duration::ZERO,
            frontend_cpu_ns_per_byte: 0.0,
        }
    }

    /// Total bytes this phase ships to peers across all nodes.
    pub fn shuffle_bytes_total(&self) -> u64 {
        (self.read_bytes_total as f64 * self.shuffle_factor) as u64
    }

    /// Total bytes this phase ships to the front-end across all nodes
    /// (factor-based part only; per-node fixed bytes are added by the
    /// simulator, which knows the node count).
    pub fn frontend_bytes_total(&self) -> u64 {
        (self.read_bytes_total as f64 * self.frontend_factor) as u64
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        for (label, f) in [
            ("shuffle_factor", self.shuffle_factor),
            ("frontend_factor", self.frontend_factor),
            ("local_write_factor", self.local_write_factor),
        ] {
            if !(0.0..=4.0).contains(&f) || !f.is_finite() {
                return Err(format!("{}: {label} out of range: {f}", self.name));
            }
        }
        if self.read_bytes_total == 0 && self.read_cpu.iter().any(|c| c.ns_per_byte > 0.0) {
            return Err(format!("{}: CPU work with nothing to read", self.name));
        }
        if self.write_received && self.shuffle_factor == 0.0 {
            return Err(format!("{}: write_received without shuffle", self.name));
        }
        if let Some(w) = &self.shuffle_weights {
            if w.is_empty() || w.iter().any(|&x| !x.is_finite() || x < 0.0) {
                return Err(format!("{}: invalid shuffle weights", self.name));
            }
            if w.iter().sum::<f64>() <= 0.0 {
                return Err(format!("{}: shuffle weights sum to zero", self.name));
            }
        }
        Ok(())
    }
}

/// A complete task plan: the phases in execution order.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskPlan {
    /// Task name (paper spelling).
    pub task: &'static str,
    /// Phases, run back to back (each phase is a barrier).
    pub phases: Vec<PhasePlan>,
}

impl TaskPlan {
    /// Validates all phases.
    ///
    /// # Errors
    ///
    /// Returns the first phase error found.
    pub fn validate(&self) -> Result<(), String> {
        if self.phases.is_empty() {
            return Err(format!("{}: no phases", self.task));
        }
        self.phases.iter().try_for_each(PhasePlan::validate)
    }

    /// Total bytes read from disk across all phases.
    pub fn total_read_bytes(&self) -> u64 {
        self.phases.iter().map(|p| p.read_bytes_total).sum()
    }

    /// Total bytes shuffled between peers across all phases.
    pub fn total_shuffle_bytes(&self) -> u64 {
        self.phases.iter().map(PhasePlan::shuffle_bytes_total).sum()
    }

    /// Scales every CPU cost in the plan by `factor` (sensitivity studies:
    /// how robust are conclusions to the calibrated per-tuple constants?).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not positive and finite.
    pub fn scale_cpu(&mut self, factor: f64) {
        assert!(
            factor.is_finite() && factor > 0.0,
            "cpu scale factor must be positive"
        );
        for phase in &mut self.phases {
            for w in phase.read_cpu.iter_mut().chain(&mut phase.recv_cpu) {
                w.ns_per_byte *= factor;
            }
            phase.frontend_cpu_ns_per_byte *= factor;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_tuple_conversion() {
        let w = CpuWork::per_tuple("filter", 1_000.0, 64);
        assert!((w.ns_per_byte - 15.625).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn per_tuple_rejects_zero_size() {
        CpuWork::per_tuple("x", 1.0, 0);
    }

    #[test]
    fn default_phase_is_valid_and_quiet() {
        let p = PhasePlan::new("scan", 1_000);
        p.validate().expect("valid");
        assert_eq!(p.shuffle_bytes_total(), 0);
        assert_eq!(p.frontend_bytes_total(), 0);
    }

    #[test]
    fn volume_computations() {
        let mut p = PhasePlan::new("part", 1_000_000);
        p.shuffle_factor = 0.5;
        p.frontend_factor = 0.01;
        assert_eq!(p.shuffle_bytes_total(), 500_000);
        assert_eq!(p.frontend_bytes_total(), 10_000);
    }

    #[test]
    fn validation_catches_nonsense() {
        let mut p = PhasePlan::new("bad", 100);
        p.shuffle_factor = -1.0;
        assert!(p.validate().is_err());

        let mut p = PhasePlan::new("bad2", 0);
        p.read_cpu.push(CpuWork {
            tag: "x",
            ns_per_byte: 1.0,
        });
        assert!(p.validate().is_err());

        let mut p = PhasePlan::new("bad3", 100);
        p.write_received = true;
        assert!(p.validate().is_err());

        let plan = TaskPlan {
            task: "empty",
            phases: vec![],
        };
        assert!(plan.validate().is_err());
    }

    #[test]
    fn weight_validation() {
        let mut p = PhasePlan::new("skewed", 100);
        p.shuffle_factor = 1.0;
        p.shuffle_weights = Some(vec![0.5, 0.5]);
        p.validate().expect("valid weights");
        p.shuffle_weights = Some(vec![]);
        assert!(p.validate().is_err());
        p.shuffle_weights = Some(vec![-1.0, 2.0]);
        assert!(p.validate().is_err());
        p.shuffle_weights = Some(vec![0.0, 0.0]);
        assert!(p.validate().is_err());
    }

    #[test]
    fn cpu_scaling_multiplies_all_costs() {
        let mut p = PhasePlan::new("a", 100);
        p.read_cpu = vec![CpuWork {
            tag: "x",
            ns_per_byte: 4.0,
        }];
        p.recv_cpu = vec![CpuWork {
            tag: "y",
            ns_per_byte: 2.0,
        }];
        p.frontend_cpu_ns_per_byte = 1.0;
        let mut plan = TaskPlan {
            task: "t",
            phases: vec![p],
        };
        plan.scale_cpu(2.5);
        assert_eq!(plan.phases[0].read_cpu[0].ns_per_byte, 10.0);
        assert_eq!(plan.phases[0].recv_cpu[0].ns_per_byte, 5.0);
        assert_eq!(plan.phases[0].frontend_cpu_ns_per_byte, 2.5);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn cpu_scaling_rejects_zero() {
        TaskPlan {
            task: "t",
            phases: vec![],
        }
        .scale_cpu(0.0);
    }

    #[test]
    fn task_totals() {
        let mut p1 = PhasePlan::new("a", 100);
        p1.shuffle_factor = 1.0;
        let p2 = PhasePlan::new("b", 50);
        let plan = TaskPlan {
            task: "t",
            phases: vec![p1, p2],
        };
        assert_eq!(plan.total_read_bytes(), 150);
        assert_eq!(plan.total_shuffle_bytes(), 100);
        plan.validate().expect("valid");
    }
}
