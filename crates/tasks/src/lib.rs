//! The eight decision-support workload tasks, expressed as per-architecture
//! coarse-grain dataflow *phase plans*.
//!
//! The paper structures every Active Disk algorithm "as coarse-grain
//! data-flow graphs" of disklets connected by streams; the cluster and SMP
//! variants share the same phase structure with different placement and
//! communication mechanisms. A [`plan::TaskPlan`] captures that structure:
//! a sequence of phases, each telling every node how many bytes it scans,
//! what CPU work it does per scanned and per received byte (tagged by
//! operator, so Figure 3's execution breakdown falls out), and how output
//! bytes are routed (kept, written, shuffled to peers, or sent to the
//! front-end).
//!
//! Memory-dependent planning — external-sort run counts, PipeHash pass
//! counts, Apriori counter residency — happens here, which is how the
//! paper's Figure 4 (disk-memory scaling) is reproduced.
//!
//! CPU costs are *reference costs* for the 300 MHz Pentium II (see
//! [`costs`]); the simulator scales them by each architecture's processor,
//! exactly as Howsim scaled traced processing times by processor speed.

#![warn(missing_docs)]

pub mod costs;
pub mod plan;
pub mod planner;

pub use plan::{CpuWork, PhasePlan, TaskPlan};
pub use planner::{plan_task, plan_task_on};

use datagen::DatasetSpec;

/// One of the paper's eight decision-support tasks.
///
/// # Example
///
/// ```
/// use tasks::TaskKind;
///
/// assert_eq!(TaskKind::Sort.name(), "sort");
/// assert!(TaskKind::Sort.repartitions());
/// assert_eq!(TaskKind::Sort.dataset().tuple_bytes, 100);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TaskKind {
    /// SQL select (1% selectivity).
    Select,
    /// SQL aggregate (SUM).
    Aggregate,
    /// SQL group-by (13.5 M groups).
    GroupBy,
    /// The datacube operator (PipeHash).
    DataCube,
    /// External sort.
    Sort,
    /// Project-join.
    Join,
    /// Association-rule mining (Apriori).
    DataMine,
    /// Materialized-view maintenance.
    MaterializedView,
}

impl TaskKind {
    /// All eight tasks in the paper's presentation order.
    pub const ALL: [TaskKind; 8] = [
        TaskKind::Select,
        TaskKind::Aggregate,
        TaskKind::GroupBy,
        TaskKind::DataCube,
        TaskKind::Sort,
        TaskKind::Join,
        TaskKind::DataMine,
        TaskKind::MaterializedView,
    ];

    /// The paper's short name for the task.
    pub fn name(self) -> &'static str {
        match self {
            TaskKind::Select => "select",
            TaskKind::Aggregate => "aggregate",
            TaskKind::GroupBy => "groupby",
            TaskKind::DataCube => "dcube",
            TaskKind::Sort => "sort",
            TaskKind::Join => "join",
            TaskKind::DataMine => "dmine",
            TaskKind::MaterializedView => "mview",
        }
    }

    /// The Table 2 dataset for this task.
    pub fn dataset(self) -> DatasetSpec {
        match self {
            TaskKind::Select => DatasetSpec::select(),
            TaskKind::Aggregate => DatasetSpec::aggregate(),
            TaskKind::GroupBy => DatasetSpec::groupby(),
            TaskKind::DataCube => DatasetSpec::dcube(),
            TaskKind::Sort => DatasetSpec::sort(),
            TaskKind::Join => DatasetSpec::join(),
            TaskKind::DataMine => DatasetSpec::dmine(),
            TaskKind::MaterializedView => DatasetSpec::mview(),
        }
    }

    /// Whether the task repartitions all (or a large fraction) of its
    /// dataset — the property the paper's Figure 5 turns on.
    pub fn repartitions(self) -> bool {
        matches!(
            self,
            TaskKind::Sort | TaskKind::Join | TaskKind::MaterializedView
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eight_tasks_in_paper_order() {
        let names: Vec<_> = TaskKind::ALL.iter().map(|t| t.name()).collect();
        assert_eq!(
            names,
            vec![
                "select",
                "aggregate",
                "groupby",
                "dcube",
                "sort",
                "join",
                "dmine",
                "mview"
            ]
        );
    }

    #[test]
    fn datasets_match_task_names() {
        for t in TaskKind::ALL {
            assert_eq!(t.name(), t.dataset().name);
        }
    }

    #[test]
    fn repartitioning_tasks_match_figure_5() {
        let repart: Vec<_> = TaskKind::ALL.iter().filter(|t| t.repartitions()).collect();
        assert_eq!(repart.len(), 3, "sort, join, mview");
        assert!(TaskKind::Sort.repartitions());
        assert!(TaskKind::Join.repartitions());
        assert!(TaskKind::MaterializedView.repartitions());
        assert!(!TaskKind::GroupBy.repartitions());
    }
}
