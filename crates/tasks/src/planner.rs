//! Builds the phase plan for a task on a given architecture.
//!
//! The phase *structure* of each task is identical across architectures
//! (the paper adapted the same well-known algorithm to each programming
//! model); what differs is the memory available for planning — Active
//! Disks bring 32 MB per disk, cluster nodes 104 MB usable, SMPs
//! 64 MB per processor — which sets external-sort run counts and PipeHash
//! pass counts. Placement and communication differences are applied by the
//! simulator, which knows the architecture's fabrics.

use arch::Architecture;
use datagen::{DatasetSpec, TaskParams};
use kernels::cube::pack_first_fit;
use kernels::sort::run_count;
use simcore::Duration;

use crate::costs;
use crate::plan::{CpuWork, PhasePlan, TaskPlan};
use crate::TaskKind;

/// Builds the [`TaskPlan`] for `kind` on `arch`.
///
/// # Example
///
/// ```
/// use arch::Architecture;
/// use tasks::{plan_task, TaskKind};
///
/// let plan = plan_task(TaskKind::Sort, &Architecture::active_disks(64));
/// assert_eq!(plan.phases.len(), 2); // repartition + merge
/// assert_eq!(plan.total_shuffle_bytes(), 16_000_000_000);
/// ```
///
/// # Panics
///
/// Panics if the produced plan fails validation (an internal bug, not a
/// user error).
pub fn plan_task(kind: TaskKind, arch: &Architecture) -> TaskPlan {
    plan_task_on(kind, arch, &kind.dataset())
}

/// Builds the [`TaskPlan`] for `kind` on `arch` over an explicit dataset
/// (growth studies scale Table 2's datasets up; tests scale them down).
///
/// # Panics
///
/// Panics if the produced plan fails validation.
pub fn plan_task_on(kind: TaskKind, arch: &Architecture, dataset: &DatasetSpec) -> TaskPlan {
    let dataset = dataset.clone();
    let n = arch.disks() as u64;
    let usable_mem = (arch.aggregate_memory_bytes() as f64 * costs::MEMORY_USABLE_FRACTION) as u64;
    let phases = match kind {
        TaskKind::Select => plan_select(&dataset),
        TaskKind::Aggregate => plan_aggregate(&dataset),
        TaskKind::GroupBy => plan_groupby(&dataset),
        TaskKind::DataCube => plan_dcube(&dataset, usable_mem),
        TaskKind::Sort => plan_sort(&dataset, n, usable_mem),
        TaskKind::Join => plan_join(&dataset),
        TaskKind::DataMine => plan_dmine(&dataset),
        TaskKind::MaterializedView => plan_mview(&dataset),
    };
    let plan = TaskPlan {
        task: kind.name(),
        phases,
    };
    plan.validate().expect("planner produced an invalid plan");
    plan
}

fn plan_select(d: &datagen::DatasetSpec) -> Vec<PhasePlan> {
    let TaskParams::Select { selectivity } = d.params else {
        unreachable!("select dataset");
    };
    let mut p = PhasePlan::new("scan", d.total_bytes);
    p.read_cpu = vec![CpuWork::per_tuple(
        "filter",
        costs::SELECT_NS_PER_TUPLE,
        d.tuple_bytes,
    )];
    // Matching tuples are materialized as a local result relation; only a
    // per-node match-count summary reaches the front-end.
    p.local_write_factor = selectivity;
    p.frontend_bytes_per_node = 64;
    p.frontend_combinable = true;
    vec![p]
}

fn plan_aggregate(d: &datagen::DatasetSpec) -> Vec<PhasePlan> {
    let mut p = PhasePlan::new("scan", d.total_bytes);
    p.read_cpu = vec![CpuWork::per_tuple(
        "aggregate",
        costs::AGGREGATE_NS_PER_TUPLE,
        d.tuple_bytes,
    )];
    // Each node contributes a single accumulator, combined by a global
    // reduction.
    p.frontend_bytes_per_node = 64;
    p.frontend_combinable = true;
    vec![p]
}

fn plan_groupby(d: &datagen::DatasetSpec) -> Vec<PhasePlan> {
    let TaskParams::GroupBy {
        distinct_groups, ..
    } = d.params
    else {
        unreachable!("groupby dataset");
    };
    let result_bytes = distinct_groups * costs::GROUPBY_RESULT_BYTES;
    let mut p = PhasePlan::new("scan", d.total_bytes);
    p.read_cpu = vec![CpuWork::per_tuple(
        "hash-agg",
        costs::GROUPBY_NS_PER_TUPLE,
        d.tuple_bytes,
    )];
    p.frontend_factor = result_bytes as f64 / d.total_bytes as f64;
    p.frontend_cpu_ns_per_byte = costs::FRONTEND_NS_PER_BYTE;
    vec![p]
}

fn plan_dcube(d: &datagen::DatasetSpec, usable_mem: u64) -> Vec<PhasePlan> {
    // PipeHash structure: the first pass scans the raw relation and
    // computes the pipeline root — the *largest* group-by. Every later
    // pass scans that root (695 MB, not 17 GB) to derive a batch of the
    // remaining 14 group-bys whose hash tables co-reside in memory.
    let sizes = costs::dcube_table_sizes();
    let root_bytes = sizes[0];
    let rest = &sizes[1..];
    let root_fits = root_bytes <= usable_mem;

    let mut phases = Vec::new();
    let mut p1 = PhasePlan::new(
        if root_fits {
            "cube-raw-scan"
        } else {
            "cube-spill-scan"
        },
        d.total_bytes,
    );
    p1.read_cpu = vec![CpuWork::per_tuple(
        "hash-pipeline",
        costs::DCUBE_NS_PER_TUPLE,
        d.tuple_bytes,
    )];
    p1.local_write_factor = root_bytes as f64 / d.total_bytes as f64;
    if !root_fits {
        // The root's table exceeds aggregate disk memory: each disk
        // repeatedly fills its share and forwards partial tables to the
        // front-end (which merges them in its 1 GB). Local aggregation
        // deduplicates some input within each flush; ~60% of scanned
        // bytes are forwarded (documented calibration).
        p1.frontend_factor = 0.6;
        p1.frontend_cpu_ns_per_byte = costs::FRONTEND_NS_PER_BYTE;
    }
    phases.push(p1);

    // Pack the remaining group-bys into parent scans under the memory
    // budget. Each parent pass re-reads the root plus the staged pipeline
    // intermediates hanging off it (≈ another root's worth), at the same
    // per-tuple pipeline cost.
    for batch in pack_first_fit(rest, usable_mem) {
        let out_bytes: u64 = batch.iter().map(|&g| rest[g]).sum();
        let mut p = PhasePlan::new("cube-parent-scan", 2 * root_bytes);
        p.reads_intermediate = true;
        p.read_cpu = vec![CpuWork::per_tuple(
            "hash-pipeline",
            costs::DCUBE_NS_PER_TUPLE,
            d.tuple_bytes,
        )];
        p.local_write_factor = out_bytes as f64 / (2 * root_bytes) as f64;
        phases.push(p);
    }
    phases
}

fn plan_sort(d: &datagen::DatasetSpec, n: u64, usable_mem: u64) -> Vec<PhasePlan> {
    let per_node_bytes = d.total_bytes / n;
    let buffer = (usable_mem / n).max(d.tuple_bytes);
    let runs = run_count(per_node_bytes, buffer);

    let mut p1 = PhasePlan::new("sort", d.total_bytes);
    p1.read_cpu = vec![CpuWork::per_tuple(
        "partitioner",
        costs::SORT_PARTITION_NS_PER_TUPLE,
        d.tuple_bytes,
    )];
    p1.recv_cpu = vec![
        CpuWork::per_tuple("append", costs::SORT_APPEND_NS_PER_TUPLE, d.tuple_bytes),
        CpuWork::per_tuple("sort", costs::SORT_SORT_NS_PER_TUPLE, d.tuple_bytes),
    ];
    p1.shuffle_factor = 1.0;
    p1.write_received = true;

    let mut p2 = PhasePlan::new("merge", d.total_bytes);
    p2.reads_intermediate = true;
    p2.read_cpu = vec![CpuWork::per_tuple(
        "merge",
        costs::SORT_MERGE_NS_PER_TUPLE_PER_LOG * (runs as f64).log2().max(1.0)
            + costs::SORT_OUTPUT_NS_PER_TUPLE,
        d.tuple_bytes,
    )];
    p2.local_write_factor = 1.0;
    // Run-switch seeks: the merge cycles through `runs` run files with a
    // per-run read buffer of (buffer / runs); each refill costs a short
    // seek + settling.
    let switches = per_node_bytes * runs / buffer.max(1);
    p2.extra_disk_busy_per_node = Duration::from_micros(2_500) * switches;
    vec![p1, p2]
}

fn plan_join(d: &datagen::DatasetSpec) -> Vec<PhasePlan> {
    let TaskParams::Join {
        projected_tuple_bytes,
        ..
    } = d.params
    else {
        unreachable!("join dataset");
    };
    let projection = projected_tuple_bytes as f64 / d.tuple_bytes as f64;

    let mut p1 = PhasePlan::new("partition", d.total_bytes);
    p1.read_cpu = vec![CpuWork::per_tuple(
        "project-partition",
        costs::JOIN_PARTITION_NS_PER_TUPLE,
        d.tuple_bytes,
    )];
    p1.shuffle_factor = projection;
    p1.write_received = true;

    let projected_total = (d.total_bytes as f64 * projection) as u64;
    let mut p2 = PhasePlan::new("build-probe", projected_total);
    p2.reads_intermediate = true;
    p2.read_cpu = vec![CpuWork::per_tuple(
        "build-probe",
        costs::JOIN_BUILD_PROBE_NS_PER_TUPLE,
        projected_tuple_bytes,
    )];
    // The join result (matching pairs) is written locally; the paper's
    // projected join is selective, producing about a quarter of the
    // projected volume.
    p2.local_write_factor = 0.25;
    vec![p1, p2]
}

fn plan_dmine(d: &datagen::DatasetSpec) -> Vec<PhasePlan> {
    let TaskParams::DataMine {
        counter_bytes_per_disk,
        ..
    } = d.params
    else {
        unreachable!("dmine dataset");
    };
    (0..costs::DMINE_PASSES)
        .map(|_| {
            let mut p = PhasePlan::new("count-pass", d.total_bytes);
            p.read_cpu = vec![CpuWork::per_tuple(
                "count",
                costs::DMINE_NS_PER_TXN_PER_PASS,
                d.tuple_bytes,
            )];
            // Counters are merged by a global reduction after each pass.
            p.frontend_bytes_per_node = counter_bytes_per_disk;
            p.frontend_combinable = true;
            p.frontend_cpu_ns_per_byte = costs::FRONTEND_NS_PER_BYTE;
            p
        })
        .collect()
}

fn plan_mview(d: &datagen::DatasetSpec) -> Vec<PhasePlan> {
    let TaskParams::MaterializedView {
        derived_bytes,
        delta_bytes,
    } = d.params
    else {
        unreachable!("mview dataset");
    };
    // Phase 1: scan the delta stream and route each delta to the node
    // owning its view fragment.
    let mut p1 = PhasePlan::new("route-deltas", delta_bytes);
    p1.read_cpu = vec![CpuWork::per_tuple(
        "route",
        costs::MVIEW_ROUTE_NS_PER_TUPLE,
        d.tuple_bytes,
    )];
    p1.shuffle_factor = 1.0;
    p1.recv_cpu = vec![CpuWork::per_tuple(
        "stage",
        costs::SORT_APPEND_NS_PER_TUPLE,
        d.tuple_bytes,
    )];

    // Phase 2: scan the derived relations, merge the staged deltas in,
    // write the refreshed views back.
    let mut p2 = PhasePlan::new("merge-views", derived_bytes);
    p2.read_cpu = vec![CpuWork::per_tuple(
        "merge",
        costs::MVIEW_MERGE_NS_PER_TUPLE,
        d.tuple_bytes,
    )];
    p2.local_write_factor = 1.0;
    vec![p1, p2]
}

/// Applies per-destination shuffle weights to every repartitioning phase
/// of `plan` (the skew-sensitivity extension: heavy-tailed keys hash to
/// unequal partitions, so some nodes receive far more than others).
///
/// # Panics
///
/// Panics if the resulting plan fails validation (bad weights).
pub fn apply_shuffle_skew(plan: &mut TaskPlan, weights: Vec<f64>) {
    for phase in &mut plan.phases {
        if phase.shuffle_factor > 0.0 {
            phase.shuffle_weights = Some(weights.clone());
        }
    }
    plan.validate().expect("skewed plan must stay valid");
}

#[cfg(test)]
mod tests {
    use super::*;
    use arch::Architecture;

    #[test]
    fn every_task_plans_on_every_architecture() {
        for kind in TaskKind::ALL {
            for arch in [
                Architecture::active_disks(16),
                Architecture::cluster(64),
                Architecture::smp(128),
            ] {
                let plan = plan_task(kind, &arch);
                plan.validate().expect("valid plan");
                assert!(!plan.phases.is_empty());
            }
        }
    }

    #[test]
    fn select_materializes_one_percent_locally() {
        let plan = plan_task(TaskKind::Select, &Architecture::active_disks(16));
        assert_eq!(plan.phases.len(), 1);
        let p = &plan.phases[0];
        assert!((p.local_write_factor - 0.01).abs() < 1e-9);
        // Only a combinable per-node summary reaches the front-end.
        assert_eq!(p.frontend_bytes_per_node, 64);
        assert!(p.frontend_combinable);
        assert_eq!(p.frontend_factor, 0.0);
    }

    #[test]
    fn sort_repartitions_everything_once() {
        let plan = plan_task(TaskKind::Sort, &Architecture::active_disks(64));
        assert_eq!(plan.phases.len(), 2);
        assert_eq!(plan.total_shuffle_bytes(), plan.phases[0].read_bytes_total);
        assert!(plan.phases[0].write_received);
        assert!((plan.phases[1].local_write_factor - 1.0).abs() < 1e-9);
    }

    #[test]
    fn sort_merge_gets_cheaper_with_memory() {
        // Paper Section 4.3: 64 MB disks make longer runs, reducing CPU
        // cost ~7% and disk access ~2%.
        let base = plan_task(
            TaskKind::Sort,
            &Architecture::active_disks(16).with_disk_memory(32 << 20),
        );
        let more = plan_task(
            TaskKind::Sort,
            &Architecture::active_disks(16).with_disk_memory(64 << 20),
        );
        let merge_cost = |p: &TaskPlan| p.phases[1].read_cpu[0].ns_per_byte;
        assert!(
            merge_cost(&more) < merge_cost(&base),
            "longer runs merge cheaper"
        );
        let improvement = 1.0 - merge_cost(&more) / merge_cost(&base);
        assert!(
            (0.02..0.15).contains(&improvement),
            "merge CPU improvement {improvement}"
        );
        assert!(
            more.phases[1].extra_disk_busy_per_node < base.phases[1].extra_disk_busy_per_node,
            "fewer run switches"
        );
    }

    #[test]
    fn join_projects_before_shuffling() {
        let plan = plan_task(TaskKind::Join, &Architecture::cluster(32));
        assert_eq!(plan.phases.len(), 2);
        assert!((plan.phases[0].shuffle_factor - 0.5).abs() < 1e-9);
        // Phase 2 reads the projected (halved) volume.
        assert_eq!(
            plan.phases[1].read_bytes_total,
            plan.phases[0].read_bytes_total / 2
        );
    }

    #[test]
    fn dmine_makes_three_passes_and_ships_counters() {
        let plan = plan_task(TaskKind::DataMine, &Architecture::smp(64));
        assert_eq!(plan.phases.len(), 3);
        for p in &plan.phases {
            assert_eq!(p.frontend_bytes_per_node, 5_400_000);
            assert_eq!(p.shuffle_factor, 0.0, "dmine does not repartition");
        }
    }

    #[test]
    fn dcube_pass_count_depends_on_memory() {
        // 16 Active Disks at 32 MB spill the 695 MB table; at 64 MB they
        // do not, and the pass count drops.
        let small = plan_task(
            TaskKind::DataCube,
            &Architecture::active_disks(16).with_disk_memory(32 << 20),
        );
        let big = plan_task(
            TaskKind::DataCube,
            &Architecture::active_disks(16).with_disk_memory(64 << 20),
        );
        assert!(
            small.phases.iter().any(|p| p.name == "cube-spill-scan"),
            "32 MB @ 16 disks spills to the front-end"
        );
        assert!(
            !big.phases.iter().any(|p| p.name == "cube-spill-scan"),
            "64 MB fits the largest table"
        );
        assert!(big.phases.len() < small.phases.len());
    }

    #[test]
    fn dcube_64_disks_drops_from_three_to_two_passes() {
        let p32 = plan_task(
            TaskKind::DataCube,
            &Architecture::active_disks(64).with_disk_memory(32 << 20),
        );
        let p64 = plan_task(
            TaskKind::DataCube,
            &Architecture::active_disks(64).with_disk_memory(64 << 20),
        );
        assert_eq!(p32.phases.len(), 3, "paper: three passes at 32 MB");
        assert_eq!(p64.phases.len(), 2, "paper: two passes at 64 MB");
    }

    #[test]
    fn mview_routes_deltas_then_merges() {
        let plan = plan_task(TaskKind::MaterializedView, &Architecture::active_disks(32));
        assert_eq!(plan.phases.len(), 2);
        assert_eq!(plan.phases[0].read_bytes_total, datagen::GB);
        assert_eq!(plan.phases[1].read_bytes_total, 4 * datagen::GB);
        assert!((plan.phases[0].shuffle_factor - 1.0).abs() < 1e-9);
    }

    #[test]
    fn skew_applies_to_repartition_phases_only() {
        let mut plan = plan_task(TaskKind::Sort, &Architecture::active_disks(4));
        apply_shuffle_skew(&mut plan, vec![0.7, 0.1, 0.1, 0.1]);
        assert!(
            plan.phases[0].shuffle_weights.is_some(),
            "sort phase is skewed"
        );
        assert!(
            plan.phases[1].shuffle_weights.is_none(),
            "merge phase untouched"
        );
    }

    #[test]
    fn aggregate_sends_almost_nothing_to_frontend() {
        let plan = plan_task(TaskKind::Aggregate, &Architecture::cluster(128));
        assert_eq!(plan.phases[0].frontend_bytes_per_node, 64);
        assert_eq!(plan.phases[0].frontend_factor, 0.0);
    }
}
